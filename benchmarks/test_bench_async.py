"""Async Rain loop: determinism contract + pipelined wall-clock speedup.

The fig5 DBLP workload at serving scale (16k candidate query rows), where
query execution and the complaint drain dominate the iteration.  The
bench pins the two acceptance properties of the async pipeline:

- removal orders are IDENTICAL to the serial sharded loop for every
  method (the async determinism contract, pinned bit-exact by
  ``tests/core/test_async_pipeline.py``);
- the async loop is at least 1.3x faster, from prefetching the next
  iteration's train/execute stages onto the stage thread plus the
  columnar complaint drain (one vectorized compiled forward per result
  instead of a provenance-tree walk per complaint).
"""

from conftest import save_and_print

from repro.experiments import async_rain


def test_bench_async(benchmark, out_dir):
    result = benchmark.pedantic(
        async_rain.run,
        kwargs={"n_train": 400, "n_query": 16000, "max_removals": 50,
                "n_workers": 2, "rounds": 2},
        rounds=1, iterations=1,
    )
    save_and_print(result, out_dir)

    for row in result.rows:
        assert row["order_matches_serial"], row
        assert row["speedup"] >= 1.3, row
