"""Sharded multi-query serving: determinism contract + wall-clock speedup.

The fig8 Adult substrate scaled to a serving workload: one complaint case
per aggregate group of Q6/Q7 (12 cases over 2 distinct plans).  The bench
pins the two acceptance properties of the serving layer:

- removal orders at every worker count are IDENTICAL to the serial loop;
- the sharded run is at least 2x faster at 4 workers, from plan-fingerprint
  dedup (C case executions collapse to P distinct-plan executions per
  iteration, shared probability matrices per result) plus the worker pool.
"""

from conftest import save_and_print

from repro.experiments import serving


def test_bench_sharding(benchmark, out_dir):
    result = benchmark.pedantic(
        serving.run,
        kwargs={"n_workers_grid": (0, 2, 4), "n_query": 2000,
                "max_removals": 20},
        rounds=1, iterations=1,
    )
    save_and_print(result, out_dir)

    for row in result.rows:
        assert row["order_matches_serial"], row
    sharded = result.row_lookup(n_workers=4)
    assert sharded["distinct_plans"] == 2
    assert sharded["speedup"] >= 2.0, sharded
