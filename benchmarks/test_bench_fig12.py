"""Figure 12 (Appendix D): per-iteration runtime, CNN vs. logistic."""

import pytest
from conftest import save_and_print

from repro.experiments import fig11_nn


@pytest.mark.slow
def test_bench_fig12(benchmark, out_dir):
    result = benchmark.pedantic(
        fig11_nn.run,
        kwargs={"methods": ("loss", "holistic"), "n_train": 150, "n_query": 80},
        rounds=1,
        iterations=1,
    )
    result.name = "fig12_nn_runtime"
    save_and_print(result, out_dir)
    cnn_holistic = result.row_lookup(model="cnn", method="holistic")
    lr_holistic = result.row_lookup(model="logistic", method="holistic")
    # Paper shape: the CNN's rank step (Hessian-inverse via FD HVPs inside
    # CG) dominates its iteration cost and far exceeds the linear model's.
    assert cnn_holistic["rank_s"] > lr_holistic["rank_s"]
    assert cnn_holistic["rank_s"] > cnn_holistic["encode_s"]
