"""Figure 4: model F1 vs. training corruption rate on DBLP."""

from conftest import save_and_print

from repro.experiments import fig4_f1


def test_bench_fig4(benchmark, out_dir):
    result = benchmark.pedantic(
        fig4_f1.run,
        kwargs={"rates": (0.1, 0.3, 0.5, 0.6, 0.7, 0.8)},
        rounds=1,
        iterations=1,
    )
    save_and_print(result, out_dir)
    f1 = {row["corruption_rate"]: row["f1_match"] for row in result.rows}
    # Paper shape: robust at low rates, collapsing past ~50%.
    assert f1[0.1] > 0.8
    assert f1[0.8] < f1[0.1] - 0.2
    assert f1[0.8] < f1[0.5]
