"""Figure 6: MNIST join experiments (point complaints + COUNT complaint)."""

import pytest
from conftest import save_and_print

from repro.experiments import fig6_mnist_join


@pytest.mark.slow
def test_bench_fig6ab_point_complaints(benchmark, out_dir):
    result = benchmark.pedantic(
        fig6_mnist_join.run_point_complaints, rounds=1, iterations=1
    )
    save_and_print(result, out_dir)
    rates = sorted({row["corruption_rate"] for row in result.rows})
    assert rates, "no corruption rate produced join complaints"
    for rate in rates:
        holistic = result.row_lookup(corruption_rate=rate, method="holistic")
        loss = result.row_lookup(corruption_rate=rate, method="loss")
        # Paper shape (Fig 6a/6b): Holistic dominates Loss.
        assert holistic["auccr"] >= loss["auccr"], rate


@pytest.mark.slow
def test_bench_fig6cd_count_complaint(benchmark, out_dir):
    result = benchmark.pedantic(
        fig6_mnist_join.run_count_complaint, rounds=1, iterations=1
    )
    save_and_print(result, out_dir)
    for rate in (0.3, 0.5, 0.7):
        holistic = result.row_lookup(corruption_rate=rate, method="holistic")
        assert holistic["true_count"] == 0  # disjoint digit subsets
        loss = result.row_lookup(corruption_rate=rate, method="loss")
        assert holistic["auccr"] >= loss["auccr"] - 0.05, rate
