"""Figure 10: robustness of Holistic to mis-specified complaints."""

from conftest import save_and_print

from repro.experiments import fig10_misspec


def test_bench_fig10(benchmark, out_dir):
    result = benchmark.pedantic(fig10_misspec.run, rounds=1, iterations=1)
    save_and_print(result, out_dir)

    def auccr(variant, method="holistic"):
        return result.row_lookup(variant=variant, method=method)["auccr"]

    # Paper shape: right-direction misspecifications stay close to exact...
    assert auccr("overshoot") >= auccr("exact") - 0.25
    # ...while the wrong direction is clearly worse than exact.
    assert auccr("wrong") < auccr("exact")
    # Loss ignores complaints entirely: identical across variants.
    loss_values = {
        row["auccr"] for row in result.rows if row["method"] == "loss"
    }
    assert len(loss_values) == 1
