"""Table 3: AUCCR on DBLP (50%) and ENRON '%http%' / '%deal%'."""

from conftest import save_and_print

from repro.experiments import table3_auccr


def test_bench_table3(benchmark, out_dir):
    result = benchmark.pedantic(table3_auccr.run, rounds=1, iterations=1)
    save_and_print(result, out_dir)

    def auccr(dataset, method):
        return result.row_lookup(dataset=dataset, method=method)["auccr"]

    # Paper shape: Holistic wins every row of Table 3.
    for dataset in ("dblp", "enron_http", "enron_deal"):
        for method in ("loss", "infloss", "twostep"):
            assert auccr(dataset, "holistic") >= auccr(dataset, method), (
                dataset, method,
            )
    # 'deal' flips far more labels than 'http' → easier for Holistic (paper:
    # 0.40 vs 0.12).
    assert auccr("enron_deal", "holistic") > auccr("enron_http", "holistic")
