"""Corruption-rate sweep over the ENRON / Adult paper scenarios.

Per (scenario, rate) cell: tree vs compiled ILP encode wall clock,
program parity up to variable naming, and one deterministic branch &
bound solve.  The ENRON rows grade Table 3's labelling-function rule
by the fraction of token-matching emails it relabels; the Adult rows
reuse Figure 8's flip fraction.

The asserts here are qualitative — every cell present, every program
pair identical, every solve optimal.  These single-table scenarios
carry flat provenance (linear aggregate cells), so no encode-speedup
floor applies; that floor lives in ``test_bench_ilp_encode`` on the
fig6-shaped join workload.
"""

from conftest import save_and_print

from repro.experiments import scenario_sweep


def test_bench_scenario_sweep(benchmark, out_dir):
    result = benchmark.pedantic(
        scenario_sweep.run,
        kwargs={"rates": (0.5, 1.0), "flip_fractions": (0.3, 0.5),
                "n_train": 400, "n_query": 1200, "rounds": 3},
        rounds=1, iterations=1,
    )
    save_and_print(result, out_dir)

    cells = {(row["scenario"], row["rate"]) for row in result.rows}
    assert cells == {
        ("enron_http", 0.5), ("enron_http", 1.0),
        ("enron_deal", 0.5), ("enron_deal", 1.0),
        ("adult_q6_gender", 0.3), ("adult_q6_gender", 0.5),
        ("adult_q7_age", 0.3), ("adult_q7_age", 0.5),
    }
    for row in result.rows:
        assert row["program_identical"], row
        assert row["solve_status"].startswith("optimal"), row
        assert row["tree_encode_s"] > 0 and row["compiled_encode_s"] > 0
