"""Figure 7: TwoStep converges to Holistic as complaint ambiguity drops."""

from conftest import save_and_print

from repro.experiments import fig7_ambiguity


def test_bench_fig7(benchmark, out_dir):
    result = benchmark.pedantic(
        fig7_ambiguity.run,
        kwargs={"replaced_fractions": (0.1, 0.5, 0.8)},
        rounds=1,
        iterations=1,
    )
    save_and_print(result, out_dir)
    if not result.rows:
        raise AssertionError("ambiguity experiment produced no complaints")
    # Holistic stays strong at every ambiguity level.
    for fraction in (0.1, 0.5, 0.8):
        holistic = result.row_lookup(replaced_fraction=fraction, method="holistic")
        assert holistic["auccr"] > 0.3, fraction
    # Paper shape: TwoStep's gap to Holistic shrinks as more complaints are
    # replaced by unambiguous point complaints.
    gap_low = (
        result.row_lookup(replaced_fraction=0.1, method="holistic")["auccr"]
        - result.row_lookup(replaced_fraction=0.1, method="twostep")["auccr"]
    )
    gap_high = (
        result.row_lookup(replaced_fraction=0.8, method="holistic")["auccr"]
        - result.row_lookup(replaced_fraction=0.8, method="twostep")["auccr"]
    )
    assert gap_high <= gap_low + 0.15
