"""Tensorized provenance + columnar executor: equivalence and speedup.

Acceptance bar for the compiled provenance engine (fig5's encode side, the
DBLP n=400 / n_query=300 configuration): for both TwoStep and Holistic,

- the compiled path (columnar executor emitting node arrays, batched
  relaxation objective, persistent HiGHS LP backend) must produce removal
  orders **identical** to the interpreted reference path (tree provenance,
  per-row runtime caches, per-call scipy ``linprog``), and
- the combined TwoStep + Holistic Encode (+ query execution, folded into
  Encode as in fig5) seconds per iteration must improve by at least 3x,
  with Holistic individually at least 3x and TwoStep at least 2.5x.
  Measured on this substrate: TwoStep ~3.1–3.4x, Holistic ~5x; TwoStep's
  asserted bar is lower because its encode is dominated by the HiGHS LP
  solves themselves, which the identical-orders requirement pins to the
  reference solve sequence.

Fast tier: three train-rank-fix iterations per configuration.
"""

from conftest import save_and_print

from repro.experiments.common import ExperimentResult, build_dblp_setting, run_method

CONFIGS = {
    "reference": {"provenance": "tree", "lp_backend": "linprog"},
    "compiled": {"provenance": "compiled", "lp_backend": "highs"},
}


def _run(setting, initial_params, method, config):
    ranker_kwargs = (
        {"lp_backend": config["lp_backend"]} if method == "twostep" else None
    )
    setting.model.set_params(initial_params)
    report = run_method(
        setting.database,
        setting.model_name,
        setting.X_train,
        setting.y_corrupted,
        [setting.case],
        method,
        max_removals=30,
        k_per_iteration=10,
        seed=0,
        reset_params=initial_params,
        provenance=config["provenance"],
        ranker_kwargs=ranker_kwargs,
    )
    iterations = max(1, len([r for r in report.iterations if r.removed]))
    timings = report.timings
    encode = (timings.get("encode", 0.0) + timings.get("execute", 0.0)) / iterations
    return report, encode


def test_bench_compiled_provenance(benchmark, out_dir):
    setting = build_dblp_setting(0.5, n_train=400, n_query=300, seed=0)
    initial_params = setting.model.get_params()

    def sweep():
        result = ExperimentResult("compiled_provenance")
        encode_by_key = {}
        orders_by_method = {}
        for method in ("twostep", "holistic"):
            # Best-of-3 guards the wall-clock assertions against one-off
            # scheduler noise (same convention as test_bench_block_cg);
            # repeats interleave reference and compiled runs so both see
            # the same machine state.
            encodes = {name: float("inf") for name in CONFIGS}
            for _ in range(3):
                for name, config in CONFIGS.items():
                    report, run_encode = _run(setting, initial_params, method, config)
                    encodes[name] = min(encodes[name], run_encode)
                    orders_by_method.setdefault(method, {})[name] = (
                        report.removal_order
                    )
            for name in CONFIGS:
                encode_by_key[(method, name)] = encodes[name]
                result.rows.append(
                    {
                        "method": method,
                        "path": name,
                        "encode_s_per_iter": encodes[name],
                        "removed": len(orders_by_method[method][name]),
                    }
                )
        for method in ("twostep", "holistic"):
            result.rows.append(
                {
                    "method": method,
                    "path": "speedup",
                    "encode_s_per_iter": encode_by_key[(method, "reference")]
                    / encode_by_key[(method, "compiled")],
                    "removed": 0,
                }
            )
        result.notes.append(
            "reference = tree provenance + per-row caches + per-call linprog; "
            "compiled = node-array provenance + columnar executor + "
            "persistent HiGHS (cold solves, vertex-identical to linprog)."
        )
        return result, encode_by_key, orders_by_method

    result, encode_by_key, orders_by_method = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    save_and_print(result, out_dir)

    # Equivalence: the compiled path must delete the same records in the
    # same order as the interpreted reference for both approaches.
    for method, orders in orders_by_method.items():
        assert orders["compiled"] == orders["reference"], method

    holistic_speedup = (
        encode_by_key[("holistic", "reference")] / encode_by_key[("holistic", "compiled")]
    )
    twostep_speedup = (
        encode_by_key[("twostep", "reference")] / encode_by_key[("twostep", "compiled")]
    )
    combined_speedup = (
        encode_by_key[("twostep", "reference")] + encode_by_key[("holistic", "reference")]
    ) / (
        encode_by_key[("twostep", "compiled")] + encode_by_key[("holistic", "compiled")]
    )
    assert holistic_speedup > 3.0
    assert twostep_speedup > 2.5
    assert combined_speedup > 3.0
