"""Benchmark harness conventions.

Every benchmark wraps one experiment module from ``repro.experiments`` in
``benchmark.pedantic(..., rounds=1, iterations=1)`` (the experiments are
minutes-scale parameter sweeps, not microbenchmarks), writes the rendered
result table to ``benchmarks/out/<name>.txt``, and asserts the paper's
qualitative shape — orderings and directions, never absolute numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


def save_and_print(result, out_dir: Path) -> None:
    path = result.save(out_dir)
    print(f"\n{result.table()}\n[saved to {path}]")
