"""Section 6.3 mix-rate text experiment: overlapping join sides."""

import pytest
from conftest import save_and_print

from repro.experiments import fig6_mnist_join


@pytest.mark.slow
def test_bench_mix_rate(benchmark, out_dir):
    result = benchmark.pedantic(fig6_mnist_join.run_mix_rate, rounds=1, iterations=1)
    save_and_print(result, out_dir)
    for mix in (0.25, 0.35):
        # Enough 1-digit images moved right → non-empty true join output.
        assert result.row_lookup(mix_rate=mix, method="holistic")["true_count"] > 0
    for mix in (0.05, 0.25, 0.35):
        holistic = result.row_lookup(mix_rate=mix, method="holistic")
        loss = result.row_lookup(mix_rate=mix, method="loss")
        # Paper shape: Holistic stays competitive with Loss as ambiguity
        # rises (paper: Holistic 0.78→0.48 vs flat Loss ≈ 0.24).
        assert holistic["auccr"] >= loss["auccr"] - 0.1, mix
    # Paper: Holistic's AUCCR decays only gently as the mix rate grows.
    assert (
        result.row_lookup(mix_rate=0.35, method="holistic")["auccr"]
        >= result.row_lookup(mix_rate=0.05, method="holistic")["auccr"] - 0.3
    )
    # TwoStep's small-budget run is expected to exhaust its ILP budget on
    # at least one mixed instance (the paper's 30-minute timeout).
    twostep_failed = any(
        row["method"] == "twostep" and row["auccr"] is None for row in result.rows
    )
    assert twostep_failed or any("budget" in note for note in result.notes)
