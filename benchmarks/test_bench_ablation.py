"""Ablations: appendix theorems + design-choice checks from DESIGN.md."""

import numpy as np
from conftest import save_and_print

from repro.experiments import thm_a1, thm_c1
from repro.experiments.common import ExperimentResult, build_dblp_setting
from repro.influence import InfluenceAnalyzer, lissa_inverse_hvp
from repro.relaxation import RelaxedComplaintObjective


def test_bench_thm_a1_ambiguity(benchmark, out_dir):
    result = benchmark.pedantic(
        thm_a1.run, kwargs={"n_values": (12, 24, 48, 96), "trials": 200},
        rounds=1, iterations=1,
    )
    save_and_print(result, out_dir)
    probs = [row["empirical_p_nonzero"] for row in result.rows]
    # Converges toward zero as the queried set grows.
    assert probs[-1] < probs[0]
    for row in result.rows:
        assert abs(row["empirical_p_nonzero"] - row["theory_p_nonzero"]) < 0.15


def test_bench_thm_c1_value_of_complaints(benchmark, out_dir):
    result = benchmark.pedantic(
        thm_c1.run, kwargs={"k_values": (4, 16, 64, 256)}, rounds=1, iterations=1
    )
    save_and_print(result, out_dir)
    losses = [row["max_corrupt_loss"] for row in result.rows]
    assert losses[-1] < losses[0]
    for row in result.rows:
        assert row["complaint_recall@K"] == 1.0


def _ablation_setting():
    return build_dblp_setting(0.5, n_train=300, n_query=200, seed=0)


def test_bench_cg_damping_sensitivity(benchmark, out_dir):
    """Design check: rankings are stable across reasonable CG damping."""

    def run():
        setting = _ablation_setting()
        objective_rows = []
        from repro.complaints import ComplaintCase
        from repro.relational import Executor, plan_sql

        result = Executor(setting.database).execute(
            plan_sql(setting.query, setting.database), debug=True
        )
        objective = RelaxedComplaintObjective(result, setting.case.complaints)
        q_grad = objective.q_grad_theta()
        baseline_top = None
        experiment = ExperimentResult("ablation_cg_damping")
        for damping in (0.0, 1e-4, 1e-2):
            analyzer = InfluenceAnalyzer(
                setting.model, setting.X_train, setting.y_corrupted,
                damping=damping,
            )
            scores = analyzer.scores_from_q_grad(q_grad)
            top = set(np.argsort(-scores)[:30].tolist())
            if baseline_top is None:
                baseline_top = top
            overlap = len(top & baseline_top) / 30
            experiment.rows.append(
                {"damping": damping, "top30_overlap_vs_damping0": overlap}
            )
        return experiment

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print(result, out_dir)
    for row in result.rows:
        assert row["top30_overlap_vs_damping0"] >= 0.8


def test_bench_deletion_vs_relabel(benchmark, out_dir):
    """Extension ablation: deletion vs label-fixing intervention (paper §8)."""

    def run():
        from repro.core import RainDebugger
        from repro.core.interventions import RelabelDebugger

        setting = _ablation_setting()
        initial = setting.model.get_params()
        experiment = ExperimentResult("ablation_interventions")
        for name, cls in (("delete", RainDebugger), ("relabel", RelabelDebugger)):
            setting.model.set_params(initial)
            debugger = cls(
                setting.database, setting.model_name, setting.X_train,
                setting.y_corrupted, [setting.case], method="holistic", rng=0,
            )
            report = debugger.run(
                max_removals=len(setting.corrupted_indices), k_per_iteration=10
            )
            experiment.rows.append(
                {
                    "intervention": name,
                    "auccr": report.auccr(setting.corrupted_indices),
                    "records_touched": len(report.removal_order),
                }
            )
        setting.model.set_params(initial)
        return experiment

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print(result, out_dir)
    for row in result.rows:
        assert row["auccr"] > 0.5, row


def test_bench_lissa_vs_cg(benchmark, out_dir):
    """Design check: LiSSA and CG produce matching top-k rankings."""

    def run():
        setting = _ablation_setting()
        from repro.relational import Executor, plan_sql

        result = Executor(setting.database).execute(
            plan_sql(setting.query, setting.database), debug=True
        )
        objective = RelaxedComplaintObjective(result, setting.case.complaints)
        q_grad = objective.q_grad_theta()
        analyzer = InfluenceAnalyzer(
            setting.model, setting.X_train, setting.y_corrupted
        )
        cg_scores = analyzer.scores_from_q_grad(q_grad)
        u = lissa_inverse_hvp(
            lambda v: setting.model.hvp(setting.X_train, setting.y_corrupted, v),
            q_grad, scale=50.0, iterations=4000,
        )
        lissa_scores = -setting.model.grad_dot(
            setting.X_train, setting.y_corrupted, u
        )
        top_cg = set(np.argsort(-cg_scores)[:30].tolist())
        top_lissa = set(np.argsort(-lissa_scores)[:30].tolist())
        experiment = ExperimentResult("ablation_lissa_vs_cg")
        experiment.rows.append(
            {"top30_overlap": len(top_cg & top_lissa) / 30}
        )
        return experiment

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print(result, out_dir)
    assert result.rows[0]["top30_overlap"] >= 0.8
