"""Figure 5: per-iteration Train/Encode/Rank runtime breakdown (DBLP 50%)."""

from conftest import save_and_print

from repro.experiments import fig5_runtime


def test_bench_fig5(benchmark, out_dir):
    result = benchmark.pedantic(fig5_runtime.run, rounds=1, iterations=1)
    save_and_print(result, out_dir)
    ranking_cost = {
        row["method"]: row["encode_s"] + row["rank_s"] for row in result.rows
    }
    total = {
        row["method"]: row["train_s"] + row["encode_s"] + row["rank_s"]
        for row in result.rows
    }
    # Paper shape: Loss avoids influence estimation entirely (cheapest
    # ranking); InfLoss is the slowest approach by far (one CG solve per
    # training record).
    assert ranking_cost["loss"] <= min(ranking_cost.values()) + 1e-9
    assert total["infloss"] >= max(total.values()) - 1e-9
    assert ranking_cost["infloss"] > 3 * ranking_cost["loss"]
