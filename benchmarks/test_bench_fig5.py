"""Figure 5: per-iteration Train/Encode/Rank runtime breakdown (DBLP 50%).

Marked ``slow``: the ``infloss-scalar`` row deliberately runs the paper's
per-record CG loop (the reproduction's slowest path) to anchor the
block-solve speedup; ``test_bench_block_cg.py`` asserts the same speedup on
a smaller workload inside the default (fast) tier.
"""

import pytest
from conftest import save_and_print

from repro.experiments import fig5_runtime


@pytest.mark.slow
def test_bench_fig5(benchmark, out_dir):
    result = benchmark.pedantic(fig5_runtime.run, rounds=1, iterations=1)
    save_and_print(result, out_dir)
    ranking_cost = {
        row["method"]: row["encode_s"] + row["rank_s"] for row in result.rows
    }
    total = {
        row["method"]: row["train_s"] + row["encode_s"] + row["rank_s"]
        for row in result.rows
    }
    # Paper shape: Loss avoids influence estimation entirely (cheapest
    # ranking); the per-record InfLoss loop is the slowest approach by far
    # (one CG solve per training record).
    assert ranking_cost["loss"] <= min(ranking_cost.values()) + 1e-9
    assert total["infloss-scalar"] >= max(total.values()) - 1e-9
    assert ranking_cost["infloss-scalar"] > 3 * ranking_cost["loss"]
    # The batched engine's headline: one block solve beats the per-record
    # loop by well over the 3x acceptance bar while ranking the same records.
    assert ranking_cost["infloss-scalar"] > 3 * ranking_cost["infloss"]
