"""Figure 11 (Appendix D): debugging the CNN vs. logistic regression."""

import pytest
from conftest import save_and_print

from repro.experiments import fig11_nn


@pytest.mark.slow
def test_bench_fig11(benchmark, out_dir):
    result = benchmark.pedantic(fig11_nn.run, rounds=1, iterations=1)
    save_and_print(result, out_dir)
    for model in ("logistic", "cnn"):
        holistic = result.row_lookup(model=model, method="holistic")["auccr"]
        loss = result.row_lookup(model=model, method="loss")["auccr"]
        # Paper shape: Holistic dominates Loss on both model families.
        assert holistic >= loss, model
    assert result.row_lookup(model="cnn", method="holistic")["auccr"] > 0.3
