"""Figure 9: one aggregate complaint vs. many labeled point complaints."""

from conftest import save_and_print

from repro.experiments import fig9_effort


def test_bench_fig9(benchmark, out_dir):
    result = benchmark.pedantic(fig9_effort.run, rounds=1, iterations=1)
    save_and_print(result, out_dir)
    agg = result.row_lookup(complaint="agg (count)")["auccr"]
    point_rows = [
        row for row in result.rows if row["complaint"].startswith("point")
    ]
    assert agg > 0.5
    if point_rows:
        # Paper shape: a single aggregate complaint beats few point
        # complaints; many point complaints approach it.
        fewest = min(point_rows, key=lambda row: row["n_complaints"])
        assert agg >= fewest["auccr"] - 0.1
