"""Figure 8: multi-query complaints on Adult (duplicate-feature pathology)."""

from conftest import save_and_print

from repro.experiments import fig8_multiquery


def test_bench_fig8(benchmark, out_dir):
    result = benchmark.pedantic(
        fig8_multiquery.run, kwargs={"flip_fractions": (0.3, 0.5)},
        rounds=1, iterations=1,
    )
    save_and_print(result, out_dir)
    # The Section 6.5 preprocessing pathology is present.
    assert all(row["unique_train"] <= 120 for row in result.rows)
    for fraction in (0.3, 0.5):
        both = result.row_lookup(
            flip_fraction=fraction, complaints="both", method="holistic"
        )["auccr"]
        gender = result.row_lookup(
            flip_fraction=fraction, complaints="gender", method="holistic"
        )["auccr"]
        loss = result.row_lookup(
            flip_fraction=fraction, complaints="both", method="loss"
        )["auccr"]
        # Paper shape: combining complaints helps Holistic; Loss is blind.
        assert both >= gender - 0.05, fraction
        assert both > loss, fraction
