"""Table 2: the Query 2.0 zoo (Q1-Q7) parses, plans, and executes."""

from conftest import save_and_print

from repro.experiments import queries


def test_bench_query_zoo(benchmark, out_dir):
    result = benchmark.pedantic(queries.run, rounds=1, iterations=1)
    save_and_print(result, out_dir)
    assert len(result.rows) == 7
    for row in result.rows:
        assert row["provenance_consistent"], row
        assert row["inference_sites"] > 0
