"""Array-lowered ILP encoding: encode wall clock + exact program parity.

The fig6-shaped join workload across selection / COUNT / grouped
SUM-AVG complaint shapes.  The bench pins the acceptance properties of
the compiled encoder:

- the emitted program is IDENTICAL to the tree encoder's (variable
  count, objective, constraint rows and coefficient order — names
  aside), so branch & bound enumerates the same optima in the same
  order and TwoStep removal orders are bit-identical;
- array lowering (bulk aux-variable blocks + CSR constraint blocks
  straight from the NodePool) beats the tree walk by at least 2x on
  every aggregate scenario, at least 3x summed over them;
- cross-complaint aux dedup fires on the aggregate scenarios, where
  COUNT/SUM/AVG cells over the same group share member conditions.

The selection row is reported but carries no speedup floor: a handful
of tuple complaints touch a sliver of the pool, so the compiled
encoder's one-time pool canonicalization dominates there (the regime
``REPRO_ILP_ENCODER=tree`` exists for).
"""

from conftest import save_and_print

from repro.experiments import ilp_encode


def test_bench_ilp_encode(benchmark, out_dir):
    result = benchmark.pedantic(
        ilp_encode.run,
        kwargs={"n_left": 240, "n_right": 160, "n_keys": 8, "depth": 4,
                "rounds": 3},
        rounds=1, iterations=1,
    )
    save_and_print(result, out_dir)

    rows = {row["scenario"]: row for row in result.rows}
    assert set(rows) == {
        "selection", "count", "grouped_sum_avg", "AGGREGATE_TOTAL"
    }
    for row in result.rows:
        assert row["program_identical"], row
        assert row["order_matches"], row
    assert rows["count"]["speedup"] >= 2.0, rows["count"]
    assert rows["grouped_sum_avg"]["speedup"] >= 2.0, rows["grouped_sum_avg"]
    assert rows["AGGREGATE_TOTAL"]["speedup"] >= 3.0, rows["AGGREGATE_TOTAL"]
    assert rows["grouped_sum_avg"]["aux_reused"] > 0
