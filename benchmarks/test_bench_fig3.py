"""Figure 3: DBLP recall curves across corruption rates, all four approaches."""

from conftest import save_and_print

from repro.experiments import fig3_dblp_recall


def test_bench_fig3(benchmark, out_dir):
    result = benchmark.pedantic(
        fig3_dblp_recall.run,
        kwargs={"rates": (0.3, 0.5, 0.7), "n_train": 400, "n_query": 300},
        rounds=1,
        iterations=1,
    )
    save_and_print(result, out_dir)

    def auccr(rate, method):
        return result.row_lookup(corruption_rate=rate, method=method)["auccr"]

    # Paper shape: Holistic dominates everything at every corruption rate.
    for rate in (0.3, 0.5, 0.7):
        for method in ("loss", "infloss", "twostep"):
            assert auccr(rate, "holistic") >= auccr(rate, method), (rate, method)
    # Holistic is near-perfect at medium corruption (paper: 0.99).
    assert auccr(0.5, "holistic") > 0.9
    # Loss-based methods degrade at high corruption rates (overfitting).
    assert auccr(0.7, "loss") < 0.6
