"""Block CG engine: the batched self-influence speedup, measured.

Acceptance bar for the batched influence engine: on a 500-record logistic
regression workload, ``self_influence`` must issue exactly ONE block solve
(counted by the analyzer's solve counters), return scores within 1e-6 of
the per-record scalar loop, and rank at least 3x faster than it.  This
stays in the fast tier (the scalar loop on 500 records is ~1s); the
full-scale fig5 table carries the same comparison at paper scale.
"""

import time

from conftest import save_and_print

from repro.experiments.common import ExperimentResult, build_dblp_setting
from repro.influence import InfluenceAnalyzer


def _build_analyzers(n_train=500):
    setting = build_dblp_setting(0.5, n_train=n_train, n_query=100, seed=0)
    make = lambda: InfluenceAnalyzer(  # noqa: E731 - tiny local factory
        setting.model, setting.X_train, setting.y_corrupted, damping=1e-4
    )
    return make


def test_bench_block_cg(benchmark, out_dir):
    make_analyzer = _build_analyzers()

    scalar_analyzer = make_analyzer()
    start = time.perf_counter()
    scalar_scores = scalar_analyzer.self_influence_scalar()
    scalar_seconds = time.perf_counter() - start
    assert scalar_analyzer.solve_counts["scalar"] == 500

    block_analyzer = make_analyzer()
    block_scores = benchmark.pedantic(
        block_analyzer.self_influence, rounds=3, iterations=1
    )
    # Best-of-3 guards the wall-clock assertion against one-off scheduler
    # noise; the scalar loop is long enough that a single measure is stable.
    block_seconds = benchmark.stats.stats.min

    # Exactly one block solve per call (3 timing rounds ran).
    assert block_analyzer.solve_counts == {"scalar": 0, "block": 3}
    assert block_analyzer.last_block_cg_result.n_columns == 500
    assert len(block_analyzer.last_cg_results) == 500

    # The acceptance counter, on a fresh analyzer and a single call.
    single = make_analyzer()
    single.self_influence()
    assert single.solve_counts == {"scalar": 0, "block": 1}

    # Same scores as the per-record loop, to the acceptance tolerance.
    max_diff = float(abs(block_scores - scalar_scores).max())
    assert max_diff < 1e-6

    # At least 3x faster (in practice it is orders of magnitude).
    assert block_seconds * 3 <= scalar_seconds, (
        f"block {block_seconds:.4f}s vs scalar {scalar_seconds:.4f}s"
    )

    result = ExperimentResult("block_cg_speedup")
    result.rows.append(
        {
            "n_records": 500,
            "scalar_s": scalar_seconds,
            "block_s": block_seconds,
            "speedup": scalar_seconds / max(block_seconds, 1e-12),
            "max_score_diff": max_diff,
            "block_hvp_calls": block_analyzer.last_block_cg_result.block_hvp_calls,
        }
    )
    result.notes.append(
        "self_influence on DBLP/500: one block CG solve vs. the per-record "
        "scalar loop (same damping/tolerance)."
    )
    save_and_print(result, out_dir)
