"""Columnar (compiled) executor vs. the tree-building golden reference.

Every query shape the engine supports — selects, joins, projections,
COUNT/SUM/AVG aggregates, predictions as GROUP BY keys — is executed in
both modes; concrete outputs must match exactly and provenance must be
semantically equivalent (same values under the current assignment, same
relaxed values under random probability matrices).
"""

import numpy as np
import pytest

from repro.relational import (
    Aggregate,
    AggSpec,
    Arith,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Col,
    Const,
    Database,
    Executor,
    Filter,
    Join,
    ModelPredict,
    Relation,
    Scan,
)
from repro.relaxation import Relaxer


@pytest.fixture()
def executor(simple_db):
    return Executor(simple_db)


@pytest.fixture()
def join_db(fitted_binary_model):
    rng = np.random.default_rng(5)
    db = Database()
    db.add_relation(
        Relation(
            "L",
            {
                "features": rng.normal(size=(8, 4)),
                "key": np.asarray([0, 0, 1, 1, 2, 2, 3, 9]),
            },
        )
    )
    db.add_relation(
        Relation(
            "R",
            {
                "features": rng.normal(size=(6, 4)),
                "key": np.asarray([0, 1, 1, 2, 4, 9]),
                "weight": np.linspace(1.0, 2.0, 6),
            },
        )
    )
    db.add_model("m", fitted_binary_model)
    return db


def pred_filter(alias="R"):
    return Filter(
        Scan("R", alias), Cmp("=", ModelPredict("m", Col("features")), Const(1))
    )


QUERY_SHAPES = {
    "select": lambda: pred_filter(),
    "negated": lambda: Filter(
        Scan("R", "R"),
        BoolNot(Cmp("=", ModelPredict("m", Col("features")), Const(1))),
    ),
    "conjunction": lambda: Filter(
        Scan("R", "R"),
        BoolAnd(
            [
                Cmp("=", ModelPredict("m", Col("features")), Const(1)),
                Cmp("<", Col("id"), Const(20)),
            ]
        ),
    ),
    "disjunction": lambda: Filter(
        Scan("R", "R"),
        BoolOr(
            [
                Cmp("=", ModelPredict("m", Col("features")), Const(0)),
                Cmp("=", Col("flag"), Const(1)),
            ]
        ),
    ),
    "count": lambda: Aggregate(
        pred_filter(), (), [AggSpec("count", None, "count")]
    ),
    "grouped": lambda: Aggregate(
        pred_filter(),
        ((Col("flag"), "flag"),),
        [
            AggSpec("count", None, "count"),
            AggSpec("sum", Col("id"), "total"),
            AggSpec("avg", Col("id"), "mean"),
        ],
    ),
    "predict_group": lambda: Aggregate(
        Scan("R", "R"),
        ((ModelPredict("m", Col("features")), "label"),),
        [AggSpec("count", None, "count")],
    ),
    "sum_of_predict": lambda: Aggregate(
        Scan("R", "R"),
        (),
        [AggSpec("sum", ModelPredict("m", Col("features")), "total")],
    ),
    "arith_aggregate": lambda: Aggregate(
        Scan("R", "R"),
        (),
        [
            AggSpec(
                "sum",
                Arith("*", ModelPredict("m", Col("features")), Col("id")),
                "weighted",
            )
        ],
    ),
}


def relations_equal(left: Relation, right: Relation):
    assert left.column_names == right.column_names
    for name in left.column_names:
        a, b = left.column(name), right.column(name)
        assert len(a) == len(b)
        if np.issubdtype(np.asarray(a).dtype, np.number) and np.issubdtype(
            np.asarray(b).dtype, np.number
        ):
            np.testing.assert_allclose(
                np.asarray(a, dtype=float), np.asarray(b, dtype=float), equal_nan=True
            )
        else:
            assert [str(v) for v in a] == [str(v) for v in b]


@pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
class TestCompiledVsTree:
    def test_concrete_output_identical(self, executor, shape):
        plan = QUERY_SHAPES[shape]()
        compiled = executor.execute(plan, debug=True, provenance="compiled")
        tree = executor.execute(plan, debug=True, provenance="tree")
        relations_equal(compiled.relation, tree.relation)
        # Non-debug concrete execution matches too.
        plain = executor.execute(plan, debug=False)
        relations_equal(plain.relation, tree.relation)

    def test_provenance_semantically_equivalent(self, executor, simple_db, shape):
        plan = QUERY_SHAPES[shape]()
        compiled = executor.execute(plan, debug=True, provenance="compiled")
        tree = executor.execute(plan, debug=True, provenance="tree")
        assignment = tree.assignment()
        assert compiled.assignment() == assignment
        rng = np.random.default_rng(17)
        relaxer = Relaxer.for_model(simple_db.model("m"))
        n_sites = max(len(tree.runtime.sites), 1)
        P = rng.uniform(0.05, 0.95, size=(n_sites, 2))
        if compiled.is_aggregate:
            assert [g.key for g in compiled.groups] == [g.key for g in tree.groups]
            for got, want in zip(compiled.groups, tree.groups):
                assert got.condition.evaluate(assignment) == want.condition.evaluate(
                    assignment
                )
                assert relaxer.value(got.condition, P) == pytest.approx(
                    relaxer.value(want.condition, P), abs=1e-9
                )
                for column, poly in want.cell_polys.items():
                    got_value = got.cell_polys[column].evaluate(assignment)
                    want_value = poly.evaluate(assignment)
                    if np.isnan(want_value):
                        assert np.isnan(got_value)
                    else:
                        assert got_value == pytest.approx(want_value, abs=1e-9)
                    assert relaxer.value(got.cell_polys[column], P) == pytest.approx(
                        relaxer.value(poly, P), abs=1e-9
                    )
        else:
            assert len(compiled.candidate_batch) == len(tree.candidate_batch)
            assert compiled.output_to_candidate == tree.output_to_candidate
            for index in range(len(tree.candidate_batch)):
                got = compiled.candidate_conditions[index]
                want = tree.candidate_conditions[index]
                assert got.evaluate(assignment) == want.evaluate(assignment)
                assert relaxer.value(got, P) == pytest.approx(
                    relaxer.value(want, P), abs=1e-9
                )


class TestColumnarJoin:
    def equi_plan(self):
        return Join(
            Scan("L", "L"), Scan("R", "R"), Cmp("=", Col("L.key"), Col("R.key"))
        )

    def test_join_pairs_match_reference(self, join_db):
        from repro.relational.executor import _hash_join, _hash_join_reference
        from repro.relational.context import QueryRuntime, TupleBatch

        runtime = QueryRuntime(join_db, debug=False)
        left = TupleBatch.from_relation(join_db.relation("L"), "L")
        right = TupleBatch.from_relation(join_db.relation("R"), "R")
        equi = [("L.key", "R.key")]
        fast = _hash_join(left, right, equi)
        slow = _hash_join_reference(left, right, equi)
        assert len(fast) == len(slow)
        np.testing.assert_array_equal(
            fast.alias_row_ids["L"], slow.alias_row_ids["L"]
        )
        np.testing.assert_array_equal(
            fast.alias_row_ids["R"], slow.alias_row_ids["R"]
        )

    def test_join_query_modes_agree(self, join_db):
        executor = Executor(join_db)
        plan = Filter(
            self.equi_plan(),
            Cmp(
                "=",
                ModelPredict("m", Col("L.features")),
                ModelPredict("m", Col("R.features")),
            ),
        )
        compiled = executor.execute(plan, debug=True, provenance="compiled")
        tree = executor.execute(plan, debug=True, provenance="tree")
        relations_equal(compiled.relation, tree.relation)
        assignment = tree.assignment()
        assert len(compiled.candidate_batch) == len(tree.candidate_batch)
        for index in range(len(tree.candidate_batch)):
            assert compiled.candidate_conditions[index].evaluate(
                assignment
            ) == tree.candidate_conditions[index].evaluate(assignment)

    def test_empty_join_sides(self, join_db):
        executor = Executor(join_db)
        plan = Join(
            Filter(Scan("L", "L"), Cmp(">", Col("key"), Const(100))),
            Scan("R", "R"),
            Cmp("=", Col("L.key"), Col("R.key")),
        )
        for provenance in ("compiled", "tree"):
            result = executor.execute(plan, debug=True, provenance=provenance)
            assert len(result.relation) == 0


class TestReferenceParityEdgeCases:
    """Edge cases where vectorized numpy semantics could drift from the
    per-row reference: NaN keys and mixed-type comparisons."""

    @pytest.fixture()
    def nan_db(self, fitted_binary_model):
        rng = np.random.default_rng(9)
        db = Database()
        db.add_relation(
            Relation(
                "L", {"features": rng.normal(size=(2, 4)), "k": np.asarray([np.nan, 1.0])}
            )
        )
        db.add_relation(
            Relation(
                "S", {"features": rng.normal(size=(2, 4)), "k": np.asarray([np.nan, 1.0])}
            )
        )
        db.add_relation(
            Relation(
                "G",
                {
                    "features": rng.normal(size=(3, 4)),
                    "k": np.asarray([np.nan, np.nan, 1.0]),
                },
            )
        )
        db.add_model("m", fitted_binary_model)
        return db

    def test_nan_join_keys_never_match(self, nan_db):
        executor = Executor(nan_db)
        plan = Join(Scan("L", "L"), Scan("S", "S"), Cmp("=", Col("L.k"), Col("S.k")))
        for provenance in ("compiled", "tree"):
            result = executor.execute(plan, debug=True, provenance=provenance)
            assert len(result.relation) == 1  # only the 1.0 ⋈ 1.0 pair

    def test_nan_group_keys_stay_distinct(self, nan_db):
        executor = Executor(nan_db)
        plan = Aggregate(
            Scan("G", "G"), ((Col("k"), "k"),), [AggSpec("count", None, "count")]
        )
        compiled = executor.execute(plan, debug=True, provenance="compiled")
        tree = executor.execute(plan, debug=True, provenance="tree")
        assert len(compiled.groups) == len(tree.groups) == 3
        np.testing.assert_array_equal(
            compiled.relation.column("count"), tree.relation.column("count")
        )

    def test_mixed_dtype_join_keys_never_stringify(self, fitted_binary_model):
        # int 1 must not join str '1' (np.concatenate would promote both
        # sides to unicode; the reference dict probe keeps them distinct).
        rng = np.random.default_rng(11)
        db = Database()
        db.add_relation(
            Relation(
                "A", {"features": rng.normal(size=(3, 4)), "k": np.asarray([1, 2, 3])}
            )
        )
        db.add_relation(
            Relation(
                "B",
                {
                    "features": rng.normal(size=(3, 4)),
                    "k": np.asarray(["1", "2", "9"]),
                },
            )
        )
        db.add_model("m", fitted_binary_model)
        executor = Executor(db)
        plan = Join(Scan("A", "A"), Scan("B", "B"), Cmp("=", Col("A.k"), Col("B.k")))
        for provenance in ("compiled", "tree"):
            result = executor.execute(plan, debug=True, provenance=provenance)
            assert len(result.relation) == 0

    def test_mixed_type_comparison_falls_back_per_element(self, fitted_binary_model):
        rng = np.random.default_rng(10)
        db = Database()
        db.add_relation(
            Relation(
                "M",
                {
                    "features": rng.normal(size=(2, 4)),
                    "c": np.asarray([5, "z"], dtype=object),
                },
            )
        )
        db.add_model("m", fitted_binary_model)
        executor = Executor(db)
        plan = Filter(
            Scan("M", "M"), Cmp("<", ModelPredict("m", Col("features")), Col("c"))
        )
        compiled = executor.execute(plan, debug=True, provenance="compiled")
        tree = executor.execute(plan, debug=True, provenance="tree")
        assert len(compiled.candidate_batch) == len(tree.candidate_batch)
        assignment = tree.assignment()
        for index in range(len(tree.candidate_batch)):
            assert compiled.candidate_conditions[index].evaluate(
                assignment
            ) == tree.candidate_conditions[index].evaluate(assignment)


class TestEmptyInputs:
    def test_empty_relation_aggregate(self, fitted_binary_model):
        db = Database()
        db.add_relation(
            Relation("E", {"features": np.zeros((0, 4)), "value": np.zeros(0)})
        )
        db.add_model("m", fitted_binary_model)
        executor = Executor(db)
        plan = Aggregate(
            Scan("E", "E"),
            (),
            [
                AggSpec("count", None, "count"),
                AggSpec("sum", Col("value"), "total"),
                AggSpec("avg", Col("value"), "mean"),
            ],
        )
        for provenance in ("compiled", "tree"):
            result = executor.execute(plan, debug=True, provenance=provenance)
            assert result.relation.column("count")[0] == 0.0
            assert result.relation.column("total")[0] == 0.0
            assert np.isnan(result.relation.column("mean")[0])
