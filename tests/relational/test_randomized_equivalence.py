"""Randomized compiled-vs-tree equivalence on fig6-shaped join plans.

The hand-picked query shapes in ``test_executor_columnar`` pin each
operator once; here a seeded generator produces AND/OR-heavy predicates
over an L ⋈ R equi-join — the MNIST-join shape of the paper's Figure 6,
with ``predict(L) = predict(R)`` filters mixed into the boolean tree —
and every sampled plan must agree between the compiled (columnar) and
tree (golden reference) representations on three levels:

- the concrete output relation (exact);
- the relaxed complaint objective's value AND its θ-gradient to 1e-9,
  compiled engine on the compiled result vs interpreted engine on the
  tree result;
- the complaint satisfied flag, tree walk vs columnar evaluation.
"""

import numpy as np
import pytest

from repro.complaints import (
    ComplaintCase,
    TupleComplaint,
    ValueComplaint,
    all_satisfied,
    all_satisfied_columnar,
)
from repro.relational import (
    Aggregate,
    AggSpec,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Col,
    Const,
    Database,
    Executor,
    Filter,
    Join,
    ModelPredict,
    Relation,
    Scan,
)
from repro.relaxation import RelaxedComplaintObjective

SEEDS = list(range(8))


def relations_equal(left: Relation, right: Relation) -> None:
    assert left.column_names == right.column_names
    for name in left.column_names:
        a, b = left.column(name), right.column(name)
        assert len(a) == len(b)
        if np.issubdtype(np.asarray(a).dtype, np.number) and np.issubdtype(
            np.asarray(b).dtype, np.number
        ):
            np.testing.assert_allclose(
                np.asarray(a, dtype=float),
                np.asarray(b, dtype=float),
                equal_nan=True,
            )
        else:
            assert [str(v) for v in a] == [str(v) for v in b]


@pytest.fixture(scope="module")
def join_db():
    from repro.ml import LogisticRegression

    rng = np.random.default_rng(7)
    n, d = 60, 4
    X = rng.normal(size=(n, d))
    w = np.asarray([1.5, -2.0, 0.5, 0.0])
    y = (X @ w + 0.2 * rng.normal(size=n) > 0).astype(int)
    model = LogisticRegression((0, 1), n_features=d, l2=1e-2)
    model.fit(X, y, warm_start=False)

    db = Database()
    db.add_relation(
        Relation(
            "L",
            {
                "features": rng.normal(size=(30, d)),
                "key": rng.integers(0, 7, size=30),
            },
        )
    )
    db.add_relation(
        Relation(
            "R",
            {
                "features": rng.normal(size=(20, d)),
                "key": rng.integers(0, 7, size=20),
                "weight": np.linspace(1.0, 2.0, 20),
            },
        )
    )
    db.add_model("m", model)
    return db


def random_predicate(rng: np.random.Generator, depth: int):
    """A random boolean tree over predictions on both join sides."""
    if depth == 0:
        leaf = int(rng.integers(4))
        if leaf == 0:
            return Cmp(
                "=",
                ModelPredict("m", Col("L.features")),
                Const(int(rng.integers(2))),
            )
        if leaf == 1:
            return Cmp(
                "=",
                ModelPredict("m", Col("R.features")),
                Const(int(rng.integers(2))),
            )
        if leaf == 2:
            return Cmp(
                "=",
                ModelPredict("m", Col("L.features")),
                ModelPredict("m", Col("R.features")),
            )
        return Cmp("<", Col("R.weight"), Const(float(rng.uniform(1.0, 2.0))))
    children = [
        random_predicate(rng, depth - 1) for _ in range(int(rng.integers(2, 4)))
    ]
    kind = int(rng.integers(3))
    if kind == 0:
        return BoolAnd(children)
    if kind == 1:
        return BoolOr(children)
    return BoolNot(children[0])


def random_plan(rng: np.random.Generator):
    """A filtered equi-join, optionally under a COUNT/grouped aggregate."""
    joined = Join(
        Scan("L", "L"), Scan("R", "R"), Cmp("=", Col("L.key"), Col("R.key"))
    )
    # Always conjoin the fig6 predicate so every sampled plan has model
    # inference on both join sides, whatever the random tree drew.
    predicate = BoolAnd(
        [
            Cmp(
                "=",
                ModelPredict("m", Col("L.features")),
                ModelPredict("m", Col("R.features")),
            ),
            random_predicate(rng, int(rng.integers(2, 4))),
        ]
    )
    filtered = Filter(joined, predicate)
    shape = int(rng.integers(3))
    if shape == 0:
        return filtered, "selection"
    if shape == 1:
        return (
            Aggregate(filtered, (), [AggSpec("count", None, "count")]),
            "count",
        )
    return (
        Aggregate(
            filtered,
            ((Col("L.key"), "key"),),
            [
                AggSpec("count", None, "count"),
                AggSpec("sum", Col("R.weight"), "total"),
            ],
        ),
        "grouped",
    )


def complaints_for(rng: np.random.Generator, result, shape):
    """Random complaints addressing the sampled plan's output."""
    if shape == "selection":
        if len(result.relation) == 0:
            return []
        return [
            TupleComplaint(row_index=int(rng.integers(len(result.relation))))
        ]
    if len(result.relation) == 0:
        return []
    ops = ("=", "<=", ">=")
    row = int(rng.integers(len(result.relation)))
    current = float(result.relation.column("count")[row])
    return [
        ValueComplaint(
            column="count",
            op=ops[int(rng.integers(3))],
            value=current + float(rng.integers(-1, 2)),
            row_index=row,
        )
    ]


@pytest.mark.parametrize("seed", SEEDS)
class TestRandomizedCompiledVsTree:
    def test_sampled_plan_agrees_in_both_modes(self, join_db, seed):
        rng = np.random.default_rng(seed)
        plan, shape = random_plan(rng)
        executor = Executor(join_db)
        compiled = executor.execute(plan, debug=True, provenance="compiled")
        tree = executor.execute(plan, debug=True, provenance="tree")

        relations_equal(compiled.relation, tree.relation)
        # Site ids are assigned in registration order, which the two
        # executors need not share on join plans; compare the predicted
        # labels keyed by site identity instead.
        def keyed_assignment(result):
            assignment = result.assignment()
            return {
                (site.relation_name, site.row_id, site.model_name):
                    assignment[site.site_id]
                for site in result.runtime.sites
            }

        assert keyed_assignment(compiled) == keyed_assignment(tree)

        complaints = complaints_for(rng, tree, shape)
        if not complaints:
            return

        fast = RelaxedComplaintObjective(compiled, complaints)
        slow = RelaxedComplaintObjective(tree, complaints)
        assert fast.engine == "compiled"
        assert slow.engine == "interpreted"
        assert fast.q_value() == pytest.approx(slow.q_value(), abs=1e-9)
        np.testing.assert_allclose(
            fast.q_grad_theta(), slow.q_grad_theta(), atol=1e-9
        )

        case = ComplaintCase(plan, complaints)
        assert all_satisfied_columnar([(case, compiled)]) == all_satisfied(
            [(case, tree)]
        )
