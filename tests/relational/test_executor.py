"""Executor tests: concrete semantics + debug-mode lineage consistency."""

import numpy as np
import pytest

from repro.errors import ProvenanceError, QueryError
from repro.relational import (
    Aggregate,
    AggSpec,
    BoolAnd,
    Cmp,
    Col,
    Const,
    Database,
    Executor,
    Filter,
    Join,
    ModelPredict,
    Project,
    Relation,
    Scan,
)
from repro.relational import provenance as prov


@pytest.fixture()
def executor(simple_db):
    return Executor(simple_db)


def scan(alias="R"):
    return Scan("R", alias)


class TestScanFilterProject:
    def test_scan_all_rows(self, executor):
        result = executor.execute(scan())
        assert len(result.relation) == 25

    def test_deterministic_filter(self, executor):
        plan = Filter(scan(), Cmp("=", Col("flag"), Const(1)))
        result = executor.execute(plan)
        assert len(result.relation) == 13

    def test_filter_comparison_ops(self, executor):
        plan = Filter(scan(), Cmp("<", Col("id"), Const(5)))
        assert len(executor.execute(plan).relation) == 5
        plan = Filter(scan(), Cmp(">=", Col("id"), Const(20)))
        assert len(executor.execute(plan).relation) == 5

    def test_project_renames(self, executor):
        plan = Project(scan(), [(Col("id"), "the_id")])
        result = executor.execute(plan)
        assert result.relation.column_names == ["the_id"]

    def test_model_filter_concrete_matches_predictions(self, executor, simple_db):
        model = simple_db.model("m")
        expected = int(np.sum(
            np.asarray(model.predict(simple_db.relation("R").column("features"))) == 1
        ))
        plan = Filter(scan(), Cmp("=", ModelPredict("m", Col("features")), Const(1)))
        result = executor.execute(plan)
        assert len(result.relation) == expected

    def test_debug_keeps_symbolic_candidates(self, executor):
        plan = Filter(scan(), Cmp("=", ModelPredict("m", Col("features")), Const(1)))
        result = executor.execute(plan, debug=True)
        # All 25 rows stay alive symbolically; only predicted-1 rows concrete.
        assert len(result.candidate_batch) == 25
        assert len(result.relation) < 25

    def test_debug_conditions_are_atoms(self, executor):
        plan = Filter(scan(), Cmp("=", ModelPredict("m", Col("features")), Const(1)))
        result = executor.execute(plan, debug=True)
        for condition in result.candidate_conditions:
            assert isinstance(condition, prov.PredIs)

    def test_tuple_condition_consistency(self, executor):
        plan = Filter(scan(), Cmp("=", ModelPredict("m", Col("features")), Const(1)))
        result = executor.execute(plan, debug=True)
        assignment = result.assignment()
        for row in range(len(result.relation)):
            assert result.tuple_condition(row).evaluate(assignment)

    def test_mixed_predicate_folds_deterministic_part(self, executor):
        predicate = BoolAnd(
            [
                Cmp("=", Col("flag"), Const(1)),
                Cmp("=", ModelPredict("m", Col("features")), Const(1)),
            ]
        )
        result = executor.execute(Filter(scan(), predicate), debug=True)
        # Rows failing the deterministic part are dropped even symbolically.
        assert len(result.candidate_batch) == 13

    def test_lineage_requires_debug(self, executor):
        result = executor.execute(scan())
        with pytest.raises(ProvenanceError, match="debug"):
            result.tuple_condition(0)


class TestJoin:
    @pytest.fixture()
    def join_db(self, fitted_binary_model):
        rng = np.random.default_rng(0)
        db = Database()
        db.add_relation(
            Relation("A", {"k": np.asarray([1, 2, 3]), "features": rng.normal(size=(3, 4))})
        )
        db.add_relation(
            Relation("B", {"k": np.asarray([2, 3, 3, 9]), "v": np.asarray([20, 30, 31, 90])})
        )
        db.add_model("m", fitted_binary_model)
        return db

    def test_cross_product(self, join_db):
        plan = Join(Scan("A", "A"), Scan("B", "B"))
        result = Executor(join_db).execute(plan)
        assert len(result.relation) == 12

    def test_equi_join(self, join_db):
        plan = Join(Scan("A", "A"), Scan("B", "B"), Cmp("=", Col("A.k"), Col("B.k")))
        result = Executor(join_db).execute(plan)
        assert len(result.relation) == 3  # 2-2, 3-3, 3-3

    def test_equi_join_matches_cross_filter(self, join_db):
        equi = Join(Scan("A", "A"), Scan("B", "B"), Cmp("=", Col("A.k"), Col("B.k")))
        cross = Filter(
            Join(Scan("A", "A"), Scan("B", "B")), Cmp("=", Col("A.k"), Col("B.k"))
        )
        ex = Executor(join_db)
        left = sorted(map(str, ex.execute(equi).relation.to_dicts()))
        right = sorted(map(str, ex.execute(cross).relation.to_dicts()))
        assert left == right

    def test_join_with_residual_predicate(self, join_db):
        condition = BoolAnd(
            [Cmp("=", Col("A.k"), Col("B.k")), Cmp(">", Col("B.v"), Const(25))]
        )
        plan = Join(Scan("A", "A"), Scan("B", "B"), condition)
        result = Executor(join_db).execute(plan)
        assert len(result.relation) == 2

    def test_duplicate_alias_raises(self, join_db):
        plan = Join(Scan("A", "X"), Scan("B", "X"))
        with pytest.raises(QueryError, match="alias"):
            Executor(join_db).execute(plan)


class TestJoinEdgeCases:
    """Hash-join corners: empty sides, duplicate keys, empty × empty."""

    @pytest.fixture()
    def edge_db(self, fitted_binary_model):
        rng = np.random.default_rng(1)
        db = Database()
        db.add_relation(
            Relation("A", {"k": np.asarray([1, 2, 2, 3]), "a": np.asarray([10, 20, 21, 30])})
        )
        db.add_relation(
            Relation("B", {"k": np.asarray([2, 2, 4]), "b": np.asarray([200, 201, 400])})
        )
        db.add_relation(Relation("E", {"k": np.zeros(0, dtype=np.int64), "e": np.zeros(0)}))
        db.add_relation(
            Relation("F", {"k": np.asarray([7]), "features": rng.normal(size=(1, 4))})
        )
        db.add_model("m", fitted_binary_model)
        return db

    def equi(self, left, right):
        return Join(
            Scan(left, left), Scan(right, right),
            Cmp("=", Col(f"{left}.k"), Col(f"{right}.k")),
        )

    def test_empty_left_side(self, edge_db):
        result = Executor(edge_db).execute(self.equi("E", "B"))
        assert len(result.relation) == 0

    def test_empty_right_side(self, edge_db):
        result = Executor(edge_db).execute(self.equi("A", "E"))
        assert len(result.relation) == 0

    def test_empty_both_sides(self, edge_db):
        plan = Join(Scan("E", "E1"), Scan("E", "E2"),
                    Cmp("=", Col("E1.k"), Col("E2.k")))
        result = Executor(edge_db).execute(plan)
        assert len(result.relation) == 0

    def test_empty_join_in_debug_mode_keeps_no_candidates(self, edge_db):
        result = Executor(edge_db).execute(self.equi("E", "B"), debug=True)
        assert len(result.relation) == 0
        assert len(result.candidate_batch) == 0
        assert result.candidate_conditions == []

    def test_duplicate_keys_produce_all_pairs(self, edge_db):
        result = Executor(edge_db).execute(self.equi("A", "B"))
        # k=2 appears twice on each side: 2 × 2 = 4 pairs; nothing else matches.
        assert len(result.relation) == 4
        pairs = sorted(
            (int(row["A.a"]), int(row["B.b"])) for row in result.relation.to_dicts()
        )
        assert pairs == [(20, 200), (20, 201), (21, 200), (21, 201)]

    def test_duplicate_keys_match_cross_filter_semantics(self, edge_db):
        ex = Executor(edge_db)
        equi_rows = sorted(map(str, ex.execute(self.equi("A", "B")).relation.to_dicts()))
        cross = Filter(
            Join(Scan("A", "A"), Scan("B", "B")), Cmp("=", Col("A.k"), Col("B.k"))
        )
        cross_rows = sorted(map(str, ex.execute(cross).relation.to_dicts()))
        assert equi_rows == cross_rows

    def test_disjoint_keys_empty_result(self, edge_db):
        result = Executor(edge_db).execute(self.equi("F", "B"))
        assert len(result.relation) == 0

    def test_empty_join_feeds_aggregate(self, edge_db):
        plan = Aggregate(self.equi("E", "B"), (), [AggSpec("count", None, "count")])
        result = Executor(edge_db).execute(plan, debug=True)
        assert result.scalar("count") == 0.0
        poly = result.cell_polynomial(0, "count")
        assert poly.evaluate(result.assignment()) == 0.0


class TestModelJoin:
    @pytest.fixture()
    def db(self, fitted_multiclass_model):
        rng = np.random.default_rng(5)
        db = Database()
        db.add_relation(Relation("L", {"features": rng.normal(size=(6, 5))}))
        db.add_relation(Relation("R", {"features": rng.normal(size=(5, 5))}))
        db.add_model("m", fitted_multiclass_model)
        return db

    def test_predict_join_concrete(self, db):
        model = db.model("m")
        lp = model.predict(db.relation("L").column("features"))
        rp = model.predict(db.relation("R").column("features"))
        expected = sum(1 for a in lp for b in rp if a == b)
        plan = Join(
            Scan("L", "L"),
            Scan("R", "R"),
            Cmp("=", ModelPredict("m", Col("L.features")),
                ModelPredict("m", Col("R.features"))),
        )
        result = Executor(db).execute(plan)
        assert len(result.relation) == expected

    def test_predict_join_debug_keeps_all_pairs(self, db):
        plan = Join(
            Scan("L", "L"),
            Scan("R", "R"),
            Cmp("=", ModelPredict("m", Col("L.features")),
                ModelPredict("m", Col("R.features"))),
        )
        result = Executor(db).execute(plan, debug=True)
        assert len(result.candidate_batch) == 30
        assert len(result.runtime.sites) == 11

    def test_self_join_shares_sites(self, db, fitted_multiclass_model):
        # Join L with itself under two aliases: same base rows share atoms.
        db.add_relation(db.relation("L").rename("L2"))
        plan = Join(
            Scan("L", "a"),
            Scan("L", "b"),
            Cmp("=", ModelPredict("m", Col("a.features")),
                ModelPredict("m", Col("b.features"))),
        )
        result = Executor(db).execute(plan, debug=True)
        # Both sides reference relation "L": only 6 sites, not 12.
        assert len(result.runtime.sites) == 6
        # Diagonal pairs are unconditionally in the join (TRUE condition).
        diagonal = [
            i
            for i in range(len(result.candidate_batch))
            if result.candidate_batch.alias_row_ids["a"][i]
            == result.candidate_batch.alias_row_ids["b"][i]
        ]
        for index in diagonal:
            assert result.candidate_batch.conditions[index].is_true()


class TestAggregates:
    def test_global_count(self, executor):
        plan = Aggregate(scan(), (), [AggSpec("count", None, "count")])
        result = executor.execute(plan)
        assert result.scalar("count") == 25.0

    def test_global_count_empty_input(self, executor):
        plan = Aggregate(
            Filter(scan(), Cmp("<", Col("id"), Const(-1))),
            (),
            [AggSpec("count", None, "count")],
        )
        result = executor.execute(plan)
        assert result.scalar("count") == 0.0

    def test_sum_and_avg(self, executor):
        plan = Aggregate(
            scan(),
            (),
            [AggSpec("sum", Col("id"), "s"), AggSpec("avg", Col("id"), "a")],
        )
        result = executor.execute(plan)
        assert result.scalar("s") == float(sum(range(25)))
        assert result.scalar("a") == pytest.approx(12.0)

    def test_group_by_deterministic(self, executor):
        plan = Aggregate(
            scan(),
            [(Col("flag"), "flag")],
            [AggSpec("count", None, "count")],
        )
        result = executor.execute(plan)
        rows = {row["flag"]: row["count"] for row in result.relation.to_dicts()}
        assert rows == {0: 12.0, 1: 13.0}

    def test_count_with_model_filter_polynomial(self, executor):
        plan = Aggregate(
            Filter(scan(), Cmp("=", ModelPredict("m", Col("features")), Const(1))),
            (),
            [AggSpec("count", None, "count")],
        )
        result = executor.execute(plan, debug=True)
        poly = result.cell_polynomial(0, "count")
        assert isinstance(poly, prov.LinearSum)
        assert len(poly.terms) == 25  # every row is a candidate
        assert poly.evaluate(result.assignment()) == result.scalar("count")

    def test_group_by_predict(self, executor):
        plan = Aggregate(
            scan(),
            [(ModelPredict("m", Col("features")), "pred")],
            [AggSpec("count", None, "count")],
        )
        result = executor.execute(plan, debug=True)
        total = float(np.sum(result.relation.column("count")))
        assert total == 25.0
        # Candidate groups exist for both classes even if one is empty now.
        assert len(result.groups) == 2

    def test_avg_of_predict_polynomial(self, executor):
        plan = Aggregate(
            scan(),
            (),
            [AggSpec("avg", ModelPredict("m", Col("features")), "avg")],
        )
        result = executor.execute(plan, debug=True)
        poly = result.cell_polynomial(0, "avg")
        assert isinstance(poly, prov.DivExpr)
        assert poly.evaluate(result.assignment()) == pytest.approx(result.scalar("avg"))

    def test_group_condition_for_tuple_complaints(self, executor):
        plan = Aggregate(
            scan(),
            [(ModelPredict("m", Col("features")), "pred")],
            [AggSpec("count", None, "count")],
        )
        result = executor.execute(plan, debug=True)
        assignment = result.assignment()
        for output_row, group_index in enumerate(result.output_to_group):
            assert result.groups[group_index].condition.evaluate(assignment)

    def test_unknown_cell_polynomial_raises(self, executor):
        plan = Aggregate(scan(), (), [AggSpec("count", None, "count")])
        result = executor.execute(plan, debug=True)
        with pytest.raises(ProvenanceError, match="not an aggregate output"):
            result.cell_polynomial(0, "nope")


class TestEmptyGroupProvenance:
    """Aggregate provenance polynomials over groups with no members."""

    def empty_scan(self):
        # A deterministic filter nothing satisfies: the aggregate input is empty.
        return Filter(scan(), Cmp("<", Col("id"), Const(-1)))

    def test_global_sum_over_empty_input(self, executor):
        plan = Aggregate(self.empty_scan(), (), [AggSpec("sum", Col("id"), "s")])
        result = executor.execute(plan, debug=True)
        assert result.scalar("s") == 0.0
        poly = result.cell_polynomial(0, "s")
        assert poly.evaluate(result.assignment()) == 0.0
        assert poly.atoms() == set()

    def test_global_count_polynomial_over_empty_input(self, executor):
        plan = Aggregate(self.empty_scan(), (), [AggSpec("count", None, "count")])
        result = executor.execute(plan, debug=True)
        poly = result.cell_polynomial(0, "count")
        assert isinstance(poly, prov.LinearSum)
        assert poly.terms == ()
        assert poly.evaluate(result.assignment()) == 0.0

    def test_global_avg_over_empty_input_is_nan(self, executor):
        plan = Aggregate(self.empty_scan(), (), [AggSpec("avg", Col("id"), "a")])
        result = executor.execute(plan, debug=True)
        poly = result.cell_polynomial(0, "a")
        assert np.isnan(poly.evaluate(result.assignment()))

    def test_empty_global_group_always_exists(self, executor):
        plan = Aggregate(self.empty_scan(), (), [AggSpec("count", None, "count")])
        result = executor.execute(plan, debug=True)
        assert len(result.relation) == 1
        assert len(result.groups) == 1
        assert result.groups[0].condition.is_true()

    def test_currently_empty_predict_group_has_polynomial(self, executor, simple_db):
        """A predict() class group with no current members is still a
        candidate group whose polynomial can be queried by key."""
        model = simple_db.model("m")
        features = simple_db.relation("R").column("features")
        predicted = np.asarray(model.predict(features))
        plan = Aggregate(
            scan(),
            [(ModelPredict("m", Col("features")), "pred")],
            [AggSpec("count", None, "count")],
        )
        result = executor.execute(plan, debug=True)
        assignment = result.assignment()
        # Both classes are candidate groups regardless of current membership.
        assert {group.key for group in result.groups} == {(0,), (1,)}
        for label in (0, 1):
            poly = result.group_polynomial_by_key((label,), "count")
            assert poly.evaluate(assignment) == float(np.sum(predicted == label))

    def test_empty_group_not_in_concrete_output(self, executor):
        """Grouped aggregate over empty input: candidate machinery yields
        no groups at all (no spurious output rows)."""
        plan = Aggregate(
            self.empty_scan(), [(Col("flag"), "flag")],
            [AggSpec("count", None, "count")],
        )
        result = executor.execute(plan, debug=True)
        assert len(result.relation) == 0
        assert result.groups == []
        with pytest.raises(ProvenanceError, match="no candidate group"):
            result.group_polynomial_by_key((0,), "count")

    def test_scalar_requires_single_row(self, executor):
        plan = Aggregate(
            scan(), [(Col("flag"), "flag")], [AggSpec("count", None, "count")]
        )
        result = executor.execute(plan)
        with pytest.raises(QueryError, match="single-row"):
            result.scalar("count")
