"""Unit tests for relations and databases."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational import Database, Relation


def make_rel():
    return Relation(
        "users",
        {
            "id": np.arange(5),
            "age": np.asarray([20, 30, 40, 50, 60]),
            "features": np.arange(10.0).reshape(5, 2),
        },
    )


class TestRelation:
    def test_len_and_columns(self):
        rel = make_rel()
        assert len(rel) == 5
        assert rel.column_names == ["id", "age", "features"]

    def test_row_ids_default(self):
        rel = make_rel()
        assert np.array_equal(rel.row_ids, np.arange(5))

    def test_column_lookup(self):
        rel = make_rel()
        assert np.array_equal(rel.column("age"), [20, 30, 40, 50, 60])

    def test_missing_column_raises(self):
        with pytest.raises(SchemaError, match="no column"):
            make_rel().column("nope")

    def test_mismatched_lengths_raise(self):
        with pytest.raises(SchemaError, match="rows"):
            Relation("r", {"a": np.arange(3), "b": np.arange(4)})

    def test_empty_columns_raise(self):
        with pytest.raises(SchemaError):
            Relation("r", {})

    def test_scalar_column_raises(self):
        with pytest.raises(SchemaError, match="scalar"):
            Relation("r", {"a": np.float64(3.0)})

    def test_take_preserves_row_ids(self):
        rel = make_rel()
        sub = rel.take([3, 1])
        assert np.array_equal(sub.row_ids, [3, 1])
        assert np.array_equal(sub.column("age"), [50, 30])

    def test_filter_mask(self):
        rel = make_rel()
        sub = rel.filter_mask(rel.column("age") > 35)
        assert np.array_equal(sub.row_ids, [2, 3, 4])

    def test_filter_mask_wrong_shape(self):
        with pytest.raises(SchemaError, match="mask"):
            make_rel().filter_mask(np.ones(3, dtype=bool))

    def test_project(self):
        sub = make_rel().project(["id"])
        assert sub.column_names == ["id"]
        assert len(sub) == 5

    def test_with_column(self):
        rel = make_rel().with_column("extra", np.zeros(5))
        assert "extra" in rel.column_names

    def test_feature_column_2d(self):
        rel = make_rel()
        assert rel.column("features").shape == (5, 2)
        sub = rel.take([0, 4])
        assert sub.column("features").shape == (2, 2)

    def test_row_unwraps_scalars(self):
        row = make_rel().row(1)
        assert row["id"] == 1
        assert isinstance(row["id"], int)
        assert row["features"].shape == (2,)

    def test_from_dicts_roundtrip(self):
        rel = Relation.from_dicts("r", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert len(rel) == 2
        assert rel.to_dicts()[1] == {"a": 2, "b": "y"}

    def test_from_dicts_heterogeneous_raises(self):
        with pytest.raises(SchemaError, match="keys"):
            Relation.from_dicts("r", [{"a": 1}, {"b": 2}])

    def test_from_dicts_empty_raises(self):
        with pytest.raises(SchemaError):
            Relation.from_dicts("r", [])

    def test_rename(self):
        assert make_rel().rename("other").name == "other"


class TestDatabase:
    def test_add_and_get_relation(self):
        db = Database()
        db.add_relation(make_rel())
        assert db.relation("users").name == "users"
        assert db.has_relation("users")
        assert db.relation_names == ["users"]

    def test_missing_relation_raises(self):
        with pytest.raises(SchemaError, match="no relation"):
            Database().relation("ghost")

    def test_models(self):
        db = Database()
        sentinel = object()
        db.add_model("m", sentinel)
        assert db.model("m") is sentinel
        assert db.has_model("m")
        assert db.model_names == ["m"]

    def test_missing_model_raises(self):
        with pytest.raises(SchemaError, match="no model"):
            Database().model("ghost")

    def test_mapping_constructor_renames(self):
        db = Database({"alias": make_rel()})
        assert db.relation("alias").name == "alias"

    def test_iterable_constructor(self):
        db = Database([make_rel()])
        assert db.has_relation("users")
