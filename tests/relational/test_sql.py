"""SQL parser + planner tests over the Query 2.0 dialect."""

import numpy as np
import pytest

from repro.errors import SQLSyntaxError, UnsupportedQueryError
from repro.relational import Database, Executor, Relation, plan_sql
from repro.relational.sql import parse


@pytest.fixture()
def db(fitted_binary_model):
    rng = np.random.default_rng(9)
    db = Database()
    db.add_relation(
        Relation(
            "users",
            {
                "features": rng.normal(size=(20, 4)),
                "id": np.arange(20),
                "region": np.asarray(["us", "eu"] * 10, dtype=object),
                "active": (np.arange(20) % 4 == 0).astype(int),
            },
        )
    )
    db.add_relation(
        Relation("logins", {"id": np.arange(0, 20, 2), "n": np.arange(10) * 3})
    )
    db.add_model("churn", fitted_binary_model)
    return db


def run(db, sql, debug=False):
    return Executor(db).execute(plan_sql(sql, db), debug=debug)


class TestParsing:
    def test_basic_select_star(self):
        parsed = parse("SELECT * FROM users")
        assert parsed.select_items[0].is_star
        assert parsed.from_items[0].relation == "users"

    def test_aliases(self):
        parsed = parse("SELECT * FROM users U, logins AS L")
        assert [item.alias for item in parsed.from_items] == ["U", "L"]

    def test_keywords_case_insensitive(self):
        parsed = parse("select count(*) from users where id = 3")
        assert parsed.select_items[0].agg == "count"

    def test_string_literals(self):
        parsed = parse("SELECT * FROM users WHERE region = 'us'")
        assert parsed.where is not None

    def test_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT FROM WHERE")

    def test_trailing_tokens_raise(self):
        with pytest.raises(SQLSyntaxError, match="trailing"):
            parse("SELECT * FROM users WHERE id = 1 42")

    def test_like_requires_string(self):
        with pytest.raises(SQLSyntaxError, match="LIKE"):
            parse("SELECT * FROM users WHERE region LIKE 5")

    def test_operator_precedence_and_or(self):
        parsed = parse(
            "SELECT * FROM users WHERE id = 1 OR id = 2 AND region = 'us'"
        )
        # OR binds loosest: top node must be an OR.
        from repro.relational.expressions import BoolOr

        assert isinstance(parsed.where, BoolOr)

    def test_not_equal_variants(self):
        for text in ("id != 2", "id <> 2"):
            parsed = parse(f"SELECT * FROM users WHERE {text}")
            assert parsed.where.op == "!="


class TestExecution:
    def test_select_star(self, db):
        assert len(run(db, "SELECT * FROM users").relation) == 20

    def test_where_filters(self, db):
        result = run(db, "SELECT * FROM users WHERE id < 5 AND region = 'us'")
        assert len(result.relation) == 3  # ids 0, 2, 4

    def test_projection(self, db):
        result = run(db, "SELECT id FROM users WHERE id < 3")
        assert result.relation.column_names == ["id"]
        assert len(result.relation) == 3

    def test_count_star(self, db):
        assert run(db, "SELECT COUNT(*) FROM users").scalar("count") == 20.0

    def test_sum_avg_alias(self, db):
        result = run(db, "SELECT SUM(n) AS total, AVG(n) AS mean FROM logins")
        assert result.scalar("total") == float(np.arange(10).sum() * 3)
        assert result.relation.column("mean")[0] == pytest.approx(13.5)

    def test_predict_star(self, db):
        result = run(db, "SELECT COUNT(*) FROM users WHERE predict(*) = 1")
        model = db.model("churn")
        expected = float(
            np.sum(np.asarray(model.predict(db.relation("users").column("features"))) == 1)
        )
        assert result.scalar("count") == expected

    def test_predict_qualified_model(self, db):
        result = run(db, "SELECT COUNT(*) FROM users WHERE churn.predict(*) = 1")
        assert result.scalar("count") >= 0

    def test_unknown_model_raises(self, db):
        with pytest.raises(UnsupportedQueryError, match="unknown model"):
            run(db, "SELECT COUNT(*) FROM users WHERE ghost.predict(*) = 1")

    def test_predict_star_multi_relation_ambiguous(self, db):
        with pytest.raises(UnsupportedQueryError, match="ambiguous"):
            run(db, "SELECT COUNT(*) FROM users U, logins L WHERE predict(*) = 1")

    def test_predict_alias_argument(self, db):
        sql = (
            "SELECT COUNT(*) FROM users U, logins L "
            "WHERE U.id = L.id AND predict(U) = 1"
        )
        result = run(db, sql)
        assert 0 <= result.scalar("count") <= 10

    def test_join_comma_and_on_syntax_agree(self, db):
        a = run(db, "SELECT COUNT(*) FROM users U, logins L WHERE U.id = L.id")
        b = run(db, "SELECT COUNT(*) FROM users U JOIN logins L ON U.id = L.id")
        assert a.scalar("count") == b.scalar("count") == 10.0

    def test_like(self, db):
        result = run(db, "SELECT COUNT(*) FROM users WHERE region LIKE '%u%'")
        assert result.scalar("count") == 20.0  # 'us' and 'eu' both contain u
        result = run(db, "SELECT COUNT(*) FROM users WHERE region LIKE 'u%'")
        assert result.scalar("count") == 10.0

    def test_group_by_column(self, db):
        result = run(db, "SELECT region, COUNT(*) FROM users GROUP BY region")
        rows = {row["region"]: row["count"] for row in result.relation.to_dicts()}
        assert rows == {"us": 10.0, "eu": 10.0}

    def test_group_by_predict(self, db):
        result = run(db, "SELECT COUNT(*) FROM users GROUP BY predict(*)")
        assert float(np.sum(result.relation.column("count"))) == 20.0

    def test_avg_predict_group_by(self, db):
        result = run(db, "SELECT AVG(predict(*)) FROM users GROUP BY region")
        assert len(result.relation) == 2
        for value in result.relation.column("avg"):
            assert 0.0 <= float(value) <= 1.0

    def test_non_grouped_select_item_raises(self, db):
        with pytest.raises(UnsupportedQueryError, match="neither aggregated"):
            run(db, "SELECT id, COUNT(*) FROM users GROUP BY region")

    def test_group_by_without_aggregate_raises(self, db):
        with pytest.raises(UnsupportedQueryError):
            run(db, "SELECT region FROM users GROUP BY region")

    def test_arithmetic_in_predicate(self, db):
        result = run(db, "SELECT COUNT(*) FROM logins WHERE n / 3 >= 5")
        assert result.scalar("count") == 5.0

    def test_power_function(self, db):
        result = run(db, "SELECT COUNT(*) FROM logins WHERE POWER(n, 2) > 100")
        expected = float(np.sum((np.arange(10) * 3) ** 2 > 100))
        assert result.scalar("count") == expected

    def test_negative_literal(self, db):
        result = run(db, "SELECT COUNT(*) FROM logins WHERE n > -1")
        assert result.scalar("count") == 10.0

    def test_debug_mode_sql(self, db):
        result = run(db, "SELECT COUNT(*) FROM users WHERE predict(*) = 1", debug=True)
        poly = result.cell_polynomial(0, "count")
        assert poly.evaluate(result.assignment()) == result.scalar("count")
