"""Unit + property tests for provenance polynomials."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProvenanceError
from repro.relational import provenance as prov


class TestConstructors:
    def test_and_constant_folding(self):
        a = prov.PredIs(0, 1)
        assert prov.and_(prov.TRUE, a) is a
        assert prov.and_(prov.FALSE, a).is_false()
        assert prov.and_().is_true()

    def test_or_constant_folding(self):
        a = prov.PredIs(0, 1)
        assert prov.or_(prov.FALSE, a) is a
        assert prov.or_(prov.TRUE, a).is_true()
        assert prov.or_().is_false()

    def test_not_folding(self):
        assert prov.not_(prov.TRUE).is_false()
        assert prov.not_(prov.FALSE).is_true()
        a = prov.PredIs(0, 1)
        assert prov.not_(prov.not_(a)) is a

    def test_and_flattens_nested(self):
        a, b, c = (prov.PredIs(i, 1) for i in range(3))
        nested = prov.and_(prov.and_(a, b), c)
        assert isinstance(nested, prov.AndExpr)
        assert len(nested.children) == 3

    def test_or_flattens_nested(self):
        a, b, c = (prov.PredIs(i, 1) for i in range(3))
        nested = prov.or_(a, prov.or_(b, c))
        assert isinstance(nested, prov.OrExpr)
        assert len(nested.children) == 3

    def test_const(self):
        assert prov.const(True).is_true()
        assert prov.const(False).is_false()


class TestEvaluation:
    def test_atom_evaluation(self):
        atom = prov.PredIs(3, "spam")
        assert atom.evaluate({3: "spam"})
        assert not atom.evaluate({3: "ham"})

    def test_atom_missing_site_raises(self):
        with pytest.raises(ProvenanceError, match="missing"):
            prov.PredIs(3, "spam").evaluate({})

    def test_compound_evaluation(self):
        a, b = prov.PredIs(0, 1), prov.PredIs(1, 0)
        expr = prov.or_(prov.and_(a, b), prov.not_(a))
        assert expr.evaluate({0: 1, 1: 0})
        assert expr.evaluate({0: 0, 1: 1})
        assert not expr.evaluate({0: 1, 1: 1})

    def test_atoms_collection(self):
        a, b = prov.PredIs(0, 1), prov.PredIs(1, 0)
        expr = prov.and_(a, prov.not_(prov.or_(a, b)))
        assert expr.atoms() == {a, b}

    def test_atom_equality_and_hash(self):
        assert prov.PredIs(0, 1) == prov.PredIs(0, 1)
        assert prov.PredIs(0, 1) != prov.PredIs(0, 2)
        assert len({prov.PredIs(0, 1), prov.PredIs(0, 1)}) == 1


class TestNumeric:
    def test_linear_sum(self):
        terms = [(2.0, prov.PredIs(0, 1)), (3.0, prov.TRUE), (5.0, prov.PredIs(1, 1))]
        poly = prov.LinearSum(terms)
        assert poly.evaluate({0: 1, 1: 0}) == 5.0
        assert poly.evaluate({0: 1, 1: 1}) == 10.0
        assert poly.constant_part() == 3.0

    def test_add_mul_constants_fold(self):
        expr = prov.add_(prov.ConstNum(2), prov.ConstNum(3))
        assert isinstance(expr, prov.ConstNum)
        assert expr.value == 5.0
        expr = prov.mul_(prov.ConstNum(2), prov.ConstNum(3))
        assert isinstance(expr, prov.ConstNum)
        assert expr.value == 6.0

    def test_mul_zero_annihilates(self):
        poly = prov.LinearSum([(1.0, prov.PredIs(0, 1))])
        expr = prov.mul_(prov.ConstNum(0.0), poly)
        assert isinstance(expr, prov.ConstNum)
        assert expr.value == 0.0

    def test_div(self):
        num = prov.LinearSum([(1.0, prov.PredIs(0, 1)), (1.0, prov.PredIs(1, 1))])
        den = prov.ConstNum(2.0)
        expr = prov.DivExpr(num, den)
        assert expr.evaluate({0: 1, 1: 1}) == 1.0
        assert expr.evaluate({0: 0, 1: 1}) == 0.5

    def test_div_by_zero_is_nan(self):
        expr = prov.DivExpr(prov.ConstNum(1.0), prov.ConstNum(0.0))
        assert np.isnan(expr.evaluate({}))

    def test_bool_as_num(self):
        expr = prov.BoolAsNum(prov.PredIs(0, 1))
        assert expr.evaluate({0: 1}) == 1.0
        assert expr.evaluate({0: 0}) == 0.0

    def test_pred_value(self):
        expr = prov.pred_value(0, [(0, 0.0), (1, 1.0), (2, 2.0)])
        assert expr.evaluate({0: 2}) == 2.0
        assert expr.evaluate({0: 0}) == 0.0

    def test_numeric_atoms(self):
        poly = prov.DivExpr(
            prov.LinearSum([(1.0, prov.PredIs(0, 1))]),
            prov.add_(prov.ConstNum(1), prov.BoolAsNum(prov.PredIs(1, 2))),
        )
        assert {a.site_id for a in poly.atoms()} == {0, 1}


class TestSiteRegistry:
    def test_intern_dedupes(self):
        registry = prov.SiteRegistry()
        a = registry.intern("m", "R", 5)
        b = registry.intern("m", "R", 5)
        assert a is b
        assert len(registry) == 1

    def test_distinct_keys_distinct_sites(self):
        registry = prov.SiteRegistry()
        a = registry.intern("m", "R", 5)
        b = registry.intern("m", "S", 5)
        c = registry.intern("m2", "R", 5)
        assert len({a.site_id, b.site_id, c.site_id}) == 3

    def test_indexing(self):
        registry = prov.SiteRegistry()
        site = registry.intern("m", "R", 0)
        assert registry[site.site_id] is site
        assert registry.sites == [site]


# -- property tests -----------------------------------------------------------


@st.composite
def bool_exprs(draw, max_sites=4, depth=3):
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return prov.TRUE
        if choice == 1:
            return prov.FALSE
        return prov.PredIs(draw(st.integers(0, max_sites - 1)), draw(st.integers(0, 1)))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return prov.not_(draw(bool_exprs(max_sites=max_sites, depth=depth - 1)))
    if kind <= 2:
        children = draw(
            st.lists(bool_exprs(max_sites=max_sites, depth=depth - 1), min_size=1, max_size=3)
        )
        return prov.and_(*children) if kind == 1 else prov.or_(*children)
    return prov.PredIs(draw(st.integers(0, max_sites - 1)), draw(st.integers(0, 1)))


@given(expr=bool_exprs(), data=st.data())
@settings(max_examples=80, deadline=None)
def test_constructed_exprs_evaluate_boolean(expr, data):
    assignment = {site: data.draw(st.integers(0, 1)) for site in range(4)}
    value = expr.evaluate(assignment)
    assert isinstance(value, bool)


@given(expr=bool_exprs(), data=st.data())
@settings(max_examples=80, deadline=None)
def test_de_morgan(expr, data):
    """not(expr) must always evaluate opposite to expr."""
    assignment = {site: data.draw(st.integers(0, 1)) for site in range(4)}
    assert prov.not_(expr).evaluate(assignment) == (not expr.evaluate(assignment))


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_linear_sum_matches_manual(data):
    n_terms = data.draw(st.integers(1, 6))
    terms = []
    for i in range(n_terms):
        coeff = data.draw(st.floats(-5, 5, allow_nan=False))
        terms.append((coeff, prov.PredIs(i, 1)))
    assignment = {i: data.draw(st.integers(0, 1)) for i in range(n_terms)}
    poly = prov.LinearSum(terms)
    manual = sum(coeff for (coeff, atom) in terms if assignment[atom.site_id] == 1)
    assert poly.evaluate(assignment) == pytest.approx(manual)
