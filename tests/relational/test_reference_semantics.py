"""Property test: the executor agrees with a naive reference engine.

Random small SPJA queries are evaluated both by the real executor and by a
deliberately simple row-at-a-time reference implementation.  Any semantic
drift in filters, joins, or aggregation shows up here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    Aggregate,
    AggSpec,
    BoolAnd,
    BoolOr,
    Cmp,
    Col,
    Const,
    Database,
    Executor,
    Filter,
    Join,
    Relation,
    Scan,
)

COLUMNS = ("a", "b", "c")
OPS = ("=", "!=", "<", "<=", ">", ">=")


def make_db(seed: int, n_rows: int) -> Database:
    rng = np.random.default_rng(seed)
    db = Database()
    db.add_relation(
        Relation(
            "R",
            {
                "a": rng.integers(0, 4, size=n_rows),
                "b": rng.integers(0, 4, size=n_rows),
                "c": rng.integers(0, 4, size=n_rows),
            },
        )
    )
    db.add_relation(
        Relation(
            "S",
            {
                "a": rng.integers(0, 4, size=n_rows),
                "d": rng.integers(0, 4, size=n_rows),
            },
        )
    )
    return db


@st.composite
def predicates(draw, columns=COLUMNS, depth=2):
    if depth == 0 or draw(st.booleans()):
        column = draw(st.sampled_from(columns))
        op = draw(st.sampled_from(OPS))
        value = draw(st.integers(0, 4))
        return Cmp(op, Col(column), Const(value))
    kind = draw(st.sampled_from(["and", "or"]))
    children = [
        draw(predicates(columns=columns, depth=depth - 1)) for _ in range(2)
    ]
    return BoolAnd(children) if kind == "and" else BoolOr(children)


def reference_filter(rows, predicate):
    def eval_pred(pred, row):
        if isinstance(pred, Cmp):
            left = row[pred.left.name]
            right = pred.right.value
            return {
                "=": left == right, "!=": left != right,
                "<": left < right, "<=": left <= right,
                ">": left > right, ">=": left >= right,
            }[pred.op]
        if isinstance(pred, BoolAnd):
            return all(eval_pred(child, row) for child in pred.children())
        if isinstance(pred, BoolOr):
            return any(eval_pred(child, row) for child in pred.children())
        raise AssertionError(type(pred))

    return [row for row in rows if eval_pred(predicate, row)]


@given(seed=st.integers(0, 10_000), data=st.data())
@settings(max_examples=40, deadline=None)
def test_filter_matches_reference(seed, data):
    db = make_db(seed, n_rows=12)
    predicate = data.draw(predicates())
    result = Executor(db).execute(Filter(Scan("R", "R"), predicate))
    rows = db.relation("R").to_dicts()
    expected = reference_filter(rows, predicate)
    assert len(result.relation) == len(expected)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_equi_join_matches_reference(seed):
    db = make_db(seed, n_rows=10)
    plan = Join(Scan("R", "R"), Scan("S", "S"), Cmp("=", Col("R.a"), Col("S.a")))
    result = Executor(db).execute(plan)
    r_rows = db.relation("R").to_dicts()
    s_rows = db.relation("S").to_dicts()
    expected = sum(1 for r in r_rows for s in s_rows if r["a"] == s["a"])
    assert len(result.relation) == expected


@given(seed=st.integers(0, 10_000), data=st.data())
@settings(max_examples=30, deadline=None)
def test_group_by_aggregates_match_reference(seed, data):
    db = make_db(seed, n_rows=15)
    key = data.draw(st.sampled_from(COLUMNS))
    value = data.draw(st.sampled_from(COLUMNS))
    plan = Aggregate(
        Scan("R", "R"),
        [(Col(key), key)],
        [
            AggSpec("count", None, "count"),
            AggSpec("sum", Col(value), "total"),
            AggSpec("avg", Col(value), "mean"),
        ],
    )
    result = Executor(db).execute(plan)
    rows = db.relation("R").to_dicts()
    groups: dict[int, list[int]] = {}
    for row in rows:
        groups.setdefault(row[key], []).append(row[value])
    assert len(result.relation) == len(groups)
    for out in result.relation.to_dicts():
        members = groups[out[key]]
        assert out["count"] == len(members)
        assert out["total"] == pytest.approx(sum(members))
        assert out["mean"] == pytest.approx(np.mean(members))


@given(seed=st.integers(0, 10_000), data=st.data())
@settings(max_examples=20, deadline=None)
def test_debug_mode_agrees_with_plain_mode(seed, data):
    db = make_db(seed, n_rows=12)
    predicate = data.draw(predicates())
    plan = Filter(Scan("R", "R"), predicate)
    plain = Executor(db).execute(plan, debug=False)
    debug = Executor(db).execute(plan, debug=True)
    assert len(plain.relation) == len(debug.relation)
