"""Expression-level unit tests (eval + symbolic provenance)."""

import numpy as np
import pytest

from repro.errors import QueryError, UnsupportedQueryError
from repro.relational import provenance as prov
from repro.relational.context import QueryRuntime, TupleBatch
from repro.relational.expressions import (
    Arith,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Col,
    Const,
    Like,
    ModelPredict,
    predict,
)


@pytest.fixture()
def batch(simple_db):
    relation = simple_db.relation("R")
    return TupleBatch.from_relation(relation, "R", debug=True)


@pytest.fixture()
def runtime(simple_db):
    return QueryRuntime(simple_db, debug=True)


class TestScalarExprs:
    def test_col_eval(self, batch, runtime):
        values = Col("id").eval(batch, runtime)
        np.testing.assert_array_equal(values, np.arange(25))

    def test_col_qualified(self, batch, runtime):
        np.testing.assert_array_equal(
            Col("R.id").eval(batch, runtime), np.arange(25)
        )

    def test_unknown_col_raises(self, batch, runtime):
        with pytest.raises(QueryError, match="unknown column"):
            Col("ghost").eval(batch, runtime)

    def test_const_broadcast(self, batch, runtime):
        values = Const(7).eval(batch, runtime)
        assert values.shape == (25,)
        assert np.all(values == 7)

    def test_arith_ops(self, batch, runtime):
        for op, expected in (("+", 3), ("-", -1), ("*", 2), ("/", 0.5), ("**", 1)):
            value = Arith(op, Const(1), Const(2)).eval(batch, runtime)[0]
            assert value == pytest.approx(expected)

    def test_arith_bad_op(self):
        with pytest.raises(QueryError):
            Arith("%", Const(1), Const(2))

    def test_referenced_columns(self):
        expr = BoolAnd([Cmp("=", Col("a"), Const(1)), Cmp("<", Col("b"), Col("c"))])
        assert expr.referenced_columns() == {"a", "b", "c"}


class TestBooleanExprs:
    def test_and_or_not_eval(self, batch, runtime):
        flag_is_1 = Cmp("=", Col("flag"), Const(1))
        id_small = Cmp("<", Col("id"), Const(10))
        both = BoolAnd([flag_is_1, id_small]).eval(batch, runtime)
        either = BoolOr([flag_is_1, id_small]).eval(batch, runtime)
        neither = BoolNot(BoolOr([flag_is_1, id_small])).eval(batch, runtime)
        assert both.sum() == 5  # even ids below 10
        assert either.sum() == 13 + 10 - 5
        assert neither.sum() == 25 - either.sum()

    def test_empty_bool_op_raises(self):
        with pytest.raises(QueryError):
            BoolAnd([])
        with pytest.raises(QueryError):
            BoolOr([])

    def test_deterministic_symbolic_folds(self, batch, runtime):
        conditions = Cmp("=", Col("flag"), Const(1)).symbolic_bool(batch, runtime)
        assert all(c.is_true() or c.is_false() for c in conditions)
        assert sum(c.is_true() for c in conditions) == 13


class TestLike:
    def make_text_batch(self):
        texts = np.asarray(["hello http world", "deal me in", "plain"], dtype=object)
        return TupleBatch(
            {"T.text": texts}, {"T": "T"}, {"T": np.arange(3)}, [prov.TRUE] * 3
        )

    def test_contains(self, runtime):
        batch = self.make_text_batch()
        np.testing.assert_array_equal(
            Like(Col("text"), "%http%").eval(batch, runtime), [True, False, False]
        )

    def test_prefix_suffix_exact(self, runtime):
        batch = self.make_text_batch()
        np.testing.assert_array_equal(
            Like(Col("text"), "deal%").eval(batch, runtime), [False, True, False]
        )
        np.testing.assert_array_equal(
            Like(Col("text"), "%plain").eval(batch, runtime), [False, False, True]
        )
        np.testing.assert_array_equal(
            Like(Col("text"), "plain").eval(batch, runtime), [False, False, True]
        )

    def test_interior_wildcard_unsupported(self, runtime):
        batch = self.make_text_batch()
        with pytest.raises(UnsupportedQueryError):
            Like(Col("text"), "%a%b%").eval(batch, runtime)


class TestModelPredict:
    def test_predictions_cached_per_row(self, batch, runtime, simple_db):
        expr = predict("m", "features")
        first = expr.eval(batch, runtime)
        second = expr.eval(batch, runtime)
        np.testing.assert_array_equal(first, second)
        model = simple_db.model("m")
        expected = model.predict(simple_db.relation("R").column("features"))
        np.testing.assert_array_equal(first, np.asarray(expected))

    def test_site_interning_stable(self, batch, runtime):
        expr = predict("m", "features")
        sites_a = expr.site_ids(batch, runtime)
        sites_b = expr.site_ids(batch, runtime)
        assert sites_a == sites_b
        assert len(runtime.sites) == 25

    def test_site_features_recorded(self, batch, runtime):
        expr = predict("m", "features")
        site_ids = expr.site_ids(batch, runtime)
        features = runtime.features_for_sites(site_ids[:3])
        assert features.shape == (3, 4)

    def test_predict_vs_const_symbolic(self, batch, runtime):
        expr = Cmp("=", predict("m", "features"), Const(1))
        conditions = expr.symbolic_bool(batch, runtime)
        assert all(isinstance(c, prov.PredIs) for c in conditions)
        assert all(c.label == 1 for c in conditions)

    def test_predict_not_equal_symbolic(self, batch, runtime):
        expr = Cmp("!=", predict("m", "features"), Const(1))
        conditions = expr.symbolic_bool(batch, runtime)
        # With two classes, != 1 is exactly the class-0 atom.
        assert all(isinstance(c, prov.PredIs) and c.label == 0 for c in conditions)

    def test_flipped_comparison(self, batch, runtime):
        left = Cmp("=", Const(1), predict("m", "features")).symbolic_bool(batch, runtime)
        right = Cmp("=", predict("m", "features"), Const(1)).symbolic_bool(batch, runtime)
        assert repr(left) == repr(right)

    def test_predict_as_number_symbolic(self, batch, runtime):
        values = predict("m", "features").symbolic_num(batch, runtime)
        assignment = runtime.current_assignment()
        concrete = predict("m", "features").eval(batch, runtime)
        for value, expected in zip(values, concrete):
            assert value.evaluate(assignment) == pytest.approx(float(expected))

    def test_arith_over_predict_symbolic(self, batch, runtime):
        expr = Arith("*", Const(10), predict("m", "features"))
        values = expr.symbolic_num(batch, runtime)
        assignment = runtime.current_assignment()
        concrete = expr.eval(batch, runtime)
        for value, expected in zip(values, concrete):
            assert value.evaluate(assignment) == pytest.approx(float(expected))

    def test_unsupported_cmp_over_arith_predict(self, batch, runtime):
        expr = Cmp(">", Arith("+", predict("m", "features"), Const(1)), Const(1))
        with pytest.raises(UnsupportedQueryError):
            expr.symbolic_bool(batch, runtime)

    def test_predict_requires_column_ref(self):
        with pytest.raises(UnsupportedQueryError):
            ModelPredict("m", Const(1))
