"""Compiled provenance vs. the interpreted golden reference.

Randomized ``BoolExpr``/``NumExpr`` DAGs are lowered into a
:class:`~repro.relational.compile.NodePool` and evaluated three ways —
discrete assignments, relaxed values, relaxed gradients — against the
tree implementations, with agreement required to 1e-9.
"""

import numpy as np
import pytest

from repro.errors import ProvenanceError, RelaxationError
from repro.relational import provenance as prov
from repro.relational.compile import (
    FALSE_NODE,
    TRUE_NODE,
    CompiledProvenance,
    NodePool,
)
from repro.relaxation import Relaxer

N_SITES = 8
CLASS_COLUMNS = {0: 0, 1: 1}


def random_bool(rng, depth):
    draw = rng.random()
    if depth == 0 or draw < 0.25:
        return prov.PredIs(int(rng.integers(N_SITES)), int(rng.integers(2)))
    if draw < 0.35:
        return prov.const(bool(rng.integers(2)))
    if draw < 0.5:
        return prov.not_(random_bool(rng, depth - 1))
    children = [random_bool(rng, depth - 1) for _ in range(int(rng.integers(2, 4)))]
    return prov.and_(*children) if draw < 0.8 else prov.or_(*children)


def random_num(rng, depth):
    draw = rng.random()
    if depth == 0 or draw < 0.25:
        return prov.LinearSum(
            [
                (float(rng.normal()), random_bool(rng, 1))
                for _ in range(int(rng.integers(1, 4)))
            ]
        )
    if draw < 0.4:
        return prov.add_(random_num(rng, depth - 1), random_num(rng, depth - 1))
    if draw < 0.6:
        return prov.mul_(
            prov.BoolAsNum(random_bool(rng, depth - 1)), random_num(rng, depth - 1)
        )
    if draw < 0.75:
        # Denominator bounded away from zero so the relaxation is defined.
        return prov.DivExpr(
            random_num(rng, depth - 1),
            prov.LinearSum([(1.0, prov.TRUE), (1.0, random_bool(rng, 1))]),
        )
    return prov.ConstNum(float(rng.normal()))


def random_assignment(rng):
    return {site: int(rng.integers(2)) for site in range(N_SITES)}


def random_P(rng):
    return rng.uniform(0.05, 0.95, size=(N_SITES, 2))


class TestRandomizedEquivalence:
    def test_discrete_relaxed_and_gradient_match_reference(self):
        rng = np.random.default_rng(0)
        relaxer = Relaxer(CLASS_COLUMNS, 2)
        for _ in range(120):
            exprs = [random_bool(rng, 3) for _ in range(3)]
            exprs += [random_num(rng, 3) for _ in range(3)]
            pool = NodePool()
            roots = pool.add_exprs(exprs)
            program = CompiledProvenance(pool, roots)

            assignment = random_assignment(rng)
            expected = np.asarray(
                [expr.evaluate(assignment) for expr in exprs], dtype=float
            )
            np.testing.assert_allclose(
                program.evaluate(assignment), expected, atol=1e-9
            )

            P = random_P(rng)
            values, grads = [], []
            for expr in exprs:
                value, grad = relaxer.value_and_grad(expr, P)
                values.append(value)
                grads.append(grad)
            seed = rng.normal(size=len(exprs))
            got_values, got_grad = program.relaxed_values_and_pgrad(
                P, seed, CLASS_COLUMNS
            )
            np.testing.assert_allclose(got_values, np.asarray(values), atol=1e-9)
            expected_grad = sum(s * g for s, g in zip(seed, grads))
            np.testing.assert_allclose(got_grad, expected_grad, atol=1e-9)

    def test_materialization_round_trip(self):
        rng = np.random.default_rng(1)
        for _ in range(60):
            expr = random_num(rng, 3)
            pool = NodePool()
            root = pool.add_expr(expr)
            back = pool.to_expr(root)
            assignment = random_assignment(rng)
            want = float(expr.evaluate(assignment))
            got = float(back.evaluate(assignment))
            if np.isnan(want):
                assert np.isnan(got)
            else:
                assert got == pytest.approx(want, abs=1e-9)

    def test_materialized_trees_are_shared_objects(self):
        pool = NodePool()
        atom = pool.atom(0, 1)
        first = pool.to_expr(atom)
        second = pool.to_expr(atom)
        assert first is second


class TestBuilders:
    def test_and2_folds_constants(self):
        pool = NodePool()
        atoms = pool.atoms(np.array([0, 1, 2, 3]), pool.intern_labels(
            np.asarray([1, 1, 1, 1], dtype=object)
        ))
        a = np.asarray([TRUE_NODE, FALSE_NODE, atoms[2], atoms[3]])
        b = np.asarray([atoms[0], atoms[1], TRUE_NODE, FALSE_NODE])
        out = pool.and2(a, b)
        assert out[0] == atoms[0]
        assert out[1] == FALSE_NODE
        assert out[2] == atoms[2]
        assert out[3] == FALSE_NODE

    def test_or_segments_folding(self):
        pool = NodePool()
        atoms = pool.atoms(
            np.array([0, 1]), pool.intern_labels(np.asarray([0, 0], dtype=object))
        )
        #  seg0: [TRUE, atom]  -> TRUE;  seg1: [FALSE]    -> FALSE
        #  seg2: [atom, FALSE] -> atom;  seg3: []         -> FALSE
        #  seg4: [a0, a1]      -> OR node
        flat = np.asarray(
            [TRUE_NODE, atoms[0], FALSE_NODE, atoms[0], FALSE_NODE, atoms[0], atoms[1]]
        )
        offsets = np.asarray([0, 2, 3, 5, 5, 7])
        out = pool.or_segments(flat, offsets)
        assert out[0] == TRUE_NODE
        assert out[1] == FALSE_NODE
        assert out[2] == atoms[0]
        assert out[3] == FALSE_NODE
        tree = pool.to_expr(int(out[4]))
        assert isinstance(tree, prov.OrExpr)

    def test_not_folds_double_negation(self):
        pool = NodePool()
        atom = np.asarray([pool.atom(0, 1)])
        negated = pool.not_(atom)
        assert pool.not_(negated)[0] == atom[0]
        assert pool.not_(np.asarray([TRUE_NODE]))[0] == FALSE_NODE

    def test_atoms_deduplicate(self):
        pool = NodePool()
        labels = pool.intern_labels(np.asarray([1, 1, 0], dtype=object))
        first = pool.atoms(np.asarray([3, 3, 3]), labels)
        assert first[0] == first[1] != first[2]
        again = pool.atom(3, 1)
        assert again == first[0]

    def test_empty_add_segment_is_empty_linear_sum(self):
        pool = NodePool()
        out = pool.add_segments(
            np.empty(0), np.empty(0, dtype=np.int64), np.asarray([0, 0])
        )
        tree = pool.to_expr(int(out[0]))
        assert isinstance(tree, prov.LinearSum)
        assert tree.evaluate({}) == 0.0
        program = CompiledProvenance(pool, out)
        assert program.evaluate({})[0] == 0.0


class TestCompiledProgram:
    def test_missing_site_raises(self):
        pool = NodePool()
        root = pool.add_expr(prov.PredIs(2, 1))
        program = CompiledProvenance(pool, np.asarray([root]))
        with pytest.raises(ProvenanceError):
            program.evaluate({0: 1})

    def test_unknown_class_raises_on_relaxation(self):
        pool = NodePool()
        root = pool.add_expr(prov.PredIs(0, "mystery"))
        program = CompiledProvenance(pool, np.asarray([root]))
        with pytest.raises(RelaxationError):
            program.relaxed_values(np.ones((1, 2)), CLASS_COLUMNS)

    def test_zero_denominator_raises_relaxed_but_not_discrete(self):
        pool = NodePool()
        expr = prov.DivExpr(
            prov.ConstNum(1.0), prov.LinearSum([(1.0, prov.PredIs(0, 1))])
        )
        root = pool.add_expr(expr)
        program = CompiledProvenance(pool, np.asarray([root]))
        with pytest.raises(RelaxationError):
            program.relaxed_values(np.asarray([[1.0, 0.0]]), CLASS_COLUMNS)
        assert np.isnan(program.evaluate({0: 0})[0])

    def test_gradient_handles_zero_factors_exactly(self):
        # AND over factors where one is exactly zero: only the zero factor
        # receives the product of the others.
        pool = NodePool()
        expr = prov.and_(prov.PredIs(0, 1), prov.PredIs(1, 1), prov.PredIs(2, 1))
        root = pool.add_expr(expr)
        program = CompiledProvenance(pool, np.asarray([root]))
        P = np.asarray([[1.0, 0.0], [0.6, 0.4], [0.2, 0.8]])
        _, grad = program.relaxed_values_and_pgrad(P, np.asarray([1.0]), CLASS_COLUMNS)
        relaxer = Relaxer(CLASS_COLUMNS, 2)
        _, expected = relaxer.value_and_grad(expr, P)
        np.testing.assert_allclose(grad, expected, atol=1e-12)
