"""Utility helpers: RNG, validation, ranking, stopwatch."""

import numpy as np
import pytest

from repro.utils import (
    Stopwatch,
    argsort_desc,
    as_rng,
    batched,
    check_1d,
    check_2d,
    check_same_length,
    topk_indices,
)


class TestRng:
    def test_int_seed_deterministic(self):
        assert as_rng(5).integers(1000) == as_rng(5).integers(1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestValidation:
    def test_check_1d(self):
        out = check_1d([1, 2, 3], "x")
        assert out.shape == (3,)
        with pytest.raises(ValueError, match="1-dimensional"):
            check_1d(np.zeros((2, 2)), "x")

    def test_check_2d(self):
        assert check_2d(np.zeros((2, 3)), "x").shape == (2, 3)
        with pytest.raises(ValueError, match="2-dimensional"):
            check_2d(np.zeros(3), "x")

    def test_check_same_length(self):
        check_same_length([1, 2], [3, 4], "a/b")
        with pytest.raises(ValueError, match="equal length"):
            check_same_length([1], [2, 3], "a/b")


class TestRanking:
    def test_argsort_desc(self):
        np.testing.assert_array_equal(argsort_desc(np.asarray([1.0, 3.0, 2.0])), [1, 2, 0])

    def test_argsort_desc_stable_ties(self):
        np.testing.assert_array_equal(
            argsort_desc(np.asarray([2.0, 2.0, 1.0])), [0, 1, 2]
        )

    def test_topk(self):
        np.testing.assert_array_equal(
            topk_indices(np.asarray([5.0, 1.0, 9.0, 3.0]), 2), [2, 0]
        )

    def test_topk_validation(self):
        with pytest.raises(ValueError):
            topk_indices(np.zeros(3), -1)

    def test_topk_larger_than_array(self):
        assert len(topk_indices(np.zeros(3), 10)) == 3


class TestBatched:
    def test_even_batches(self):
        assert list(batched([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(batched([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(batched([1], 0))


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch.time("a"):
            pass
        with watch.time("a"):
            pass
        assert watch.counts["a"] == 2
        assert watch.totals["a"] >= 0
        assert watch.mean("a") >= 0

    def test_unknown_stop_raises(self):
        with pytest.raises(KeyError):
            Stopwatch().stop("ghost")

    def test_mean_of_unused_label(self):
        assert Stopwatch().mean("never") == 0.0

    def test_as_dict_copy(self):
        watch = Stopwatch()
        with watch.time("x"):
            pass
        snapshot = watch.as_dict()
        snapshot["x"] = -1
        assert watch.totals["x"] >= 0
