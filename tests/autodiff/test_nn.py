"""Layer and parameter-vector tests for the nn module."""

import numpy as np
import pytest

from repro.autodiff import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    Tensor,
)
from repro.ml.neural import make_cnn, make_mlp


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 3, rng=0)
        out = layer(Tensor(np.random.default_rng(0).normal(size=(5, 4))))
        assert out.shape == (5, 3)

    def test_parameters(self):
        layer = Dense(4, 3, rng=0)
        assert len(layer.parameters()) == 2
        assert layer.n_params() == 4 * 3 + 3

    def test_no_bias(self):
        layer = Dense(4, 3, rng=0, bias=False)
        assert layer.n_params() == 12


class TestSequentialFlat:
    def test_flat_roundtrip(self):
        net = make_mlp(6, [5], 3, rng=1)
        flat = net.get_flat()
        assert flat.shape == (net.n_params(),)
        net.set_flat(np.zeros_like(flat))
        assert np.all(net.get_flat() == 0)
        net.set_flat(flat)
        np.testing.assert_array_equal(net.get_flat(), flat)

    def test_set_flat_wrong_shape_raises(self):
        net = make_mlp(6, [5], 3, rng=1)
        with pytest.raises(ValueError, match="shape"):
            net.set_flat(np.zeros(3))

    def test_grad_flat_zeros_without_backward(self):
        net = make_mlp(4, [3], 2, rng=0)
        assert np.all(net.grad_flat() == 0)

    def test_forward_deterministic_given_seed(self):
        x = np.random.default_rng(3).normal(size=(4, 6))
        a = make_mlp(6, [5], 3, rng=42)(Tensor(x)).data
        b = make_mlp(6, [5], 3, rng=42)(Tensor(x)).data
        np.testing.assert_array_equal(a, b)


class TestCNN:
    def test_cnn_shapes(self):
        net = make_cnn(image_size=28, n_classes=10, channels=4, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 1, 28, 28)))
        out = net(x)
        assert out.shape == (3, 10)

    def test_cnn_param_count(self):
        net = make_cnn(image_size=28, n_classes=10, channels=4, kernel=5, pool=2, rng=0)
        conv_params = 4 * 1 * 5 * 5 + 4
        dense_in = 4 * 12 * 12
        dense_params = dense_in * 10 + 10
        assert net.n_params() == conv_params + dense_params

    def test_cnn_bad_geometry_raises(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError, match="divisible"):
            make_cnn(image_size=28, n_classes=10, kernel=4, pool=2, rng=0)

    def test_pool_flatten_pipeline(self):
        net = Sequential([Conv2D(1, 2, 3, rng=0), ReLU(), MaxPool2D(2), Flatten()])
        x = Tensor(np.random.default_rng(1).normal(size=(2, 1, 6, 6)))
        out = net(x)
        assert out.shape == (2, 2 * 2 * 2)
