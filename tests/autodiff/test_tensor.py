"""Autodiff correctness: every op's gradient vs. central finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import tensor as T


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn(x)
        flat[index] = original - eps
        minus = fn(x)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def check_grad(build, x0: np.ndarray, atol: float = 1e-6):
    """Compare autodiff gradient of scalar build(Tensor) to FD."""
    x = T.Tensor(x0.copy(), requires_grad=True)
    out = build(x)
    out.backward()
    auto = x.grad.copy()

    def value(arr):
        return build(T.Tensor(arr)).data.item()

    numeric = numeric_grad(value, x0.copy())
    np.testing.assert_allclose(auto, numeric, atol=atol, rtol=1e-4)


RNG = np.random.default_rng(0)


class TestElementwise:
    def test_add(self):
        check_grad(lambda x: (x + 2.0).sum(), RNG.normal(size=(3, 4)))

    def test_sub_rsub(self):
        check_grad(lambda x: (5.0 - x).sum(), RNG.normal(size=(3,)))

    def test_mul(self):
        check_grad(lambda x: (x * x).sum(), RNG.normal(size=(4,)))

    def test_div(self):
        check_grad(lambda x: (x / 3.0).sum(), RNG.normal(size=(4,)))
        check_grad(lambda x: (2.0 / x).sum(), RNG.uniform(1.0, 2.0, size=(4,)))

    def test_power(self):
        check_grad(lambda x: (x ** 3).sum(), RNG.uniform(0.5, 2.0, size=(4,)))

    def test_exp_log(self):
        check_grad(lambda x: T.exp(x).sum(), RNG.normal(size=(5,)))
        check_grad(lambda x: T.log(x).sum(), RNG.uniform(0.5, 3.0, size=(5,)))

    def test_sigmoid(self):
        check_grad(lambda x: T.sigmoid(x).sum(), RNG.normal(size=(6,)) * 3)

    def test_sigmoid_extreme_values_stable(self):
        out = T.sigmoid(T.Tensor(np.asarray([-800.0, 800.0])))
        assert np.all(np.isfinite(out.data))
        assert out.data[0] == pytest.approx(0.0)
        assert out.data[1] == pytest.approx(1.0)

    def test_tanh(self):
        check_grad(lambda x: T.tanh(x).sum(), RNG.normal(size=(5,)))

    def test_relu(self):
        x0 = RNG.normal(size=(8,))
        x0[np.abs(x0) < 0.1] = 0.5  # keep away from the kink
        check_grad(lambda x: T.relu(x).sum(), x0)

    def test_neg(self):
        check_grad(lambda x: (-x).sum(), RNG.normal(size=(3,)))


class TestBroadcasting:
    def test_broadcast_add_bias(self):
        bias0 = RNG.normal(size=(4,))
        matrix = T.Tensor(RNG.normal(size=(3, 4)))

        def build(b):
            return (matrix + b).sum()

        check_grad(build, bias0)

    def test_broadcast_scalar(self):
        check_grad(lambda x: (x * 2.0 + 1.0).sum(), RNG.normal(size=(2, 3)))

    def test_broadcast_row(self):
        row0 = RNG.normal(size=(1, 4))
        other = T.Tensor(RNG.normal(size=(5, 4)))
        check_grad(lambda r: (other * r).sum(), row0)


class TestLinAlg:
    def test_matmul_left(self):
        B = T.Tensor(RNG.normal(size=(4, 2)))
        check_grad(lambda A: (A @ B).sum(), RNG.normal(size=(3, 4)))

    def test_matmul_right(self):
        A = T.Tensor(RNG.normal(size=(3, 4)))
        check_grad(lambda B: T.matmul(A, B).sum(), RNG.normal(size=(4, 2)))

    def test_transpose(self):
        check_grad(lambda x: (x.T @ x).sum(), RNG.normal(size=(3, 2)))

    def test_reshape(self):
        check_grad(lambda x: T.reshape(x, (6,)).sum(), RNG.normal(size=(2, 3)))

    def test_sum_axis(self):
        check_grad(lambda x: (T.sum_(x, axis=0) ** 2).sum(), RNG.normal(size=(3, 4)))

    def test_sum_keepdims(self):
        check_grad(
            lambda x: (x / T.sum_(x, axis=1, keepdims=True)).sum(),
            RNG.uniform(1.0, 2.0, size=(3, 4)),
        )

    def test_mean(self):
        check_grad(lambda x: T.mean(x) * 3.0, RNG.normal(size=(4, 2)))

    def test_take_rows(self):
        indices = np.asarray([0, 2, 2, 1])
        check_grad(lambda x: (T.take_rows(x, indices) ** 2).sum(), RNG.normal(size=(3, 2)))

    def test_pick(self):
        cols = np.asarray([0, 2, 1])
        check_grad(lambda x: T.pick(x, cols).sum(), RNG.normal(size=(3, 3)))

    def test_concat_rows(self):
        other = T.Tensor(RNG.normal(size=(2, 3)))

        def build(x):
            return (T.concat_rows([x, other]) ** 2).sum()

        check_grad(build, RNG.normal(size=(3, 3)))


class TestSoftmax:
    def test_log_softmax_grad(self):
        check_grad(lambda x: T.log_softmax(x).sum(), RNG.normal(size=(4, 3)))

    def test_log_softmax_rows_normalize(self):
        x = T.Tensor(RNG.normal(size=(5, 4)) * 10)
        probs = np.exp(T.log_softmax(x).data)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-12)

    def test_log_softmax_stable_large_logits(self):
        x = T.Tensor(np.asarray([[1000.0, 1001.0, 999.0]]))
        out = T.log_softmax(x)
        assert np.all(np.isfinite(out.data))

    def test_softmax_picked_loss(self):
        labels = np.asarray([0, 2, 1])

        def build(x):
            return -T.pick(T.log_softmax(x), labels).sum()

        check_grad(build, RNG.normal(size=(3, 3)))


class TestConvPool:
    def test_conv2d_weight_grad(self):
        x = T.Tensor(RNG.normal(size=(2, 1, 6, 6)))

        def build(w):
            return (T.conv2d(x, w) ** 2).sum()

        check_grad(build, RNG.normal(size=(2, 1, 3, 3)), atol=1e-5)

    def test_conv2d_input_grad(self):
        w = T.Tensor(RNG.normal(size=(2, 1, 3, 3)))

        def build(x):
            return (T.conv2d(x, w) ** 2).sum()

        check_grad(build, RNG.normal(size=(1, 1, 5, 5)), atol=1e-5)

    def test_conv2d_bias_grad(self):
        x = T.Tensor(RNG.normal(size=(2, 1, 4, 4)))
        w = T.Tensor(RNG.normal(size=(3, 1, 3, 3)))

        def build(b):
            return T.conv2d(x, w, b).sum()

        check_grad(build, RNG.normal(size=(3,)))

    def test_conv2d_matches_manual(self):
        x = np.zeros((1, 1, 3, 3))
        x[0, 0, 1, 1] = 1.0
        w = np.arange(9.0).reshape(1, 1, 3, 3)
        out = T.conv2d(T.Tensor(x), T.Tensor(w))
        assert out.data.shape == (1, 1, 1, 1)
        assert out.data[0, 0, 0, 0] == 4.0  # center weight

    def test_maxpool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = T.maxpool2d(T.Tensor(x), 2)
        np.testing.assert_array_equal(out.data[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_grad(self):
        x0 = RNG.normal(size=(1, 2, 4, 4))
        # Perturb ties away.
        x0 += np.arange(x0.size).reshape(x0.shape) * 1e-3
        check_grad(lambda x: (T.maxpool2d(x, 2) ** 2).sum(), x0, atol=1e-5)

    def test_maxpool_indivisible_raises(self):
        with pytest.raises(ValueError, match="divisible"):
            T.maxpool2d(T.Tensor(np.zeros((1, 1, 5, 5))), 2)


class TestBackwardMechanics:
    def test_grad_accumulates_over_shared_nodes(self):
        x = T.Tensor(np.asarray([2.0]), requires_grad=True)
        y = x * x + x * 3.0  # dy/dx = 2x + 3 = 7
        y.backward(np.ones(1))
        assert x.grad[0] == pytest.approx(7.0)

    def test_backward_requires_scalar_without_grad(self):
        x = T.Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (x * 2).backward()

    def test_no_grad_propagation_when_not_required(self):
        x = T.Tensor(np.ones(3))
        out = (x * 2.0).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        x = T.Tensor(np.ones(3), requires_grad=True)
        (x.sum()).backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        x = T.Tensor(np.asarray([1.5]), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        out = (a * b).sum()  # 6x^2 → d/dx = 12x = 18
        out.backward()
        assert x.grad[0] == pytest.approx(18.0)


@given(st.integers(1, 4), st.integers(1, 4), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_matmul_chain_gradient_property(rows, inner, seed):
    rng = np.random.default_rng(seed)
    A0 = rng.normal(size=(rows, inner))
    B = T.Tensor(rng.normal(size=(inner, 2)))

    def build(A):
        return (T.matmul(A, B) ** 2).sum()

    check_grad(build, A0, atol=1e-5)
