"""CLI runner tests."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "table3", "thm_a1"):
            assert name in out

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_every_experiment_registered(self):
        assert len(EXPERIMENTS) == 19
        assert "async" in EXPERIMENTS

    def test_run_fast_experiment(self, capsys, tmp_path):
        assert main(["run", "thm_c1", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "thm_c1_value_of_complaints" in out
        assert (tmp_path / "thm_c1_value_of_complaints.txt").exists()
