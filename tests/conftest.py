"""Shared fixtures: small fitted models, databases, the determinism harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import LogisticRegression, SoftmaxRegression
from repro.relational import Database, Relation

# Execution variants the determinism harness pins against the serial loop:
# (label, n_workers, async_pipeline).  Serial (0, False) is the golden
# reference and always runs first.
DETERMINISM_VARIANTS = (
    ("sharded@2w", 2, False),
    ("async@0w", 0, True),
    ("async@2w", 2, True),
    ("async@4w", 4, True),
)


class DeterminismHarness:
    """Run one Rain workload across execution variants, pin bit-equality.

    The contract under test: neither the worker count nor the async
    pipeline may change *anything* observable — the removal order, the
    per-iteration removal sets, the complaint-satisfied flags, the stop
    reason, or the final fitted parameters.  The harness snapshots the
    model's parameters at construction and restores them before every
    run, so the variants are exact replays of one initial state.
    """

    variants = DETERMINISM_VARIANTS

    def __init__(
        self,
        database,
        model_name,
        X_train,
        y_train,
        cases,
        method="holistic",
        ranker_kwargs=None,
        rng=0,
        max_removals=20,
        k_per_iteration=10,
        **debugger_kwargs,
    ):
        self.database = database
        self.model_name = model_name
        self.X_train = X_train
        self.y_train = y_train
        self.cases = list(cases)
        self.method = method
        self.ranker_kwargs = dict(ranker_kwargs or {})
        self.rng = rng
        self.max_removals = max_removals
        self.k_per_iteration = k_per_iteration
        self.debugger_kwargs = dict(debugger_kwargs)
        self._initial_params = database.model(model_name).get_params()

    def run(self, n_workers=0, async_pipeline=False):
        """One replay; returns (report, final fitted parameters)."""
        from repro.core import RainDebugger

        model = self.database.model(self.model_name)
        model.set_params(self._initial_params)
        debugger = RainDebugger(
            self.database,
            self.model_name,
            self.X_train,
            self.y_train,
            self.cases,
            method=self.method,
            rng=self.rng,
            ranker_kwargs=self.ranker_kwargs,
            n_workers=n_workers,
            async_pipeline=async_pipeline,
            **self.debugger_kwargs,
        )
        report = debugger.run(
            max_removals=self.max_removals,
            k_per_iteration=self.k_per_iteration,
        )
        return report, model.get_params()

    def check(self, variants=None):
        """Assert every variant replays the serial run; returns the golden."""
        golden, golden_params = self.run(0, False)
        for label, n_workers, async_pipeline in variants or self.variants:
            report, params = self.run(n_workers, async_pipeline)
            assert report.removal_order == golden.removal_order, label
            assert [record.removed for record in report.iterations] == [
                record.removed for record in golden.iterations
            ], label
            assert [
                record.complaints_satisfied for record in report.iterations
            ] == [
                record.complaints_satisfied for record in golden.iterations
            ], label
            assert report.stopped_reason == golden.stopped_reason, label
            assert np.array_equal(params, golden_params), label
        self.database.model(self.model_name).set_params(self._initial_params)
        return golden


@pytest.fixture()
def determinism_harness():
    """Factory fixture: build a :class:`DeterminismHarness` for a workload."""
    return DeterminismHarness


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture()
def binary_problem():
    """A small, linearly separable-ish binary classification problem."""
    rng = np.random.default_rng(7)
    n, d = 60, 4
    X = rng.normal(size=(n, d))
    w = np.asarray([1.5, -2.0, 0.5, 0.0])
    y = (X @ w + 0.2 * rng.normal(size=n) > 0).astype(int)
    return X, y


@pytest.fixture()
def fitted_binary_model(binary_problem):
    X, y = binary_problem
    model = LogisticRegression((0, 1), n_features=X.shape[1], l2=1e-2)
    model.fit(X, y, warm_start=False)
    return model


@pytest.fixture()
def multiclass_problem():
    rng = np.random.default_rng(11)
    n, d, k = 90, 5, 3
    centers = rng.normal(scale=2.0, size=(k, d))
    y = rng.integers(k, size=n)
    X = centers[y] + rng.normal(scale=0.7, size=(n, d))
    return X, y


@pytest.fixture()
def fitted_multiclass_model(multiclass_problem):
    X, y = multiclass_problem
    model = SoftmaxRegression((0, 1, 2), n_features=X.shape[1], l2=1e-2)
    model.fit(X, y, warm_start=False)
    return model


@pytest.fixture()
def simple_db(fitted_binary_model):
    """Database with one relation of queried features + the binary model."""
    rng = np.random.default_rng(3)
    X_query = rng.normal(size=(25, 4))
    db = Database()
    db.add_relation(
        Relation(
            "R",
            {
                "features": X_query,
                "id": np.arange(25),
                "flag": (np.arange(25) % 2 == 0).astype(int),
            },
        )
    )
    db.add_model("m", fitted_binary_model)
    return db
