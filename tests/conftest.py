"""Shared fixtures: small fitted models and databases used across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import LogisticRegression, SoftmaxRegression
from repro.relational import Database, Relation


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture()
def binary_problem():
    """A small, linearly separable-ish binary classification problem."""
    rng = np.random.default_rng(7)
    n, d = 60, 4
    X = rng.normal(size=(n, d))
    w = np.asarray([1.5, -2.0, 0.5, 0.0])
    y = (X @ w + 0.2 * rng.normal(size=n) > 0).astype(int)
    return X, y


@pytest.fixture()
def fitted_binary_model(binary_problem):
    X, y = binary_problem
    model = LogisticRegression((0, 1), n_features=X.shape[1], l2=1e-2)
    model.fit(X, y, warm_start=False)
    return model


@pytest.fixture()
def multiclass_problem():
    rng = np.random.default_rng(11)
    n, d, k = 90, 5, 3
    centers = rng.normal(scale=2.0, size=(k, d))
    y = rng.integers(k, size=n)
    X = centers[y] + rng.normal(scale=0.7, size=(n, d))
    return X, y


@pytest.fixture()
def fitted_multiclass_model(multiclass_problem):
    X, y = multiclass_problem
    model = SoftmaxRegression((0, 1, 2), n_features=X.shape[1], l2=1e-2)
    model.fit(X, y, warm_start=False)
    return model


@pytest.fixture()
def simple_db(fitted_binary_model):
    """Database with one relation of queried features + the binary model."""
    rng = np.random.default_rng(3)
    X_query = rng.normal(size=(25, 4))
    db = Database()
    db.add_relation(
        Relation(
            "R",
            {
                "features": X_query,
                "id": np.arange(25),
                "flag": (np.arange(25) % 2 == 0).astype(int),
            },
        )
    )
    db.add_model("m", fitted_binary_model)
    return db
