"""Complaint model: validation, satisfaction checks, case bundling."""

import numpy as np
import pytest

from repro.complaints import (
    ComplaintCase,
    PredictionComplaint,
    TupleComplaint,
    ValueComplaint,
    all_satisfied,
    all_satisfied_columnar,
)
from repro.errors import ComplaintError
from repro.relational import Executor, plan_sql


@pytest.fixture()
def count_result(simple_db):
    plan = plan_sql("SELECT COUNT(*) FROM R WHERE predict(*) = 1", simple_db)
    return Executor(simple_db).execute(plan, debug=True)


@pytest.fixture()
def group_result(simple_db):
    plan = plan_sql("SELECT COUNT(*) FROM R GROUP BY predict(*)", simple_db)
    return Executor(simple_db).execute(plan, debug=True)


class TestValueComplaint:
    def test_requires_exactly_one_target(self):
        with pytest.raises(ComplaintError, match="exactly one"):
            ValueComplaint(column="count", op="=", value=1)
        with pytest.raises(ComplaintError, match="exactly one"):
            ValueComplaint(column="count", op="=", value=1, row_index=0, group_key=(1,))

    def test_bad_op(self):
        with pytest.raises(ComplaintError, match="op"):
            ValueComplaint(column="count", op="<", value=1, row_index=0)

    def test_current_value(self, count_result):
        complaint = ValueComplaint(column="count", op="=", value=0, row_index=0)
        assert complaint.current_value(count_result) == count_result.scalar("count")

    def test_equality_satisfaction(self, count_result):
        current = count_result.scalar("count")
        assert ValueComplaint(
            column="count", op="=", value=current, row_index=0
        ).is_satisfied(count_result)
        assert not ValueComplaint(
            column="count", op="=", value=current + 1, row_index=0
        ).is_satisfied(count_result)

    def test_inequality_satisfaction(self, count_result):
        current = count_result.scalar("count")
        assert ValueComplaint(
            column="count", op="<=", value=current + 1, row_index=0
        ).is_satisfied(count_result)
        assert not ValueComplaint(
            column="count", op=">=", value=current + 1, row_index=0
        ).is_satisfied(count_result)

    def test_group_key_targeting(self, group_result):
        complaint = ValueComplaint(column="count", op=">=", value=0, group_key=(1,))
        assert complaint.is_satisfied(group_result)

    def test_group_key_reaches_empty_groups(self, group_result):
        # Both classes have candidate groups even if one is empty right now.
        for label in (0, 1):
            poly = ValueComplaint(
                column="count", op="=", value=0, group_key=(label,)
            ).polynomial(group_result)
            assert poly is not None


class TestTupleComplaint:
    def test_requires_exactly_one_target(self):
        with pytest.raises(ComplaintError):
            TupleComplaint()
        with pytest.raises(ComplaintError):
            TupleComplaint(row_index=0, group_key=(1,))

    def test_unsatisfied_for_existing_tuple(self, simple_db):
        plan = plan_sql("SELECT * FROM R WHERE predict(*) = 1", simple_db)
        result = Executor(simple_db).execute(plan, debug=True)
        if len(result.relation) == 0:
            pytest.skip("no rows predicted 1")
        assert not TupleComplaint(row_index=0).is_satisfied(result)

    def test_group_tuple_complaint(self, group_result):
        existing_key = (int(group_result.relation.column("predict(*)")[0]),)
        complaint = TupleComplaint(group_key=existing_key)
        assert not complaint.is_satisfied(group_result)

    def test_missing_group_key_raises(self, group_result):
        with pytest.raises(ComplaintError, match="no group"):
            TupleComplaint(group_key=("nope",)).condition(group_result)


class TestPredictionComplaint:
    def test_site_resolution(self, count_result):
        site = count_result.runtime.sites[0]
        complaint = PredictionComplaint("R", site.row_id, 1)
        assert complaint.site_id(count_result) == site.site_id

    def test_missing_site_raises(self, count_result):
        with pytest.raises(ComplaintError, match="no inference site"):
            PredictionComplaint("ghost", 0, 1).site_id(count_result)

    def test_satisfaction_tracks_prediction(self, count_result):
        site = count_result.runtime.sites[0]
        current = count_result.runtime.prediction_for_site(site.key)
        assert PredictionComplaint("R", site.row_id, current).is_satisfied(count_result)
        assert not PredictionComplaint("R", site.row_id, 1 - int(current)).is_satisfied(
            count_result
        )


class TestComplaintCase:
    def test_empty_complaints_raise(self):
        with pytest.raises(ComplaintError, match="at least one"):
            ComplaintCase("SELECT 1", [])

    def test_all_satisfied(self, count_result):
        current = count_result.scalar("count")
        good = ComplaintCase(
            "q", [ValueComplaint(column="count", op="=", value=current, row_index=0)]
        )
        bad = ComplaintCase(
            "q", [ValueComplaint(column="count", op="=", value=current + 1, row_index=0)]
        )
        assert all_satisfied([(good, count_result)])
        assert not all_satisfied([(good, count_result), (bad, count_result)])


class TestColumnarSatisfied:
    """``all_satisfied_columnar`` agrees with the tree reference.

    The async pipeline's drain stage evaluates complaint satisfaction
    with one vectorized compiled forward per result instead of the tree
    walk; every complaint shape must produce the same flag.
    """

    def _agree(self, case_results) -> bool:
        tree = all_satisfied(case_results)
        assert all_satisfied_columnar(case_results) == tree
        return tree

    def test_value_complaints_all_ops(self, count_result):
        current = count_result.scalar("count")
        for op, value, expected in (
            ("=", current, True),
            ("=", current + 1, False),
            ("<=", current + 1, True),
            ("<=", current - 1, False),
            (">=", current - 1, True),
            (">=", current + 1, False),
        ):
            case = ComplaintCase(
                "q",
                [ValueComplaint(column="count", op=op, value=value, row_index=0)],
            )
            assert self._agree([(case, count_result)]) is expected

    def test_value_complaint_group_key(self, group_result):
        case = ComplaintCase(
            "q",
            [ValueComplaint(column="count", op=">=", value=0, group_key=(1,))],
        )
        assert self._agree([(case, group_result)]) is True

    def test_tuple_complaint_row_index(self, simple_db):
        plan = plan_sql("SELECT * FROM R WHERE predict(*) = 1", simple_db)
        result = Executor(simple_db).execute(plan, debug=True)
        if len(result.relation) == 0:
            pytest.skip("no rows predicted 1")
        case = ComplaintCase("q", [TupleComplaint(row_index=0)])
        assert self._agree([(case, result)]) is False

    def test_tuple_complaint_group_key(self, group_result):
        existing_key = (int(group_result.relation.column("predict(*)")[0]),)
        case = ComplaintCase("q", [TupleComplaint(group_key=existing_key)])
        assert self._agree([(case, group_result)]) is False

    def test_tuple_complaint_lineage(self, simple_db):
        plan = plan_sql("SELECT * FROM R WHERE predict(*) = 1", simple_db)
        result = Executor(simple_db).execute(plan, debug=True)
        batch = result.candidate_batch
        candidate_row = int(batch.alias_row_ids["R"][0])
        case = ComplaintCase(
            "q", [TupleComplaint.for_lineage(R=candidate_row)]
        )
        self._agree([(case, result)])

    def test_tuple_complaint_lineage_vacuous(self, simple_db):
        # flag = 1 deterministically filters odd rows before prediction:
        # a lineage complaint on a filtered row is vacuously satisfied in
        # both representations (tree: prov.FALSE; columnar: no node).
        plan = plan_sql(
            "SELECT * FROM R WHERE flag = 1 AND predict(*) = 1", simple_db
        )
        result = Executor(simple_db).execute(plan, debug=True)
        filtered_row = 1  # flag is 0 on odd ids
        assert filtered_row not in set(
            np.asarray(result.candidate_batch.alias_row_ids["R"]).tolist()
        )
        case = ComplaintCase("q", [TupleComplaint.for_lineage(R=filtered_row)])
        assert self._agree([(case, result)]) is True

    def test_prediction_complaint_falls_back(self, count_result):
        site = count_result.runtime.sites[0]
        current = count_result.runtime.prediction_for_site(site.key)
        good = ComplaintCase(
            "q", [PredictionComplaint("R", site.row_id, current)]
        )
        bad = ComplaintCase(
            "q", [PredictionComplaint("R", site.row_id, 1 - int(current))]
        )
        assert self._agree([(good, count_result)]) is True
        assert self._agree([(bad, count_result)]) is False

    def test_tree_results_fall_back(self, simple_db):
        plan = plan_sql("SELECT COUNT(*) FROM R WHERE predict(*) = 1", simple_db)
        result = Executor(simple_db).execute(
            plan, debug=True, provenance="tree"
        )
        current = result.scalar("count")
        case = ComplaintCase(
            "q",
            [ValueComplaint(column="count", op="=", value=current, row_index=0)],
        )
        assert self._agree([(case, result)]) is True

    def test_mixed_cases_over_multiple_results(self, count_result, group_result):
        current = count_result.scalar("count")
        cases = [
            (
                ComplaintCase(
                    "q",
                    [
                        ValueComplaint(
                            column="count", op="=", value=current, row_index=0
                        )
                    ],
                ),
                count_result,
            ),
            (
                ComplaintCase(
                    "q",
                    [
                        ValueComplaint(
                            column="count", op=">=", value=0, group_key=(1,)
                        )
                    ],
                ),
                group_result,
            ),
        ]
        assert self._agree(cases) is True
        cases.append(
            (
                ComplaintCase(
                    "q",
                    [
                        ValueComplaint(
                            column="count", op="=", value=current + 1, row_index=0
                        )
                    ],
                ),
                count_result,
            )
        )
        assert self._agree(cases) is False
