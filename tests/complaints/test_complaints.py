"""Complaint model: validation, satisfaction checks, case bundling."""

import numpy as np
import pytest

from repro.complaints import (
    ComplaintCase,
    PredictionComplaint,
    TupleComplaint,
    ValueComplaint,
    all_satisfied,
)
from repro.errors import ComplaintError
from repro.relational import Executor, plan_sql


@pytest.fixture()
def count_result(simple_db):
    plan = plan_sql("SELECT COUNT(*) FROM R WHERE predict(*) = 1", simple_db)
    return Executor(simple_db).execute(plan, debug=True)


@pytest.fixture()
def group_result(simple_db):
    plan = plan_sql("SELECT COUNT(*) FROM R GROUP BY predict(*)", simple_db)
    return Executor(simple_db).execute(plan, debug=True)


class TestValueComplaint:
    def test_requires_exactly_one_target(self):
        with pytest.raises(ComplaintError, match="exactly one"):
            ValueComplaint(column="count", op="=", value=1)
        with pytest.raises(ComplaintError, match="exactly one"):
            ValueComplaint(column="count", op="=", value=1, row_index=0, group_key=(1,))

    def test_bad_op(self):
        with pytest.raises(ComplaintError, match="op"):
            ValueComplaint(column="count", op="<", value=1, row_index=0)

    def test_current_value(self, count_result):
        complaint = ValueComplaint(column="count", op="=", value=0, row_index=0)
        assert complaint.current_value(count_result) == count_result.scalar("count")

    def test_equality_satisfaction(self, count_result):
        current = count_result.scalar("count")
        assert ValueComplaint(
            column="count", op="=", value=current, row_index=0
        ).is_satisfied(count_result)
        assert not ValueComplaint(
            column="count", op="=", value=current + 1, row_index=0
        ).is_satisfied(count_result)

    def test_inequality_satisfaction(self, count_result):
        current = count_result.scalar("count")
        assert ValueComplaint(
            column="count", op="<=", value=current + 1, row_index=0
        ).is_satisfied(count_result)
        assert not ValueComplaint(
            column="count", op=">=", value=current + 1, row_index=0
        ).is_satisfied(count_result)

    def test_group_key_targeting(self, group_result):
        complaint = ValueComplaint(column="count", op=">=", value=0, group_key=(1,))
        assert complaint.is_satisfied(group_result)

    def test_group_key_reaches_empty_groups(self, group_result):
        # Both classes have candidate groups even if one is empty right now.
        for label in (0, 1):
            poly = ValueComplaint(
                column="count", op="=", value=0, group_key=(label,)
            ).polynomial(group_result)
            assert poly is not None


class TestTupleComplaint:
    def test_requires_exactly_one_target(self):
        with pytest.raises(ComplaintError):
            TupleComplaint()
        with pytest.raises(ComplaintError):
            TupleComplaint(row_index=0, group_key=(1,))

    def test_unsatisfied_for_existing_tuple(self, simple_db):
        plan = plan_sql("SELECT * FROM R WHERE predict(*) = 1", simple_db)
        result = Executor(simple_db).execute(plan, debug=True)
        if len(result.relation) == 0:
            pytest.skip("no rows predicted 1")
        assert not TupleComplaint(row_index=0).is_satisfied(result)

    def test_group_tuple_complaint(self, group_result):
        existing_key = (int(group_result.relation.column("predict(*)")[0]),)
        complaint = TupleComplaint(group_key=existing_key)
        assert not complaint.is_satisfied(group_result)

    def test_missing_group_key_raises(self, group_result):
        with pytest.raises(ComplaintError, match="no group"):
            TupleComplaint(group_key=("nope",)).condition(group_result)


class TestPredictionComplaint:
    def test_site_resolution(self, count_result):
        site = count_result.runtime.sites[0]
        complaint = PredictionComplaint("R", site.row_id, 1)
        assert complaint.site_id(count_result) == site.site_id

    def test_missing_site_raises(self, count_result):
        with pytest.raises(ComplaintError, match="no inference site"):
            PredictionComplaint("ghost", 0, 1).site_id(count_result)

    def test_satisfaction_tracks_prediction(self, count_result):
        site = count_result.runtime.sites[0]
        current = count_result.runtime.prediction_for_site(site.key)
        assert PredictionComplaint("R", site.row_id, current).is_satisfied(count_result)
        assert not PredictionComplaint("R", site.row_id, 1 - int(current)).is_satisfied(
            count_result
        )


class TestComplaintCase:
    def test_empty_complaints_raise(self):
        with pytest.raises(ComplaintError, match="at least one"):
            ComplaintCase("SELECT 1", [])

    def test_all_satisfied(self, count_result):
        current = count_result.scalar("count")
        good = ComplaintCase(
            "q", [ValueComplaint(column="count", op="=", value=current, row_index=0)]
        )
        bad = ComplaintCase(
            "q", [ValueComplaint(column="count", op="=", value=current + 1, row_index=0)]
        )
        assert all_satisfied([(good, count_result)])
        assert not all_satisfied([(good, count_result), (bad, count_result)])
