"""Dataset generators: determinism, shapes, learnability, corruption."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    contains_token,
    corrupt_labels,
    corrupt_where_label,
    encode_features,
    labelling_function_corruption,
    make_adult,
    make_dblp,
    make_enron,
    make_mnist,
    render_digit,
    section65_predicate,
    split_by_digit,
)
from repro.ml import LogisticRegression, SoftmaxRegression


class TestDBLP:
    def test_shapes(self):
        ds = make_dblp(n_train=100, n_query=50, seed=0)
        assert ds.X_train.shape == (100, 17)
        assert ds.X_query.shape == (50, 17)
        assert set(ds.y_train) <= {"match", "nonmatch"}

    def test_deterministic(self):
        a = make_dblp(n_train=50, n_query=20, seed=5)
        b = make_dblp(n_train=50, n_query=20, seed=5)
        np.testing.assert_array_equal(a.X_train, b.X_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_different_seeds_differ(self):
        a = make_dblp(n_train=50, n_query=20, seed=1)
        b = make_dblp(n_train=50, n_query=20, seed=2)
        assert not np.array_equal(a.X_train, b.X_train)

    def test_features_in_unit_range(self):
        ds = make_dblp(n_train=200, n_query=10, seed=0)
        assert ds.X_train.min() >= 0.0 and ds.X_train.max() <= 1.0

    def test_linearly_learnable(self):
        ds = make_dblp(n_train=300, n_query=200, seed=0)
        model = LogisticRegression(ds.classes, n_features=17, l2=1e-3)
        model.fit(ds.X_train, ds.y_train, warm_start=False)
        assert model.accuracy(ds.X_query, ds.y_query) > 0.85


class TestAdult:
    def test_shapes_and_duplication(self):
        ds = make_adult(n_train=1000, n_query=100, seed=0)
        assert ds.X_train.shape == (1000, 18)
        # The Section 6.5 pathology: few unique feature vectors.
        assert np.unique(ds.X_train, axis=0).shape[0] <= 120

    def test_one_hot_rows_sum_to_three(self):
        ds = make_adult(n_train=200, n_query=10, seed=0)
        np.testing.assert_array_equal(ds.X_train.sum(axis=1), np.full(200, 3.0))

    def test_encode_features_matches_attributes(self):
        X = encode_features(np.asarray([20]), np.asarray(["hs"]), np.asarray(["male"]))
        assert X.shape == (1, 18)
        assert X.sum() == 3.0

    def test_predicate_selects_correct_rows(self):
        y = np.asarray([0, 0, 1, 0])
        age = np.asarray([40, 30, 40, 50])
        gender = np.asarray(["male", "male", "male", "female"])
        mask = section65_predicate(y, age, gender)
        np.testing.assert_array_equal(mask, [True, False, False, False])

    def test_income_correlates_with_education(self):
        ds = make_adult(n_train=4000, n_query=10, seed=0)
        phd = ds.education_train == "phd"
        dropout = ds.education_train == "dropout"
        assert ds.y_train[phd].mean() > ds.y_train[dropout].mean()


class TestEnron:
    def test_shapes_and_text(self):
        ds = make_enron(n_train=100, n_query=50, seed=0)
        assert ds.X_train.shape[0] == 100
        assert all(isinstance(t, str) for t in ds.text_train)

    def test_text_matches_features(self):
        ds = make_enron(n_train=100, n_query=10, seed=0)
        http_column = list(ds.vocabulary).index("http")
        for row, text in zip(ds.X_train, ds.text_train):
            assert bool(row[http_column]) == ("http" in text.split())

    def test_contains_token(self):
        texts = np.asarray(["deal http meeting", "lunch", "deals"], dtype=object)
        np.testing.assert_array_equal(
            contains_token(texts, "deal"), [True, False, False]
        )

    def test_labelling_function_corruption(self):
        ds = make_enron(n_train=300, n_query=10, seed=0)
        y_corrupted, changed = labelling_function_corruption(
            ds.y_train, ds.text_train, "http"
        )
        mask = contains_token(ds.text_train, "http")
        assert np.all(y_corrupted[mask] == "spam")
        # Changed = previously-ham emails containing http.
        assert np.all(ds.y_train[changed] == "ham")
        assert len(changed) > 0

    def test_spam_rate_approx(self):
        ds = make_enron(n_train=2000, n_query=10, spam_rate=0.3, seed=0)
        rate = float(np.mean(ds.y_train == "spam"))
        assert 0.25 < rate < 0.35


class TestMNIST:
    def test_shapes(self):
        ds = make_mnist(n_train=40, n_query=20, seed=0)
        assert ds.images_train.shape == (40, 28, 28)
        assert ds.X_train.shape == (40, 784)

    def test_pixels_in_unit_range(self):
        ds = make_mnist(n_train=30, n_query=5, seed=1)
        assert ds.images_train.min() >= 0.0 and ds.images_train.max() <= 1.0

    def test_digit_restriction(self):
        ds = make_mnist(n_train=60, n_query=20, digits=(1, 7), seed=0)
        assert set(ds.y_train) <= {1, 7}

    def test_render_deterministic_per_rng_state(self):
        a = render_digit(3, np.random.default_rng(9))
        b = render_digit(3, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)

    def test_renders_vary(self):
        rng = np.random.default_rng(0)
        a = render_digit(3, rng)
        b = render_digit(3, rng)
        assert not np.array_equal(a, b)

    def test_split_by_digit(self):
        ds = make_mnist(n_train=50, n_query=30, seed=0)
        images, labels = split_by_digit(ds.images_query, ds.y_query, (1, 7))
        assert set(labels) <= {1, 7}
        assert images.shape[0] == labels.shape[0]

    def test_learnable_by_softmax(self):
        ds = make_mnist(n_train=500, n_query=150, seed=0)
        model = SoftmaxRegression(tuple(range(10)), n_features=784, l2=1e-3)
        model.fit(ds.X_train, ds.y_train, warm_start=False, max_iter=100)
        assert model.accuracy(ds.X_query, ds.y_query) > 0.9

    def test_all_ten_digits_render(self):
        rng = np.random.default_rng(0)
        for digit in range(10):
            image = render_digit(digit, rng)
            assert image.shape == (28, 28)
            assert image.max() > 0.3  # glyph actually drawn


class TestCorruption:
    def test_fraction_of_candidates(self):
        y = np.asarray(["a"] * 50 + ["b"] * 50, dtype=object)
        corruption = corrupt_where_label(y, "a", "b", 0.4, rng=0)
        assert corruption.n_corrupted == 20
        assert np.all(corruption.y_corrupted[corruption.corrupted_indices] == "b")
        assert np.all(y[corruption.corrupted_indices] == "a")

    def test_original_untouched(self):
        y = np.zeros(20, dtype=int)
        corruption = corrupt_labels(y, np.ones(20, dtype=bool), 1, 0.5, rng=0)
        assert np.all(y == 0)
        assert corruption.n_corrupted == 10

    def test_callable_new_label(self):
        y = np.asarray([0, 0, 1, 1])
        corruption = corrupt_labels(
            y, np.ones(4, dtype=bool), lambda old: 1 - old, 1.0, rng=0
        )
        np.testing.assert_array_equal(corruption.y_corrupted, [1, 1, 0, 0])

    def test_validation(self):
        y = np.zeros(10)
        with pytest.raises(ValueError, match="fraction"):
            corrupt_labels(y, np.ones(10, dtype=bool), 1, 0.0)
        with pytest.raises(ValueError, match="mask shape"):
            corrupt_labels(y, np.ones(5, dtype=bool), 1, 0.5)
        with pytest.raises(ValueError, match="matches no records"):
            corrupt_labels(y, np.zeros(10, dtype=bool), 1, 0.5)

    def test_deterministic_given_seed(self):
        y = np.zeros(100, dtype=int)
        mask = np.ones(100, dtype=bool)
        a = corrupt_labels(y, mask, 1, 0.3, rng=7)
        b = corrupt_labels(y, mask, 1, 0.3, rng=7)
        np.testing.assert_array_equal(a.corrupted_indices, b.corrupted_indices)

    @given(st.integers(1, 99), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_corrupted_count_property(self, percent, seed):
        y = np.zeros(200, dtype=int)
        mask = np.zeros(200, dtype=bool)
        mask[:100] = True
        corruption = corrupt_labels(y, mask, 1, percent / 100.0, rng=seed)
        assert corruption.n_corrupted == max(1, round(percent))
        assert set(corruption.corrupted_indices.tolist()) <= set(range(100))

    def test_overall_rate(self):
        y = np.asarray([0] * 80 + [1] * 20)
        corruption = corrupt_where_label(y, 1, 0, 0.5, rng=0)
        assert corruption.corruption_rate_overall() == pytest.approx(0.1)


class TestShardedCorruption:
    """``n_shards`` sampling: per-shard ``SeedSequence.spawn`` streams.

    Each shard draws from its own spawned child, so the sampled subset is a
    pure function of (seed, n_shards) — any number of workers consuming the
    shards in any order reproduces bit-identical corruption.
    """

    def test_deterministic_and_count_preserved(self):
        y = np.zeros(200, dtype=int)
        mask = np.ones(200, dtype=bool)
        a = corrupt_labels(y, mask, 1, 0.3, rng=7, n_shards=4)
        b = corrupt_labels(y, mask, 1, 0.3, rng=7, n_shards=4)
        np.testing.assert_array_equal(a.corrupted_indices, b.corrupted_indices)
        assert a.n_corrupted == 60  # global count never depends on sharding

    @given(st.integers(1, 16), st.integers(0, 1000), st.integers(1, 99))
    @settings(max_examples=40, deadline=None)
    def test_quotas_preserve_global_count(self, n_shards, seed, percent):
        y = np.zeros(150, dtype=int)
        mask = np.zeros(150, dtype=bool)
        mask[:100] = True
        corruption = corrupt_labels(
            y, mask, 1, percent / 100.0, rng=seed, n_shards=n_shards
        )
        assert corruption.n_corrupted == max(1, round(percent))
        assert set(corruption.corrupted_indices.tolist()) <= set(range(100))

    def test_none_matches_legacy_single_stream(self):
        y = np.zeros(100, dtype=int)
        mask = np.ones(100, dtype=bool)
        legacy = corrupt_labels(y, mask, 1, 0.25, rng=3)
        explicit = corrupt_labels(y, mask, 1, 0.25, rng=3, n_shards=None)
        np.testing.assert_array_equal(
            legacy.corrupted_indices, explicit.corrupted_indices
        )

    def test_generator_seed_rejected(self):
        y = np.zeros(50, dtype=int)
        mask = np.ones(50, dtype=bool)
        with pytest.raises(ValueError, match="integer seed"):
            corrupt_labels(
                y, mask, 1, 0.5, rng=np.random.default_rng(0), n_shards=2
            )

    def test_more_shards_than_candidates_clipped(self):
        y = np.zeros(10, dtype=int)
        mask = np.zeros(10, dtype=bool)
        mask[:3] = True
        corruption = corrupt_labels(y, mask, 1, 1.0, rng=0, n_shards=8)
        np.testing.assert_array_equal(corruption.corrupted_indices, [0, 1, 2])

    def test_indices_sorted(self):
        y = np.zeros(120, dtype=int)
        mask = np.ones(120, dtype=bool)
        corruption = corrupt_labels(y, mask, 1, 0.4, rng=11, n_shards=5)
        indices = corruption.corrupted_indices
        assert np.all(np.diff(indices) > 0)
