"""The env-knob registry and the call sites migrated onto it."""

import pytest

from repro.analysis import knobs


class TestRegistry:
    def test_registered_knobs(self):
        names = {knob.name for knob in knobs.all_knobs()}
        assert {"n_workers", "async_pipeline", "ilp_encoder"} <= names

    def test_all_knobs_is_sorted(self):
        names = [knob.name for knob in knobs.all_knobs()]
        assert names == sorted(names)

    def test_lookup_by_env_var(self):
        assert knobs.by_env("REPRO_N_WORKERS").name == "n_workers"
        assert knobs.by_env("REPRO_ASYNC").name == "async_pipeline"
        assert knobs.by_env("REPRO_ILP_ENCODER").name == "ilp_encoder"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            knobs.register("n_workers", "REPRO_N_WORKERS_2", "0", "dup", "tests")
        with pytest.raises(ValueError, match="REPRO_N_WORKERS"):
            knobs.register("n_workers_2", "REPRO_N_WORKERS", "0", "dup", "tests")

    def test_unknown_knob_raises(self):
        with pytest.raises(KeyError):
            knobs.get("no_such_knob")
        with pytest.raises(KeyError):
            knobs.read("no_such_knob")

    def test_read_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_WORKERS", raising=False)
        assert knobs.read("n_workers") == "0"
        monkeypatch.setenv("REPRO_N_WORKERS", "6")
        assert knobs.read("n_workers") == "6"

    def test_knob_table_lists_every_env_var(self):
        table = knobs.knob_table()
        for knob in knobs.all_knobs():
            assert knob.env_var in table
            assert knob.default in table


class TestMigratedResolvers:
    """resolve_workers / resolve_async / resolve_ilp_encoder keep their
    pre-registry semantics, now reading through knobs.read()."""

    def test_resolve_workers_env(self, monkeypatch):
        from repro.core.sharding import resolve_workers

        monkeypatch.setenv("REPRO_N_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(5) == 5
        monkeypatch.delenv("REPRO_N_WORKERS")
        assert resolve_workers(None) == 0

    def test_resolve_workers_invalid(self, monkeypatch):
        from repro.errors import DebuggingError
        from repro.core.sharding import resolve_workers

        monkeypatch.setenv("REPRO_N_WORKERS", "lots")
        with pytest.raises(DebuggingError):
            resolve_workers(None)

    def test_resolve_async_env(self, monkeypatch):
        from repro.core.sharding import resolve_async

        monkeypatch.setenv("REPRO_ASYNC", "1")
        assert resolve_async(None) is True
        assert resolve_async(False) is False
        monkeypatch.setenv("REPRO_ASYNC", "0")
        assert resolve_async(None) is False

    def test_resolve_async_invalid(self, monkeypatch):
        from repro.errors import DebuggingError
        from repro.core.sharding import resolve_async

        monkeypatch.setenv("REPRO_ASYNC", "yes")
        with pytest.raises(DebuggingError):
            resolve_async(None)

    def test_resolve_ilp_encoder_env(self, monkeypatch):
        from repro.ilp.encode import resolve_ilp_encoder

        monkeypatch.setenv("REPRO_ILP_ENCODER", "tree")
        assert resolve_ilp_encoder(None) == "tree"
        monkeypatch.setenv("REPRO_ILP_ENCODER", "")
        assert resolve_ilp_encoder(None) == "compiled"
        monkeypatch.delenv("REPRO_ILP_ENCODER")
        assert resolve_ilp_encoder("tree") == "tree"

    def test_env_var_aliases_preserved(self):
        # Pre-registry module constants stay importable (used by tests
        # and external scripts).
        from repro.core.sharding import ASYNC_ENV_VAR, WORKERS_ENV_VAR
        from repro.ilp.encode import ENCODER_ENV_VAR

        assert WORKERS_ENV_VAR == "REPRO_N_WORKERS"
        assert ASYNC_ENV_VAR == "REPRO_ASYNC"
        assert ENCODER_ENV_VAR == "REPRO_ILP_ENCODER"


class TestKnobDocs:
    def test_every_knob_documented_in_repo(self, repo_root):
        from repro.analysis.rules import check_knob_docs

        assert check_knob_docs(repo_root) == []

    def test_undocumented_knob_is_flagged(self, tmp_path):
        from repro.analysis.rules import check_knob_docs

        (tmp_path / "README.md").write_text("no knobs documented here\n")
        found = check_knob_docs(tmp_path)
        assert len(found) == len(knobs.all_knobs())
        assert all(f.rule == "KNOB001" for f in found)

    def test_no_docs_corpus_opts_out(self, tmp_path):
        from repro.analysis.rules import check_knob_docs

        assert check_knob_docs(tmp_path) == []
