"""GOLD001: golden-path manifest checks on a temp project copy.

Builds a miniature project tree (``src/mypkg/mod.py`` + ``tests/``),
pins a function in a manifest, then mutates the tree and asserts the
check catches every drift mode: body edits, missing defs, and lost
test coverage.
"""

import textwrap

import pytest

from repro.analysis.golden import (
    body_hash,
    check_golden,
    load_manifest,
    update_manifest,
)

GOLDEN_BODY = """
def golden(x):
    return x + 1


def helper(x):
    return x * 2
"""

TEST_BODY = """
from mypkg.mod import golden

def test_golden():
    assert golden(1) == 2
"""


@pytest.fixture
def project(tmp_path):
    pkg = tmp_path / "src" / "mypkg"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(textwrap.dedent(GOLDEN_BODY))
    tests = tmp_path / "tests"
    tests.mkdir()
    (tests / "test_mod.py").write_text(textwrap.dedent(TEST_BODY))
    manifest = tmp_path / "golden_paths.toml"
    digest, _ = body_hash(tmp_path, "mypkg.mod", "golden")
    manifest.write_text(textwrap.dedent(f"""
        [[golden]]
        module = "mypkg.mod"
        qualname = "golden"
        sha256 = "{digest}"
        test_pattern = "golden"
        why = "reference implementation for the fast path"
    """))
    return tmp_path, manifest


def gold_findings(root, manifest):
    found = check_golden(root, manifest)
    assert all(f.rule == "GOLD001" for f in found)
    return found


class TestCheckGolden:
    def test_untouched_tree_is_clean(self, project):
        root, manifest = project
        assert gold_findings(root, manifest) == []

    def test_formatting_only_changes_are_clean(self, project):
        # Hashing ast.dump output makes the check insensitive to
        # comments and whitespace — only semantic edits trip it.
        root, manifest = project
        mod = root / "src" / "mypkg" / "mod.py"
        mod.write_text(
            "def golden(x):\n"
            "    # a new comment\n"
            "    return (x + 1)\n\n\n"
            "def helper(x):\n"
            "    return x * 2\n"
        )
        assert gold_findings(root, manifest) == []

    def test_body_mutation_is_detected(self, project):
        root, manifest = project
        mod = root / "src" / "mypkg" / "mod.py"
        mod.write_text(textwrap.dedent(GOLDEN_BODY).replace("x + 1", "x + 2"))
        found = gold_findings(root, manifest)
        assert len(found) == 1
        assert "mypkg.mod:golden" in found[0].message
        assert "changed" in found[0].message

    def test_deleted_function_is_detected(self, project):
        root, manifest = project
        mod = root / "src" / "mypkg" / "mod.py"
        mod.write_text("def helper(x):\n    return x * 2\n")
        found = gold_findings(root, manifest)
        assert len(found) == 1
        assert "resolve" in found[0].message

    def test_missing_test_reference_is_detected(self, project):
        root, manifest = project
        (root / "tests" / "test_mod.py").write_text(
            "def test_helper():\n    assert True\n"
        )
        found = gold_findings(root, manifest)
        assert len(found) == 1
        assert "test" in found[0].message

    def test_missing_manifest_is_a_finding(self, project):
        root, manifest = project
        found = check_golden(root, root / "nonexistent.toml")
        assert len(found) == 1
        assert found[0].rule == "GOLD001"


class TestUpdateManifest:
    def test_update_refreshes_hashes(self, project):
        root, manifest = project
        mod = root / "src" / "mypkg" / "mod.py"
        mod.write_text(textwrap.dedent(GOLDEN_BODY).replace("x + 1", "x + 3"))
        assert len(gold_findings(root, manifest)) == 1

        changed = update_manifest(root, manifest)
        assert changed == ["mypkg.mod:golden"]
        assert gold_findings(root, manifest) == []

        entries = load_manifest(manifest)
        digest, _ = body_hash(root, "mypkg.mod", "golden")
        assert entries[0].sha256 == digest

    def test_update_on_clean_tree_changes_nothing(self, project):
        root, manifest = project
        before = manifest.read_text()
        assert update_manifest(root, manifest) == []
        assert load_manifest(manifest)[0].sha256 in before


class TestShippedManifest:
    def test_shipped_manifest_matches_tree(self, repo_root):
        # The repo's own golden_paths.toml must stay in sync with the
        # shipped sources — this is the self-applied GOLD001 gate.
        assert check_golden(repo_root) == []

    def test_shipped_entries_cover_the_contract(self, repo_root):
        from repro.analysis.golden import DEFAULT_MANIFEST

        labels = {entry.label for entry in load_manifest(DEFAULT_MANIFEST)}
        assert "repro.ilp.encode:TiresiasEncoder" in labels
        assert "repro.ilp.solver:_lp_relaxation" in labels
        assert "repro.core.rain:RainDebugger._run_serial" in labels
