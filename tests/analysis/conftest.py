"""Fixtures for the static-analysis test suite."""

from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def repo_root() -> Path:
    """The repository checkout this test file lives in."""
    root = Path(__file__).resolve().parents[2]
    assert (root / "src" / "repro").is_dir()
    return root
