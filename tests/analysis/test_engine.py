"""Engine mechanics: suppression scanning, baseline files, findings,
symbol-table inference, and the ``python -m repro.analysis`` entry point.
"""

import textwrap

import pytest

from repro.analysis.engine import (
    Finding,
    analyze_source,
    load_baseline,
    scan_suppressions,
)
from repro.analysis.__main__ import main as analysis_main


def dedent(source):
    return textwrap.dedent(source)


# -- suppression comment scanning --------------------------------------------


class TestScanSuppressions:
    def test_trailing_comment_suppresses_own_line(self):
        lines = scan_suppressions("x = cache.get(id(k))  # repro: ignore[DET001]\n")
        assert lines == {1: {"DET001"}}

    def test_multiple_rules_one_tag(self):
        lines = scan_suppressions("x = f()  # repro: ignore[DET001, DET002]\n")
        assert lines == {1: {"DET001", "DET002"}}

    def test_standalone_comment_covers_next_code_line(self):
        lines = scan_suppressions(dedent(
            """
            # repro: ignore[DET002] — order pinned upstream
            for k in views:
                out.append(k)
            """
        ))
        assert lines[3] == {"DET002"}

    def test_justification_block_with_tag_on_first_line(self):
        # Multi-line comment blocks propagate through trailing comment
        # lines and blanks to the next statement.
        lines = scan_suppressions(dedent(
            """
            # repro: ignore[DET001] — sound: the cache holds a strong
            # reference to every keyed object, so ids cannot be
            # recycled while the entry is live.

            cache[id(obj)] = node
            """
        ))
        assert lines[6] == {"DET001"}

    def test_plain_comments_do_not_suppress(self):
        assert scan_suppressions("x = 1  # a normal comment\n") == {}

    def test_ignore_without_brackets_is_inert(self):
        assert scan_suppressions("x = 1  # repro: ignore this one\n") == {}


# -- baseline files -----------------------------------------------------------


class TestBaseline:
    def test_round_trip(self, tmp_path):
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text(
            "# comment line\n"
            "\n"
            "DET002 src/repro/experiments/fig3.py run\n"
            "DET001 src/repro/core/thing.py -\n"
        )
        entries = load_baseline(baseline_file)
        assert ("DET002", "src/repro/experiments/fig3.py", "run") in entries
        assert ("DET001", "src/repro/core/thing.py", "-") in entries
        assert len(entries) == 2

    def test_malformed_line_raises(self, tmp_path):
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text("DET002 only-two-fields\n")
        with pytest.raises(ValueError, match="baseline"):
            load_baseline(baseline_file)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.txt") == frozenset()


# -- findings -----------------------------------------------------------------


class TestFinding:
    def test_format_and_keys(self):
        finding = Finding(
            rule="DET001",
            severity="error",
            path="src/repro/ilp/encode.py",
            line=42,
            col=8,
            message="id() keys a shared container",
            qualname="TiresiasEncoder._linearize",
        )
        text = finding.format()
        assert "src/repro/ilp/encode.py:42" in text
        assert "DET001" in text
        assert finding.baseline_key == (
            "DET001",
            "src/repro/ilp/encode.py",
            "TiresiasEncoder._linearize",
        )

    def test_report_dedups_identical_findings(self):
        # One node visited once produces one finding even when both the
        # node line and the statement line resolve identically.
        ctx = analyze_source(
            "class C:\n"
            "    def f(self, k):\n"
            "        return self._cache[id(k)]\n"
        )
        assert len(ctx.findings) == 1


# -- symbol table -------------------------------------------------------------


class TestSymbolTable:
    def test_subscript_store_does_not_shadow_module_global(self):
        # `_REGISTRY[k] = v` mutates the module-level dict; it must NOT
        # create a function-local binding that hides the global from
        # shared-container checks.
        ctx = analyze_source(dedent(
            """
            _REGISTRY = {}

            def remember(obj):
                _REGISTRY[id(obj)] = obj.name
            """
        ))
        assert [f.rule for f in ctx.findings] == ["DET001"]

    def test_local_rebinding_shadows_module_global(self):
        ctx = analyze_source(dedent(
            """
            _SCRATCH = {}

            def lower(root):
                _SCRATCH = {}
                _SCRATCH[id(root)] = root
                return _SCRATCH
            """
        ))
        assert ctx.findings == []

    def test_annotation_kind_inference(self):
        ctx = analyze_source(dedent(
            """
            def emit(items, out):
                pending: set = items
                for item in pending:
                    out.append(item)
            """
        ))
        assert [f.rule for f in ctx.findings] == ["DET002"]


# -- CLI ----------------------------------------------------------------------


def _write_project(tmp_path, body):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(textwrap.dedent(body))
    return tmp_path


class TestMain:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = _write_project(tmp_path, "def f(x):\n    return x\n")
        rc = analysis_main(
            ["--root", str(root), "--strict", "--no-golden", "--no-knob-docs"]
        )
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_error_finding_fails_without_strict(self, tmp_path, capsys):
        root = _write_project(
            tmp_path,
            """
            class C:
                def f(self, k):
                    return self._cache[id(k)]
            """,
        )
        rc = analysis_main(["--root", str(root), "--no-golden", "--no-knob-docs"])
        assert rc == 1
        assert "DET001" in capsys.readouterr().out

    def test_warning_passes_unless_strict(self, tmp_path, capsys):
        root = _write_project(
            tmp_path,
            """
            def worker(item):
                shared.total += item

            def serve(pool, items):
                pool.submit(worker, items)
            """,
        )
        relaxed = analysis_main(
            ["--root", str(root), "--no-golden", "--no-knob-docs"]
        )
        strict = analysis_main(
            ["--root", str(root), "--strict", "--no-golden", "--no-knob-docs"]
        )
        out = capsys.readouterr().out
        assert relaxed == 0
        assert strict == 1
        assert "DET004" in out

    def test_baseline_filters_findings(self, tmp_path):
        root = _write_project(
            tmp_path,
            """
            class C:
                def f(self, k):
                    return self._cache[id(k)]
            """,
        )
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("DET001 src/repro/mod.py C.f\n")
        rc = analysis_main(
            [
                "--root", str(root),
                "--baseline", str(baseline),
                "--strict", "--no-golden", "--no-knob-docs",
            ]
        )
        assert rc == 0

    def test_syntax_error_is_reported(self, tmp_path, capsys):
        root = _write_project(tmp_path, "def broken(:\n")
        rc = analysis_main(["--root", str(root), "--no-golden", "--no-knob-docs"])
        assert rc == 1
        assert "syntax error" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        rc = analysis_main(["--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule_id in ("DET001", "DET002", "DET003", "DET004", "KNOB001", "GOLD001"):
            assert rule_id in out

    def test_cli_lint_subcommand_forwards(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["lint", "--list-rules"])
        assert rc == 0
        assert "DET001" in capsys.readouterr().out
