"""Fixture snippets per rule: positive, negative, and suppressed.

Each case feeds a small source string through the one-pass engine and
asserts exactly which rule fires (or doesn't).  The positive fixtures
are modelled on the real bug classes from this repo's history — most
prominently the pre-PR-8 ``_aux_cache`` id()-keying bug for DET001.
"""

import textwrap

import pytest

from repro.analysis.engine import analyze_source


def findings_for(source, rule=None, path="snippet.py"):
    ctx = analyze_source(textwrap.dedent(source), path=path)
    if rule is None:
        return ctx.findings
    return [f for f in ctx.findings if f.rule == rule]


# -- DET001: id()-keyed shared containers -----------------------------------


class TestDet001:
    def test_attribute_cache_keyed_on_id(self):
        found = findings_for(
            """
            class Encoder:
                def __init__(self):
                    self._aux_cache = {}

                def aux(self, expr):
                    cached = self._aux_cache.get(id(expr))
                    if cached is None:
                        self._aux_cache[id(expr)] = object()
                    return self._aux_cache[id(expr)]
            """,
            "DET001",
        )
        assert len(found) == 3
        assert all(f.qualname == "Encoder.aux" for f in found)
        assert "_aux_cache" in found[0].message

    def test_pre_pr8_aux_cache_pattern_is_redetected(self):
        # The literal shape of the bug that survived two PRs: a
        # tree-walking encoder memoizing aux variables on bare id(expr)
        # in an instance attribute, while expression trees are built
        # lazily and can be collected (and their ids recycled) mid-run.
        found = findings_for(
            """
            class TiresiasEncoder:
                def __init__(self, program):
                    self.program = program
                    self._aux_cache = {}

                def _linearize(self, expr):
                    cached = self._aux_cache.get(id(expr))
                    if cached is not None:
                        return cached
                    var = self.program.add_var(f"aux_{len(self._aux_cache)}")
                    self._aux_cache[id(expr)] = var
                    return var
            """,
            "DET001",
        )
        assert len(found) == 2

    def test_module_level_registry_keyed_on_id(self):
        found = findings_for(
            """
            _REGISTRY = {}

            def remember(obj):
                _REGISTRY[id(obj)] = obj.name
            """,
            "DET001",
        )
        assert len(found) == 1

    def test_membership_and_set_add(self):
        found = findings_for(
            """
            class Tracker:
                def __init__(self):
                    self._seen = set()

                def visit(self, node):
                    if id(node) in self._seen:
                        return
                    self._seen.add(id(node))
            """,
            "DET001",
        )
        assert len(found) == 2

    def test_local_memo_dict_is_allowed(self):
        # The lowering-pass idiom: a memo local to one traversal, whose
        # keyed objects stay alive (held by the tree root) throughout.
        found = findings_for(
            """
            def lower(root):
                memo = {}
                for node in walk(root):
                    if id(node) not in memo:
                        memo[id(node)] = lower_one(node, memo)
                return memo[id(root)]
            """,
            "DET001",
        )
        assert found == []

    def test_inline_suppression(self):
        found = findings_for(
            """
            class Pool:
                def lookup(self, expr):
                    # repro: ignore[DET001] — ids pinned by _expr_cache
                    return self._expr_nodes.get(id(expr))
            """,
            "DET001",
        )
        assert found == []

    def test_suppressing_other_rule_does_not_hide_det001(self):
        found = findings_for(
            """
            class Pool:
                def lookup(self, expr):
                    return self._expr_nodes.get(id(expr))  # repro: ignore[DET002]
            """,
            "DET001",
        )
        assert len(found) == 1


# -- DET002: unordered iteration into order-sensitive emission ---------------


class TestDet002:
    def test_set_iteration_into_append(self):
        found = findings_for(
            """
            def emit(items, out):
                pending = set(items)
                for item in pending:
                    out.append(item)
            """,
            "DET002",
        )
        assert len(found) == 1
        assert "pending" in found[0].message

    def test_direct_set_call_iteration(self):
        found = findings_for(
            """
            def emit(items, program):
                for item in set(items):
                    program.add_constraint(item)
            """,
            "DET002",
        )
        assert len(found) == 1

    def test_sorted_wrapper_is_clean(self):
        found = findings_for(
            """
            def emit(items, out):
                pending = set(items)
                for item in sorted(pending):
                    out.append(item)
            """,
            "DET002",
        )
        assert found == []

    def test_set_iteration_without_sink_is_clean(self):
        found = findings_for(
            """
            def biggest(items):
                pending = set(items)
                best = None
                for item in pending:
                    if best is None or item > best:
                        best = item
                return best
            """,
            "DET002",
        )
        assert found == []

    def test_dict_view_into_append(self):
        found = findings_for(
            """
            def emit(table, rows):
                for key, value in table.items():
                    rows.append((key, value))
            """,
            "DET002",
        )
        assert len(found) == 1
        assert "table.items()" in found[0].message

    def test_dict_view_without_sink_is_clean(self):
        found = findings_for(
            """
            def total(table):
                acc = {}
                for key, value in table.items():
                    acc[key] = value
                return acc
            """,
            "DET002",
        )
        assert found == []

    def test_list_comprehension_over_set(self):
        found = findings_for(
            """
            def rows(items):
                pending = set(items)
                return [format(item) for item in pending]
            """,
            "DET002",
        )
        assert len(found) == 1

    def test_generator_into_sorted_is_clean(self):
        found = findings_for(
            """
            def rows(items):
                pending = set(items)
                return sorted(format(item) for item in pending)
            """,
            "DET002",
        )
        assert found == []

    def test_yield_is_a_sink(self):
        found = findings_for(
            """
            def stream(items):
                for item in set(items):
                    yield item
            """,
            "DET002",
        )
        assert len(found) == 1

    def test_inline_suppression(self):
        found = findings_for(
            """
            def emit(table, rows):
                # repro: ignore[DET002] — insertion order fixed upstream
                for key, value in table.items():
                    rows.append((key, value))
            """,
            "DET002",
        )
        assert found == []


# -- DET003: global RNG ------------------------------------------------------


class TestDet003:
    @pytest.mark.parametrize(
        "call",
        [
            "np.random.shuffle(order)",
            "np.random.permutation(10)",
            "np.random.rand(3)",
            "numpy.random.seed(0)",
            "random.random()",
            "random.shuffle(order)",
            "random.randint(0, 5)",
        ],
    )
    def test_global_rng_calls(self, call):
        found = findings_for(f"def f(order):\n    return {call}\n", "DET003")
        assert len(found) == 1

    @pytest.mark.parametrize(
        "call",
        ["default_rng()", "np.random.default_rng()", "np.random.RandomState()"],
    )
    def test_argless_generators(self, call):
        found = findings_for(f"def f():\n    return {call}\n", "DET003")
        assert len(found) == 1
        assert "OS entropy" in found[0].message

    @pytest.mark.parametrize(
        "call",
        [
            "np.random.default_rng(42)",
            "np.random.default_rng(child)",
            "np.random.SeedSequence(7)",
            "rng.shuffle(order)",
            "self.rng.integers(0, 5)",
        ],
    )
    def test_seeded_and_threaded_generators_are_clean(self, call):
        found = findings_for(
            f"def f(order, child, rng):\n    return {call}\n", "DET003"
        )
        assert found == []

    def test_experiments_are_exempt(self):
        found = findings_for(
            "def f():\n    return np.random.rand(3)\n",
            "DET003",
            path="src/repro/experiments/fig99.py",
        )
        assert found == []

    def test_inline_suppression(self):
        found = findings_for(
            """
            def f():
                return np.random.rand(3)  # repro: ignore[DET003] — demo only
            """,
            "DET003",
        )
        assert found == []


# -- DET004: unsynchronized shared writes in pool-submitted callables --------


class TestDet004:
    def test_shared_attribute_write_in_submitted_function(self):
        found = findings_for(
            """
            def worker(item):
                shared.total += item.cost

            def serve(pool, items):
                for item in items:
                    pool.submit(worker, item)
            """,
            "DET004",
        )
        assert len(found) == 1
        assert found[0].severity == "warning"

    def test_run_sharded_callable(self):
        found = findings_for(
            """
            def fetch(entry):
                cache.hits += 1
                return entry

            def serve(entries):
                return run_sharded(fetch, entries, 4)
            """,
            "DET004",
        )
        assert len(found) == 1

    def test_pipeline_stage_method_write(self):
        found = findings_for(
            """
            def train_stage(model, X, y):
                model.params = fit(X, y)

            def run(pipe, model, X, y):
                pipe.submit_train(train_stage, model, X, y)
            """,
            "DET004",
        )
        assert len(found) == 1

    def test_lock_protected_write_is_clean(self):
        found = findings_for(
            """
            def worker(item):
                with stats_lock:
                    shared.total += item.cost

            def serve(pool, items):
                for item in items:
                    pool.submit(worker, item)
            """,
            "DET004",
        )
        assert found == []

    def test_worker_local_object_is_clean(self):
        found = findings_for(
            """
            def worker(item):
                stats = Stats()
                stats.count += 1
                return stats

            def serve(pool, items):
                for item in items:
                    pool.submit(worker, item)
            """,
            "DET004",
        )
        assert found == []

    def test_unsubmitted_function_is_clean(self):
        found = findings_for(
            """
            def driver(model, X, y):
                model.params = fit(X, y)
            """,
            "DET004",
        )
        assert found == []

    def test_inline_suppression(self):
        found = findings_for(
            """
            def worker(item):
                shared.total += item.cost  # repro: ignore[DET004] — merged on driver

            def serve(pool, items):
                pool.submit(worker, items)
            """,
            "DET004",
        )
        assert found == []


# -- KNOB001: direct environment reads ---------------------------------------


class TestKnob001:
    @pytest.mark.parametrize(
        "expr",
        [
            'os.environ.get("REPRO_FOO", "0")',
            'os.environ["REPRO_FOO"]',
            'os.getenv("REPRO_FOO")',
            'environ["REPRO_FOO"]',
            'environ.get("REPRO_FOO")',
        ],
    )
    def test_direct_reads(self, expr):
        found = findings_for(f"def f():\n    return {expr}\n", "KNOB001")
        assert len(found) == 1
        assert "knobs.read" in found[0].message

    def test_registry_read_is_clean(self):
        found = findings_for(
            "def f():\n    return knobs.read('n_workers')\n", "KNOB001"
        )
        assert found == []

    def test_knob_registry_module_is_exempt(self):
        found = findings_for(
            "def read(name):\n    return os.environ.get(name, '')\n",
            "KNOB001",
            path="src/repro/analysis/knobs.py",
        )
        assert found == []

    def test_inline_suppression(self):
        found = findings_for(
            """
            def f():
                return os.getenv("CI")  # repro: ignore[KNOB001] — CI detection only
            """,
            "KNOB001",
        )
        assert found == []
