"""The analyzer applied to its own repository.

The shipped tree must be clean modulo the checked-in baseline — this is
the same gate CI runs via ``python -m repro.analysis --strict``, kept
in the test suite so a plain ``pytest`` run catches regressions without
the extra CI job.
"""

from repro.analysis.engine import load_baseline, run_analysis
from repro.analysis.__main__ import DEFAULT_BASELINE


def test_shipped_tree_is_clean_modulo_baseline(repo_root):
    report = run_analysis(repo_root, baseline=load_baseline(DEFAULT_BASELINE))
    assert report.parse_errors == []
    assert report.findings == [], "\n".join(
        finding.format() for finding in report.findings
    )
    assert report.n_files > 50


def test_baseline_entries_are_all_live(repo_root):
    # Every baselined suppression must still match a real finding;
    # stale entries would silently mask future regressions at the same
    # (rule, path, qualname) key.
    baseline = load_baseline(DEFAULT_BASELINE)
    report = run_analysis(repo_root)
    live_keys = {finding.baseline_key for finding in report.findings}
    stale = sorted(key for key in baseline if key not in live_keys)
    assert stale == [], f"stale baseline entries: {stale}"


def test_baseline_is_experiments_only(repo_root):
    # The determinism contract allows insertion-order reliance only in
    # the experiment drivers (published artifact order); library code
    # must fix findings or justify them inline.
    for rule, path, _ in load_baseline(DEFAULT_BASELINE):
        assert rule == "DET002"
        assert path.startswith("src/repro/experiments/")
