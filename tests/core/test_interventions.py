"""Label-fixing intervention (the Section 8 extension)."""

import numpy as np
import pytest

from repro.complaints import ComplaintCase, ValueComplaint
from repro.core.interventions import RelabelDebugger
from repro.errors import DebuggingError
from repro.ml import LogisticRegression
from repro.relational import Database, Executor, Relation, plan_sql


@pytest.fixture()
def relabel_setting():
    rng = np.random.default_rng(6)
    n, d = 100, 5
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y_clean = (X @ w > 0).astype(int)
    y = y_clean.copy()
    ones = np.flatnonzero(y_clean == 1)
    corrupted = ones[:15]
    y[corrupted] = 0

    model = LogisticRegression((0, 1), n_features=d, l2=1e-2)
    model.fit(X, y, warm_start=False)

    X_query = rng.normal(size=(50, d))
    truth = int(np.sum(X_query @ w > 0))
    db = Database()
    db.add_relation(Relation("Q", {"features": X_query}))
    db.add_model("m", model)
    case = ComplaintCase(
        "SELECT COUNT(*) FROM Q WHERE predict(*) = 1",
        [ValueComplaint(column="count", op="=", value=truth, row_index=0)],
    )
    return db, X, y, y_clean, corrupted, case


class TestRelabelDebugger:
    def test_flips_move_labels_toward_truth(self, relabel_setting):
        db, X, y, y_clean, corrupted, case = relabel_setting
        debugger = RelabelDebugger(db, "m", X, y, [case], method="holistic", rng=0)
        report = debugger.run(max_removals=15, k_per_iteration=5)
        assert report.method == "holistic+relabel"
        y_fixed = debugger.corrected_labels(report)
        # Flipping found-corrupted records restores their clean labels.
        agreement_before = np.mean(y[corrupted] == y_clean[corrupted])
        agreement_after = np.mean(y_fixed[corrupted] == y_clean[corrupted])
        assert agreement_after > agreement_before

    def test_never_flips_twice(self, relabel_setting):
        db, X, y, y_clean, corrupted, case = relabel_setting
        debugger = RelabelDebugger(db, "m", X, y, [case], method="holistic", rng=0)
        report = debugger.run(max_removals=20, k_per_iteration=7)
        assert len(set(report.removal_order)) == len(report.removal_order)

    def test_recall_comparable_to_deletion(self, relabel_setting):
        db, X, y, y_clean, corrupted, case = relabel_setting
        from repro.core import RainDebugger

        model = db.model("m")
        theta = model.get_params()
        relabel = RelabelDebugger(db, "m", X, y, [case], method="holistic", rng=0).run(
            max_removals=15, k_per_iteration=5
        )
        model.set_params(theta)
        delete = RainDebugger(db, "m", X, y, [case], method="holistic", rng=0).run(
            max_removals=15, k_per_iteration=5
        )
        # Both interventions should find a similar share of the corruptions.
        assert relabel.auccr(corrupted) > 0.4
        assert abs(relabel.auccr(corrupted) - delete.auccr(corrupted)) < 0.5

    def test_budget_validation(self, relabel_setting):
        db, X, y, y_clean, corrupted, case = relabel_setting
        debugger = RelabelDebugger(db, "m", X, y, [case], method="holistic")
        with pytest.raises(DebuggingError):
            debugger.run(max_removals=0)

    def test_multiclass_fixed_label_is_alternative(self, relabel_setting):
        from repro.ml import SoftmaxRegression

        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 4))
        y = rng.integers(3, size=30)
        model = SoftmaxRegression((0, 1, 2), n_features=4, l2=1e-2)
        model.fit(X, y, warm_start=False)
        db, _, _, _, _, case = relabel_setting
        db2 = Database()
        db2.add_relation(Relation("Q", {"features": rng.normal(size=(10, 4))}))
        db2.add_model("m", model)
        debugger = RelabelDebugger(db2, "m", X, y, [], method="loss")
        for index in range(10):
            fixed = debugger._fixed_label(index, y[index])
            assert fixed != y[index]
            assert fixed in (0, 1, 2)
