"""The RainDebugger train-rank-fix loop and ranker behaviours."""

import numpy as np
import pytest

from repro.complaints import ComplaintCase, PredictionComplaint, ValueComplaint
from repro.core import RainDebugger, make_ranker
from repro.core.rankers import (
    HolisticRanker,
    InfLossRanker,
    LossRanker,
    TwoStepRanker,
)
from repro.errors import DebuggingError
from repro.ml import LogisticRegression
from repro.relational import Database, Relation


@pytest.fixture()
def debug_setting():
    """A setting where a contiguous block of labels is corrupted."""
    rng = np.random.default_rng(42)
    n, d = 120, 6
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y_clean = (X @ w > 0).astype(int)
    y = y_clean.copy()
    # Systematic corruption: flip 20 records that are truly class 1.
    ones = np.flatnonzero(y_clean == 1)
    corrupted = ones[:20]
    y[corrupted] = 0

    model = LogisticRegression((0, 1), n_features=d, l2=1e-2)
    model.fit(X, y, warm_start=False)

    X_query = rng.normal(size=(60, d))
    y_query_true = (X_query @ w > 0).astype(int)
    db = Database()
    db.add_relation(Relation("Q", {"features": X_query}))
    db.add_model("m", model)
    sql = "SELECT COUNT(*) FROM Q WHERE predict(*) = 1"
    case = ComplaintCase(
        sql,
        [ValueComplaint(column="count", op="=",
                        value=int(y_query_true.sum()), row_index=0)],
    )
    return db, model, X, y, corrupted, case


class TestFactory:
    def test_known_methods(self):
        assert isinstance(make_ranker("loss"), LossRanker)
        assert isinstance(make_ranker("infloss"), InfLossRanker)
        assert isinstance(make_ranker("twostep"), TwoStepRanker)
        assert isinstance(make_ranker("holistic"), HolisticRanker)

    def test_unknown_method_raises(self):
        with pytest.raises(DebuggingError, match="unknown method"):
            make_ranker("magic")

    def test_kwargs_passed(self):
        ranker = make_ranker("twostep", ambiguity_cap=7)
        assert ranker.ambiguity_cap == 7


class TestDebuggerValidation:
    def test_complaint_methods_need_cases(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        with pytest.raises(DebuggingError, match="complaint"):
            RainDebugger(db, "m", X, y, [], method="holistic")

    def test_loss_without_cases_allowed(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        debugger = RainDebugger(db, "m", X, y, [], method="loss")
        report = debugger.run(max_removals=10)
        assert len(report.removal_order) == 10

    def test_mismatched_shapes_raise(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        with pytest.raises(DebuggingError, match="rows"):
            RainDebugger(db, "m", X, y[:-1], [case])

    def test_bad_query_type_raises(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        bad = ComplaintCase.__new__(ComplaintCase)
        bad.query = 123
        bad.complaints = case.complaints
        with pytest.raises(DebuggingError, match="SQL text or a Plan"):
            RainDebugger(db, "m", X, y, [bad])

    def test_bad_budget_raises(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        debugger = RainDebugger(db, "m", X, y, [case], method="holistic")
        with pytest.raises(DebuggingError):
            debugger.run(max_removals=0)
        with pytest.raises(DebuggingError):
            debugger.run(max_removals=10, k_per_iteration=-1)


class TestLoop:
    def test_holistic_finds_corruptions(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        debugger = RainDebugger(db, "m", X, y, [case], method="holistic", rng=0)
        report = debugger.run(max_removals=20, k_per_iteration=5)
        assert report.method == "holistic"
        assert report.auccr(corrupted) > 0.6

    def test_holistic_beats_loss(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        theta = model.get_params()
        holistic = RainDebugger(db, "m", X, y, [case], method="holistic", rng=0).run(
            max_removals=20, k_per_iteration=5
        )
        model.set_params(theta)
        loss = RainDebugger(db, "m", X, y, [case], method="loss", rng=0).run(
            max_removals=20, k_per_iteration=5
        )
        assert holistic.auccr(corrupted) > loss.auccr(corrupted)

    def test_removal_order_unique_and_valid(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        report = RainDebugger(db, "m", X, y, [case], method="holistic", rng=0).run(
            max_removals=15, k_per_iteration=4
        )
        assert len(set(report.removal_order)) == len(report.removal_order)
        assert all(0 <= i < len(X) for i in report.removal_order)

    def test_iteration_records_and_timings(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        report = RainDebugger(db, "m", X, y, [case], method="holistic", rng=0).run(
            max_removals=10, k_per_iteration=5
        )
        assert len(report.iterations) >= 2
        for record in report.iterations:
            if record.removed:
                assert set(record.timings) >= {"train", "execute", "encode", "rank"}
        assert report.timings["train"] > 0

    def test_stop_when_satisfied(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        current = None
        # Complain about the *current* value: satisfied immediately.
        from repro.relational import Executor, plan_sql

        result = Executor(db).execute(plan_sql(case.query, db), debug=True)
        current = result.scalar("count")
        satisfied_case = ComplaintCase(
            case.query,
            [ValueComplaint(column="count", op="=", value=current, row_index=0)],
        )
        debugger = RainDebugger(
            db, "m", X, y, [satisfied_case], method="holistic",
            stop_when_satisfied=True, rng=0,
        )
        report = debugger.run(max_removals=50)
        assert report.stopped_reason == "complaints_satisfied"
        assert report.removal_order == []

    def test_twostep_runs(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        debugger = RainDebugger(
            db, "m", X, y, [case], method="twostep", rng=0,
            ranker_kwargs={"ambiguity_cap": 2, "time_limit": 15.0},
        )
        report = debugger.run(max_removals=10, k_per_iteration=5)
        assert report.method == "twostep"
        assert len(report.removal_order) > 0
        assert "ambiguity" in report.iterations[0].diagnostics

    def test_auto_prefers_holistic_for_ambiguous_count(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        debugger = RainDebugger(db, "m", X, y, [case], method="auto", rng=0)
        assert debugger.choose_method() == "holistic"

    def test_auto_prefers_twostep_for_unique_fix(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        # A point complaint has a unique fix → TwoStep.
        result_site_row = 0
        point_case = ComplaintCase(
            case.query, [PredictionComplaint("Q", result_site_row, 1)]
        )
        debugger = RainDebugger(db, "m", X, y, [point_case], method="auto", rng=0)
        assert debugger.choose_method() == "twostep"

    def test_infloss_runs_small(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        debugger = RainDebugger(
            db, "m", X, y, [case], method="infloss", rng=0,
            ranker_kwargs={"max_records": 30},
        )
        report = debugger.run(max_removals=5, k_per_iteration=5)
        assert len(report.removal_order) == 5

    def test_exhausting_training_set(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        small_X, small_y = X[:12], y[:12]
        report = RainDebugger(
            db, "m", small_X, small_y, [case], method="loss", rng=0
        ).run(max_removals=12, k_per_iteration=5)
        assert report.stopped_reason in ("exhausted", "budget")
        assert len(report.removal_order) == 12

    def test_multiple_cases_combined(self, debug_setting):
        db, model, X, y, corrupted, case = debug_setting
        report = RainDebugger(
            db, "m", X, y, [case, case], method="holistic", rng=0
        ).run(max_removals=10, k_per_iteration=5)
        assert len(report.removal_order) == 10
