"""Metrics: recall curves, AUCCR, precision/recall at k."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    auccr,
    auccr_normalized,
    precision_at_k,
    recall_at_k,
    recall_curve,
)


class TestRecallCurve:
    def test_perfect_ranking(self):
        curve = recall_curve([3, 1, 4], [1, 3, 4])
        np.testing.assert_allclose(curve, [1 / 3, 2 / 3, 1.0])

    def test_worst_ranking(self):
        curve = recall_curve([10, 11, 12], [1, 2, 3])
        np.testing.assert_allclose(curve, [0, 0, 0])

    def test_interleaved(self):
        curve = recall_curve([9, 1, 8, 2], [1, 2], k_max=4)
        np.testing.assert_allclose(curve, [0, 0.5, 0.5, 1.0])

    def test_short_removal_sequence_flattens(self):
        curve = recall_curve([1], [1, 2, 3])
        np.testing.assert_allclose(curve, [1 / 3, 1 / 3, 1 / 3])

    def test_monotone_nondecreasing(self):
        curve = recall_curve([5, 2, 9, 1, 7], [1, 2, 5], k_max=5)
        assert np.all(np.diff(curve) >= 0)

    def test_empty_corruptions_raise(self):
        with pytest.raises(ValueError, match="non-empty"):
            recall_curve([1, 2], [])

    def test_bad_k_raises(self):
        with pytest.raises(ValueError, match="positive"):
            recall_curve([1], [1], k_max=0)


class TestAUCCR:
    def test_paper_formula(self):
        recalls = np.asarray([0.5, 1.0])
        assert auccr(recalls) == pytest.approx(2 * 0.75)

    def test_normalized_perfect_is_one(self):
        for k in (1, 3, 10, 57):
            perfect = np.arange(1, k + 1) / k
            assert auccr_normalized(perfect) == pytest.approx(1.0)

    def test_normalized_zero(self):
        assert auccr_normalized(np.zeros(5)) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            auccr(np.asarray([]))

    @given(st.integers(2, 30), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_normalized_bounded(self, k, seed):
        rng = np.random.default_rng(seed)
        order = rng.permutation(100).tolist()
        corrupted = rng.choice(100, size=k, replace=False).tolist()
        curve = recall_curve(order, corrupted)
        value = auccr_normalized(curve)
        assert 0.0 <= value <= 1.0 + 1e-9


class TestAtK:
    def test_precision_at_k(self):
        assert precision_at_k([1, 2, 9], [1, 2, 3], 2) == 1.0
        assert precision_at_k([1, 9, 2], [1, 2, 3], 2) == 0.5

    def test_recall_at_k(self):
        assert recall_at_k([1, 9, 2], [1, 2], 3) == 1.0
        assert recall_at_k([9, 8], [1, 2], 2) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            precision_at_k([1], [1], 0)
        with pytest.raises(ValueError):
            recall_at_k([1], [], 1)
