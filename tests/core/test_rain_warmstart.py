"""Warm-started Rain iterations: same removal orders, carried CG state.

The regression contract: ``warm_start_cg=True`` (the default) must
reproduce the removal orders of cold-started runs bit-for-bit — warm starts
change where CG *starts*, not the tolerance it converges to, and the score
gaps Rain ranks on sit far above the solver tolerance.  Checked here on
scaled-down versions of the paper's fig4 (DBLP count complaint) and fig6
(MNIST count complaint) configurations plus the InfLoss block path.
"""

import numpy as np
import pytest

from repro.core import RainDebugger
from repro.influence import PerSampleGradCache
from repro.ml import LogisticRegression


def run_pair(factory, method, ranker_kwargs=None, max_removals=20, k=5):
    """Run the same debugging problem cold- and warm-started."""
    orders = {}
    for warm in (False, True):
        db, model_name, X, y, cases = factory()
        debugger = RainDebugger(
            db, model_name, X, y, cases, method=method, rng=0,
            warm_start_cg=warm, ranker_kwargs=dict(ranker_kwargs or {}),
        )
        report = debugger.run(max_removals=max_removals, k_per_iteration=k)
        orders[warm] = report
    return orders[False], orders[True]


@pytest.fixture()
def dblp_factory():
    """A scaled-down fig4 configuration (DBLP count complaint)."""
    from repro.experiments.common import build_dblp_setting

    def factory():
        setting = build_dblp_setting(0.5, n_train=120, n_query=80, seed=0)
        return (
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, [setting.case],
        )

    return factory


@pytest.fixture()
def mnist_factory():
    """A scaled-down fig6-style configuration (MNIST count complaint)."""
    from repro.experiments.mnist_common import build_count_setting

    def factory():
        setting = build_count_setting(
            corruption_rate=0.5, n_train=80, n_query=50,
            model_kind="logistic", seed=0,
        )
        return (
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, setting.cases,
        )

    return factory


class TestWarmStartRegression:
    def test_holistic_dblp_identical_removal_order(self, dblp_factory):
        cold, warm = run_pair(dblp_factory, "holistic")
        assert cold.removal_order == warm.removal_order
        assert cold.removal_order  # non-degenerate

    def test_infloss_dblp_identical_removal_order(self, dblp_factory):
        cold, warm = run_pair(dblp_factory, "infloss", max_removals=15)
        assert cold.removal_order == warm.removal_order

    def test_holistic_mnist_identical_removal_order(self, mnist_factory):
        cold, warm = run_pair(mnist_factory, "holistic", max_removals=10)
        assert cold.removal_order == warm.removal_order

    def test_twostep_identical_removal_order(self, dblp_factory):
        cold, warm = run_pair(
            dblp_factory, "twostep",
            ranker_kwargs={"ambiguity_cap": 2, "time_limit": 15.0},
            max_removals=10,
        )
        assert cold.removal_order == warm.removal_order

    def test_warm_run_records_cg_diagnostics(self, dblp_factory):
        _, warm = run_pair(dblp_factory, "holistic", max_removals=10)
        ranked = [record for record in warm.iterations if record.removed]
        assert ranked
        for record in ranked:
            assert "cg_iterations" in record.diagnostics
            assert record.diagnostics["cg_converged"]

    def test_infloss_block_diagnostics_cover_all_records(self, dblp_factory):
        _, warm = run_pair(dblp_factory, "infloss", max_removals=10)
        ranked = [record for record in warm.iterations if record.removed]
        assert ranked
        n_active = 120
        for record in ranked:
            block = record.diagnostics["block_cg"]
            assert block["columns"] == n_active
            assert record.diagnostics["cg_solves"] == {"scalar": 0, "block": 1}
            n_active -= len(record.removed)


class TestPerSampleGradCache:
    def make_model(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 4))
        y = (X @ rng.normal(size=4) > 0).astype(int)
        model = LogisticRegression((0, 1), n_features=4, l2=1e-2)
        model.fit(X, y, warm_start=False)
        return model, X, y

    def test_hit_on_same_params_and_rows(self):
        model, X, y = self.make_model()
        cache = PerSampleGradCache()
        row_ids = np.arange(40)
        first = cache.get(model, X, y, row_ids)
        second = cache.get(model, X, y, row_ids)
        assert cache.hits == 1 and cache.misses == 1
        np.testing.assert_array_equal(first, second)

    def test_row_subset_reuses_cached_matrix(self):
        model, X, y = self.make_model()
        cache = PerSampleGradCache()
        row_ids = np.arange(40)
        full = cache.get(model, X, y, row_ids)
        survivors = np.delete(row_ids, [3, 17, 30])
        subset = cache.get(model, X[survivors], y[survivors], survivors)
        assert cache.hits == 1
        np.testing.assert_array_equal(subset, full[survivors])
        np.testing.assert_array_equal(
            subset, model.per_sample_grads(X[survivors], y[survivors])
        )

    def test_param_change_invalidates(self):
        model, X, y = self.make_model()
        cache = PerSampleGradCache()
        row_ids = np.arange(40)
        cache.get(model, X, y, row_ids)
        model.set_params(model.get_params() + 0.01)
        fresh = cache.get(model, X, y, row_ids)
        assert cache.misses == 2
        np.testing.assert_array_equal(fresh, model.per_sample_grads(X, y))

    def test_unknown_rows_miss(self):
        model, X, y = self.make_model()
        cache = PerSampleGradCache()
        cache.get(model, X[:20], y[:20], np.arange(20))
        cache.get(model, X, y, np.arange(40))  # superset: must recompute
        assert cache.misses == 2

    def test_invalidate_clears_state(self):
        model, X, y = self.make_model()
        cache = PerSampleGradCache()
        cache.get(model, X, y, np.arange(40))
        cache.invalidate()
        cache.get(model, X, y, np.arange(40))
        assert cache.misses == 2 and cache.hits == 0
