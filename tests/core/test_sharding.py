"""The sharded serving layer's determinism contract.

The hard rule under test: **worker count never changes the answer.**
Sharded runs (2 and 4 workers) must produce removal orders bit-identical
to the serial loop on the fig8 multiquery workload, the per-iteration
plan cache must execute each distinct plan exactly once, and the shard
bookkeeping helpers must be worker-invariant pure functions.
"""

import numpy as np
import pytest

from repro.core import RainDebugger, WarmStartState
from repro.core.sharding import (
    execute_cases,
    fixed_shards,
    resolve_workers,
    run_sharded,
    spawn_generators,
)
from repro.errors import DebuggingError
from repro.experiments.fig8_multiquery import build_adult_setting
from repro.experiments.serving import build_serving_setting
from repro.relational import Executor, plan_sql
from repro.relational.algebra import plan_fingerprint
from repro.relational.executor import ExecutionCache


# One module-level SeedSequence; every consumer spawns its own child
# stream.  Module-level literal seeds previously aliased RNG streams
# across the thread-pool tests (the setting builder, the debugger run
# RNG, and the serving workload all drew from seed 0), which is exactly
# the kind of accidental coupling the sharded layer's own
# ``spawn_generators`` exists to prevent.
MODULE_SEED = np.random.SeedSequence(987654321)


def _spawned_seed(child: np.random.SeedSequence) -> int:
    return int(child.generate_state(1)[0] % 2**31)


@pytest.fixture(scope="module")
def seed_streams():
    setting_ss, debugger_ss, serving_ss = MODULE_SEED.spawn(3)
    return {
        "setting": _spawned_seed(setting_ss),
        "debugger": _spawned_seed(debugger_ss),
        "serving": _spawned_seed(serving_ss),
    }


@pytest.fixture(scope="module")
def adult_setting(seed_streams):
    return build_adult_setting(
        0.5, n_train=200, n_query=300, seed=seed_streams["setting"]
    )


def run_debugger(setting, cases, n_workers, method="holistic", rk=None,
                 max_removals=20, initial_params=None, rng=0):
    if initial_params is not None:
        setting.model.set_params(initial_params)
    debugger = RainDebugger(
        setting.database, "income", setting.X_train, setting.y_corrupted,
        cases, method=method, rng=rng, ranker_kwargs=dict(rk or {}),
        n_workers=n_workers,
    )
    return debugger.run(max_removals=max_removals, k_per_iteration=10)


class TestShardedEqualsSerial:
    """Removal orders are identical at every worker count."""

    def test_holistic_two_and_four_workers(self, adult_setting, seed_streams):
        setting = adult_setting
        cases = [setting.gender_case, setting.age_case]
        rng = seed_streams["debugger"]
        initial = setting.model.get_params()
        serial = run_debugger(setting, cases, 0, initial_params=initial, rng=rng)
        assert serial.removal_order  # non-degenerate workload
        for n_workers in (2, 4):
            sharded = run_debugger(
                setting, cases, n_workers, initial_params=initial, rng=rng
            )
            assert sharded.removal_order == serial.removal_order, n_workers

    def test_per_query_solves_with_solve_shards(self, adult_setting, seed_streams):
        setting = adult_setting
        cases = [setting.gender_case, setting.age_case]
        rng = seed_streams["debugger"]
        rk = {"per_query_solves": True, "solve_shard_size": 1}
        initial = setting.model.get_params()
        serial = run_debugger(
            setting, cases, 0, rk=rk, initial_params=initial, rng=rng
        )
        for n_workers in (2, 4):
            sharded = run_debugger(
                setting, cases, n_workers, rk=rk, initial_params=initial, rng=rng
            )
            assert sharded.removal_order == serial.removal_order, n_workers
            diag = sharded.iterations[0].diagnostics
            assert diag["solve_shards"] == 2

    def test_twostep_sharded_rng_stays_in_case_order(
        self, adult_setting, seed_streams
    ):
        setting = adult_setting
        cases = [setting.gender_case, setting.age_case]
        rng = seed_streams["debugger"]
        rk = {"ambiguity_cap": 3, "time_limit": 10.0}
        initial = setting.model.get_params()
        serial = run_debugger(
            setting, cases, 0, method="twostep", rk=rk,
            max_removals=10, initial_params=initial, rng=rng,
        )
        sharded = run_debugger(
            setting, cases, 2, method="twostep", rk=rk,
            max_removals=10, initial_params=initial, rng=rng,
        )
        assert sharded.removal_order == serial.removal_order
        assert (
            [r.diagnostics.get("ambiguity") for r in sharded.iterations]
            == [r.diagnostics.get("ambiguity") for r in serial.iterations]
        )

    def test_smoke_two_workers_serving_setting(self, seed_streams):
        """Fast tier-1 smoke: the full serving workload at n_workers=2."""
        setting = build_serving_setting(
            0.5, n_train=120, n_query=300, seed=seed_streams["serving"]
        )
        initial = setting.model.get_params()
        sharded = run_debugger(
            setting, setting.cases, 2, max_removals=10, initial_params=initial
        )
        serial = run_debugger(
            setting, setting.cases, 0, max_removals=10, initial_params=initial
        )
        assert sharded.removal_order == serial.removal_order
        cache = sharded.iterations[0].diagnostics["execute_cache"]
        assert cache["n_distinct_plans"] == 2
        assert cache["cache_misses"] == 2
        assert cache["cache_hits"] == len(setting.cases)


class TestExecutionCache:
    def test_same_plan_executes_once(self, adult_setting):
        database = adult_setting.database
        executor = Executor(database)
        plan_a = plan_sql(
            "SELECT AVG(predict(*)) FROM adult GROUP BY gender", database
        )
        plan_b = plan_sql(
            "SELECT AVG(predict(*)) FROM adult GROUP BY gender", database
        )
        assert plan_a is not plan_b
        cache = ExecutionCache(executor)
        result_a = cache.fetch(plan_a)
        result_b = cache.fetch(plan_b)
        assert result_a is result_b
        assert cache.stats() == {"hits": 1, "misses": 1}
        # The shared pool is frozen exactly once and reused.
        assert result_a.pool.frozen() is result_b.pool.frozen()

    def test_tree_mode_never_caches(self, adult_setting):
        executor = Executor(adult_setting.database)
        plan = plan_sql(
            "SELECT AVG(predict(*)) FROM adult GROUP BY gender",
            adult_setting.database,
        )
        cache = ExecutionCache(executor, provenance="tree")
        assert cache.fetch(plan) is not cache.fetch(plan)
        assert cache.hits == 0 and cache.misses == 2

    def test_execute_cases_dedups_and_keeps_case_order(self, adult_setting):
        setting = adult_setting
        executor = Executor(setting.database)
        cases = [setting.gender_case, setting.age_case, setting.gender_case]
        plans = [plan_sql(case.query, setting.database) for case in cases]
        case_results, stats = execute_cases(
            executor, cases, plans, "compiled", n_workers=2
        )
        assert [case for case, _ in case_results] == cases
        assert case_results[0][1] is case_results[2][1]
        assert case_results[0][1] is not case_results[1][1]
        assert stats.n_distinct_plans == 2
        assert stats.cache_misses == 2
        assert stats.cache_hits == 3


class TestPlanFingerprint:
    def test_same_sql_same_fingerprint(self, adult_setting):
        database = adult_setting.database
        sql = "SELECT AVG(predict(*)) FROM adult GROUP BY gender"
        assert plan_fingerprint(plan_sql(sql, database)) == plan_fingerprint(
            plan_sql(sql, database)
        )

    def test_distinct_plans_distinct_fingerprints(self, adult_setting):
        database = adult_setting.database
        prints = {
            plan_fingerprint(plan_sql(sql, database))
            for sql in (
                "SELECT AVG(predict(*)) FROM adult GROUP BY gender",
                "SELECT AVG(predict(*)) FROM adult GROUP BY agedecade",
                "SELECT COUNT(*) FROM adult WHERE predict(*) = 1",
                "SELECT COUNT(*) FROM adult GROUP BY gender",
            )
        }
        assert len(prints) == 4


class TestShardHelpers:
    def test_resolve_workers(self, monkeypatch):
        assert resolve_workers(0) == 0
        assert resolve_workers(4) == 4
        monkeypatch.delenv("REPRO_N_WORKERS", raising=False)
        assert resolve_workers(None) == 0
        monkeypatch.setenv("REPRO_N_WORKERS", "3")
        assert resolve_workers(None) == 3
        monkeypatch.setenv("REPRO_N_WORKERS", "nope")
        with pytest.raises(DebuggingError):
            resolve_workers(None)
        with pytest.raises(DebuggingError):
            resolve_workers(-1)

    def test_tree_provenance_pins_serial(self, adult_setting):
        setting = adult_setting
        debugger = RainDebugger(
            setting.database, "income", setting.X_train, setting.y_corrupted,
            [setting.gender_case], method="holistic", rng=0,
            provenance="tree", n_workers=4,
        )
        assert debugger.n_workers == 0

    def test_fixed_shards_partition(self):
        shards = fixed_shards(7, 3)
        assert [s.tolist() for s in shards] == [[0, 1, 2], [3, 4, 5], [6]]
        np.testing.assert_array_equal(
            np.concatenate(shards), np.arange(7)
        )
        with pytest.raises(DebuggingError):
            fixed_shards(7, 0)

    def test_run_sharded_ordered_merge(self):
        items = list(range(20))
        assert run_sharded(lambda x: x * x, items, 4) == [
            x * x for x in items
        ]
        assert run_sharded(lambda x: x * x, items, 0) == [
            x * x for x in items
        ]

    def test_spawn_generators_worker_invariant(self):
        draws_a = [g.integers(1000) for g in spawn_generators(7, 4)]
        draws_b = [g.integers(1000) for g in reversed(spawn_generators(7, 4))]
        assert draws_a == list(reversed(draws_b))


class TestWarmStartStateEdgeCases:
    def test_drop_columns_empty_is_noop(self):
        warm = WarmStartState(block=np.arange(12.0).reshape(3, 4))
        before = warm.block
        warm.drop_columns(np.asarray([], dtype=np.float64))
        assert warm.block is before

    def test_drop_columns_float_positions(self):
        warm = WarmStartState(block=np.arange(12.0).reshape(3, 4))
        warm.drop_columns(np.asarray([1.0, 3.0]))
        np.testing.assert_array_equal(
            warm.block, np.arange(12.0).reshape(3, 4)[:, [0, 2]]
        )

    def test_drop_cases_realigns_q_block(self):
        warm = WarmStartState(q_block=np.arange(12.0).reshape(4, 3))
        warm.drop_cases(np.asarray([1]))
        np.testing.assert_array_equal(
            warm.q_block, np.arange(12.0).reshape(4, 3)[[0, 2, 3]]
        )
        assert warm.q_block_for(3, 3) is not None
        assert warm.q_block_for(4, 3) is None

    def test_drop_cases_none_and_empty(self):
        warm = WarmStartState()
        warm.drop_cases(np.asarray([0]))  # no q_block: no-op
        warm.q_block = np.ones((2, 3))
        warm.drop_cases(np.asarray([], dtype=np.int64))
        assert warm.q_block.shape == (2, 3)

    def test_q_block_survives_case_pruning_in_solves(self):
        """Pruning a case keeps the remaining rows warm-starting theirs."""
        warm = WarmStartState(q_block=np.vstack([np.full(3, i) for i in range(3)]))
        warm.drop_cases(np.asarray([0]))
        np.testing.assert_array_equal(warm.q_block[0], np.full(3, 1.0))

    def test_drop_cases_mid_run_keeps_q_block_consistent(self, seed_streams):
        """Regression: pruning a case mid-run must leave the per-case warm
        block consumable by the next per-query Holistic solve, and the
        warm-started scores must match a cold solve on the surviving cases.
        """
        from repro.core import make_ranker
        from repro.utils import Stopwatch

        setting = build_serving_setting(
            0.5, n_train=120, n_query=300, seed=seed_streams["serving"]
        )
        cases = setting.cases[:3]
        debugger = RainDebugger(
            setting.database, "income", setting.X_train, setting.y_corrupted,
            cases, method="holistic", rng=0,
            ranker_kwargs={"per_query_solves": True},
        )
        active = np.arange(setting.X_train.shape[0])
        X_active, y_active = setting.X_train, setting.y_corrupted
        debugger._train_stage(X_active, y_active)
        case_results, stats = debugger._execute_stage()

        # Iteration k: a real 3-case per-query solve fills the warm block.
        warm = WarmStartState()
        ranker = make_ranker("holistic", per_query_solves=True)
        ranker.scores(
            debugger._make_context(
                X_active, y_active, active, case_results, Stopwatch(), warm,
                stats,
            )
        )
        n_params = setting.model.n_params
        assert warm.q_block is not None
        assert warm.q_block.shape == (3, n_params)

        # The driver prunes case 1 mid-run.
        warm.drop_cases(np.asarray([1]))
        assert warm.q_block_for(3, n_params) is None  # stale shape refused
        assert warm.q_block_for(2, n_params) is not None

        # Iteration k+1 over the surviving cases consumes the warm rows…
        surviving = [case_results[0], case_results[2]]
        warm_scores = make_ranker("holistic", per_query_solves=True).scores(
            debugger._make_context(
                X_active, y_active, active, surviving, Stopwatch(), warm, None
            )
        )
        assert warm.q_block.shape == (2, n_params)
        # …and produces the same ranking as a cold solve (warm starts are
        # accelerators, never state the scores depend on).
        cold_scores = make_ranker("holistic", per_query_solves=True).scores(
            debugger._make_context(
                X_active, y_active, active, surviving, Stopwatch(),
                WarmStartState(), None,
            )
        )
        np.testing.assert_allclose(warm_scores, cold_scores, atol=1e-6)
