"""The async pipeline's determinism contract and failure semantics.

The hard rule mirrors sharding's: **the pipeline never changes the
answer.**  Async runs at any worker count must replay the serial loop
bit-for-bit — removal order, per-iteration removal sets, satisfied
flags, stop reason, final fitted parameters — which the shared
``DeterminismHarness`` fixture pins over methods × datasets.  The rest
of the module covers the knob resolution (``REPRO_ASYNC``), the early
exits (``stop_when_satisfied``, ``no_signal``) whose control flow the
pipeline reorders, and stage-thread failure propagation.
"""

import numpy as np
import pytest

from repro.complaints import ComplaintCase, ValueComplaint
from repro.core import PipelineState, RainDebugger, resolve_async
from repro.core.rankers import (
    HolisticRanker,
    InfLossRanker,
    LossRanker,
    TwoStepRanker,
)
from repro.errors import DebuggingError
from repro.experiments.common import build_dblp_setting
from repro.experiments.fig8_multiquery import build_adult_setting


@pytest.fixture(scope="module")
def adult_setting():
    return build_adult_setting(0.5, n_train=200, n_query=300, seed=0)


@pytest.fixture(scope="module")
def dblp_setting():
    return build_dblp_setting(0.5, n_train=150, n_query=150, seed=0)


def harness_for(determinism_harness, setting, dataset, method, rk, **kwargs):
    if dataset == "adult":
        return determinism_harness(
            setting.database,
            "income",
            setting.X_train,
            setting.y_corrupted,
            [setting.gender_case, setting.age_case],
            method=method,
            ranker_kwargs=rk,
            **kwargs,
        )
    return determinism_harness(
        setting.database,
        setting.model_name,
        setting.X_train,
        setting.y_corrupted,
        [setting.case],
        method=method,
        ranker_kwargs=rk,
        **kwargs,
    )


METHODS = [
    pytest.param("holistic", {}, id="holistic"),
    pytest.param(
        "holistic",
        {"per_query_solves": True, "solve_shard_size": 1},
        id="holistic-per-query",
    ),
    pytest.param(
        "twostep", {"ambiguity_cap": 3, "time_limit": 10.0}, id="twostep"
    ),
    pytest.param("loss", {}, id="loss"),
    pytest.param("infloss", {}, id="infloss"),
]


class TestAsyncMatchesSerial:
    """Async at 0/2/4 workers replays the serial loop bit-for-bit."""

    @pytest.mark.parametrize("dataset", ["adult", "dblp"])
    @pytest.mark.parametrize("method,rk", METHODS)
    def test_bit_identical_reports(
        self, determinism_harness, request, dataset, method, rk
    ):
        setting = request.getfixturevalue(f"{dataset}_setting")
        harness = harness_for(determinism_harness, setting, dataset, method, rk)
        golden = harness.check()
        assert golden.removal_order  # non-degenerate workload

    def test_async_timing_totals_cover_all_stages(
        self, determinism_harness, dblp_setting
    ):
        harness = harness_for(
            determinism_harness, dblp_setting, "dblp", "holistic", {}
        )
        report, _ = harness.run(n_workers=2, async_pipeline=True)
        for label in ("train", "execute", "rank"):
            assert report.timings.get(label, 0.0) > 0.0, label


class TestAsyncKnobs:
    def test_resolve_async(self, monkeypatch):
        monkeypatch.delenv("REPRO_ASYNC", raising=False)
        assert resolve_async(None) is False
        assert resolve_async(True) is True
        assert resolve_async(False) is False
        monkeypatch.setenv("REPRO_ASYNC", "1")
        assert resolve_async(None) is True
        assert resolve_async(False) is False  # explicit bool wins
        monkeypatch.setenv("REPRO_ASYNC", "0")
        assert resolve_async(None) is False

    def test_invalid_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASYNC", "yes")
        with pytest.raises(DebuggingError, match="REPRO_ASYNC"):
            resolve_async(None)

    def test_env_drives_debugger(self, dblp_setting, monkeypatch):
        setting = dblp_setting
        monkeypatch.setenv("REPRO_ASYNC", "1")
        debugger = RainDebugger(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, [setting.case], method="holistic", rng=0,
        )
        assert debugger.async_pipeline is True

    def test_tree_provenance_pins_pipeline_off(self, dblp_setting):
        setting = dblp_setting
        debugger = RainDebugger(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, [setting.case], method="holistic", rng=0,
            provenance="tree", async_pipeline=True, n_workers=4,
        )
        assert debugger.async_pipeline is False
        assert debugger.n_workers == 0

    def test_complaint_free_rankers_skip_the_execute_join(self):
        # Loss/InfLoss only need case results for the satisfied flag, so
        # the driver ranks while execute(k) is still in flight.
        assert LossRanker.uses_case_results is False
        assert InfLossRanker.uses_case_results is False
        assert HolisticRanker.uses_case_results is True
        assert TwoStepRanker.uses_case_results is True


class TestAsyncStopping:
    """Early exits whose control flow the pipeline reorders."""

    def test_stop_when_satisfied_short_circuits(self, determinism_harness):
        setting = build_dblp_setting(0.5, n_train=80, n_query=100, seed=2)
        # COUNT(*) over n_query rows can never exceed n_query: satisfied
        # from iteration one, so both loops must stop without removing.
        vacuous = ComplaintCase(
            setting.query,
            [
                ValueComplaint(
                    column="count",
                    op="<=",
                    value=setting.X_query.shape[0],
                    row_index=0,
                )
            ],
        )
        harness = determinism_harness(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, [vacuous], method="holistic",
            stop_when_satisfied=True,
        )
        golden = harness.check()
        assert golden.stopped_reason == "complaints_satisfied"
        assert golden.removal_order == []
        assert golden.iterations[-1].complaints_satisfied

    def test_stop_when_satisfied_still_replays_while_unsatisfied(
        self, determinism_harness, dblp_setting
    ):
        harness = harness_for(
            determinism_harness, dblp_setting, "dblp", "holistic", {},
            stop_when_satisfied=True,
        )
        golden = harness.check()
        assert golden.removal_order

    def test_no_signal_stops_both_loops(self, determinism_harness):
        setting = build_dblp_setting(0.5, n_train=40, n_query=60, seed=3)
        # Identical rows + identical labels: every per-sample loss ties,
        # so the ranker has no signal and both loops must refuse to
        # remove arbitrary records.
        X_flat = np.zeros_like(setting.X_train)
        y_const = setting.y_corrupted.copy()
        y_const[:] = "match"
        harness = determinism_harness(
            setting.database, setting.model_name, X_flat, y_const,
            [setting.case], method="loss", max_removals=10,
        )
        golden = harness.check()
        assert golden.stopped_reason == "no_signal"
        assert golden.removal_order == []


class TestPipelineFailures:
    def test_stage_exception_propagates_to_the_driver(self, monkeypatch):
        setting = build_dblp_setting(0.5, n_train=60, n_query=80, seed=1)
        debugger = RainDebugger(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, [setting.case], method="holistic", rng=0,
            async_pipeline=True,
        )

        def boom(*args, **kwargs):
            raise RuntimeError("executor down")

        monkeypatch.setattr(debugger.executor, "execute", boom)
        with pytest.raises(RuntimeError, match="executor down"):
            debugger.run(max_removals=10)

    def test_pipeline_state_is_fifo(self):
        order = []
        with PipelineState() as pipe:
            train = pipe.submit_train(lambda: order.append("train") or 1)
            execute = pipe.submit_execute(lambda: order.append("execute") or 2)
            assert train.result() == 1
            assert execute.result() == 2
        assert order == ["train", "execute"]
