"""Persistent HiGHS LP backend vs. the scipy ``linprog`` reference.

The cold persistent backend must return the same optimal vertices as the
per-call reference (both are HiGHS underneath), so branch & bound and the
optimum enumeration behave bit-identically across backends.
"""

import numpy as np
import pytest

from repro.errors import ILPError, InfeasibleError
from repro.ilp.model import BinaryProgram
from repro.ilp.solver import (
    PersistentLP,
    _highs_core,
    _lp_relaxation,
    enumerate_optima,
    solve,
)

pytestmark = pytest.mark.skipif(
    _highs_core is None, reason="HiGHS bindings unavailable"
)


def flip_program(n=6, target=2):
    """Minimize flips subject to Σ x_i = target (highly degenerate)."""
    program = BinaryProgram()
    for index in range(n):
        program.add_var(f"x{index}")
    program.set_objective({index: 1.0 for index in range(n)})
    program.add_constraint({index: 1.0 for index in range(n)}, "=", float(target))
    return program


def mixed_program():
    program = BinaryProgram()
    for index in range(4):
        program.add_var(f"x{index}")
    program.set_objective({0: 2.0, 1: 1.0, 2: 3.0, 3: 1.0}, constant=0.5)
    program.add_constraint({0: 1.0, 1: 1.0}, ">=", 1.0)
    program.add_constraint({2: 1.0, 3: 1.0}, ">=", 1.0)
    program.add_constraint({0: 1.0, 2: 1.0, 3: -1.0}, "<=", 1.0)
    return program


class TestVertexParity:
    @pytest.mark.parametrize("fixed", [{}, {0: 1}, {1: 0, 3: 1}])
    def test_cold_persistent_matches_linprog(self, fixed):
        program = mixed_program()
        reference = _lp_relaxation(program, fixed)
        persistent = PersistentLP(program).solve_relaxation(fixed)
        assert (reference is None) == (persistent is None)
        if reference is not None:
            assert persistent[0] == pytest.approx(reference[0], abs=1e-8)
            np.testing.assert_allclose(persistent[1], reference[1], atol=1e-8)

    def test_bounds_restored_after_solve(self):
        program = mixed_program()
        lp = PersistentLP(program)
        lp.solve_relaxation({0: 1})
        no_pin = lp.solve_relaxation({})
        reference = _lp_relaxation(program, {})
        np.testing.assert_allclose(no_pin[1], reference[1], atol=1e-8)

    def test_infeasible_returns_none(self):
        program = BinaryProgram()
        program.add_var("x")
        program.add_constraint({0: 1.0}, ">=", 2.0)
        assert PersistentLP(program).solve_relaxation({}) is None


class TestBackendEquivalence:
    def test_solve_agrees_across_backends(self):
        program = mixed_program()
        fast = solve(program, lp_backend="highs")
        slow = solve(program, lp_backend="linprog")
        assert fast.objective == pytest.approx(slow.objective)
        np.testing.assert_array_equal(fast.values, slow.values)

    def test_enumeration_sequence_identical(self):
        program = flip_program(n=6, target=2)
        fast = enumerate_optima(program, max_solutions=10, lp_backend="highs")
        slow = enumerate_optima(program, max_solutions=10, lp_backend="linprog")
        assert len(fast) == len(slow)
        for a, b in zip(fast, slow):
            assert a.objective == pytest.approx(b.objective)
            np.testing.assert_array_equal(a.values, b.values)

    def test_warm_enumeration_is_canonically_ordered(self):
        """Warm enumeration == lexicographically-sorted cold enumeration.

        Warm solves reuse the previous basis, so on degenerate LPs they can
        discover tied optima in a state-dependent order.  The backend pins
        them down by sorting the complete enumeration by variable
        assignment; the cold backends keep raw discovery order, so the warm
        result must equal the canonically-sorted cold one.
        """
        program = flip_program(n=6, target=2)
        warm = enumerate_optima(
            program, max_solutions=100, lp_backend="highs-warm"
        )
        cold = enumerate_optima(program, max_solutions=100, lp_backend="highs")
        canonical = sorted(cold, key=lambda solution: solution.values.tolist())
        assert len(warm) == len(canonical) == 15  # C(6, 2) tied optima
        for a, b in zip(warm, canonical):
            assert a.objective == pytest.approx(b.objective)
            np.testing.assert_array_equal(a.values, b.values)

    def test_warm_enumeration_order_stable_across_runs(self):
        program = flip_program(n=5, target=2)
        first = enumerate_optima(
            program, max_solutions=100, lp_backend="highs-warm"
        )
        second = enumerate_optima(
            program.clone(), max_solutions=100, lp_backend="highs-warm"
        )
        assert [a.values.tolist() for a in first] == [
            b.values.tolist() for b in second
        ]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ILPError):
            solve(mixed_program(), lp_backend="gurobi")

    def test_infeasible_program_raises(self):
        program = BinaryProgram()
        program.add_var("x")
        program.add_constraint({0: 1.0}, ">=", 2.0)
        with pytest.raises(InfeasibleError):
            solve(program, lp_backend="highs")


class TestProgramPlumbing:
    def test_dense_constraint_matches_dict_form(self):
        sparse = flip_program()
        dense = flip_program()
        values = np.asarray([1.0, -1.0, 0.0, 2.0, 0.0, -1.0])
        sparse.add_constraint(
            {i: v for i, v in enumerate(values) if v != 0.0}, ">=", -1.0
        )
        dense.add_dense_constraint(values, ">=", -1.0)
        assert sparse.constraints[-1] == dense.constraints[-1]
        for a, b in zip(sparse.rows(), dense.rows()):
            np.testing.assert_array_equal(a, b)

    def test_clone_is_independent(self):
        program = flip_program()
        copy = program.clone()
        copy.add_constraint({0: 1.0}, "=", 1.0)
        assert len(copy.constraints) == len(program.constraints) + 1
        x = np.asarray([0, 1, 1, 0, 0, 0])
        assert program.is_feasible(x)
        assert not copy.is_feasible(x)

    def test_vectorized_feasibility(self):
        program = mixed_program()
        assert program.is_feasible(np.asarray([1, 0, 0, 1]))
        assert not program.is_feasible(np.asarray([0, 0, 0, 1]))
        program.fix(1, 1)
        assert not program.is_feasible(np.asarray([1, 0, 0, 1]))
