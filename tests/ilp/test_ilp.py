"""ILP substrate: model validation, B&B vs. brute force, optima enumeration."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ILPError, InfeasibleError
from repro.ilp import BinaryProgram, enumerate_optima, pick_solution, solve


def brute_force(program: BinaryProgram):
    """All optimal assignments by exhaustive enumeration."""
    best_value = None
    best: list[tuple] = []
    for bits in itertools.product((0, 1), repeat=program.n_vars):
        if not program.is_feasible(bits):
            continue
        value = program.objective_value(bits)
        if best_value is None or value < best_value - 1e-9:
            best_value = value
            best = [bits]
        elif abs(value - best_value) <= 1e-9:
            best.append(bits)
    return best_value, best


class TestModel:
    def test_variable_indexing(self):
        program = BinaryProgram()
        assert program.add_var("a") == 0
        assert program.add_var() == 1
        assert program.name(0) == "a"
        assert program.name(1) == "x1"

    def test_bad_sense_raises(self):
        program = BinaryProgram()
        program.add_var()
        with pytest.raises(ILPError, match="sense"):
            program.add_constraint({0: 1.0}, "==", 1.0)

    def test_out_of_range_index_raises(self):
        program = BinaryProgram()
        with pytest.raises(ILPError, match="range"):
            program.add_constraint({3: 1.0}, "<=", 1.0)

    def test_fix_validation(self):
        program = BinaryProgram()
        index = program.add_var()
        with pytest.raises(ILPError):
            program.fix(index, 2)

    def test_feasibility_check(self):
        program = BinaryProgram()
        a, b = program.add_var(), program.add_var()
        program.add_constraint({a: 1.0, b: 1.0}, "<=", 1.0)
        assert program.is_feasible([1, 0])
        assert not program.is_feasible([1, 1])

    def test_objective_value(self):
        program = BinaryProgram()
        a, b = program.add_var(), program.add_var()
        program.set_objective({a: 2.0, b: -1.0}, constant=5.0)
        assert program.objective_value([1, 1]) == 6.0


class TestSolver:
    def test_simple_cover(self):
        # min x0 + x1 + x2 s.t. x0 + x1 >= 1, x1 + x2 >= 1
        program = BinaryProgram()
        x = [program.add_var() for _ in range(3)]
        program.set_objective({i: 1.0 for i in x})
        program.add_constraint({x[0]: 1, x[1]: 1}, ">=", 1)
        program.add_constraint({x[1]: 1, x[2]: 1}, ">=", 1)
        solution = solve(program)
        assert solution.objective == pytest.approx(1.0)
        assert solution.values[x[1]] == 1

    def test_equality_constraint(self):
        program = BinaryProgram()
        x = [program.add_var() for _ in range(4)]
        program.set_objective({i: float(i + 1) for i in x})
        program.add_constraint({i: 1.0 for i in x}, "=", 2.0)
        solution = solve(program)
        assert solution.objective == pytest.approx(1 + 2)
        assert solution.values.sum() == 2

    def test_infeasible_raises(self):
        program = BinaryProgram()
        a = program.add_var()
        program.add_constraint({a: 1.0}, ">=", 2.0)
        with pytest.raises(InfeasibleError):
            solve(program)

    def test_fixed_vars_respected(self):
        program = BinaryProgram()
        a, b = program.add_var(), program.add_var()
        program.set_objective({a: 1.0, b: 1.0})
        program.add_constraint({a: 1.0, b: 1.0}, ">=", 1.0)
        program.fix(a, 0)
        solution = solve(program)
        assert solution.values[a] == 0
        assert solution.values[b] == 1

    def test_negative_objective_coefficients(self):
        program = BinaryProgram()
        a, b = program.add_var(), program.add_var()
        program.set_objective({a: -3.0, b: -1.0})
        program.add_constraint({a: 1.0, b: 1.0}, "<=", 1.0)
        solution = solve(program)
        assert solution.values[a] == 1 and solution.values[b] == 0

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        program = BinaryProgram()
        for _ in range(n):
            program.add_var()
        program.set_objective(
            {i: float(rng.integers(-3, 4)) for i in range(n)}
        )
        for _ in range(int(rng.integers(1, 4))):
            coeffs = {i: float(rng.integers(-2, 3)) for i in range(n)}
            sense = ["<=", ">=", "="][int(rng.integers(3))]
            rhs = float(rng.integers(-2, 4))
            program.add_constraint(coeffs, sense, rhs)
        expected_value, expected_solutions = brute_force(program)
        if expected_value is None:
            with pytest.raises(InfeasibleError):
                solve(program)
            return
        solution = solve(program)
        assert solution.objective == pytest.approx(expected_value, abs=1e-6)
        assert tuple(solution.values.tolist()) in {
            tuple(s) for s in expected_solutions
        }


class TestEnumeration:
    def count_program(self, n, k):
        """min #flips subject to: exactly k of n vars set (all start at 0)."""
        program = BinaryProgram()
        x = [program.add_var() for _ in range(n)]
        program.set_objective({i: 1.0 for i in x})
        program.add_constraint({i: 1.0 for i in x}, "=", float(k))
        return program

    def test_enumerates_all_optima(self):
        from math import comb

        program = self.count_program(5, 2)
        solutions = enumerate_optima(program, max_solutions=100)
        assert len(solutions) == comb(5, 2)
        unique = {tuple(s.values.tolist()) for s in solutions}
        assert len(unique) == comb(5, 2)
        for s in solutions:
            assert s.objective == pytest.approx(2.0)

    def test_enumeration_respects_cap(self):
        program = self.count_program(6, 3)
        solutions = enumerate_optima(program, max_solutions=4)
        assert len(solutions) == 4

    def test_unique_solution(self):
        program = self.count_program(4, 4)
        solutions = enumerate_optima(program, max_solutions=10)
        assert len(solutions) == 1

    def test_enumeration_does_not_mutate_program(self):
        program = self.count_program(4, 2)
        n_constraints = len(program.constraints)
        enumerate_optima(program, max_solutions=10)
        assert len(program.constraints) == n_constraints

    def test_pick_solution_seeded(self):
        program = self.count_program(5, 2)
        solutions = enumerate_optima(program, max_solutions=100)
        a = pick_solution(solutions, np.random.default_rng(0))
        b = pick_solution(solutions, np.random.default_rng(0))
        assert np.array_equal(a.values, b.values)

    def test_pick_from_empty_raises(self):
        with pytest.raises(InfeasibleError):
            pick_solution([], np.random.default_rng(0))
