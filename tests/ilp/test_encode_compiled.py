"""Compiled-vs-tree ILP encode equivalence on fig6-shaped join plans.

The array-native :class:`CompiledILPEncoder` must produce the *same
program* as the tree-walking golden reference — same variables in the
same order, same constraint rows with the same coefficient order and
right-hand sides — because constraint/variable order changes which tied
optimum the solver enumerates first, and TwoStep removal orders must be
bit-identical under ``REPRO_ILP_ENCODER``.  A seeded generator samples
AND/OR-heavy predicates over an L ⋈ R equi-join (the MNIST-join shape of
the paper's Figure 6) under selection / COUNT / grouped SUM-AVG shapes,
and every sampled plan must agree on four levels:

- the emitted :class:`BinaryProgram` (exact, up to variable *names*);
- feasibility verdicts on sampled 0/1 assignments;
- the optimal objective and the enumerated solution sequence;
- end-to-end TwoStep removal orders.
"""

import numpy as np
import pytest

from repro.complaints import ComplaintCase, TupleComplaint, ValueComplaint
from repro.core.rain import RainDebugger
from repro.errors import ILPError
from repro.ilp import (
    ENCODER_ENV_VAR,
    CompiledILPEncoder,
    TiresiasEncoder,
    enumerate_optima,
    make_encoder,
    resolve_ilp_encoder,
)
from repro.relational import (
    Aggregate,
    AggSpec,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Col,
    Const,
    Database,
    Executor,
    ModelPredict,
    Filter,
    Join,
    Relation,
    Scan,
)

SEEDS = list(range(8))


@pytest.fixture(scope="module")
def join_db():
    from repro.ml import LogisticRegression

    rng = np.random.default_rng(23)
    n, d = 60, 4
    X = rng.normal(size=(n, d))
    w = np.asarray([1.5, -2.0, 0.5, 0.0])
    y = (X @ w + 0.2 * rng.normal(size=n) > 0).astype(int)
    model = LogisticRegression((0, 1), n_features=d, l2=1e-2)
    model.fit(X, y, warm_start=False)

    db = Database()
    db.add_relation(
        Relation(
            "L",
            {
                "features": rng.normal(size=(24, d)),
                "key": rng.integers(0, 6, size=24),
            },
        )
    )
    db.add_relation(
        Relation(
            "R",
            {
                "features": rng.normal(size=(16, d)),
                "key": rng.integers(0, 6, size=16),
                # Deliberately includes weights that are exactly 1.0 and
                # pairs multiplying to exactly 1.0: the mul_() constant
                # folds alias those product terms, which the compiled
                # fresh-aux bookkeeping has to reproduce.
                "weight": np.concatenate(
                    [[1.0, 2.0, 0.5], np.linspace(1.0, 2.0, 13)]
                ),
            },
        )
    )
    db.add_model("m", model)
    return db


def random_predicate(rng, depth):
    if depth == 0:
        leaf = int(rng.integers(4))
        if leaf == 0:
            return Cmp(
                "=", ModelPredict("m", Col("L.features")), Const(int(rng.integers(2)))
            )
        if leaf == 1:
            return Cmp(
                "=", ModelPredict("m", Col("R.features")), Const(int(rng.integers(2)))
            )
        if leaf == 2:
            return Cmp(
                "=",
                ModelPredict("m", Col("L.features")),
                ModelPredict("m", Col("R.features")),
            )
        return Cmp("<", Col("R.weight"), Const(float(rng.uniform(0.5, 2.0))))
    children = [
        random_predicate(rng, depth - 1) for _ in range(int(rng.integers(2, 4)))
    ]
    kind = int(rng.integers(3))
    if kind == 0:
        return BoolAnd(children)
    if kind == 1:
        return BoolOr(children)
    return BoolNot(children[0])


def random_plan(rng):
    joined = Join(
        Scan("L", "L"), Scan("R", "R"), Cmp("=", Col("L.key"), Col("R.key"))
    )
    predicate = BoolAnd(
        [
            Cmp(
                "=",
                ModelPredict("m", Col("L.features")),
                ModelPredict("m", Col("R.features")),
            ),
            random_predicate(rng, int(rng.integers(2, 4))),
        ]
    )
    filtered = Filter(joined, predicate)
    shape = int(rng.integers(3))
    if shape == 0:
        return filtered, "selection"
    if shape == 1:
        return (
            Aggregate(filtered, (), [AggSpec("count", None, "count")]),
            "count",
        )
    return (
        Aggregate(
            filtered,
            ((Col("L.key"), "key"),),
            [
                AggSpec("count", None, "count"),
                AggSpec("sum", Col("R.weight"), "total"),
                AggSpec("avg", Col("R.weight"), "mean"),
            ],
        ),
        "grouped",
    )


def complaints_for(rng, result, shape):
    relation = result.relation
    if len(relation) == 0:
        return []
    if shape == "selection":
        rows = rng.choice(
            len(relation), size=min(3, len(relation)), replace=False
        )
        return [TupleComplaint(row_index=int(row)) for row in rows]
    if shape == "count":
        current = float(relation.column("count")[0])
        return [
            ValueComplaint(column="count", op=">=", value=current + 1.0, row_index=0)
        ]
    out = []
    for row in range(min(2, len(relation))):
        count = float(relation.column("count")[row])
        total = float(relation.column("total")[row])
        mean = float(relation.column("mean")[row])
        out.append(
            ValueComplaint(column="count", op="<=", value=count - 1.0, row_index=row)
        )
        out.append(
            ValueComplaint(column="total", op=">=", value=0.5 * total, row_index=row)
        )
        out.append(
            ValueComplaint(column="mean", op="<=", value=mean + 0.1, row_index=row)
        )
    return out


def program_signature(program):
    return (
        program.n_vars,
        tuple(sorted(program.objective.items())),
        program.objective_constant,
        tuple(
            (constraint.sense, constraint.rhs, tuple(constraint.coeffs))
            for constraint in program.constraints
        ),
    )


def build_encoders(join_db, seed):
    rng = np.random.default_rng(seed)
    plan, shape = random_plan(rng)
    result = Executor(join_db).execute(plan, debug=True, provenance="compiled")
    complaints = complaints_for(rng, result, shape)
    if not complaints:
        pytest.skip("sampled plan produced an empty relation")
    tree = TiresiasEncoder(result)
    compiled = CompiledILPEncoder(result)
    for complaint in complaints:
        tree.add_complaint(complaint)
        compiled.add_complaint(complaint)
    return tree, compiled, rng


@pytest.mark.parametrize("seed", SEEDS)
class TestCompiledVsTreeProgram:
    def test_identical_program(self, join_db, seed):
        tree, compiled, _ = build_encoders(join_db, seed)
        assert program_signature(tree.program) == program_signature(
            compiled.program
        )

    def test_same_feasible_set_on_sampled_assignments(self, join_db, seed):
        tree, compiled, rng = build_encoders(join_db, seed)
        n = tree.program.n_vars
        assert compiled.program.n_vars == n
        agreed_feasible = 0
        for _ in range(64):
            x = (rng.random(n) < 0.5).astype(float)
            verdict = tree.program.is_feasible(x)
            assert compiled.program.is_feasible(x) == verdict
            agreed_feasible += int(verdict)
        # Also probe assignments that satisfy the one-hot site rows, so
        # some sampled points exercise the complaint/link rows.
        for _ in range(16):
            x = np.zeros(n)
            for site_id in tree.site_ids:
                labels = tree.classes_by_site[site_id]
                pick = labels[int(rng.integers(len(labels)))]
                x[tree.y_vars[(site_id, pick)]] = 1.0
            assert tree.program.is_feasible(x) == compiled.program.is_feasible(x)

    def test_identical_optima_enumeration(self, join_db, seed):
        tree, compiled, _ = build_encoders(join_db, seed)
        try:
            tree_solutions = enumerate_optima(
                tree.program, max_solutions=8, time_limit=20.0
            )
        except ILPError:
            with pytest.raises(ILPError):
                enumerate_optima(compiled.program, max_solutions=8, time_limit=20.0)
            return
        compiled_solutions = enumerate_optima(
            compiled.program, max_solutions=8, time_limit=20.0
        )
        assert len(tree_solutions) == len(compiled_solutions)
        for left, right in zip(tree_solutions, compiled_solutions):
            assert left.objective == right.objective
            assert np.array_equal(left.values, right.values)


class TestCrossComplaintDedup:
    def test_shared_subtrees_reuse_aux_vars(self, join_db):
        rng = np.random.default_rng(5)
        plan, _ = random_plan(rng)
        while True:
            result = Executor(join_db).execute(
                plan, debug=True, provenance="compiled"
            )
            if result.groups is not None and len(result.relation) >= 1:
                break
            plan, _ = random_plan(rng)
        count = float(result.relation.column("count")[0])
        total = float(result.relation.column("total")[0])
        encoder = CompiledILPEncoder(result)
        encoder.add_complaint(
            ValueComplaint(column="count", op="<=", value=count - 1.0, row_index=0)
        )
        created_first = encoder.aux_created
        # The SUM cell is built over the same member conditions the COUNT
        # complaint already linearized: the second complaint must reuse.
        encoder.add_complaint(
            ValueComplaint(column="total", op=">=", value=0.5 * total, row_index=0)
        )
        assert created_first > 0
        assert encoder.aux_reused > 0

    def test_tree_fallback_shares_cache_with_compiled_path(self, join_db):
        rng = np.random.default_rng(5)
        plan, _ = random_plan(rng)
        while True:
            result = Executor(join_db).execute(
                plan, debug=True, provenance="compiled"
            )
            if result.groups is not None and len(result.relation) >= 1:
                break
            plan, _ = random_plan(rng)
        count = float(result.relation.column("count")[0])
        tree = TiresiasEncoder(result)
        compiled = CompiledILPEncoder(result)
        complaint = ValueComplaint(
            column="count", op="<=", value=count - 1.0, row_index=0
        )
        tree.add_complaint(complaint)
        compiled.add_complaint(complaint)
        # Forcing the same complaint through the inherited tree walk on
        # the compiled encoder must hit the shared node-id cache instead
        # of allocating a second set of aux variables.
        before = compiled.program.n_vars
        TiresiasEncoder.add_complaint(compiled, complaint)
        assert compiled.program.n_vars == before


class TestTwoStepRemovalOrders:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_identical_removal_orders(self, join_db, seed):
        rng = np.random.default_rng(seed)
        while True:
            plan, shape = random_plan(rng)
            if shape != "selection":
                break
        result = Executor(join_db).execute(plan, debug=True, provenance="compiled")
        complaints = complaints_for(rng, result, shape)
        if not complaints:
            pytest.skip("sampled plan produced an empty relation")
        case = ComplaintCase(plan, complaints)
        X = join_db.relation("L").column("features")
        model = join_db.model("m")

        def run_with(encoder_choice):
            rng_fit = np.random.default_rng(100 + seed)
            n, d = 40, 4
            X_train = rng_fit.normal(size=(n, d))
            y_train = (X_train @ np.asarray([1.5, -2.0, 0.5, 0.0]) > 0).astype(int)
            params = model.get_params()
            try:
                debugger = RainDebugger(
                    join_db,
                    "m",
                    X_train,
                    y_train,
                    [case],
                    method="twostep",
                    rng=seed,
                    ranker_kwargs={
                        "ilp_encoder": encoder_choice,
                        "ambiguity_cap": 5,
                        "time_limit": 20.0,
                    },
                    provenance="compiled",
                )
                report = debugger.run(max_removals=6, k_per_iteration=2)
                return list(report.removal_order)
            finally:
                model.set_params(params)

        assert run_with("tree") == run_with("compiled")
        assert X.shape[1] == 4


class TestEncoderKnob:
    def test_default_is_compiled(self, monkeypatch):
        monkeypatch.delenv(ENCODER_ENV_VAR, raising=False)
        assert resolve_ilp_encoder() == "compiled"

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv(ENCODER_ENV_VAR, "tree")
        assert resolve_ilp_encoder() == "tree"

    def test_explicit_choice_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENCODER_ENV_VAR, "tree")
        assert resolve_ilp_encoder("compiled") == "compiled"

    def test_invalid_choice_raises(self, monkeypatch):
        monkeypatch.setenv(ENCODER_ENV_VAR, "nonsense")
        with pytest.raises(ILPError):
            resolve_ilp_encoder()

    def test_make_encoder_dispatch(self, join_db, monkeypatch):
        monkeypatch.delenv(ENCODER_ENV_VAR, raising=False)
        rng = np.random.default_rng(1)
        plan, _ = random_plan(rng)
        executor = Executor(join_db)
        compiled_result = executor.execute(plan, debug=True, provenance="compiled")
        tree_result = executor.execute(plan, debug=True, provenance="tree")
        assert isinstance(make_encoder(compiled_result), CompiledILPEncoder)
        # Tree-mode results have no pool: always the tree walk.
        encoder = make_encoder(tree_result)
        assert type(encoder) is TiresiasEncoder
        # The escape hatch forces the tree walk even on compiled results.
        monkeypatch.setenv(ENCODER_ENV_VAR, "tree")
        assert type(make_encoder(compiled_result)) is TiresiasEncoder


class TestAuxCacheKeying:
    def test_cache_pins_expressions_against_id_reuse(self, join_db):
        """The aux cache must key unregistered exprs by pinned identity.

        The old ``id(expr)`` keys did not keep the expression alive, so a
        garbage-collected subtree could hand its id to a structurally
        different one and silently merge the two.  ``_ExprKey`` holds a
        strong reference: as long as a cache entry exists, its id cannot
        be recycled.
        """
        import repro.relational.provenance as prov

        from repro.ilp.encode import _ExprKey

        a = prov.and_(prov.PredIs(0, 1), prov.PredIs(1, 1))
        b = prov.and_(prov.PredIs(0, 1), prov.PredIs(1, 1))
        assert _ExprKey(a) == _ExprKey(a)
        assert hash(_ExprKey(a)) == hash(_ExprKey(a))
        # Structurally equal but distinct objects stay distinct keys.
        assert _ExprKey(a) != _ExprKey(b)
        cache = {_ExprKey(a): "affine"}
        assert cache.get(_ExprKey(a)) == "affine"
        key = next(iter(cache))
        assert key.expr is a  # strong reference pins the object

    def test_pool_materialized_exprs_key_by_node_id(self, join_db):
        rng = np.random.default_rng(2)
        plan, shape = random_plan(rng)
        result = Executor(join_db).execute(plan, debug=True, provenance="compiled")
        if len(result.relation) == 0:
            pytest.skip("sampled plan produced an empty relation")
        encoder = TiresiasEncoder(result)
        if result.groups is not None:
            condition = result.groups[0].condition
        else:
            condition = result.tuple_condition(0)
        key = encoder._aux_key(condition)
        assert isinstance(key, (int, np.integer))
        assert result.pool.node_for_expr(condition) == key
