"""Tiresias encoder: complaints + provenance → ILP, and reading back fixes."""

import numpy as np
import pytest

from repro.complaints import PredictionComplaint, TupleComplaint, ValueComplaint
from repro.errors import ILPError
from repro.ilp import TiresiasEncoder, enumerate_optima, solve
from repro.relational import Database, Executor, Relation, plan_sql


@pytest.fixture()
def count_result(simple_db):
    plan = plan_sql("SELECT COUNT(*) FROM R WHERE predict(*) = 1", simple_db)
    return Executor(simple_db).execute(plan, debug=True)


@pytest.fixture()
def join_result(fitted_multiclass_model):
    rng = np.random.default_rng(31)
    db = Database()
    db.add_relation(Relation("L", {"features": rng.normal(size=(4, 5))}))
    db.add_relation(Relation("R", {"features": rng.normal(size=(4, 5))}))
    db.add_model("m", fitted_multiclass_model)
    plan = plan_sql("SELECT * FROM L, R WHERE predict(L) = predict(R)", db)
    return Executor(db).execute(plan, debug=True)


class TestCountComplaints:
    def test_objective_counts_changes(self, count_result):
        current = count_result.scalar("count")
        encoder = TiresiasEncoder(count_result)
        encoder.add_complaint(
            ValueComplaint(column="count", op="=", value=current + 3, row_index=0)
        )
        solution = solve(encoder.program)
        assert solution.objective == pytest.approx(3.0)
        assert len(encoder.marked_mispredictions(solution)) == 3

    def test_marked_targets_satisfy_complaint(self, count_result):
        current = count_result.scalar("count")
        target = current - 2
        encoder = TiresiasEncoder(count_result)
        encoder.add_complaint(
            ValueComplaint(column="count", op="=", value=target, row_index=0)
        )
        solution = solve(encoder.program)
        targets = encoder.solution_targets(solution)
        poly = count_result.cell_polynomial(0, "count")
        assert poly.evaluate(targets) == pytest.approx(target)

    def test_inequality_complaint(self, count_result):
        current = count_result.scalar("count")
        encoder = TiresiasEncoder(count_result)
        encoder.add_complaint(
            ValueComplaint(column="count", op=">=", value=current + 2, row_index=0)
        )
        solution = solve(encoder.program)
        assert solution.objective == pytest.approx(2.0)

    def test_satisfied_complaint_marks_nothing(self, count_result):
        current = count_result.scalar("count")
        encoder = TiresiasEncoder(count_result)
        encoder.add_complaint(
            ValueComplaint(column="count", op="=", value=current, row_index=0)
        )
        solution = solve(encoder.program)
        assert encoder.marked_mispredictions(solution) == []

    def test_ambiguity_matches_combinatorics(self, count_result):
        from math import comb

        current = int(count_result.scalar("count"))
        n_rows = len(count_result.runtime.sites)
        encoder = TiresiasEncoder(count_result)
        encoder.add_complaint(
            ValueComplaint(column="count", op="=", value=current + 2, row_index=0)
        )
        solutions = enumerate_optima(encoder.program, max_solutions=2000)
        assert len(solutions) == comb(n_rows - current, 2)


class TestPredictionComplaints:
    def test_point_complaint_pins_site(self, count_result):
        site = count_result.runtime.sites[0]
        current = count_result.runtime.prediction_for_site(site.key)
        flipped = 1 - int(current)
        encoder = TiresiasEncoder(count_result)
        encoder.add_complaint(PredictionComplaint("R", site.row_id, flipped))
        solution = solve(encoder.program)
        marked = encoder.marked_mispredictions(solution)
        assert (site.site_id, flipped) in marked

    def test_unknown_class_raises(self, count_result):
        site = count_result.runtime.sites[0]
        encoder = TiresiasEncoder(count_result)
        with pytest.raises(ILPError, match="not a class"):
            encoder.add_complaint(PredictionComplaint("R", site.row_id, 42))


class TestTupleComplaints:
    def test_join_tuple_complaint_resolvable(self, join_result):
        if len(join_result.relation) == 0:
            pytest.skip("no join outputs under this seed")
        encoder = TiresiasEncoder(join_result)
        encoder.add_complaint(TupleComplaint(row_index=0))
        solution = solve(encoder.program)
        targets = encoder.solution_targets(solution)
        condition = join_result.tuple_condition(0)
        assert not condition.evaluate(targets)
        assert solution.objective >= 1.0

    def test_multiple_tuple_complaints(self, join_result):
        n = len(join_result.relation)
        if n < 2:
            pytest.skip("need at least two join outputs")
        encoder = TiresiasEncoder(join_result)
        encoder.add_complaints([TupleComplaint(row_index=i) for i in range(n)])
        solution = solve(encoder.program)
        targets = encoder.solution_targets(solution)
        for i in range(n):
            assert not join_result.tuple_condition(i).evaluate(targets)


class TestAvgComplaints:
    def test_avg_cross_multiplied(self, simple_db):
        plan = plan_sql("SELECT AVG(predict(*)) FROM R", simple_db)
        result = Executor(simple_db).execute(plan, debug=True)
        current = result.scalar("avg")
        n = 25
        target = (round(current * n) + 2) / n
        encoder = TiresiasEncoder(result)
        encoder.add_complaint(
            ValueComplaint(column="avg", op="=", value=target, row_index=0)
        )
        solution = solve(encoder.program)
        targets = encoder.solution_targets(solution)
        poly = result.cell_polynomial(0, "avg")
        assert poly.evaluate(targets) == pytest.approx(target)
        assert solution.objective == pytest.approx(2.0)


class TestEncoderValidation:
    def test_requires_debug_result(self, simple_db):
        plan = plan_sql("SELECT COUNT(*) FROM R WHERE predict(*) = 1", simple_db)
        result = Executor(simple_db).execute(plan, debug=False)
        with pytest.raises(ILPError, match="debug"):
            TiresiasEncoder(result)

    def test_requires_model_inference(self, simple_db):
        plan = plan_sql("SELECT COUNT(*) FROM R", simple_db)
        result = Executor(simple_db).execute(plan, debug=True)
        with pytest.raises(ILPError, match="no model inference"):
            TiresiasEncoder(result)
