"""Relaxation: boolean consistency, exactness, gradients, q objectives."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.complaints import PredictionComplaint, TupleComplaint, ValueComplaint
from repro.errors import RelaxationError
from repro.relational import Database, Executor, Relation, plan_sql
from repro.relational import provenance as prov
from repro.relaxation import RelaxedComplaintObjective, Relaxer


def binary_relaxer(n_sites=4):
    return Relaxer({0: 0, 1: 1}, 2)


def degenerate_P(assignment, n_sites=4, n_classes=2):
    P = np.zeros((n_sites, n_classes))
    for site, label in assignment.items():
        P[site, label] = 1.0
    return P


class TestRelaxerForward:
    def test_atom_value(self):
        relaxer = binary_relaxer()
        P = np.asarray([[0.3, 0.7]] * 4)
        assert relaxer.value(prov.PredIs(2, 1), P) == pytest.approx(0.7)

    def test_and_is_product(self):
        relaxer = binary_relaxer()
        P = np.asarray([[0.5, 0.5], [0.2, 0.8], [0, 1], [0, 1]])
        expr = prov.and_(prov.PredIs(0, 1), prov.PredIs(1, 1))
        assert relaxer.value(expr, P) == pytest.approx(0.5 * 0.8)

    def test_or_is_inclusion_exclusion(self):
        relaxer = binary_relaxer()
        P = np.asarray([[0.5, 0.5], [0.2, 0.8], [0, 1], [0, 1]])
        expr = prov.or_(prov.PredIs(0, 1), prov.PredIs(1, 1))
        assert relaxer.value(expr, P) == pytest.approx(1 - 0.5 * 0.2)

    def test_not_is_complement(self):
        relaxer = binary_relaxer()
        P = np.asarray([[0.4, 0.6]] * 4)
        assert relaxer.value(prov.not_(prov.PredIs(0, 1)), P) == pytest.approx(0.4)

    def test_unknown_class_raises(self):
        relaxer = binary_relaxer()
        with pytest.raises(RelaxationError, match="not a model class"):
            relaxer.value(prov.PredIs(0, 99), np.ones((4, 2)))

    def test_avg_zero_denominator_raises(self):
        relaxer = binary_relaxer()
        expr = prov.DivExpr(
            prov.ConstNum(1.0), prov.LinearSum([(1.0, prov.PredIs(0, 1))])
        )
        P = np.asarray([[1.0, 0.0]] * 4)
        with pytest.raises(RelaxationError, match="denominator"):
            relaxer.value(expr, P)


class TestBooleanConsistency:
    """At degenerate probabilities the relaxation equals boolean semantics."""

    def exprs(self):
        a, b, c = prov.PredIs(0, 1), prov.PredIs(1, 1), prov.PredIs(2, 0)
        yield prov.and_(a, b)
        yield prov.or_(a, prov.not_(b))
        yield prov.or_(prov.and_(a, b), prov.and_(prov.not_(a), c))
        yield prov.LinearSum([(2.0, a), (1.0, prov.and_(b, c))])
        yield prov.DivExpr(
            prov.LinearSum([(1.0, a)]),
            prov.add_(prov.ConstNum(1.0), prov.BoolAsNum(b)),
        )

    def test_all_assignments_match(self):
        relaxer = binary_relaxer()
        for expr in self.exprs():
            for bits in itertools.product((0, 1), repeat=4):
                assignment = dict(enumerate(bits))
                P = degenerate_P(assignment)
                relaxed = relaxer.value(expr, P)
                exact = expr.evaluate(assignment)
                exact = float(exact) if isinstance(exact, bool) else exact
                assert relaxed == pytest.approx(exact), (expr, bits)


class TestExactExpectation:
    """Single-occurrence polynomials: relaxation = exact expectation."""

    @given(st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_read_once_or(self, seed):
        rng = np.random.default_rng(seed)
        P = rng.uniform(0.05, 0.95, size=(3, 2))
        P = P / P.sum(axis=1, keepdims=True)
        expr = prov.or_(prov.PredIs(0, 1), prov.and_(prov.PredIs(1, 1), prov.PredIs(2, 0)))
        relaxer = binary_relaxer()
        relaxed = relaxer.value(expr, P)
        # Exact expectation by enumeration over independent sites.
        total = 0.0
        for bits in itertools.product((0, 1), repeat=3):
            probability = np.prod([P[i, bits[i]] for i in range(3)])
            if expr.evaluate(dict(enumerate(bits))):
                total += probability
        assert relaxed == pytest.approx(total, abs=1e-10)


class TestGradients:
    @given(st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_gradient_matches_fd(self, seed):
        rng = np.random.default_rng(seed)
        P = rng.uniform(0.1, 0.9, size=(4, 2))
        a, b, c, d = (prov.PredIs(i, 1) for i in range(4))
        expr = prov.LinearSum(
            [(1.5, prov.and_(a, b)), (-2.0, prov.or_(c, prov.not_(d))), (1.0, a)]
        )
        relaxer = binary_relaxer()
        value, grad = relaxer.value_and_grad(expr, P)
        eps = 1e-6
        for i in range(4):
            for j in range(2):
                Pp, Pm = P.copy(), P.copy()
                Pp[i, j] += eps
                Pm[i, j] -= eps
                fd = (relaxer.value(expr, Pp) - relaxer.value(expr, Pm)) / (2 * eps)
                assert grad[i, j] == pytest.approx(fd, abs=1e-6)

    def test_shared_subexpression_gradient(self):
        """DAG sharing: adjoints must accumulate, not overwrite."""
        relaxer = binary_relaxer()
        a = prov.PredIs(0, 1)
        shared = prov.and_(a, prov.PredIs(1, 1))
        expr = prov.add_(prov.BoolAsNum(shared), prov.BoolAsNum(shared))
        P = np.asarray([[0.4, 0.6], [0.7, 0.3], [0, 1], [0, 1]])
        value, grad = relaxer.value_and_grad(expr, P)
        assert value == pytest.approx(2 * 0.6 * 0.3)
        assert grad[0, 1] == pytest.approx(2 * 0.3)
        assert grad[1, 1] == pytest.approx(2 * 0.6)


class TestComplaintObjective:
    @pytest.fixture()
    def count_result(self, simple_db):
        plan = plan_sql("SELECT COUNT(*) FROM R WHERE predict(*) = 1", simple_db)
        return Executor(simple_db).execute(plan, debug=True)

    def test_value_complaint_q(self, count_result):
        current = count_result.scalar("count")
        complaint = ValueComplaint(
            column="count", op="=", value=current + 4, row_index=0
        )
        objective = RelaxedComplaintObjective(count_result, [complaint])
        q = objective.q_value()
        # Relaxed count ≈ sum of probabilities, near the hard count.
        assert q > 0
        relaxed_count = current + 4 - np.sqrt(q)
        assert abs(relaxed_count - current) < 4

    def test_satisfied_equality_complaint_small_q(self, count_result):
        # Equality at the relaxed value itself gives q exactly 0.
        probs = RelaxedComplaintObjective(
            count_result,
            [ValueComplaint(column="count", op="=", value=0, row_index=0)],
        ).probabilities()
        relaxed = float(probs[:, 1].sum())
        complaint = ValueComplaint(column="count", op="=", value=relaxed, row_index=0)
        objective = RelaxedComplaintObjective(count_result, [complaint])
        assert objective.q_value() == pytest.approx(0.0, abs=1e-12)

    def test_inequality_ignored_when_satisfied(self, count_result):
        current = count_result.scalar("count")
        complaint = ValueComplaint(
            column="count", op="<=", value=current + 10, row_index=0
        )
        objective = RelaxedComplaintObjective(count_result, [complaint])
        assert objective.q_value() == 0.0
        assert np.all(objective.q_grad_theta() == 0)

    def test_inequality_active_when_violated(self, count_result):
        current = count_result.scalar("count")
        complaint = ValueComplaint(
            column="count", op=">=", value=current + 5, row_index=0
        )
        objective = RelaxedComplaintObjective(count_result, [complaint])
        assert objective.q_value() > 0

    def test_q_grad_theta_matches_fd(self, count_result, simple_db):
        model = simple_db.model("m")
        current = count_result.scalar("count")
        complaint = ValueComplaint(
            column="count", op="=", value=current + 3, row_index=0
        )
        objective = RelaxedComplaintObjective(count_result, [complaint])
        grad = objective.q_grad_theta()
        theta = model.get_params()

        def q_at(t):
            model.set_params(t)
            try:
                P = model.predict_proba(objective.X_sites)
                value, _ = objective.q_value_and_pgrad(P)
                return value
            finally:
                model.set_params(theta)

        eps = 1e-6
        for index in range(theta.size):
            plus, minus = theta.copy(), theta.copy()
            plus[index] += eps
            minus[index] -= eps
            fd = (q_at(plus) - q_at(minus)) / (2 * eps)
            assert grad[index] == pytest.approx(fd, abs=1e-5)

    def test_prediction_complaint_q(self, count_result):
        site = count_result.runtime.sites[0]
        current = count_result.runtime.prediction_for_site(site.key)
        complaint = PredictionComplaint("R", site.row_id, 1 - int(current))
        objective = RelaxedComplaintObjective(count_result, [complaint])
        assert objective.q_value() > 0.2  # (p - 1)² with p < ~0.55

    def test_tuple_complaint_q(self, simple_db):
        plan = plan_sql("SELECT * FROM R WHERE predict(*) = 1", simple_db)
        result = Executor(simple_db).execute(plan, debug=True)
        if len(result.relation) == 0:
            pytest.skip("no predicted-1 rows under this seed")
        objective = RelaxedComplaintObjective(result, [TupleComplaint(row_index=0)])
        q = objective.q_value()
        assert 0 < q <= 1.0

    def test_multiple_complaints_sum(self, count_result):
        current = count_result.scalar("count")
        c1 = ValueComplaint(column="count", op="=", value=current + 1, row_index=0)
        c2 = ValueComplaint(column="count", op="=", value=current + 2, row_index=0)
        q1 = RelaxedComplaintObjective(count_result, [c1]).q_value()
        q2 = RelaxedComplaintObjective(count_result, [c2]).q_value()
        q12 = RelaxedComplaintObjective(count_result, [c1, c2]).q_value()
        assert q12 == pytest.approx(q1 + q2)

    def test_requires_debug(self, simple_db):
        plan = plan_sql("SELECT COUNT(*) FROM R WHERE predict(*) = 1", simple_db)
        result = Executor(simple_db).execute(plan, debug=False)
        with pytest.raises(RelaxationError, match="debug"):
            RelaxedComplaintObjective(
                result, [ValueComplaint(column="count", op="=", value=1, row_index=0)]
            )
