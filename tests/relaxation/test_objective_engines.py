"""Compiled (batched) vs interpreted complaint objective equivalence."""

import numpy as np
import pytest

from repro.complaints import PredictionComplaint, TupleComplaint, ValueComplaint
from repro.relational import Database, Executor, Relation, plan_sql
from repro.relaxation import RelaxedComplaintObjective


@pytest.fixture()
def count_db(fitted_binary_model):
    rng = np.random.default_rng(23)
    db = Database()
    db.add_relation(
        Relation(
            "R",
            {
                "features": rng.normal(size=(20, 4)),
                "grp": np.asarray([0, 1] * 10),
            },
        )
    )
    db.add_model("m", fitted_binary_model)
    return db


def run_query(db, sql, provenance):
    return Executor(db).execute(plan_sql(sql, db), debug=True, provenance=provenance)


COMPLAINT_SETS = {
    "count": [ValueComplaint(column="count", op="=", value=3.0, row_index=0)],
    "avg_by_group": [
        ValueComplaint(column="mean", op="=", value=0.5, group_key=(0,)),
        ValueComplaint(column="mean", op="<=", value=0.9, group_key=(1,)),
    ],
    "mixed": [
        ValueComplaint(column="count", op="=", value=3.0, row_index=0),
        PredictionComplaint(relation_name="R", row_id=2, label=1),
    ],
}

QUERIES = {
    "count": "SELECT COUNT(*) FROM R WHERE predict(features) = 1",
    "avg_by_group": (
        "SELECT grp, AVG(predict(features)) AS mean FROM R GROUP BY grp"
    ),
    "mixed": "SELECT COUNT(*) FROM R WHERE predict(features) = 1",
}


@pytest.mark.parametrize("case", sorted(COMPLAINT_SETS))
def test_engines_agree_on_value_and_gradient(count_db, case):
    complaints = COMPLAINT_SETS[case]
    result = run_query(count_db, QUERIES[case], "compiled")
    compiled = RelaxedComplaintObjective(result, complaints, engine="compiled")
    interpreted = RelaxedComplaintObjective(result, complaints, engine="interpreted")
    P = compiled.probabilities()
    q_fast, grad_fast = compiled.q_value_and_pgrad(P)
    q_slow, grad_slow = interpreted.q_value_and_pgrad(P)
    assert q_fast == pytest.approx(q_slow, abs=1e-9)
    np.testing.assert_allclose(grad_fast, grad_slow, atol=1e-9)
    np.testing.assert_allclose(
        compiled.q_grad_theta(), interpreted.q_grad_theta(), atol=1e-9
    )


def test_engines_agree_across_result_modes(count_db):
    complaints = COMPLAINT_SETS["count"]
    compiled_result = run_query(count_db, QUERIES["count"], "compiled")
    tree_result = run_query(count_db, QUERIES["count"], "tree")
    fast = RelaxedComplaintObjective(compiled_result, complaints)
    slow = RelaxedComplaintObjective(tree_result, complaints)
    assert fast.engine == "compiled"
    assert slow.engine == "interpreted"
    assert fast.q_value() == pytest.approx(slow.q_value(), abs=1e-9)
    np.testing.assert_allclose(fast.q_grad_theta(), slow.q_grad_theta(), atol=1e-9)


def test_satisfied_inequality_never_relaxes_its_polynomial(count_db):
    # A satisfied <= complaint on an AVG cell contributes nothing — even at
    # a degenerate P where the relaxed denominator is exactly zero, which
    # would raise if the gated polynomial were evaluated.
    sql = "SELECT AVG(predict(features)) AS mean FROM R WHERE predict(features) = 1"
    result = run_query(count_db, sql, "compiled")
    complaints = [ValueComplaint(column="mean", op="<=", value=10.0, row_index=0)]
    compiled = RelaxedComplaintObjective(result, complaints, engine="compiled")
    interpreted = RelaxedComplaintObjective(result, complaints, engine="interpreted")
    P = np.zeros_like(compiled.probabilities())
    P[:, 0] = 1.0  # every site predicts class 0: relaxed COUNT of the group is 0
    q_fast, grad_fast = compiled.q_value_and_pgrad(P)
    q_slow, grad_slow = interpreted.q_value_and_pgrad(P)
    assert q_fast == q_slow == 0.0
    np.testing.assert_array_equal(grad_fast, grad_slow)


def test_tuple_complaint_roots(count_db):
    sql = "SELECT * FROM R WHERE predict(features) = 1"
    result = run_query(count_db, sql, "compiled")
    if len(result.relation) == 0:
        pytest.skip("no output tuples to complain about")
    complaints = [TupleComplaint(row_index=0)]
    compiled = RelaxedComplaintObjective(result, complaints, engine="compiled")
    interpreted = RelaxedComplaintObjective(result, complaints, engine="interpreted")
    P = compiled.probabilities()
    q_fast, grad_fast = compiled.q_value_and_pgrad(P)
    q_slow, grad_slow = interpreted.q_value_and_pgrad(P)
    assert q_fast == pytest.approx(q_slow, abs=1e-12)
    np.testing.assert_allclose(grad_fast, grad_slow, atol=1e-12)
