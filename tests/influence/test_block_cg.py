"""Block CG: column-by-column equivalence with the scalar solver."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.influence import (
    InfluenceAnalyzer,
    block_conjugate_gradient,
    conjugate_gradient,
)
from repro.ml import LogisticRegression, SoftmaxRegression


def make_spd(dim, seed=0, scale=None):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(dim, dim))
    return A @ A.T + (scale if scale is not None else dim) * np.eye(dim)


class TestBlockMatchesScalar:
    @pytest.mark.parametrize("dim,n_rhs,seed", [
        (4, 1, 0), (6, 3, 1), (10, 10, 2), (8, 20, 3), (16, 5, 4),
    ])
    def test_converged_columns_match(self, dim, n_rhs, seed):
        A = make_spd(dim, seed=seed)
        B = np.random.default_rng(seed + 100).normal(size=(dim, n_rhs))
        block = block_conjugate_gradient(lambda V: A @ V, B, tol=1e-12)
        assert block.all_converged
        for j in range(n_rhs):
            scalar = conjugate_gradient(lambda v: A @ v, B[:, j], tol=1e-12)
            np.testing.assert_allclose(block.X[:, j], scalar.x, atol=1e-8)
            np.testing.assert_allclose(
                block.X[:, j], np.linalg.solve(A, B[:, j]), atol=1e-7
            )

    def test_damping_matches_scalar(self):
        A = make_spd(7, seed=5)
        B = np.random.default_rng(6).normal(size=(7, 4))
        damping = 0.9
        block = block_conjugate_gradient(lambda V: A @ V, B, damping=damping, tol=1e-12)
        for j in range(4):
            scalar = conjugate_gradient(
                lambda v: A @ v, B[:, j], damping=damping, tol=1e-12
            )
            np.testing.assert_allclose(block.X[:, j], scalar.x, atol=1e-8)

    def test_zero_rhs_columns(self):
        A = make_spd(5, seed=7)
        B = np.random.default_rng(8).normal(size=(5, 4))
        B[:, 1] = 0.0
        B[:, 3] = 0.0
        block = block_conjugate_gradient(lambda V: A @ V, B, tol=1e-12)
        assert np.all(block.X[:, 1] == 0)
        assert np.all(block.X[:, 3] == 0)
        assert block.iterations[1] == 0 and block.iterations[3] == 0
        assert block.converged[1] and block.converged[3]
        # Non-zero columns still solved.
        np.testing.assert_allclose(block.X[:, 0], np.linalg.solve(A, B[:, 0]), atol=1e-7)

    def test_all_zero_rhs(self):
        A = make_spd(4)
        block = block_conjugate_gradient(lambda V: A @ V, np.zeros((4, 3)))
        assert np.all(block.X == 0)
        assert block.all_converged
        assert block.block_hvp_calls == 0

    def test_non_converged_columns_match_scalar(self):
        """An iteration cap leaves both solvers at the same partial iterate."""
        A = make_spd(30, seed=9, scale=1.0)  # ill-conditioned on purpose
        B = np.random.default_rng(10).normal(size=(30, 3))
        block = block_conjugate_gradient(lambda V: A @ V, B, max_iter=4, tol=1e-14)
        assert not block.all_converged
        for j in range(3):
            scalar = conjugate_gradient(lambda v: A @ v, B[:, j], max_iter=4, tol=1e-14)
            np.testing.assert_allclose(block.X[:, j], scalar.x, atol=1e-8)
            assert block.converged[j] == scalar.converged
            np.testing.assert_allclose(
                block.residual_norms[j], scalar.residual_norm, rtol=1e-6
            )

    def test_mixed_convergence_tracked_per_column(self):
        """Easy and hard columns in one block: per-column flags differ."""
        A = np.diag(np.concatenate([np.ones(3), np.full(3, 1e4)]))
        B = np.zeros((6, 2))
        B[:3, 0] = 1.0   # easy: lives in the identity eigenspace
        B[:, 1] = np.random.default_rng(11).normal(size=6)
        block = block_conjugate_gradient(lambda V: A @ V, B, tol=1e-12)
        assert block.converged[0]
        assert block.iterations[0] <= 2
        assert block.iterations[1] >= block.iterations[0]

    def test_warm_start_converges_immediately(self):
        A = make_spd(8, seed=12)
        B = np.random.default_rng(13).normal(size=(8, 3))
        exact = np.linalg.solve(A, B)
        block = block_conjugate_gradient(lambda V: A @ V, B, X0=exact, tol=1e-10)
        assert np.all(block.iterations <= 1)
        assert block.all_converged

    def test_warm_start_matches_cold_solution(self):
        A = make_spd(9, seed=14)
        B = np.random.default_rng(15).normal(size=(9, 4))
        X0 = np.random.default_rng(16).normal(size=(9, 4))
        warm = block_conjugate_gradient(lambda V: A @ V, B, X0=X0, tol=1e-12)
        cold = block_conjugate_gradient(lambda V: A @ V, B, tol=1e-12)
        np.testing.assert_allclose(warm.X, cold.X, atol=1e-7)

    def test_raise_on_failure(self):
        A = make_spd(30, seed=17, scale=1.0)
        B = np.random.default_rng(18).normal(size=(30, 2))
        with pytest.raises(ConvergenceError, match="columns"):
            block_conjugate_gradient(
                lambda V: A @ V, B, max_iter=1, tol=1e-14, raise_on_failure=True
            )

    def test_bad_shapes_rejected(self):
        A = make_spd(4)
        with pytest.raises(ValueError, match="matrix"):
            block_conjugate_gradient(lambda V: A @ V, np.zeros(4))
        with pytest.raises(ValueError, match="X0"):
            block_conjugate_gradient(
                lambda V: A @ V, np.zeros((4, 2)), X0=np.zeros((4, 3))
            )

    def test_result_column_view(self):
        A = make_spd(5, seed=19)
        B = np.random.default_rng(20).normal(size=(5, 2))
        block = block_conjugate_gradient(lambda V: A @ V, B, tol=1e-12)
        column = block.column(1)
        np.testing.assert_allclose(column.x, block.X[:, 1])
        assert column.converged == bool(block.converged[1])
        assert len(block.columns()) == 2
        summary = block.summary()
        assert summary["columns"] == 2 and summary["converged"] == 2


@pytest.fixture()
def fitted_logistic():
    rng = np.random.default_rng(23)
    n, d = 90, 5
    X = rng.normal(size=(n, d))
    y = (X @ rng.normal(size=d) > 0).astype(int)
    model = LogisticRegression((0, 1), n_features=d, l2=1e-2)
    model.fit(X, y, warm_start=False)
    return model, X, y


class TestModelHvpBlock:
    def test_logistic_matches_scalar_hvp(self, fitted_logistic):
        model, X, y = fitted_logistic
        V = np.random.default_rng(24).normal(size=(model.n_params, 6))
        block = model.hvp_block(X, y, V)
        for j in range(6):
            np.testing.assert_allclose(block[:, j], model.hvp(X, y, V[:, j]), atol=1e-12)

    def test_softmax_matches_scalar_hvp(self):
        rng = np.random.default_rng(25)
        n, d, k = 60, 4, 3
        X = rng.normal(size=(n, d))
        y = rng.integers(k, size=n)
        model = SoftmaxRegression((0, 1, 2), n_features=d, l2=1e-2)
        model.fit(X, y, warm_start=False)
        V = rng.normal(size=(model.n_params, 5))
        block = model.hvp_block(X, y, V)
        for j in range(5):
            np.testing.assert_allclose(block[:, j], model.hvp(X, y, V[:, j]), atol=1e-12)

    def test_shape_validation(self, fitted_logistic):
        model, X, y = fitted_logistic
        from repro.errors import ModelError
        with pytest.raises(ModelError, match="shape"):
            model.hvp_block(X, y, np.zeros(model.n_params))
        with pytest.raises(ModelError, match="shape"):
            model.grad_dot_block(X, y, np.zeros((model.n_params + 1, 2)))

    def test_grad_dot_block_matches_columns(self, fitted_logistic):
        model, X, y = fitted_logistic
        U = np.random.default_rng(26).normal(size=(model.n_params, 4))
        block = model.grad_dot_block(X, y, U)
        assert block.shape == (X.shape[0], 4)
        for j in range(4):
            np.testing.assert_allclose(block[:, j], model.grad_dot(X, y, U[:, j]), atol=1e-12)


class TestAnalyzerBlockSolves:
    def test_self_influence_matches_scalar_reference(self, fitted_logistic):
        model, X, y = fitted_logistic
        block_analyzer = InfluenceAnalyzer(model, X, y, damping=1e-4)
        scalar_analyzer = InfluenceAnalyzer(model, X, y, damping=1e-4)
        block_scores = block_analyzer.self_influence()
        scalar_scores = scalar_analyzer.self_influence_scalar()
        np.testing.assert_allclose(block_scores, scalar_scores, atol=1e-6)
        # Exactly one block solve, zero scalar solves.
        assert block_analyzer.solve_counts == {"scalar": 0, "block": 1}
        assert scalar_analyzer.solve_counts == {"scalar": X.shape[0], "block": 0}

    def test_self_influence_records_per_column_diagnostics(self, fitted_logistic):
        model, X, y = fitted_logistic
        analyzer = InfluenceAnalyzer(model, X, y, damping=1e-4)
        analyzer.self_influence()
        assert len(analyzer.last_cg_results) == X.shape[0]
        assert analyzer.last_block_cg_result is not None
        assert analyzer.last_block_cg_result.all_converged
        assert all(result.converged for result in analyzer.last_cg_results)

    def test_scalar_reference_records_all_results(self, fitted_logistic):
        """The per-record loop must not clobber diagnostics (old bug)."""
        model, X, y = fitted_logistic
        analyzer = InfluenceAnalyzer(model, X, y, damping=1e-4)
        analyzer.self_influence_scalar(max_records=7)
        assert len(analyzer.last_cg_results) == 7
        iteration_counts = {result.iterations for result in analyzer.last_cg_results}
        assert all(result.converged for result in analyzer.last_cg_results)
        # The final scalar result is the last column's, and the list keeps all.
        assert analyzer.last_cg_result is analyzer.last_cg_results[-1]
        assert iteration_counts  # non-empty

    def test_scores_from_q_grads_matches_single_solves(self, fitted_logistic):
        model, X, y = fitted_logistic
        rng = np.random.default_rng(27)
        Q = rng.normal(size=(3, model.n_params))
        analyzer = InfluenceAnalyzer(model, X, y, damping=1e-4)
        stacked = analyzer.scores_from_q_grads(Q)
        assert analyzer.solve_counts["block"] == 1
        assert stacked.shape == (3, X.shape[0])
        for j in range(3):
            single = InfluenceAnalyzer(model, X, y, damping=1e-4)
            np.testing.assert_allclose(
                stacked[j], single.scores_from_q_grad(Q[j]), atol=1e-6
            )

    def test_max_records_truncates_block(self, fitted_logistic):
        model, X, y = fitted_logistic
        analyzer = InfluenceAnalyzer(model, X, y, damping=1e-4)
        scores = analyzer.self_influence(max_records=5)
        assert np.all(scores[5:] == 0)
        assert np.any(scores[:5] != 0)
        assert len(analyzer.last_cg_results) == 5
