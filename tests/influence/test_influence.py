"""Influence machinery: CG, Eq. (4) scores vs. retraining, LiSSA, baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConvergenceError, ModelError
from repro.influence import (
    InfluenceAnalyzer,
    conjugate_gradient,
    lissa_inverse_hvp,
    q_grad_for_target_predictions,
)
from repro.ml import LogisticRegression


class TestConjugateGradient:
    def make_spd(self, dim, seed=0):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(dim, dim))
        return A @ A.T + dim * np.eye(dim)

    def test_solves_spd_system(self):
        A = self.make_spd(8)
        b = np.random.default_rng(1).normal(size=8)
        result = conjugate_gradient(lambda v: A @ v, b, tol=1e-12)
        np.testing.assert_allclose(result.x, np.linalg.solve(A, b), atol=1e-8)
        assert result.converged

    def test_damping_shifts_diagonal(self):
        A = self.make_spd(6)
        b = np.random.default_rng(2).normal(size=6)
        damping = 0.7
        result = conjugate_gradient(lambda v: A @ v, b, damping=damping, tol=1e-12)
        expected = np.linalg.solve(A + damping * np.eye(6), b)
        np.testing.assert_allclose(result.x, expected, atol=1e-8)

    def test_zero_rhs(self):
        A = self.make_spd(4)
        result = conjugate_gradient(lambda v: A @ v, np.zeros(4))
        assert np.all(result.x == 0)
        assert result.converged

    def test_identity_one_iteration(self):
        b = np.random.default_rng(3).normal(size=5)
        result = conjugate_gradient(lambda v: v, b, tol=1e-12)
        np.testing.assert_allclose(result.x, b, atol=1e-10)
        assert result.iterations <= 2

    def test_max_iter_failure_raises_when_requested(self):
        A = self.make_spd(30, seed=9)
        b = np.random.default_rng(4).normal(size=30)
        with pytest.raises(ConvergenceError):
            conjugate_gradient(
                lambda v: A @ v, b, max_iter=1, tol=1e-14, raise_on_failure=True
            )

    def test_warm_start(self):
        A = self.make_spd(8)
        b = np.random.default_rng(5).normal(size=8)
        exact = np.linalg.solve(A, b)
        result = conjugate_gradient(lambda v: A @ v, b, x0=exact, tol=1e-10)
        assert result.iterations <= 1

    @given(st.integers(2, 10), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_matches_numpy_solve_property(self, dim, seed):
        A = self.make_spd(dim, seed=seed)
        b = np.random.default_rng(seed + 1).normal(size=dim)
        result = conjugate_gradient(lambda v: A @ v, b, tol=1e-12)
        np.testing.assert_allclose(result.x, np.linalg.solve(A, b), atol=1e-6)


class TestLiSSA:
    def test_matches_cg_on_spd(self):
        rng = np.random.default_rng(0)
        A = np.diag(rng.uniform(0.5, 2.0, size=6))
        b = rng.normal(size=6)
        lissa = lissa_inverse_hvp(lambda v: A @ v, b, scale=4.0, iterations=2000)
        np.testing.assert_allclose(lissa, np.linalg.solve(A, b), atol=1e-4)

    def test_diverges_with_small_scale(self):
        A = 100.0 * np.eye(4)
        b = np.ones(4)
        with pytest.raises(ConvergenceError, match="diverged"):
            lissa_inverse_hvp(lambda v: A @ v, b, scale=1.0, iterations=500)

    def test_zero_rhs(self):
        out = lissa_inverse_hvp(lambda v: v, np.zeros(3))
        assert np.all(out == 0)


@pytest.fixture()
def analyzer_setup():
    rng = np.random.default_rng(17)
    n, d = 70, 4
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = (X @ w + 0.3 * rng.normal(size=n) > 0).astype(int)
    model = LogisticRegression((0, 1), n_features=d, l2=1e-2)
    model.fit(X, y, warm_start=False)
    X_test = rng.normal(size=(8, d))
    return model, X, y, X_test


class TestInfluenceScores:
    def test_requires_fitted_model(self):
        model = LogisticRegression((0, 1), n_features=2)
        with pytest.raises(ModelError, match="fitted"):
            InfluenceAnalyzer(model, np.zeros((3, 2)), np.zeros(3))

    def test_q_grad_shape_validated(self, analyzer_setup):
        model, X, y, _ = analyzer_setup
        analyzer = InfluenceAnalyzer(model, X, y)
        with pytest.raises(ModelError, match="shape"):
            analyzer.scores_from_q_grad(np.zeros(3))

    def test_scores_predict_retraining_effect(self, analyzer_setup):
        """Eq. (4): removal effect ≈ actual leave-one-out retrain effect."""
        model, X, y, X_test = analyzer_setup
        q_grad = q_grad_for_target_predictions(
            model, X_test, np.ones(len(X_test), dtype=int)
        )
        analyzer = InfluenceAnalyzer(model, X, y)
        scores = analyzer.scores_from_q_grad(q_grad)

        def q_of(m):
            return -float(m.predict_proba(X_test)[:, 1].sum())

        base = q_of(model)
        theta = model.get_params()
        actual, predicted = [], []
        for index in (0, 13, 29, 44, 66):
            clone = LogisticRegression((0, 1), n_features=X.shape[1], l2=1e-2)
            mask = np.ones(len(X), dtype=bool)
            mask[index] = False
            clone.fit(X[mask], y[mask], warm_start=False)
            actual.append(q_of(clone) - base)
            predicted.append(-scores[index] / len(X))
        model.set_params(theta)
        correlation = np.corrcoef(actual, predicted)[0, 1]
        assert correlation > 0.99

    def test_removal_effect_on_q(self, analyzer_setup):
        model, X, y, X_test = analyzer_setup
        q_grad = q_grad_for_target_predictions(
            model, X_test, np.ones(len(X_test), dtype=int)
        )
        analyzer = InfluenceAnalyzer(model, X, y)
        scores = analyzer.scores_from_q_grad(q_grad)
        top = int(np.argmax(scores))
        # Removing the top-scored record must be estimated to decrease q.
        assert analyzer.removal_effect_on_q(q_grad, [top]) < 0

    def test_self_influence_nonpositive_for_convex(self, analyzer_setup):
        model, X, y, _ = analyzer_setup
        analyzer = InfluenceAnalyzer(model, X, y)
        scores = analyzer.self_influence()
        assert np.all(scores <= 1e-9)

    def test_self_influence_max_records(self, analyzer_setup):
        model, X, y, _ = analyzer_setup
        analyzer = InfluenceAnalyzer(model, X, y)
        scores = analyzer.self_influence(max_records=5)
        assert np.all(scores[5:] == 0)
        assert np.any(scores[:5] != 0)

    def test_training_losses_match_model(self, analyzer_setup):
        model, X, y, _ = analyzer_setup
        analyzer = InfluenceAnalyzer(model, X, y)
        np.testing.assert_allclose(
            analyzer.training_losses(), model.per_sample_losses(X, y)
        )

    def test_q_grad_for_targets_direction(self, analyzer_setup):
        """Pushing toward target labels: -∇q must increase target probs."""
        model, X, y, X_test = analyzer_setup
        targets = np.ones(len(X_test), dtype=int)
        q_grad = q_grad_for_target_predictions(model, X_test, targets)
        theta = model.get_params()
        step = 1e-4 / (np.linalg.norm(q_grad) + 1e-12)
        before = model.predict_proba(X_test)[:, 1].sum()
        model.set_params(theta - step * q_grad)
        after = model.predict_proba(X_test)[:, 1].sum()
        model.set_params(theta)
        assert after > before

    def test_lissa_and_cg_rankings_agree(self, analyzer_setup):
        model, X, y, X_test = analyzer_setup
        q_grad = q_grad_for_target_predictions(
            model, X_test, np.ones(len(X_test), dtype=int)
        )
        analyzer = InfluenceAnalyzer(model, X, y)
        cg_scores = analyzer.scores_from_q_grad(q_grad)
        # LiSSA route: replace the CG solve manually.
        u = lissa_inverse_hvp(
            lambda v: model.hvp(X, y, v), q_grad, scale=30.0, iterations=3000
        )
        lissa_scores = -model.grad_dot(X, y, u)
        # Same top-5 set.
        top_cg = set(np.argsort(-cg_scores)[:5].tolist())
        top_lissa = set(np.argsort(-lissa_scores)[:5].tolist())
        assert len(top_cg & top_lissa) >= 4
