"""End-to-end reproduction sanity: small-scale versions of the key results.

These integration tests assert the *qualitative shape* of the paper's
findings on small instances (who wins, directionality), keeping the suite
fast; the full parameter sweeps live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.complaints import ComplaintCase, TupleComplaint, ValueComplaint
from repro.core import RainDebugger
from repro.experiments import build_dblp_setting, compare_methods, execute_sql
from repro.experiments.mnist_common import build_count_setting, build_join_setting
from repro.experiments.table3_auccr import build_enron_setting


class TestDBLPPipeline:
    def test_holistic_dominates_loss_medium_corruption(self):
        setting = build_dblp_setting(0.5, n_train=250, n_query=150, seed=0)
        summaries = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, [setting.case], setting.corrupted_indices,
            methods=("loss", "holistic"), seed=0,
        )
        assert summaries["holistic"]["auccr"] > 0.8
        assert summaries["holistic"]["auccr"] > summaries["loss"]["auccr"]

    def test_recall_curve_monotone(self):
        setting = build_dblp_setting(0.5, n_train=200, n_query=100, seed=1)
        summaries = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, [setting.case], setting.corrupted_indices,
            methods=("holistic",), seed=1,
        )
        curve = summaries["holistic"]["recall_curve"]
        assert np.all(np.diff(curve) >= 0)

    def test_deleting_found_records_moves_count_toward_truth(self):
        setting = build_dblp_setting(0.5, n_train=250, n_query=150, seed=0)
        before = execute_sql(setting.database, setting.query).scalar("count")
        debugger = RainDebugger(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, [setting.case], method="holistic", rng=0,
        )
        report = debugger.run(
            max_removals=len(setting.corrupted_indices), k_per_iteration=10
        )
        keep = np.setdiff1d(
            np.arange(len(setting.X_train)), np.asarray(report.removal_order)
        )
        setting.model.fit(
            setting.X_train[keep], setting.y_corrupted[keep], warm_start=True
        )
        after = execute_sql(setting.database, setting.query).scalar("count")
        truth = setting.true_count
        assert abs(after - truth) < abs(before - truth)


class TestEnronPipeline:
    def test_like_predicate_scopes_complaint(self):
        setting = build_enron_setting("deal", n_train=300, n_query=200, seed=0)
        summaries = compare_methods(
            setting.database, "spam", setting.X_train, setting.y_corrupted,
            [setting.case], setting.corrupted_indices,
            methods=("loss", "holistic"), seed=0, max_removals=30,
        )
        assert summaries["holistic"]["auccr"] >= summaries["loss"]["auccr"]


class TestMNISTJoins:
    def test_join_complaints_find_digit_corruptions(self):
        setting = build_join_setting(0.5, n_train=250, seed=0)
        if not setting.cases:
            pytest.skip("no spurious join rows at this seed")
        summaries = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, setting.cases, setting.corrupted_indices,
            methods=("holistic",), seed=0,
        )
        assert summaries["holistic"]["auccr"] > 0.4

    def test_count_zero_complaint(self):
        setting = build_join_setting(
            0.5, left_digits=(1, 2, 3, 4, 5), right_digits=(6, 7, 8, 9, 0),
            aggregate=True, n_train=250, n_left=20, n_right=20, seed=0,
        )
        assert setting.metadata["true_count"] == 0
        summaries = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, setting.cases, setting.corrupted_indices,
            methods=("holistic",), seed=0,
        )
        assert summaries["holistic"]["auccr"] > 0.3

    def test_q5_aggregate_complaint(self):
        setting = build_count_setting(
            corruption_rate=0.5, n_train=250, n_query=120, seed=0
        )
        summaries = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, setting.cases, setting.corrupted_indices,
            methods=("holistic",), seed=0,
        )
        assert summaries["holistic"]["auccr"] > 0.5


class TestComplaintDirectionality:
    def test_wrong_direction_complaint_hurts(self):
        """Fig. 10's core claim: complaints pointing the wrong way mislead."""
        setting = build_count_setting(
            corruption_rate=0.3, n_train=250, n_query=120, seed=0
        )
        current = execute_sql(
            setting.database, setting.metadata["query"]
        ).scalar("count")
        truth = setting.cases[0].complaints[0].value
        # Corruption removes 1-labels, so truth > current; "wrong" goes lower.
        assert truth > current
        wrong_case = ComplaintCase(
            setting.metadata["query"],
            [ValueComplaint(column="count", op="=",
                            value=max(0.0, 0.5 * current), row_index=0)],
        )
        summaries = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, [wrong_case], setting.corrupted_indices,
            methods=("holistic",), seed=0,
        )
        correct = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, setting.cases, setting.corrupted_indices,
            methods=("holistic",), seed=0,
        )
        assert correct["holistic"]["auccr"] > summaries["holistic"]["auccr"]


class TestTupleComplaintEndToEnd:
    def test_group_should_not_exist(self, simple_db):
        """Tuple complaint on an aggregated group (GROUP BY predict)."""
        result = execute_sql(simple_db, "SELECT COUNT(*) FROM R GROUP BY predict(*)")
        key = (int(result.relation.column("predict(*)")[0]),)
        complaint = TupleComplaint(group_key=key)
        assert not complaint.is_satisfied(result)
        condition = complaint.condition(result)
        assert len(condition.atoms()) > 0
