"""Tier-1 scenario smokes: Enron http/deal and Adult, pinned recall curves.

Tiny-n versions of the table3 (Enron labelling-function corruption) and
fig8 (Adult multi-query) paths, pinning the actual recall curves — not
just the qualitative shape — so a numerics regression anywhere in the
train-rank-fix stack (executor, relaxation, influence solves, ranking)
shows up as a curve shift here before the slow benchmarks run.  The runs
are fully seeded and the engine is deterministic (see the sharding and
async determinism contracts), so the pins hold exactly; tolerances are
only for cross-platform float noise.
"""

import numpy as np
import pytest

from repro.experiments import compare_methods
from repro.experiments.fig8_multiquery import build_adult_setting
from repro.experiments.table3_auccr import build_enron_setting

PIN_ATOL = 1e-3


class TestEnronScenarios:
    def test_http_token_pinned_curve(self):
        setting = build_enron_setting("http", n_train=300, n_query=200, seed=0)
        summaries = compare_methods(
            setting.database, "spam", setting.X_train, setting.y_corrupted,
            [setting.case], setting.corrupted_indices,
            methods=("loss", "holistic"), seed=0, max_removals=30,
        )
        assert len(setting.corrupted_indices) == 7
        assert summaries["holistic"]["auccr"] == pytest.approx(
            0.892857, abs=PIN_ATOL
        )
        assert summaries["loss"]["auccr"] == pytest.approx(0.25, abs=PIN_ATOL)
        np.testing.assert_allclose(
            summaries["holistic"]["recall_curve"],
            [0.142857, 0.285714, 0.428571, 0.571429, 0.571429, 0.714286,
             0.857143],
            atol=PIN_ATOL,
        )
        assert summaries["holistic"]["auccr"] > summaries["loss"]["auccr"]

    def test_deal_token_pinned_curve(self):
        setting = build_enron_setting("deal", n_train=200, n_query=150, seed=0)
        summaries = compare_methods(
            setting.database, "spam", setting.X_train, setting.y_corrupted,
            [setting.case], setting.corrupted_indices,
            methods=("loss", "holistic"), seed=0, max_removals=30,
        )
        assert len(setting.corrupted_indices) == 38
        assert summaries["holistic"]["auccr"] == pytest.approx(
            0.792173, abs=PIN_ATOL
        )
        assert summaries["loss"]["auccr"] == pytest.approx(
            0.197031, abs=PIN_ATOL
        )
        holistic_curve = np.asarray(summaries["holistic"]["recall_curve"])
        # First 30 removals climb steadily to ~68% of the 38 corruptions.
        np.testing.assert_allclose(
            holistic_curve[-1], 0.684211, atol=PIN_ATOL
        )
        assert np.all(np.diff(holistic_curve) >= 0)
        assert summaries["holistic"]["auccr"] > summaries["loss"]["auccr"]


class TestAdultScenario:
    def test_multiquery_pinned_curve(self):
        setting = build_adult_setting(0.5, n_train=200, n_query=300, seed=0)
        summaries = compare_methods(
            setting.database, "income", setting.X_train, setting.y_corrupted,
            [setting.gender_case, setting.age_case],
            setting.corrupted_indices,
            methods=("loss", "holistic"), seed=0, max_removals=30,
        )
        assert len(setting.corrupted_indices) == 12
        assert summaries["holistic"]["auccr"] == pytest.approx(
            0.525641, abs=PIN_ATOL
        )
        np.testing.assert_allclose(
            summaries["holistic"]["recall_curve"][-1], 0.416667, atol=PIN_ATOL
        )
        # The fig8 claim: aggregate complaints carry signal plain loss
        # ranking cannot see — loss finds nothing at this scale.
        assert summaries["loss"]["auccr"] == pytest.approx(0.0, abs=PIN_ATOL)

    def test_async_pipeline_reproduces_pinned_curve(self):
        """The async loop reproduces the pinned serial curves exactly."""
        setting = build_adult_setting(0.5, n_train=200, n_query=300, seed=0)
        serial = compare_methods(
            setting.database, "income", setting.X_train, setting.y_corrupted,
            [setting.gender_case, setting.age_case],
            setting.corrupted_indices,
            methods=("holistic",), seed=0, max_removals=30,
        )
        piped = compare_methods(
            setting.database, "income", setting.X_train, setting.y_corrupted,
            [setting.gender_case, setting.age_case],
            setting.corrupted_indices,
            methods=("holistic",), seed=0, max_removals=30,
            n_workers=2, async_pipeline=True,
        )
        np.testing.assert_array_equal(
            piped["holistic"]["recall_curve"],
            serial["holistic"]["recall_curve"],
        )
        assert piped["holistic"]["auccr"] == serial["holistic"]["auccr"]
