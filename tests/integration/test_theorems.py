"""The appendix theorems, asserted as tests (A.1 ambiguity, C.1 complaints)."""

import numpy as np

from repro.experiments import thm_a1, thm_c1


class TestTheoremA1:
    def test_nonzero_probability_decreases_with_n(self):
        result = thm_a1.run(n_values=(12, 48), trials=120, seed=0)
        assert len(result.rows) == 2
        small = result.rows[0]["empirical_p_nonzero"]
        large = result.rows[1]["empirical_p_nonzero"]
        assert large < small

    def test_empirical_tracks_theory(self):
        result = thm_a1.run(n_values=(24,), trials=400, seed=1)
        row = result.rows[0]
        assert abs(row["empirical_p_nonzero"] - row["theory_p_nonzero"]) < 0.12


class TestTheoremC1:
    def test_corrupted_loss_shrinks_with_k(self):
        result = thm_c1.run(k_values=(4, 64), seed=0)
        losses = [row["max_corrupt_loss"] for row in result.rows]
        assert losses[1] < losses[0]

    def test_self_influence_shrinks_with_k(self):
        result = thm_c1.run(k_values=(4, 64), seed=0)
        values = [row["max_abs_corrupt_selfinf"] for row in result.rows]
        assert values[1] < values[0]

    def test_complaint_ranks_all_corruptions_top(self):
        result = thm_c1.run(k_values=(16, 64), seed=0)
        for row in result.rows:
            assert row["complaint_recall@K"] == 1.0
            assert row["min_corrupt_complaint_score"] > 0
