"""Neural classifier tests: training, FD HVPs, prob VJPs, adapters."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import (
    NeuralClassifier,
    flatten_input_adapter,
    image_input_adapter,
    make_cnn,
    make_mlp,
)


@pytest.fixture()
def mlp_problem():
    rng = np.random.default_rng(21)
    n, d = 50, 6
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = (X @ w > 0).astype(int)
    return X, y


@pytest.fixture()
def fitted_mlp(mlp_problem):
    X, y = mlp_problem
    model = NeuralClassifier((0, 1), make_mlp(6, [8], 2, rng=0), l2=1e-3)
    model.fit(X, y, warm_start=False, max_iter=150)
    return model


class TestMLP:
    def test_fit_improves_accuracy(self, mlp_problem, fitted_mlp):
        X, y = mlp_problem
        assert fitted_mlp.accuracy(X, y) > 0.9

    def test_proba_normalized(self, mlp_problem, fitted_mlp):
        X, _ = mlp_problem
        proba = fitted_mlp.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-10)

    def test_autodiff_grad_matches_fd(self, mlp_problem, fitted_mlp):
        X, y = mlp_problem
        model = fitted_mlp
        theta = model.get_params()
        y_idx = model.labels_to_indices(y)
        _, grad = model._data_loss_and_grad(theta, X, y_idx)
        rng = np.random.default_rng(0)
        # Spot-check 10 random coordinates (full FD too slow).
        eps = 1e-6
        for index in rng.choice(theta.size, size=10, replace=False):
            plus = theta.copy(); plus[index] += eps
            minus = theta.copy(); minus[index] -= eps
            lp = model._per_sample_losses(plus, X, y_idx).mean()
            lm = model._per_sample_losses(minus, X, y_idx).mean()
            assert grad[index] == pytest.approx((lp - lm) / (2 * eps), abs=1e-4)

    def test_per_sample_grads_sum_to_total(self, mlp_problem, fitted_mlp):
        X, y = mlp_problem
        model = fitted_mlp
        theta = model.get_params()
        y_idx = model.labels_to_indices(y)
        _, total = model._data_loss_and_grad(theta, X[:8], y_idx[:8])
        per_sample = model._per_sample_grads(theta, X[:8], y_idx[:8])
        np.testing.assert_allclose(per_sample.mean(axis=0), total, atol=1e-8)

    def test_grad_dot_matches_per_sample_grads(self, mlp_problem, fitted_mlp):
        X, y = mlp_problem
        model = fitted_mlp
        v = np.random.default_rng(1).normal(size=model.n_params)
        exact = model.per_sample_grads(X[:10], y[:10]) @ v
        fd = model.grad_dot(X[:10], y[:10], v)
        np.testing.assert_allclose(fd, exact, atol=1e-4, rtol=1e-3)

    def test_hvp_symmetric(self, mlp_problem, fitted_mlp):
        X, y = mlp_problem
        model = fitted_mlp
        rng = np.random.default_rng(2)
        u = rng.normal(size=model.n_params)
        v = rng.normal(size=model.n_params)
        # uᵀHv == vᵀHu within FD noise.
        uhv = u @ model.hvp(X, y, v)
        vhu = v @ model.hvp(X, y, u)
        assert uhv == pytest.approx(vhu, rel=1e-3, abs=1e-5)

    def test_hvp_zero_vector(self, mlp_problem, fitted_mlp):
        X, y = mlp_problem
        out = fitted_mlp.hvp(X, y, np.zeros(fitted_mlp.n_params))
        assert np.all(out == 0)

    def test_prob_vjp_matches_fd(self, mlp_problem, fitted_mlp):
        X, _ = mlp_problem
        model = fitted_mlp
        theta = model.get_params()
        weights = np.random.default_rng(3).normal(size=(10, 2))

        def weighted(t):
            return float((model._proba(t, X[:10]) * weights).sum())

        vjp = model.prob_vjp(X[:10], weights)
        eps = 1e-6
        rng = np.random.default_rng(4)
        for index in rng.choice(theta.size, size=8, replace=False):
            plus = theta.copy(); plus[index] += eps
            minus = theta.copy(); minus[index] -= eps
            fd = (weighted(plus) - weighted(minus)) / (2 * eps)
            assert vjp[index] == pytest.approx(fd, abs=1e-4)

    def test_wrong_logit_width_raises(self, mlp_problem):
        X, y = mlp_problem
        model = NeuralClassifier((0, 1, 2), make_mlp(6, [4], 2, rng=0))
        with pytest.raises(ModelError, match="logits"):
            model.fit(X, np.zeros(len(y)), warm_start=False, max_iter=2)


class TestVectorizedPerSampleGrads:
    """Golden tests: one batched backward pass vs. the per-row loop."""

    @pytest.mark.parametrize("seed,n,d,hidden", [
        (0, 12, 4, [6]),
        (1, 7, 9, [5, 3]),
        (2, 25, 3, []),
        (3, 1, 5, [4]),
    ])
    def test_mlp_matches_reference_loop(self, seed, n, d, hidden):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        y = rng.integers(2, size=n)
        model = NeuralClassifier((0, 1), make_mlp(d, hidden, 2, rng=seed), l2=1e-3)
        model.fit(X, y, warm_start=False, max_iter=20)
        theta = model.get_params()
        y_idx = model.labels_to_indices(y)
        reference = model._per_sample_grads_reference(theta, X, y_idx)
        vectorized = model._per_sample_grads_vectorized(theta, X, y_idx)
        assert vectorized is not None
        np.testing.assert_allclose(vectorized, reference, atol=1e-10)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_cnn_matches_reference_loop(self, seed):
        rng = np.random.default_rng(seed)
        images = rng.normal(size=(5, 12, 12))
        y = rng.integers(2, size=5)
        model = NeuralClassifier(
            (0, 1),
            make_cnn(image_size=12, n_classes=2, channels=2, kernel=5, pool=2, rng=seed),
            input_adapter=image_input_adapter,
            l2=1e-3,
        )
        model.fit(images, y, warm_start=False, max_iter=5)
        theta = model.get_params()
        y_idx = model.labels_to_indices(y)
        reference = model._per_sample_grads_reference(theta, images, y_idx)
        vectorized = model._per_sample_grads_vectorized(theta, images, y_idx)
        assert vectorized is not None
        np.testing.assert_allclose(vectorized, reference, atol=1e-10)

    def test_public_api_uses_vectorized_path(self, mlp_problem, fitted_mlp):
        X, y = mlp_problem
        theta = fitted_mlp.get_params()
        y_idx = fitted_mlp.labels_to_indices(y)
        grads = fitted_mlp.per_sample_grads(X, y)
        np.testing.assert_allclose(
            grads,
            fitted_mlp._per_sample_grads_reference(theta, X, y_idx),
            atol=1e-10,
        )

    def test_uncaptured_network_falls_back_to_loop(self, mlp_problem):
        """A parameterized layer without capture support must not be skipped."""
        from repro.autodiff import nn
        from repro.autodiff import tensor as T

        class OpaqueDense(nn.Module):
            def __init__(self, inner):
                self.inner = inner

            def parameters(self):
                return self.inner.parameters()

            def __call__(self, x):
                return self.inner(x)

        X, y = mlp_problem
        rng_net = nn.Sequential(
            [OpaqueDense(nn.Dense(6, 2, rng=0))]
        )
        model = NeuralClassifier((0, 1), rng_net, l2=1e-3)
        model.fit(X, y, warm_start=False, max_iter=10)
        theta = model.get_params()
        y_idx = model.labels_to_indices(y)
        assert model._per_sample_grads_vectorized(theta, X, y_idx) is None
        grads = model.per_sample_grads(X, y)  # falls back, stays correct
        np.testing.assert_allclose(
            grads.mean(axis=0),
            model._data_loss_and_grad(theta, X, y_idx)[1],
            atol=1e-8,
        )

    def test_hvp_block_matches_scalar_fd(self, mlp_problem, fitted_mlp):
        X, y = mlp_problem
        V = np.random.default_rng(5).normal(size=(fitted_mlp.n_params, 3))
        block = fitted_mlp.hvp_block(X[:10], y[:10], V)
        for j in range(3):
            np.testing.assert_allclose(
                block[:, j], fitted_mlp.hvp(X[:10], y[:10], V[:, j]), atol=1e-8
            )


class TestCNNModel:
    def test_cnn_fits_tiny_digits(self):
        from repro.data import make_mnist

        ds = make_mnist(n_train=60, n_query=30, digits=(0, 1), seed=0)
        model = NeuralClassifier(
            tuple(range(10)),
            make_cnn(image_size=28, n_classes=10, channels=2, rng=0),
            input_adapter=image_input_adapter,
            l2=1e-3,
        )
        model.fit(ds.images_train, ds.y_train, warm_start=False, max_iter=40)
        assert model.accuracy(ds.images_query, ds.y_query) > 0.8


class TestAdapters:
    def test_image_adapter_3d(self):
        out = image_input_adapter(np.zeros((4, 28, 28)))
        assert out.shape == (4, 1, 28, 28)

    def test_image_adapter_4d_passthrough(self):
        out = image_input_adapter(np.zeros((4, 1, 28, 28)))
        assert out.shape == (4, 1, 28, 28)

    def test_image_adapter_bad_ndim(self):
        with pytest.raises(ModelError, match="image"):
            image_input_adapter(np.zeros((4, 784)))

    def test_flatten_adapter(self):
        out = flatten_input_adapter(np.zeros((4, 28, 28)))
        assert out.shape == (4, 784)
