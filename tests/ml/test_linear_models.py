"""Logistic / softmax regression: gradients, HVPs, probability VJPs vs. FD."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml import LogisticRegression, SoftmaxRegression


def fd_grad(fn, theta, eps=1e-6):
    grad = np.zeros_like(theta)
    for index in range(theta.size):
        plus = theta.copy(); plus[index] += eps
        minus = theta.copy(); minus[index] -= eps
        grad[index] = (fn(plus) - fn(minus)) / (2 * eps)
    return grad


class TestLogisticBasics:
    def test_requires_two_classes(self):
        with pytest.raises(ModelError, match="binary"):
            LogisticRegression((0, 1, 2), n_features=3)

    def test_duplicate_classes_raise(self):
        with pytest.raises(ModelError, match="duplicate"):
            LogisticRegression((1, 1), n_features=3)

    def test_unfitted_raises(self):
        model = LogisticRegression((0, 1), n_features=3)
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((2, 3)))

    def test_unknown_label_raises(self, binary_problem):
        X, y = binary_problem
        model = LogisticRegression((0, 1), n_features=X.shape[1])
        with pytest.raises(ModelError, match="unknown class"):
            model.fit(X, np.full(len(y), 7))

    def test_fit_separable_high_accuracy(self, binary_problem, fitted_binary_model):
        X, y = binary_problem
        assert fitted_binary_model.accuracy(X, y) > 0.9

    def test_string_classes(self, binary_problem):
        X, y = binary_problem
        labels = np.where(y == 1, "spam", "ham")
        model = LogisticRegression(("ham", "spam"), n_features=X.shape[1], l2=1e-2)
        model.fit(X, labels, warm_start=False)
        predictions = model.predict(X)
        assert set(predictions) <= {"ham", "spam"}
        assert np.mean(predictions == labels) > 0.9

    def test_predict_proba_rows_sum_to_one(self, fitted_binary_model, binary_problem):
        X, _ = binary_problem
        proba = fitted_binary_model.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)

    def test_warm_start_keeps_params_shape(self, binary_problem, fitted_binary_model):
        X, y = binary_problem
        theta_before = fitted_binary_model.get_params()
        fitted_binary_model.fit(X[:30], y[:30], warm_start=True)
        assert fitted_binary_model.get_params().shape == theta_before.shape

    def test_empty_training_set_raises(self):
        model = LogisticRegression((0, 1), n_features=2)
        with pytest.raises(ModelError, match="empty"):
            model.fit(np.zeros((0, 2)), np.zeros(0))

    def test_wrong_feature_dim_raises(self, fitted_binary_model):
        with pytest.raises(ModelError, match="shape"):
            fitted_binary_model.predict(np.zeros((2, 9)))


class TestLogisticCalculus:
    def test_total_grad_matches_fd(self, binary_problem, fitted_binary_model):
        X, y = binary_problem
        model = fitted_binary_model
        theta = model.get_params()
        y_idx = model.labels_to_indices(y)

        def total_loss(t):
            losses = model._per_sample_losses(t, X, y_idx)
            return losses.mean() + model.l2 * t @ t

        value, grad = model._data_loss_and_grad(theta, X, y_idx)
        grad = grad + 2 * model.l2 * theta
        np.testing.assert_allclose(grad, fd_grad(total_loss, theta), atol=1e-5)

    def test_per_sample_grads_sum_to_total(self, binary_problem, fitted_binary_model):
        X, y = binary_problem
        model = fitted_binary_model
        theta = model.get_params()
        y_idx = model.labels_to_indices(y)
        _, total = model._data_loss_and_grad(theta, X, y_idx)
        per_sample = model._per_sample_grads(theta, X, y_idx)
        np.testing.assert_allclose(per_sample.mean(axis=0), total, atol=1e-10)

    def test_hvp_matches_fd_of_grad(self, binary_problem, fitted_binary_model):
        X, y = binary_problem
        model = fitted_binary_model
        theta = model.get_params()
        y_idx = model.labels_to_indices(y)
        rng = np.random.default_rng(1)
        v = rng.normal(size=theta.size)

        def reg_grad(t):
            _, g = model._data_loss_and_grad(t, X, y_idx)
            return g + 2 * model.l2 * t

        eps = 1e-6
        fd_hv = (reg_grad(theta + eps * v) - reg_grad(theta - eps * v)) / (2 * eps)
        np.testing.assert_allclose(model.hvp(X, y, v), fd_hv, atol=1e-5)

    def test_hessian_positive_definite(self, binary_problem, fitted_binary_model):
        X, y = binary_problem
        model = fitted_binary_model
        rng = np.random.default_rng(2)
        for _ in range(5):
            v = rng.normal(size=model.n_params)
            assert v @ model.hvp(X, y, v) > 0

    def test_prob_vjp_matches_fd(self, binary_problem, fitted_binary_model):
        X, _ = binary_problem
        model = fitted_binary_model
        theta = model.get_params()
        rng = np.random.default_rng(3)
        weights = rng.normal(size=(X.shape[0], 2))

        def weighted_prob(t):
            return float((model._proba(t, X) * weights).sum())

        vjp = model.prob_vjp(X, weights)
        np.testing.assert_allclose(vjp, fd_grad(weighted_prob, theta), atol=1e-5)

    def test_grad_dot_matches_matrix_product(self, binary_problem, fitted_binary_model):
        X, y = binary_problem
        model = fitted_binary_model
        v = np.random.default_rng(4).normal(size=model.n_params)
        expected = model.per_sample_grads(X, y) @ v
        np.testing.assert_allclose(model.grad_dot(X, y, v), expected, atol=1e-10)

    def test_no_intercept_variant(self, binary_problem):
        X, y = binary_problem
        model = LogisticRegression((0, 1), n_features=X.shape[1], fit_intercept=False)
        model.fit(X, y, warm_start=False)
        assert model.n_params == X.shape[1]


class TestSoftmax:
    def test_fit_and_accuracy(self, multiclass_problem, fitted_multiclass_model):
        X, y = multiclass_problem
        assert fitted_multiclass_model.accuracy(X, y) > 0.85

    def test_proba_shape_and_normalization(self, multiclass_problem, fitted_multiclass_model):
        X, _ = multiclass_problem
        proba = fitted_multiclass_model.predict_proba(X)
        assert proba.shape == (X.shape[0], 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)

    def test_grad_matches_fd(self, multiclass_problem, fitted_multiclass_model):
        X, y = multiclass_problem
        model = fitted_multiclass_model
        theta = model.get_params()
        y_idx = model.labels_to_indices(y)

        def loss(t):
            return model._per_sample_losses(t, X, y_idx).mean()

        _, grad = model._data_loss_and_grad(theta, X, y_idx)
        np.testing.assert_allclose(grad, fd_grad(loss, theta), atol=1e-5)

    def test_per_sample_grads_sum(self, multiclass_problem, fitted_multiclass_model):
        X, y = multiclass_problem
        model = fitted_multiclass_model
        theta = model.get_params()
        y_idx = model.labels_to_indices(y)
        _, total = model._data_loss_and_grad(theta, X, y_idx)
        per_sample = model._per_sample_grads(theta, X, y_idx)
        np.testing.assert_allclose(per_sample.mean(axis=0), total, atol=1e-10)

    def test_hvp_matches_fd(self, multiclass_problem, fitted_multiclass_model):
        X, y = multiclass_problem
        model = fitted_multiclass_model
        theta = model.get_params()
        y_idx = model.labels_to_indices(y)
        v = np.random.default_rng(5).normal(size=theta.size)

        def reg_grad(t):
            _, g = model._data_loss_and_grad(t, X, y_idx)
            return g + 2 * model.l2 * t

        eps = 1e-6
        fd_hv = (reg_grad(theta + eps * v) - reg_grad(theta - eps * v)) / (2 * eps)
        np.testing.assert_allclose(model.hvp(X, y, v), fd_hv, atol=1e-5)

    def test_prob_vjp_matches_fd(self, multiclass_problem, fitted_multiclass_model):
        X, _ = multiclass_problem
        model = fitted_multiclass_model
        theta = model.get_params()
        weights = np.random.default_rng(6).normal(size=(X.shape[0], 3))

        def weighted(t):
            return float((model._proba(t, X) * weights).sum())

        np.testing.assert_allclose(
            model.prob_vjp(X, weights), fd_grad(weighted, theta), atol=1e-5
        )

    def test_f1_binary(self, binary_problem, fitted_binary_model):
        X, y = binary_problem
        f1 = fitted_binary_model.f1_binary(X, y, positive=1)
        assert 0.8 < f1 <= 1.0

    def test_f1_degenerate_zero(self):
        model = LogisticRegression((0, 1), n_features=2, l2=1e-2)
        X = np.asarray([[10.0, 10.0], [11.0, 11.0]])
        model.fit(X, [0, 0], warm_start=False)
        assert model.f1_binary(X, np.asarray([1, 1]), positive=1) == 0.0
