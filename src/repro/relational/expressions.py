"""The expression language of Query 2.0 plans.

Expressions evaluate *concretely* (numpy arrays, one value per tuple) and,
for the debug-mode executor, *symbolically*:

- boolean expressions produce per-tuple
  :class:`~repro.relational.provenance.BoolExpr` conditions in which
  deterministic sub-predicates are folded to TRUE/FALSE and model-dependent
  comparisons become :class:`~repro.relational.provenance.PredIs` atoms;
- numeric expressions (aggregate arguments) produce per-tuple
  :class:`~repro.relational.provenance.NumExpr` polynomials.

``M.predict(...)`` is the only source of uncertainty: the queried data is
trusted (the paper's standing assumption), so everything not reachable from
a :class:`ModelPredict` node folds to constants.
"""

from __future__ import annotations

import operator
from collections.abc import Sequence

import numpy as np

from ..errors import QueryError, UnsupportedQueryError
from . import provenance as prov
from .context import QueryRuntime, TupleBatch

_COMPARATORS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "**": operator.pow,
}


class Expr:
    """Base class for all expressions."""

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        """Concrete per-tuple values (models evaluated through the cache)."""
        raise NotImplementedError

    def depends_on_model(self) -> bool:
        """True if any :class:`ModelPredict` occurs in this subtree."""
        return any(child.depends_on_model() for child in self.children())

    def children(self) -> Sequence["Expr"]:
        return ()

    def referenced_columns(self) -> set[str]:
        out: set[str] = set()
        for child in self.children():
            out |= child.referenced_columns()
        return out

    # -- symbolic interfaces (overridden where meaningful) -------------------

    def symbolic_bool(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.BoolExpr]:
        """Per-tuple boolean provenance.  Default: fold concrete values."""
        if self.depends_on_model():
            raise UnsupportedQueryError(
                f"cannot build boolean provenance for {self!r}",
                feature=type(self).__name__,
            )
        values = np.asarray(self.eval(batch, runtime), dtype=bool)
        return [prov.const(bool(value)) for value in values]

    def symbolic_num(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.NumExpr]:
        """Per-tuple numeric provenance.  Default: fold concrete values."""
        if self.depends_on_model():
            raise UnsupportedQueryError(
                f"cannot build numeric provenance for {self!r}",
                feature=type(self).__name__,
            )
        values = np.asarray(self.eval(batch, runtime), dtype=float)
        return [prov.ConstNum(float(value)) for value in values]

    # -- compiled (node-emitting) symbolic interfaces ------------------------

    def symbolic_bool_nodes(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> np.ndarray:
        """Per-tuple boolean provenance as pool node ids (compiled path)."""
        if self.depends_on_model():
            raise UnsupportedQueryError(
                f"cannot build boolean provenance for {self!r}",
                feature=type(self).__name__,
            )
        values = np.asarray(self.eval(batch, runtime), dtype=bool)
        return runtime.pool.const_bool(values)

    def symbolic_num_nodes(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> np.ndarray:
        """Per-tuple numeric provenance as pool node ids (compiled path)."""
        if self.depends_on_model():
            raise UnsupportedQueryError(
                f"cannot build numeric provenance for {self!r}",
                feature=type(self).__name__,
            )
        values = np.asarray(self.eval(batch, runtime), dtype=float)
        return runtime.pool.const_num(values)


class Col(Expr):
    """A column reference, optionally qualified (``alias.column``)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        return batch.values(self.name)

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"Col({self.name!r})"


class Const(Expr):
    """A literal constant."""

    def __init__(self, value) -> None:
        self.value = value

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        return np.full(len(batch), self.value)

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Arith(Expr):
    """Binary arithmetic: ``+ - * / **``."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITHMETIC:
            raise QueryError(f"unsupported arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        left = np.asarray(self.left.eval(batch, runtime), dtype=float)
        right = np.asarray(self.right.eval(batch, runtime), dtype=float)
        return _ARITHMETIC[self.op](left, right)

    def symbolic_num(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.NumExpr]:
        if not self.depends_on_model():
            return super().symbolic_num(batch, runtime)
        left = self.left.symbolic_num(batch, runtime)
        right = self.right.symbolic_num(batch, runtime)
        if self.op == "+":
            return [prov.add_(l, r) for l, r in zip(left, right)]
        if self.op == "-":
            return [
                prov.add_(l, prov.mul_(prov.ConstNum(-1.0), r))
                for l, r in zip(left, right)
            ]
        if self.op == "*":
            return [prov.mul_(l, r) for l, r in zip(left, right)]
        if self.op == "/":
            return [prov.DivExpr(l, r) for l, r in zip(left, right)]
        raise UnsupportedQueryError(
            f"operator {self.op!r} over model predictions is not supported",
            feature="arith-over-predict",
        )

    def symbolic_num_nodes(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> np.ndarray:
        if not self.depends_on_model():
            return super().symbolic_num_nodes(batch, runtime)
        pool = runtime.pool
        left = self.left.symbolic_num_nodes(batch, runtime)
        right = self.right.symbolic_num_nodes(batch, runtime)
        n = left.shape[0]
        if self.op in ("+", "-"):
            child_flat = np.empty(2 * n, dtype=np.int64)
            child_flat[0::2] = left
            child_flat[1::2] = right
            coeffs = np.empty(2 * n, dtype=np.float64)
            coeffs[0::2] = 1.0
            coeffs[1::2] = 1.0 if self.op == "+" else -1.0
            offsets = np.arange(n + 1, dtype=np.int64) * 2
            return pool.add_segments(coeffs, child_flat, offsets)
        if self.op == "*":
            return pool.mul2(left, right)
        if self.op == "/":
            return pool.div2(left, right)
        raise UnsupportedQueryError(
            f"operator {self.op!r} over model predictions is not supported",
            feature="arith-over-predict",
        )

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class ModelPredict(Expr):
    """``model.predict(features)`` over a feature column of one relation."""

    def __init__(self, model_name: str, features: Col) -> None:
        if not isinstance(features, Col):
            raise UnsupportedQueryError(
                "predict(...) takes a single feature-column reference",
                feature="predict-arg",
            )
        self.model_name = model_name
        self.features = features

    def children(self) -> Sequence[Expr]:
        return (self.features,)

    def depends_on_model(self) -> bool:
        return True

    def _site_inputs(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> tuple[str, np.ndarray, np.ndarray]:
        """(base relation name, base row ids, feature array) for the batch."""
        alias = batch.alias_of_column(self.features.name)
        relation_name = batch.alias_relations[alias]
        row_ids = batch.alias_row_ids[alias]
        features = batch.values(self.features.name)
        return relation_name, row_ids, features

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        relation_name, row_ids, features = self._site_inputs(batch, runtime)
        return runtime.predict(self.model_name, relation_name, row_ids, features)

    def site_ids(self, batch: TupleBatch, runtime: QueryRuntime) -> list[int]:
        """Intern one inference site per tuple; triggers prediction caching."""
        relation_name, row_ids, features = self._site_inputs(batch, runtime)
        # Populate the prediction cache so sites always have concrete values.
        runtime.predict(self.model_name, relation_name, row_ids, features)
        return runtime.intern_sites(
            self.model_name, relation_name, row_ids, features
        ).tolist()

    def symbolic_num(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.NumExpr]:
        classes = runtime.model_classes(self.model_name)
        try:
            class_values = [(label, float(label)) for label in classes]
        except (TypeError, ValueError) as exc:
            raise UnsupportedQueryError(
                f"model {self.model_name!r} has non-numeric classes; its "
                "predictions cannot appear in an arithmetic context",
                feature="predict-as-number",
            ) from exc
        return [
            prov.pred_value(site_id, class_values)
            for site_id in self.site_ids(batch, runtime)
        ]

    def symbolic_num_nodes(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> np.ndarray:
        classes = runtime.model_classes(self.model_name)
        try:
            class_values = np.asarray([float(label) for label in classes])
        except (TypeError, ValueError) as exc:
            raise UnsupportedQueryError(
                f"model {self.model_name!r} has non-numeric classes; its "
                "predictions cannot appear in an arithmetic context",
                feature="predict-as-number",
            ) from exc
        pool = runtime.pool
        site_ids = np.asarray(self.site_ids(batch, runtime), dtype=np.int64)
        n, k = site_ids.shape[0], len(classes)
        label_ids = pool.intern_labels(np.asarray(classes, dtype=object))
        atoms = pool.atoms(np.repeat(site_ids, k), np.tile(label_ids, n))
        offsets = np.arange(n + 1, dtype=np.int64) * k
        return pool.add_segments(np.tile(class_values, n), atoms, offsets)

    def __repr__(self) -> str:
        return f"{self.model_name}.predict({self.features.name})"


class Cmp(Expr):
    """Comparison; the bridge between predictions and boolean provenance."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARATORS:
            raise QueryError(f"unsupported comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        left = self.left.eval(batch, runtime)
        right = self.right.eval(batch, runtime)
        return np.asarray(_COMPARATORS[self.op](left, right), dtype=bool)

    def symbolic_bool(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.BoolExpr]:
        left_model = self.left.depends_on_model()
        right_model = self.right.depends_on_model()
        if not left_model and not right_model:
            return super().symbolic_bool(batch, runtime)

        if isinstance(self.left, ModelPredict) and not right_model:
            return self._predict_vs_values(self.left, self.right, self.op, batch, runtime)
        if isinstance(self.right, ModelPredict) and not left_model:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(self.op, self.op)
            return self._predict_vs_values(self.right, self.left, flipped, batch, runtime)
        if isinstance(self.left, ModelPredict) and isinstance(self.right, ModelPredict):
            return self._predict_vs_predict(batch, runtime)
        raise UnsupportedQueryError(
            f"comparison {self!r} mixes predictions into arithmetic; "
            "only direct comparisons of predict(...) are supported in WHERE",
            feature="cmp-over-predict",
        )

    def symbolic_bool_nodes(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> np.ndarray:
        left_model = self.left.depends_on_model()
        right_model = self.right.depends_on_model()
        if not left_model and not right_model:
            return super().symbolic_bool_nodes(batch, runtime)
        if isinstance(self.left, ModelPredict) and not right_model:
            return self._predict_vs_values_nodes(
                self.left, self.right, self.op, batch, runtime
            )
        if isinstance(self.right, ModelPredict) and not left_model:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(self.op, self.op)
            return self._predict_vs_values_nodes(
                self.right, self.left, flipped, batch, runtime
            )
        if isinstance(self.left, ModelPredict) and isinstance(self.right, ModelPredict):
            return self._predict_vs_predict_nodes(batch, runtime)
        raise UnsupportedQueryError(
            f"comparison {self!r} mixes predictions into arithmetic; "
            "only direct comparisons of predict(...) are supported in WHERE",
            feature="cmp-over-predict",
        )

    def _predict_vs_values_nodes(
        self,
        predict: ModelPredict,
        other: Expr,
        op: str,
        batch: TupleBatch,
        runtime: QueryRuntime,
    ) -> np.ndarray:
        pool = runtime.pool
        classes = runtime.model_classes(predict.model_name)
        site_ids = np.asarray(predict.site_ids(batch, runtime), dtype=np.int64)
        values = np.asarray(other.eval(batch, runtime))
        compare = _COMPARATORS[op]
        n, k = site_ids.shape[0], len(classes)
        # matches[row, class]: does predicting this class satisfy the filter?
        matches = np.zeros((n, k), dtype=bool)
        for column, label in enumerate(classes):
            matches[:, column] = _safe_compare_array(compare, label, values)
        from .compile import TRUE_NODE

        label_ids = pool.intern_labels(np.asarray(classes, dtype=object))
        all_true = matches.all(axis=1)
        # Exhaustive rows fold to TRUE outright; build atoms only for the rest.
        matches[all_true] = False
        flat = matches.ravel()
        atoms = pool.atoms(
            np.repeat(site_ids, k)[flat], np.tile(label_ids, n)[flat]
        )
        offsets = np.concatenate([[0], np.cumsum(matches.sum(axis=1))]).astype(np.int64)
        out = pool.or_segments(atoms, offsets)
        out[all_true] = TRUE_NODE  # exhaustive classes: always satisfied
        return out

    def _predict_vs_predict_nodes(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> np.ndarray:
        from .compile import TRUE_NODE

        pool = runtime.pool
        left: ModelPredict = self.left  # type: ignore[assignment]
        right: ModelPredict = self.right  # type: ignore[assignment]
        left_classes = runtime.model_classes(left.model_name)
        right_classes = runtime.model_classes(right.model_name)
        left_sites = np.asarray(left.site_ids(batch, runtime), dtype=np.int64)
        right_sites = np.asarray(right.site_ids(batch, runtime), dtype=np.int64)
        compare = _COMPARATORS[self.op]
        out = np.empty(left_sites.shape[0], dtype=np.int64)

        same = left_sites == right_sites
        if np.any(same):
            # predict(x) op predict(x): one shared site per row.
            matching = [c for c in left_classes if _safe_compare(compare, c, c)]
            if len(matching) == len(left_classes):
                out[same] = TRUE_NODE
            else:
                sites = left_sites[same]
                label_ids = pool.intern_labels(np.asarray(matching, dtype=object))
                k = len(matching)
                atoms = pool.atoms(np.repeat(sites, k), np.tile(label_ids, sites.shape[0]))
                offsets = np.arange(sites.shape[0] + 1, dtype=np.int64) * k
                out[same] = pool.or_segments(atoms, offsets)
        diff = ~same
        if np.any(diff):
            pairs = [
                (lc, rc)
                for lc in left_classes
                for rc in right_classes
                if _safe_compare(compare, lc, rc)
            ]
            n_diff = int(np.count_nonzero(diff))
            if not pairs:
                offsets = np.zeros(n_diff + 1, dtype=np.int64)
                out[diff] = pool.or_segments(np.empty(0, dtype=np.int64), offsets)
            else:
                k = len(pairs)
                left_label_ids = pool.intern_labels(
                    np.asarray([lc for lc, _ in pairs], dtype=object)
                )
                right_label_ids = pool.intern_labels(
                    np.asarray([rc for _, rc in pairs], dtype=object)
                )
                left_atoms = pool.atoms(
                    np.repeat(left_sites[diff], k),
                    np.tile(left_label_ids, n_diff),
                )
                right_atoms = pool.atoms(
                    np.repeat(right_sites[diff], k),
                    np.tile(right_label_ids, n_diff),
                )
                conj = pool.and2(left_atoms, right_atoms)
                offsets = np.arange(n_diff + 1, dtype=np.int64) * k
                out[diff] = pool.or_segments(conj, offsets)
        return out

    def _predict_vs_values(
        self,
        predict: ModelPredict,
        other: Expr,
        op: str,
        batch: TupleBatch,
        runtime: QueryRuntime,
    ) -> list[prov.BoolExpr]:
        classes = runtime.model_classes(predict.model_name)
        site_ids = predict.site_ids(batch, runtime)
        values = other.eval(batch, runtime)
        compare = _COMPARATORS[op]
        out: list[prov.BoolExpr] = []
        for site_id, value in zip(site_ids, values):
            value = value.item() if hasattr(value, "item") else value
            matching = [label for label in classes if _safe_compare(compare, label, value)]
            if len(matching) == len(classes):
                out.append(prov.TRUE)  # exhaustive: always satisfied
            else:
                out.append(
                    prov.or_(*[prov.PredIs(site_id, label) for label in matching])
                )
        return out

    def _predict_vs_predict(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.BoolExpr]:
        left: ModelPredict = self.left  # type: ignore[assignment]
        right: ModelPredict = self.right  # type: ignore[assignment]
        left_classes = runtime.model_classes(left.model_name)
        right_classes = runtime.model_classes(right.model_name)
        left_sites = left.site_ids(batch, runtime)
        right_sites = right.site_ids(batch, runtime)
        compare = _COMPARATORS[self.op]
        out: list[prov.BoolExpr] = []
        for left_site, right_site in zip(left_sites, right_sites):
            if left_site == right_site:
                # Same base row on both sides: predict(x) op predict(x).
                matching = [c for c in left_classes if _safe_compare(compare, c, c)]
                if len(matching) == len(left_classes):
                    out.append(prov.TRUE)
                else:
                    out.append(
                        prov.or_(*[prov.PredIs(left_site, c) for c in matching])
                    )
                continue
            disjuncts = [
                prov.and_(prov.PredIs(left_site, lc), prov.PredIs(right_site, rc))
                for lc in left_classes
                for rc in right_classes
                if _safe_compare(compare, lc, rc)
            ]
            out.append(prov.or_(*disjuncts))
        return out

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def _safe_compare(compare, left, right) -> bool:
    try:
        return bool(compare(left, right))
    except TypeError:
        return False


def _safe_compare_array(compare, label, values: np.ndarray) -> np.ndarray:
    """Vectorized ``_safe_compare(compare, label, value)`` over a column."""
    try:
        result = np.asarray(compare(label, values))
        if result.shape == values.shape and result.dtype == np.bool_:
            return result
    except TypeError:
        pass
    # numpy raised on, or collapsed, an incomparable pairing; fall back to
    # the per-element safe comparison (matching the tree reference, which
    # folds only the genuinely incomparable elements to False).
    return np.asarray(
        [_safe_compare(compare, label, value) for value in values.tolist()],
        dtype=bool,
    )


class BoolAnd(Expr):
    """N-ary conjunction."""

    def __init__(self, children: Sequence[Expr]) -> None:
        self._children = tuple(children)
        if not self._children:
            raise QueryError("AND needs at least one operand")

    def children(self) -> Sequence[Expr]:
        return self._children

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        result = np.ones(len(batch), dtype=bool)
        for child in self._children:
            result &= np.asarray(child.eval(batch, runtime), dtype=bool)
        return result

    def symbolic_bool(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.BoolExpr]:
        parts = [child.symbolic_bool(batch, runtime) for child in self._children]
        return [prov.and_(*row_parts) for row_parts in zip(*parts)]

    def symbolic_bool_nodes(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> np.ndarray:
        parts = [child.symbolic_bool_nodes(batch, runtime) for child in self._children]
        flat = np.stack(parts, axis=1).ravel()
        offsets = np.arange(len(batch) + 1, dtype=np.int64) * len(parts)
        return runtime.pool.and_segments(flat, offsets)

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self._children)) + ")"


class BoolOr(Expr):
    """N-ary disjunction."""

    def __init__(self, children: Sequence[Expr]) -> None:
        self._children = tuple(children)
        if not self._children:
            raise QueryError("OR needs at least one operand")

    def children(self) -> Sequence[Expr]:
        return self._children

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        result = np.zeros(len(batch), dtype=bool)
        for child in self._children:
            result |= np.asarray(child.eval(batch, runtime), dtype=bool)
        return result

    def symbolic_bool(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.BoolExpr]:
        parts = [child.symbolic_bool(batch, runtime) for child in self._children]
        return [prov.or_(*row_parts) for row_parts in zip(*parts)]

    def symbolic_bool_nodes(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> np.ndarray:
        parts = [child.symbolic_bool_nodes(batch, runtime) for child in self._children]
        flat = np.stack(parts, axis=1).ravel()
        offsets = np.arange(len(batch) + 1, dtype=np.int64) * len(parts)
        return runtime.pool.or_segments(flat, offsets)

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self._children)) + ")"


class BoolNot(Expr):
    """Negation."""

    def __init__(self, child: Expr) -> None:
        self.child = child

    def children(self) -> Sequence[Expr]:
        return (self.child,)

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        return ~np.asarray(self.child.eval(batch, runtime), dtype=bool)

    def symbolic_bool(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.BoolExpr]:
        return [prov.not_(cond) for cond in self.child.symbolic_bool(batch, runtime)]

    def symbolic_bool_nodes(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> np.ndarray:
        return runtime.pool.not_(self.child.symbolic_bool_nodes(batch, runtime))

    def __repr__(self) -> str:
        return f"NOT {self.child!r}"


class Like(Expr):
    """SQL ``LIKE`` over a string column with ``%`` wildcards.

    Supports the patterns used in the paper's queries: ``%word%`` (contains),
    ``word%`` (prefix), ``%word`` (suffix), and exact match.
    """

    def __init__(self, column: Expr, pattern: str) -> None:
        self.column = column
        self.pattern = pattern

    def children(self) -> Sequence[Expr]:
        return (self.column,)

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        values = self.column.eval(batch, runtime)
        pattern = self.pattern
        contains = pattern.startswith("%") and pattern.endswith("%") and len(pattern) >= 2
        prefix = pattern.endswith("%") and not pattern.startswith("%")
        suffix = pattern.startswith("%") and not pattern.endswith("%")
        needle = pattern.strip("%")
        if "%" in needle:
            raise UnsupportedQueryError(
                f"LIKE pattern {pattern!r} with interior wildcards is not supported",
                feature="like-pattern",
            )
        out = np.zeros(len(values), dtype=bool)
        for index, value in enumerate(values):
            text = str(value)
            if contains:
                out[index] = needle in text
            elif prefix:
                out[index] = text.startswith(needle)
            elif suffix:
                out[index] = text.endswith(needle)
            else:
                out[index] = text == needle
        return out

    def __repr__(self) -> str:
        return f"({self.column!r} LIKE {self.pattern!r})"


# -- convenience constructors used by tests and examples ---------------------


def col(name: str) -> Col:
    return Col(name)


def lit(value) -> Const:
    return Const(value)


def predict(model_name: str, feature_column: str) -> ModelPredict:
    return ModelPredict(model_name, Col(feature_column))


def eq(left: Expr, right: Expr) -> Cmp:
    return Cmp("=", left, right)
