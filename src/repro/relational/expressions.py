"""The expression language of Query 2.0 plans.

Expressions evaluate *concretely* (numpy arrays, one value per tuple) and,
for the debug-mode executor, *symbolically*:

- boolean expressions produce per-tuple
  :class:`~repro.relational.provenance.BoolExpr` conditions in which
  deterministic sub-predicates are folded to TRUE/FALSE and model-dependent
  comparisons become :class:`~repro.relational.provenance.PredIs` atoms;
- numeric expressions (aggregate arguments) produce per-tuple
  :class:`~repro.relational.provenance.NumExpr` polynomials.

``M.predict(...)`` is the only source of uncertainty: the queried data is
trusted (the paper's standing assumption), so everything not reachable from
a :class:`ModelPredict` node folds to constants.
"""

from __future__ import annotations

import operator
from collections.abc import Sequence

import numpy as np

from ..errors import QueryError, UnsupportedQueryError
from . import provenance as prov
from .context import QueryRuntime, TupleBatch

_COMPARATORS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "**": operator.pow,
}


class Expr:
    """Base class for all expressions."""

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        """Concrete per-tuple values (models evaluated through the cache)."""
        raise NotImplementedError

    def depends_on_model(self) -> bool:
        """True if any :class:`ModelPredict` occurs in this subtree."""
        return any(child.depends_on_model() for child in self.children())

    def children(self) -> Sequence["Expr"]:
        return ()

    def referenced_columns(self) -> set[str]:
        out: set[str] = set()
        for child in self.children():
            out |= child.referenced_columns()
        return out

    # -- symbolic interfaces (overridden where meaningful) -------------------

    def symbolic_bool(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.BoolExpr]:
        """Per-tuple boolean provenance.  Default: fold concrete values."""
        if self.depends_on_model():
            raise UnsupportedQueryError(
                f"cannot build boolean provenance for {self!r}",
                feature=type(self).__name__,
            )
        values = np.asarray(self.eval(batch, runtime), dtype=bool)
        return [prov.const(bool(value)) for value in values]

    def symbolic_num(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.NumExpr]:
        """Per-tuple numeric provenance.  Default: fold concrete values."""
        if self.depends_on_model():
            raise UnsupportedQueryError(
                f"cannot build numeric provenance for {self!r}",
                feature=type(self).__name__,
            )
        values = np.asarray(self.eval(batch, runtime), dtype=float)
        return [prov.ConstNum(float(value)) for value in values]


class Col(Expr):
    """A column reference, optionally qualified (``alias.column``)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        return batch.values(self.name)

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"Col({self.name!r})"


class Const(Expr):
    """A literal constant."""

    def __init__(self, value) -> None:
        self.value = value

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        return np.full(len(batch), self.value)

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Arith(Expr):
    """Binary arithmetic: ``+ - * / **``."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITHMETIC:
            raise QueryError(f"unsupported arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        left = np.asarray(self.left.eval(batch, runtime), dtype=float)
        right = np.asarray(self.right.eval(batch, runtime), dtype=float)
        return _ARITHMETIC[self.op](left, right)

    def symbolic_num(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.NumExpr]:
        if not self.depends_on_model():
            return super().symbolic_num(batch, runtime)
        left = self.left.symbolic_num(batch, runtime)
        right = self.right.symbolic_num(batch, runtime)
        if self.op == "+":
            return [prov.add_(l, r) for l, r in zip(left, right)]
        if self.op == "-":
            return [
                prov.add_(l, prov.mul_(prov.ConstNum(-1.0), r))
                for l, r in zip(left, right)
            ]
        if self.op == "*":
            return [prov.mul_(l, r) for l, r in zip(left, right)]
        if self.op == "/":
            return [prov.DivExpr(l, r) for l, r in zip(left, right)]
        raise UnsupportedQueryError(
            f"operator {self.op!r} over model predictions is not supported",
            feature="arith-over-predict",
        )

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class ModelPredict(Expr):
    """``model.predict(features)`` over a feature column of one relation."""

    def __init__(self, model_name: str, features: Col) -> None:
        if not isinstance(features, Col):
            raise UnsupportedQueryError(
                "predict(...) takes a single feature-column reference",
                feature="predict-arg",
            )
        self.model_name = model_name
        self.features = features

    def children(self) -> Sequence[Expr]:
        return (self.features,)

    def depends_on_model(self) -> bool:
        return True

    def _site_inputs(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> tuple[str, np.ndarray, np.ndarray]:
        """(base relation name, base row ids, feature array) for the batch."""
        alias = batch.alias_of_column(self.features.name)
        relation_name = batch.alias_relations[alias]
        row_ids = batch.alias_row_ids[alias]
        features = batch.values(self.features.name)
        return relation_name, row_ids, features

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        relation_name, row_ids, features = self._site_inputs(batch, runtime)
        return runtime.predict(self.model_name, relation_name, row_ids, features)

    def site_ids(self, batch: TupleBatch, runtime: QueryRuntime) -> list[int]:
        """Intern one inference site per tuple; triggers prediction caching."""
        relation_name, row_ids, features = self._site_inputs(batch, runtime)
        # Populate the prediction cache so sites always have concrete values.
        runtime.predict(self.model_name, relation_name, row_ids, features)
        return runtime.intern_sites(self.model_name, relation_name, row_ids, features)

    def symbolic_num(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.NumExpr]:
        classes = runtime.model_classes(self.model_name)
        try:
            class_values = [(label, float(label)) for label in classes]
        except (TypeError, ValueError) as exc:
            raise UnsupportedQueryError(
                f"model {self.model_name!r} has non-numeric classes; its "
                "predictions cannot appear in an arithmetic context",
                feature="predict-as-number",
            ) from exc
        return [
            prov.pred_value(site_id, class_values)
            for site_id in self.site_ids(batch, runtime)
        ]

    def __repr__(self) -> str:
        return f"{self.model_name}.predict({self.features.name})"


class Cmp(Expr):
    """Comparison; the bridge between predictions and boolean provenance."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARATORS:
            raise QueryError(f"unsupported comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        left = self.left.eval(batch, runtime)
        right = self.right.eval(batch, runtime)
        return np.asarray(_COMPARATORS[self.op](left, right), dtype=bool)

    def symbolic_bool(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.BoolExpr]:
        left_model = self.left.depends_on_model()
        right_model = self.right.depends_on_model()
        if not left_model and not right_model:
            return super().symbolic_bool(batch, runtime)

        if isinstance(self.left, ModelPredict) and not right_model:
            return self._predict_vs_values(self.left, self.right, self.op, batch, runtime)
        if isinstance(self.right, ModelPredict) and not left_model:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(self.op, self.op)
            return self._predict_vs_values(self.right, self.left, flipped, batch, runtime)
        if isinstance(self.left, ModelPredict) and isinstance(self.right, ModelPredict):
            return self._predict_vs_predict(batch, runtime)
        raise UnsupportedQueryError(
            f"comparison {self!r} mixes predictions into arithmetic; "
            "only direct comparisons of predict(...) are supported in WHERE",
            feature="cmp-over-predict",
        )

    def _predict_vs_values(
        self,
        predict: ModelPredict,
        other: Expr,
        op: str,
        batch: TupleBatch,
        runtime: QueryRuntime,
    ) -> list[prov.BoolExpr]:
        classes = runtime.model_classes(predict.model_name)
        site_ids = predict.site_ids(batch, runtime)
        values = other.eval(batch, runtime)
        compare = _COMPARATORS[op]
        out: list[prov.BoolExpr] = []
        for site_id, value in zip(site_ids, values):
            value = value.item() if hasattr(value, "item") else value
            matching = [label for label in classes if _safe_compare(compare, label, value)]
            if len(matching) == len(classes):
                out.append(prov.TRUE)  # exhaustive: always satisfied
            else:
                out.append(
                    prov.or_(*[prov.PredIs(site_id, label) for label in matching])
                )
        return out

    def _predict_vs_predict(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.BoolExpr]:
        left: ModelPredict = self.left  # type: ignore[assignment]
        right: ModelPredict = self.right  # type: ignore[assignment]
        left_classes = runtime.model_classes(left.model_name)
        right_classes = runtime.model_classes(right.model_name)
        left_sites = left.site_ids(batch, runtime)
        right_sites = right.site_ids(batch, runtime)
        compare = _COMPARATORS[self.op]
        out: list[prov.BoolExpr] = []
        for left_site, right_site in zip(left_sites, right_sites):
            if left_site == right_site:
                # Same base row on both sides: predict(x) op predict(x).
                matching = [c for c in left_classes if _safe_compare(compare, c, c)]
                if len(matching) == len(left_classes):
                    out.append(prov.TRUE)
                else:
                    out.append(
                        prov.or_(*[prov.PredIs(left_site, c) for c in matching])
                    )
                continue
            disjuncts = [
                prov.and_(prov.PredIs(left_site, lc), prov.PredIs(right_site, rc))
                for lc in left_classes
                for rc in right_classes
                if _safe_compare(compare, lc, rc)
            ]
            out.append(prov.or_(*disjuncts))
        return out

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def _safe_compare(compare, left, right) -> bool:
    try:
        return bool(compare(left, right))
    except TypeError:
        return False


class BoolAnd(Expr):
    """N-ary conjunction."""

    def __init__(self, children: Sequence[Expr]) -> None:
        self._children = tuple(children)
        if not self._children:
            raise QueryError("AND needs at least one operand")

    def children(self) -> Sequence[Expr]:
        return self._children

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        result = np.ones(len(batch), dtype=bool)
        for child in self._children:
            result &= np.asarray(child.eval(batch, runtime), dtype=bool)
        return result

    def symbolic_bool(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.BoolExpr]:
        parts = [child.symbolic_bool(batch, runtime) for child in self._children]
        return [prov.and_(*row_parts) for row_parts in zip(*parts)]

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self._children)) + ")"


class BoolOr(Expr):
    """N-ary disjunction."""

    def __init__(self, children: Sequence[Expr]) -> None:
        self._children = tuple(children)
        if not self._children:
            raise QueryError("OR needs at least one operand")

    def children(self) -> Sequence[Expr]:
        return self._children

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        result = np.zeros(len(batch), dtype=bool)
        for child in self._children:
            result |= np.asarray(child.eval(batch, runtime), dtype=bool)
        return result

    def symbolic_bool(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.BoolExpr]:
        parts = [child.symbolic_bool(batch, runtime) for child in self._children]
        return [prov.or_(*row_parts) for row_parts in zip(*parts)]

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self._children)) + ")"


class BoolNot(Expr):
    """Negation."""

    def __init__(self, child: Expr) -> None:
        self.child = child

    def children(self) -> Sequence[Expr]:
        return (self.child,)

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        return ~np.asarray(self.child.eval(batch, runtime), dtype=bool)

    def symbolic_bool(
        self, batch: TupleBatch, runtime: QueryRuntime
    ) -> list[prov.BoolExpr]:
        return [prov.not_(cond) for cond in self.child.symbolic_bool(batch, runtime)]

    def __repr__(self) -> str:
        return f"NOT {self.child!r}"


class Like(Expr):
    """SQL ``LIKE`` over a string column with ``%`` wildcards.

    Supports the patterns used in the paper's queries: ``%word%`` (contains),
    ``word%`` (prefix), ``%word`` (suffix), and exact match.
    """

    def __init__(self, column: Expr, pattern: str) -> None:
        self.column = column
        self.pattern = pattern

    def children(self) -> Sequence[Expr]:
        return (self.column,)

    def eval(self, batch: TupleBatch, runtime: QueryRuntime) -> np.ndarray:
        values = self.column.eval(batch, runtime)
        pattern = self.pattern
        contains = pattern.startswith("%") and pattern.endswith("%") and len(pattern) >= 2
        prefix = pattern.endswith("%") and not pattern.startswith("%")
        suffix = pattern.startswith("%") and not pattern.endswith("%")
        needle = pattern.strip("%")
        if "%" in needle:
            raise UnsupportedQueryError(
                f"LIKE pattern {pattern!r} with interior wildcards is not supported",
                feature="like-pattern",
            )
        out = np.zeros(len(values), dtype=bool)
        for index, value in enumerate(values):
            text = str(value)
            if contains:
                out[index] = needle in text
            elif prefix:
                out[index] = text.startswith(needle)
            elif suffix:
                out[index] = text.endswith(needle)
            else:
                out[index] = text == needle
        return out

    def __repr__(self) -> str:
        return f"({self.column!r} LIKE {self.pattern!r})"


# -- convenience constructors used by tests and examples ---------------------


def col(name: str) -> Col:
    return Col(name)


def lit(value) -> Const:
    return Const(value)


def predict(model_name: str, feature_column: str) -> ModelPredict:
    return ModelPredict(model_name, Col(feature_column))


def eq(left: Expr, right: Expr) -> Cmp:
    return Cmp("=", left, right)
