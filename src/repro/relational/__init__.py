"""Relational substrate: relations, expressions, SPJA plans, provenance, SQL.

This package implements the "Query 2.0" query processor that Rain debugs:
an in-memory SPJA engine whose WHERE/SELECT/GROUP BY clauses may embed
``model.predict(...)`` calls, with a debug mode that captures boolean and
aggregate provenance over prediction atoms.
"""

from .algebra import AggSpec, Aggregate, Filter, Join, Plan, Project, Scan
from .compile import CompiledProvenance, NodePool
from .context import QueryRuntime, TupleBatch
from .executor import Executor, GroupInfo, QueryResult
from .expressions import (
    Arith,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Col,
    Const,
    Expr,
    Like,
    ModelPredict,
    col,
    eq,
    lit,
    predict,
)
from .provenance import (
    FALSE,
    TRUE,
    AndExpr,
    BoolExpr,
    ConstNum,
    DivExpr,
    InferenceSite,
    LinearSum,
    NotExpr,
    NumExpr,
    OrExpr,
    PredIs,
    SiteRegistry,
    and_,
    not_,
    or_,
    pred_value,
)
from .schema import Database, Relation
from .sql import ParsedQuery, parse, plan_sql

__all__ = [
    "AggSpec", "Aggregate", "Filter", "Join", "Plan", "Project", "Scan",
    "CompiledProvenance", "NodePool",
    "QueryRuntime", "TupleBatch", "Executor", "GroupInfo", "QueryResult",
    "Arith", "BoolAnd", "BoolNot", "BoolOr", "Cmp", "Col", "Const", "Expr",
    "Like", "ModelPredict", "col", "eq", "lit", "predict",
    "FALSE", "TRUE", "AndExpr", "BoolExpr", "ConstNum", "DivExpr",
    "InferenceSite", "LinearSum", "NotExpr", "NumExpr", "OrExpr", "PredIs",
    "SiteRegistry", "and_", "not_", "or_", "pred_value",
    "Database", "Relation", "ParsedQuery", "parse", "plan_sql",
]
