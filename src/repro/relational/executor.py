"""Query execution: concrete results plus debug-mode lineage.

The executor evaluates a plan bottom-up over :class:`TupleBatch` objects.
In **debug mode** (the paper's "rerun Q in a debug mode to generate
fine-grained lineage metadata", Section 5.1) every intermediate tuple
carries its boolean existence condition over prediction atoms, and every
aggregate cell yields a numeric provenance polynomial.  Crucially, tuples
that are *currently* filtered out by a model predicate are retained
symbolically — fixing the training data could flip their predictions, so
both TwoStep's ILP and Holistic's relaxation must see them.

The concrete query result is recovered by evaluating each condition /
polynomial under the current prediction assignment, which guarantees the
concrete and symbolic views never diverge.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..errors import ProvenanceError, QueryError
from . import provenance as prov
from .algebra import Aggregate, AggSpec, Filter, Join, Plan, Project, Scan
from .context import QueryRuntime, TupleBatch
from .expressions import BoolAnd, Cmp, Col, Expr, ModelPredict
from .schema import Database, Relation


@dataclass
class GroupInfo:
    """Debug metadata for one (possibly not-currently-existing) group."""

    key: tuple
    condition: prov.BoolExpr
    cell_polys: dict[str, prov.NumExpr] = field(default_factory=dict)


@dataclass
class QueryResult:
    """Concrete output plus (in debug mode) full lineage.

    Attributes:
        relation: the concrete output under current predictions.
        runtime: execution state (models, sites, prediction cache).
        candidate_batch: all symbolically-alive tuples (pre-aggregation
            output for SP/SPJ queries); ``None`` outside debug mode.
        candidate_conditions: existence conditions, aligned with
            ``candidate_batch``.
        output_to_candidate: for SP/SPJ queries, index of each concrete
            output row inside the candidate batch.
        groups: for aggregate queries, one :class:`GroupInfo` per candidate
            group (including groups that are currently empty).
        output_to_group: index of each concrete output row inside ``groups``.
        is_aggregate: whether the root plan node is an Aggregate.
    """

    relation: Relation
    runtime: QueryRuntime
    candidate_batch: TupleBatch | None = None
    candidate_conditions: list[prov.BoolExpr] | None = None
    output_to_candidate: list[int] | None = None
    groups: list[GroupInfo] | None = None
    output_to_group: list[int] | None = None
    is_aggregate: bool = False

    @property
    def debug(self) -> bool:
        return self.runtime.debug

    def assignment(self) -> dict[int, object]:
        """Current ``site_id -> predicted class`` assignment."""
        return self.runtime.current_assignment()

    def scalar(self, column: str | None = None) -> float:
        """The single value of a 1x1 result (global aggregates)."""
        if len(self.relation) != 1:
            raise QueryError(
                f"scalar() needs a single-row result, got {len(self.relation)} rows"
            )
        name = column or self.relation.column_names[-1]
        return float(self.relation.column(name)[0])

    def cell_polynomial(self, row_index: int, column: str) -> prov.NumExpr:
        """Aggregate provenance polynomial for an output cell."""
        self._require_debug()
        if not self.is_aggregate or self.groups is None or self.output_to_group is None:
            raise ProvenanceError("cell_polynomial applies to aggregate queries only")
        group = self.groups[self.output_to_group[row_index]]
        try:
            return group.cell_polys[column]
        except KeyError:
            raise ProvenanceError(
                f"column {column!r} is not an aggregate output; "
                f"available: {sorted(group.cell_polys)}"
            ) from None

    def group_polynomial_by_key(self, key: tuple, column: str) -> prov.NumExpr:
        """Aggregate polynomial looked up by group key (works for currently
        empty groups, which have no output row)."""
        self._require_debug()
        if self.groups is None:
            raise ProvenanceError("no group metadata (not an aggregate query)")
        for group in self.groups:
            if group.key == key:
                return group.cell_polys[column]
        raise ProvenanceError(f"no candidate group with key {key!r}")

    def tuple_condition(self, row_index: int) -> prov.BoolExpr:
        """Existence condition of a concrete output tuple (SP/SPJ queries)."""
        self._require_debug()
        if self.is_aggregate:
            if self.groups is None or self.output_to_group is None:
                raise ProvenanceError("missing group metadata")
            return self.groups[self.output_to_group[row_index]].condition
        if self.candidate_conditions is None or self.output_to_candidate is None:
            raise ProvenanceError("missing candidate metadata")
        return self.candidate_conditions[self.output_to_candidate[row_index]]

    def _require_debug(self) -> None:
        if not self.debug:
            raise ProvenanceError(
                "lineage requested but the query was not executed in debug mode"
            )


class Executor:
    """Evaluates plans against a :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def execute(self, plan: Plan, debug: bool = False) -> QueryResult:
        """Run ``plan``; with ``debug=True`` capture full lineage."""
        runtime = QueryRuntime(self.database, debug=debug)
        if isinstance(plan, Aggregate):
            return self._execute_aggregate(plan, runtime)
        batch = self._eval(plan, runtime)
        return self._finalize_spj(plan, batch, runtime)

    # -- SP / SPJ -------------------------------------------------------------

    def _finalize_spj(
        self, plan: Plan, batch: TupleBatch, runtime: QueryRuntime
    ) -> QueryResult:
        if runtime.debug:
            assignment = runtime.current_assignment()
            conditions = [batch.condition(i) for i in range(len(batch))]
            alive = [
                i for i, cond in enumerate(conditions) if cond.evaluate(assignment)
            ]
        else:
            conditions = None
            alive = list(range(len(batch)))
        concrete = batch.take(np.asarray(alive, dtype=np.int64))
        relation = Relation(
            "result",
            concrete.columns if concrete.columns else {"__empty__": np.zeros(0)},
            row_ids=np.arange(len(concrete)),
        )
        return QueryResult(
            relation=relation,
            runtime=runtime,
            candidate_batch=batch if runtime.debug else None,
            candidate_conditions=conditions,
            output_to_candidate=alive if runtime.debug else None,
            is_aggregate=False,
        )

    # -- plan dispatch ---------------------------------------------------------

    def _eval(self, plan: Plan, runtime: QueryRuntime) -> TupleBatch:
        if isinstance(plan, Scan):
            return self._eval_scan(plan, runtime)
        if isinstance(plan, Filter):
            return self._eval_filter(plan, runtime)
        if isinstance(plan, Join):
            return self._eval_join(plan, runtime)
        if isinstance(plan, Project):
            return self._eval_project(plan, runtime)
        if isinstance(plan, Aggregate):
            raise QueryError("Aggregate must be the plan root")
        raise QueryError(f"unknown plan node {type(plan).__name__}")

    def _eval_scan(self, plan: Scan, runtime: QueryRuntime) -> TupleBatch:
        relation = self.database.relation(plan.relation_name)
        return TupleBatch.from_relation(
            relation, plan.effective_alias, debug=runtime.debug
        )

    def _eval_filter(self, plan: Filter, runtime: QueryRuntime) -> TupleBatch:
        batch = self._eval(plan.child, runtime)
        return self._apply_predicate(batch, plan.predicate, runtime)

    def _apply_predicate(
        self, batch: TupleBatch, predicate: Expr, runtime: QueryRuntime
    ) -> TupleBatch:
        if not runtime.debug:
            mask = np.asarray(predicate.eval(batch, runtime), dtype=bool)
            return batch.take(np.flatnonzero(mask))
        # Debug: fold the predicate symbolically; drop only rows whose
        # condition is deterministically FALSE.
        symbolic = predicate.symbolic_bool(batch, runtime)
        combined = [
            prov.and_(batch.condition(i), cond) for i, cond in enumerate(symbolic)
        ]
        keep = [i for i, cond in enumerate(combined) if not cond.is_false()]
        filtered = batch.take(np.asarray(keep, dtype=np.int64))
        return filtered.with_conditions([combined[i] for i in keep])

    def _eval_join(self, plan: Join, runtime: QueryRuntime) -> TupleBatch:
        left = self._eval(plan.left, runtime)
        right = self._eval(plan.right, runtime)
        if plan.condition is None:
            return TupleBatch.cross_product(left, right)
        equi, residual = _split_join_condition(plan.condition, left, right)
        if equi:
            joined = _hash_join(left, right, equi)
        else:
            joined = TupleBatch.cross_product(left, right)
        if residual is not None:
            joined = self._apply_predicate(joined, residual, runtime)
        return joined

    def _eval_project(self, plan: Project, runtime: QueryRuntime) -> TupleBatch:
        batch = self._eval(plan.child, runtime)
        columns: dict[str, np.ndarray] = {}
        for expr, name in plan.items:
            columns[name] = np.asarray(expr.eval(batch, runtime))
        return TupleBatch(
            columns,
            batch.alias_relations,
            batch.alias_row_ids,
            batch.conditions,
        )

    # -- aggregation -----------------------------------------------------------

    def _execute_aggregate(self, plan: Aggregate, runtime: QueryRuntime) -> QueryResult:
        batch = self._eval(plan.child, runtime)
        n_rows = len(batch)

        det_keys: list[tuple[str, np.ndarray]] = []
        model_keys: list[tuple[str, ModelPredict]] = []
        for expr, name in plan.group_by:
            if isinstance(expr, ModelPredict):
                model_keys.append((name, expr))
            elif expr.depends_on_model():
                raise QueryError(
                    "GROUP BY expressions may be plain columns or predict(...)"
                )
            else:
                det_keys.append((name, np.asarray(expr.eval(batch, runtime))))
        if len(model_keys) > 1:
            raise QueryError("at most one predict(...) GROUP BY key is supported")

        # Row membership: (deterministic key tuple, per-class condition).
        if runtime.debug:
            row_conditions = [batch.condition(i) for i in range(n_rows)]
        else:
            row_conditions = [prov.TRUE] * n_rows

        if model_keys:
            key_name, predict_expr = model_keys[0]
            classes = runtime.model_classes(predict_expr.model_name)
            site_ids = predict_expr.site_ids(batch, runtime)
        else:
            classes = None
            site_ids = None

        # Candidate groups: det-key combos present in the batch x classes.
        groups: dict[tuple, GroupInfo] = {}
        membership: dict[tuple, list[tuple[int, prov.BoolExpr]]] = {}
        for i in range(n_rows):
            det_part = tuple(values[i].item() if hasattr(values[i], "item") else values[i]
                             for _, values in det_keys)
            if classes is None:
                key = det_part
                cond = row_conditions[i]
                membership.setdefault(key, []).append((i, cond))
            else:
                for label in classes:
                    key = det_part + (label,)
                    cond = prov.and_(
                        row_conditions[i], prov.PredIs(site_ids[i], label)
                    )
                    if cond.is_false():
                        continue
                    membership.setdefault(key, []).append((i, cond))

        # Global aggregate: exactly one group even with zero rows.
        if not plan.group_by and not membership:
            membership[()] = []

        agg_values = self._aggregate_arguments(plan.aggregates, batch, runtime)

        group_order = sorted(membership.keys(), key=_key_sort_token)
        group_infos: list[GroupInfo] = []
        for key in group_order:
            members = membership[key]
            condition = prov.or_(*[cond for _, cond in members]) if members else prov.FALSE
            if not plan.group_by:
                condition = prov.TRUE  # a global aggregate row always exists
            info = GroupInfo(key=key, condition=condition)
            for position, spec in enumerate(plan.aggregates):
                info.cell_polys[spec.name] = _aggregate_polynomial(
                    spec, position, members, agg_values
                )
            group_infos.append(info)
            groups[key] = info

        # The prediction cache is populated in both modes (site_ids/symbolic_num
        # run model inference), so the assignment is always available.
        assignment = runtime.current_assignment()
        # Concrete output: groups that currently exist.
        out_rows: list[int] = []
        for index, info in enumerate(group_infos):
            if not plan.group_by or info.condition.evaluate(assignment):
                out_rows.append(index)

        key_names = [name for name, _ in det_keys] + (
            [model_keys[0][0]] if model_keys else []
        )
        columns: dict[str, list] = {name: [] for name in key_names}
        for spec in plan.aggregates:
            columns[spec.name] = []
        for index in out_rows:
            info = group_infos[index]
            for pos, name in enumerate(key_names):
                columns[name].append(info.key[pos])
            for spec in plan.aggregates:
                columns[spec.name].append(info.cell_polys[spec.name].evaluate(assignment))

        if columns:
            relation = Relation(
                "result",
                {name: np.asarray(values) for name, values in columns.items()},
                row_ids=np.arange(len(out_rows)),
            )
        else:
            raise QueryError("aggregate query produced no output columns")

        return QueryResult(
            relation=relation,
            runtime=runtime,
            groups=group_infos if runtime.debug else None,
            output_to_group=out_rows if runtime.debug else None,
            is_aggregate=True,
        )

    def _aggregate_arguments(
        self,
        aggregates: Sequence[AggSpec],
        batch: TupleBatch,
        runtime: QueryRuntime,
    ) -> dict[int, list[prov.NumExpr]]:
        """Per-aggregate numeric provenance of each input row."""
        out: dict[int, list[prov.NumExpr]] = {}
        for position, spec in enumerate(aggregates):
            if spec.arg is None:
                continue
            out[position] = spec.arg.symbolic_num(batch, runtime)
        return out


def _aggregate_polynomial(
    spec: AggSpec,
    position: int,
    members: list[tuple[int, prov.BoolExpr]],
    agg_values: dict[int, list[prov.NumExpr]],
) -> prov.NumExpr:
    """Provenance polynomial of one aggregate cell."""
    if spec.func == "count":
        return prov.LinearSum([(1.0, cond) for _, cond in members])
    values = agg_values[position]
    terms: list[prov.NumExpr] = []
    for row_index, cond in members:
        value = values[row_index]
        if cond.is_true():
            terms.append(value)
        else:
            terms.append(prov.mul_(prov.BoolAsNum(cond), value))
    total = prov.add_(*terms) if terms else prov.ConstNum(0.0)
    if spec.func == "sum":
        return total
    count = prov.LinearSum([(1.0, cond) for _, cond in members])
    return prov.DivExpr(total, count)


def _key_sort_token(key: tuple):
    return tuple(str(part) for part in key)


def _split_join_condition(
    condition: Expr, left: TupleBatch, right: TupleBatch
) -> tuple[list[tuple[str, str]], Expr | None]:
    """Split a join condition into deterministic equi-pairs + residual.

    Returns ``(equi_pairs, residual)`` where each equi pair is a
    (left column, right column) qualified-name pair usable by a hash join.
    Model-dependent or non-equality conjuncts stay in the residual.
    """
    conjuncts = _flatten_and(condition)
    equi: list[tuple[str, str]] = []
    residual: list[Expr] = []
    for conjunct in conjuncts:
        pair = _as_equi_pair(conjunct, left, right)
        if pair is not None:
            equi.append(pair)
        else:
            residual.append(conjunct)
    residual_expr: Expr | None = None
    if residual:
        residual_expr = residual[0] if len(residual) == 1 else BoolAnd(residual)
    return equi, residual_expr


def _flatten_and(expr: Expr) -> list[Expr]:
    if isinstance(expr, BoolAnd):
        out: list[Expr] = []
        for child in expr.children():
            out.extend(_flatten_and(child))
        return out
    return [expr]


def _as_equi_pair(
    expr: Expr, left: TupleBatch, right: TupleBatch
) -> tuple[str, str] | None:
    if not isinstance(expr, Cmp) or expr.op != "=" or expr.depends_on_model():
        return None
    if not isinstance(expr.left, Col) or not isinstance(expr.right, Col):
        return None
    try:
        left_name = left.resolve(expr.left.name)
        right_name = right.resolve(expr.right.name)
        return (left_name, right_name)
    except QueryError:
        pass
    try:
        left_name = left.resolve(expr.right.name)
        right_name = right.resolve(expr.left.name)
        return (left_name, right_name)
    except QueryError:
        return None


def _hash_join(
    left: TupleBatch, right: TupleBatch, equi: list[tuple[str, str]]
) -> TupleBatch:
    """Deterministic hash join on equality column pairs."""
    left_keys = [left.columns[l] for l, _ in equi]
    right_keys = [right.columns[r] for _, r in equi]
    table: dict[tuple, list[int]] = {}
    for j in range(len(right)):
        key = tuple(_hashable(values[j]) for values in right_keys)
        table.setdefault(key, []).append(j)
    left_index: list[int] = []
    right_index: list[int] = []
    for i in range(len(left)):
        key = tuple(_hashable(values[i]) for values in left_keys)
        for j in table.get(key, ()):
            left_index.append(i)
            right_index.append(j)
    return TupleBatch.paired(
        left,
        right,
        np.asarray(left_index, dtype=np.int64),
        np.asarray(right_index, dtype=np.int64),
    )


def _hashable(value):
    if isinstance(value, np.ndarray):
        return value.tobytes()
    if hasattr(value, "item"):
        return value.item()
    return value
