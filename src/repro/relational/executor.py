"""Query execution: concrete results plus debug-mode lineage.

The executor evaluates a plan bottom-up over :class:`TupleBatch` objects.
In **debug mode** (the paper's "rerun Q in a debug mode to generate
fine-grained lineage metadata", Section 5.1) every intermediate tuple
carries its boolean existence condition over prediction atoms, and every
aggregate cell yields a numeric provenance polynomial.  Crucially, tuples
that are *currently* filtered out by a model predicate are retained
symbolically — fixing the training data could flip their predictions, so
both TwoStep's ILP and Holistic's relaxation must see them.

Two debug representations are supported:

- ``provenance="compiled"`` (default): conditions and polynomials are
  emitted directly as node ids into the runtime's shared
  :class:`~repro.relational.compile.NodePool`; selects, projections,
  aggregations, and the hash-join probe are columnar batch operations and
  the concrete output is recovered by one vectorized evaluation of all
  conditions/cells (:class:`~repro.relational.compile.CompiledProvenance`).
  Consumers that want trees still get them — ``QueryResult`` and
  ``GroupInfo`` materialize expression trees from the pool lazily.
- ``provenance="tree"``: the original interpreted path — per-tuple
  :class:`~repro.relational.provenance.BoolExpr` objects built row by row.
  Kept verbatim as the golden reference; the compiled path is pinned to it
  by equivalence tests and benchmarks.

The concrete query result is recovered by evaluating each condition /
polynomial under the current prediction assignment, which guarantees the
concrete and symbolic views never diverge.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ProvenanceError, QueryError
from . import provenance as prov
from .algebra import (
    Aggregate,
    AggSpec,
    Filter,
    Join,
    Plan,
    Project,
    Scan,
    plan_fingerprint,
)
from .compile import FALSE_NODE, TRUE_NODE, CompiledProvenance, NodePool
from .context import QueryRuntime, TupleBatch
from .expressions import BoolAnd, Cmp, Col, Expr, ModelPredict
from .schema import Database, Relation


class GroupInfo:
    """Debug metadata for one (possibly not-currently-existing) group.

    In compiled mode ``condition``/``cell_polys`` materialize expression
    trees lazily from ``condition_node``/``cell_nodes``.
    """

    def __init__(
        self,
        key: tuple,
        condition: prov.BoolExpr | None = None,
        cell_polys: dict | None = None,
        condition_node: int | None = None,
        cell_nodes: dict | None = None,
        pool: NodePool | None = None,
    ) -> None:
        self.key = key
        self._condition = condition
        if cell_polys is None and condition_node is None:
            cell_polys = {}
        self._cell_polys = cell_polys
        self.condition_node = condition_node
        self.cell_nodes = cell_nodes
        self.pool = pool

    @property
    def condition(self) -> prov.BoolExpr:
        if self._condition is None and self.condition_node is not None:
            self._condition = self.pool.to_expr(self.condition_node)
        return self._condition

    @property
    def cell_polys(self) -> dict:
        if self._cell_polys is None:
            self._cell_polys = {
                name: self.pool.to_expr(node) for name, node in self.cell_nodes.items()
            }
        return self._cell_polys

    def __repr__(self) -> str:
        return f"GroupInfo(key={self.key!r})"


class QueryResult:
    """Concrete output plus (in debug mode) full lineage.

    Attributes:
        relation: the concrete output under current predictions.
        runtime: execution state (models, sites, prediction cache).
        candidate_batch: all symbolically-alive tuples (pre-aggregation
            output for SP/SPJ queries); ``None`` outside debug mode.
        candidate_conditions: existence conditions, aligned with
            ``candidate_batch`` (materialized lazily in compiled mode).
        candidate_cond_nodes: compiled condition node ids, aligned with
            ``candidate_batch``; ``None`` in tree mode.
        output_to_candidate: for SP/SPJ queries, index of each concrete
            output row inside the candidate batch.
        groups: for aggregate queries, one :class:`GroupInfo` per candidate
            group (including groups that are currently empty).
        output_to_group: index of each concrete output row inside ``groups``.
        is_aggregate: whether the root plan node is an Aggregate.
        pool: the compiled provenance pool, or ``None`` in tree mode.
    """

    def __init__(
        self,
        relation: Relation,
        runtime: QueryRuntime,
        candidate_batch: TupleBatch | None = None,
        candidate_conditions: list[prov.BoolExpr] | None = None,
        output_to_candidate: list[int] | None = None,
        groups: list[GroupInfo] | None = None,
        output_to_group: list[int] | None = None,
        is_aggregate: bool = False,
        candidate_cond_nodes: np.ndarray | None = None,
        pool: NodePool | None = None,
    ) -> None:
        self.relation = relation
        self.runtime = runtime
        self.candidate_batch = candidate_batch
        self._candidate_conditions = candidate_conditions
        self.candidate_cond_nodes = candidate_cond_nodes
        self.output_to_candidate = output_to_candidate
        self.groups = groups
        self.output_to_group = output_to_group
        self.is_aggregate = is_aggregate
        self.pool = pool

    @property
    def debug(self) -> bool:
        return self.runtime.debug

    @property
    def compiled(self) -> bool:
        return self.pool is not None

    @property
    def candidate_conditions(self) -> list[prov.BoolExpr] | None:
        if self._candidate_conditions is None and self.candidate_cond_nodes is not None:
            self._candidate_conditions = self.pool.to_exprs(self.candidate_cond_nodes)
        return self._candidate_conditions

    def assignment(self) -> dict[int, object]:
        """Current ``site_id -> predicted class`` assignment."""
        return self.runtime.current_assignment()

    def scalar(self, column: str | None = None) -> float:
        """The single value of a 1x1 result (global aggregates)."""
        if len(self.relation) != 1:
            raise QueryError(
                f"scalar() needs a single-row result, got {len(self.relation)} rows"
            )
        name = column or self.relation.column_names[-1]
        return float(self.relation.column(name)[0])

    @staticmethod
    def _cell_lookup(group: GroupInfo, column: str, compiled: bool):
        cells = group.cell_nodes if compiled else group.cell_polys
        if cells is None:
            raise ProvenanceError("cell nodes are only available in compiled mode")
        try:
            return cells[column]
        except KeyError:
            raise ProvenanceError(
                f"column {column!r} is not an aggregate output; "
                f"available: {sorted(cells)}"
            ) from None

    def cell_polynomial(self, row_index: int, column: str) -> prov.NumExpr:
        """Aggregate provenance polynomial for an output cell."""
        return self._cell_lookup(self._output_group(row_index), column, compiled=False)

    def cell_node(self, row_index: int, column: str) -> int:
        """Compiled node id of an aggregate output cell."""
        return self._cell_lookup(self._output_group(row_index), column, compiled=True)

    def cell_node_for(
        self,
        column: str,
        row_index: int | None = None,
        group_key: tuple | None = None,
    ) -> int:
        """Compiled cell node addressed by output row or group key."""
        if group_key is not None:
            return self._cell_lookup(
                self.group_by_key(group_key), column, compiled=True
            )
        return self.cell_node(row_index, column)

    def _output_group(self, row_index: int) -> GroupInfo:
        self._require_debug()
        if not self.is_aggregate or self.groups is None or self.output_to_group is None:
            raise ProvenanceError("cell lookups apply to aggregate queries only")
        return self.groups[self.output_to_group[row_index]]

    def group_by_key(self, key: tuple) -> GroupInfo:
        """The candidate group with this key (may be currently empty)."""
        self._require_debug()
        if self.groups is None:
            raise ProvenanceError("no group metadata (not an aggregate query)")
        for group in self.groups:
            if group.key == key:
                return group
        raise ProvenanceError(f"no candidate group with key {key!r}")

    def group_polynomial_by_key(self, key: tuple, column: str) -> prov.NumExpr:
        """Aggregate polynomial looked up by group key (works for currently
        empty groups, which have no output row)."""
        return self.group_by_key(key).cell_polys[column]

    def tuple_condition(self, row_index: int) -> prov.BoolExpr:
        """Existence condition of a concrete output tuple (SP/SPJ queries)."""
        self._require_debug()
        if self.is_aggregate:
            if self.groups is None or self.output_to_group is None:
                raise ProvenanceError("missing group metadata")
            return self.groups[self.output_to_group[row_index]].condition
        if self.output_to_candidate is None:
            raise ProvenanceError("missing candidate metadata")
        candidate = self.output_to_candidate[row_index]
        if self.candidate_cond_nodes is not None:
            return self.pool.to_expr(int(self.candidate_cond_nodes[candidate]))
        if self._candidate_conditions is None:
            raise ProvenanceError("missing candidate metadata")
        return self._candidate_conditions[candidate]

    def tuple_condition_node(self, row_index: int) -> int:
        """Compiled node id of a concrete output tuple's condition."""
        self._require_debug()
        if self.is_aggregate:
            if self.groups is None or self.output_to_group is None:
                raise ProvenanceError("missing group metadata")
            node = self.groups[self.output_to_group[row_index]].condition_node
            if node is None:
                raise ProvenanceError("condition nodes need compiled mode")
            return node
        if self.candidate_cond_nodes is None or self.output_to_candidate is None:
            raise ProvenanceError("condition nodes need compiled mode")
        return int(self.candidate_cond_nodes[self.output_to_candidate[row_index]])

    def _require_debug(self) -> None:
        if not self.debug:
            raise ProvenanceError(
                "lineage requested but the query was not executed in debug mode"
            )


class Executor:
    """Evaluates plans against a :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def execute(
        self, plan: Plan, debug: bool = False, provenance: str = "compiled"
    ) -> QueryResult:
        """Run ``plan``; with ``debug=True`` capture full lineage.

        ``provenance`` selects the debug representation: ``"compiled"``
        (columnar node arrays, the default) or ``"tree"`` (the interpreted
        golden-reference path).
        """
        runtime = QueryRuntime(self.database, debug=debug, provenance=provenance)
        if isinstance(plan, Aggregate):
            if runtime.provenance == "tree":
                return self._execute_aggregate_reference(plan, runtime)
            return self._execute_aggregate_columnar(plan, runtime)
        batch = self._eval(plan, runtime)
        return self._finalize_spj(plan, batch, runtime)

    # -- SP / SPJ -------------------------------------------------------------

    def _finalize_spj(
        self, plan: Plan, batch: TupleBatch, runtime: QueryRuntime
    ) -> QueryResult:
        conditions = None
        cond_nodes = None
        if runtime.debug and batch.cond_nodes is not None:
            cond_nodes = batch.cond_nodes
            label_ids = runtime.site_label_ids(runtime.pool)
            program = CompiledProvenance(runtime.pool, cond_nodes)
            alive_mask = program.evaluate_labels(label_ids) >= 0.5
            alive = np.flatnonzero(alive_mask).tolist()
        elif runtime.debug:
            assignment = runtime.current_assignment()
            conditions = [batch.condition(i) for i in range(len(batch))]
            alive = [
                i for i, cond in enumerate(conditions) if cond.evaluate(assignment)
            ]
        else:
            alive = list(range(len(batch)))
        concrete = batch.take(np.asarray(alive, dtype=np.int64))
        relation = Relation(
            "result",
            concrete.columns if concrete.columns else {"__empty__": np.zeros(0)},
            row_ids=np.arange(len(concrete)),
        )
        return QueryResult(
            relation=relation,
            runtime=runtime,
            candidate_batch=batch if runtime.debug else None,
            candidate_conditions=conditions,
            candidate_cond_nodes=cond_nodes,
            output_to_candidate=alive if runtime.debug else None,
            is_aggregate=False,
            pool=runtime.pool,
        )

    # -- plan dispatch ---------------------------------------------------------

    def _eval(self, plan: Plan, runtime: QueryRuntime) -> TupleBatch:
        if isinstance(plan, Scan):
            return self._eval_scan(plan, runtime)
        if isinstance(plan, Filter):
            return self._eval_filter(plan, runtime)
        if isinstance(plan, Join):
            return self._eval_join(plan, runtime)
        if isinstance(plan, Project):
            return self._eval_project(plan, runtime)
        if isinstance(plan, Aggregate):
            raise QueryError("Aggregate must be the plan root")
        raise QueryError(f"unknown plan node {type(plan).__name__}")

    def _eval_scan(self, plan: Scan, runtime: QueryRuntime) -> TupleBatch:
        relation = self.database.relation(plan.relation_name)
        return TupleBatch.from_relation(
            relation, plan.effective_alias, debug=runtime.debug, pool=runtime.pool
        )

    def _eval_filter(self, plan: Filter, runtime: QueryRuntime) -> TupleBatch:
        batch = self._eval(plan.child, runtime)
        return self._apply_predicate(batch, plan.predicate, runtime)

    def _apply_predicate(
        self, batch: TupleBatch, predicate: Expr, runtime: QueryRuntime
    ) -> TupleBatch:
        if not runtime.debug:
            mask = np.asarray(predicate.eval(batch, runtime), dtype=bool)
            return batch.take(np.flatnonzero(mask))
        if batch.cond_nodes is not None:
            # Compiled: fold symbolically in the node pool; drop only rows
            # whose condition is deterministically FALSE.
            symbolic = predicate.symbolic_bool_nodes(batch, runtime)
            combined = runtime.pool.and2(batch.cond_nodes, symbolic)
            keep = np.flatnonzero(combined != FALSE_NODE)
            return batch.take(keep).with_cond_nodes(combined[keep])
        # Tree (reference): fold the predicate symbolically per row.
        symbolic = predicate.symbolic_bool(batch, runtime)
        combined = [
            prov.and_(batch.condition(i), cond) for i, cond in enumerate(symbolic)
        ]
        keep = [i for i, cond in enumerate(combined) if not cond.is_false()]
        filtered = batch.take(np.asarray(keep, dtype=np.int64))
        return filtered.with_conditions([combined[i] for i in keep])

    def _eval_join(self, plan: Join, runtime: QueryRuntime) -> TupleBatch:
        left = self._eval(plan.left, runtime)
        right = self._eval(plan.right, runtime)
        if plan.condition is None:
            return TupleBatch.cross_product(left, right)
        equi, residual = _split_join_condition(plan.condition, left, right)
        if equi:
            joined = _hash_join(left, right, equi)
        else:
            joined = TupleBatch.cross_product(left, right)
        if residual is not None:
            joined = self._apply_predicate(joined, residual, runtime)
        return joined

    def _eval_project(self, plan: Project, runtime: QueryRuntime) -> TupleBatch:
        batch = self._eval(plan.child, runtime)
        columns: dict[str, np.ndarray] = {}
        for expr, name in plan.items:
            columns[name] = np.asarray(expr.eval(batch, runtime))
        return TupleBatch(
            columns,
            batch.alias_relations,
            batch.alias_row_ids,
            batch.conditions if batch.cond_nodes is None else None,
            cond_nodes=batch.cond_nodes,
            pool=batch.pool,
        )

    # -- aggregation: shared helpers ------------------------------------------

    def _aggregate_keys(
        self, plan: Aggregate, batch: TupleBatch, runtime: QueryRuntime
    ) -> tuple[list[tuple[str, np.ndarray]], list[tuple[str, ModelPredict]]]:
        det_keys: list[tuple[str, np.ndarray]] = []
        model_keys: list[tuple[str, ModelPredict]] = []
        for expr, name in plan.group_by:
            if isinstance(expr, ModelPredict):
                model_keys.append((name, expr))
            elif expr.depends_on_model():
                raise QueryError(
                    "GROUP BY expressions may be plain columns or predict(...)"
                )
            else:
                det_keys.append((name, np.asarray(expr.eval(batch, runtime))))
        if len(model_keys) > 1:
            raise QueryError("at most one predict(...) GROUP BY key is supported")
        return det_keys, model_keys

    def _build_output(
        self,
        plan: Aggregate,
        key_names: list[str],
        out_keys: list[tuple],
        out_cells: dict[str, list],
        runtime: QueryRuntime,
        groups: list[GroupInfo] | None,
        out_rows: list[int],
    ) -> QueryResult:
        columns: dict[str, list] = {name: [] for name in key_names}
        for spec in plan.aggregates:
            columns[spec.name] = out_cells[spec.name]
        for key in out_keys:
            for position, name in enumerate(key_names):
                columns[name].append(key[position])
        if not columns:
            raise QueryError("aggregate query produced no output columns")
        relation = Relation(
            "result",
            {name: np.asarray(values) for name, values in columns.items()},
            row_ids=np.arange(len(out_keys)),
        )
        return QueryResult(
            relation=relation,
            runtime=runtime,
            groups=groups if runtime.debug else None,
            output_to_group=out_rows if runtime.debug else None,
            is_aggregate=True,
            pool=runtime.pool,
        )

    # -- aggregation: columnar (compiled debug + concrete) ----------------------

    def _execute_aggregate_columnar(
        self, plan: Aggregate, runtime: QueryRuntime
    ) -> QueryResult:
        batch = self._eval(plan.child, runtime)
        n_rows = len(batch)
        pool = runtime.pool
        debug = runtime.debug
        det_keys, model_keys = self._aggregate_keys(plan, batch, runtime)

        # Factorize deterministic keys into one dense code per row.
        det_codes = np.zeros(n_rows, dtype=np.int64)
        det_uniques: list[np.ndarray] = []
        for _, values in det_keys:
            uniques, inverse = _factorize(values)
            det_uniques.append(uniques)
            det_codes = _compact_codes(det_codes * len(uniques) + inverse)
        # After compaction det_codes are dense, but we need the decoded key
        # parts; keep per-row key parts instead of decoding codes.
        det_parts_per_row = [values for _, values in det_keys]

        if model_keys:
            key_name, predict_expr = model_keys[0]
            classes = runtime.model_classes(predict_expr.model_name)
            site_ids = np.asarray(
                predict_expr.site_ids(batch, runtime), dtype=np.int64
            )
        else:
            classes = None
            site_ids = None

        # Membership entries: (row, class label, condition node).
        if classes is not None and debug:
            k = len(classes)
            label_ids = pool.intern_labels(np.asarray(classes, dtype=object))
            atoms = pool.atoms(np.repeat(site_ids, k), np.tile(label_ids, n_rows))
            entry_conds = pool.and2(np.repeat(batch.cond_nodes, k), atoms)
            keep = entry_conds != FALSE_NODE
            entry_rows = np.repeat(np.arange(n_rows, dtype=np.int64), k)[keep]
            entry_class = np.tile(np.arange(k, dtype=np.int64), n_rows)[keep]
            entry_conds = entry_conds[keep]
            entry_codes = det_codes[entry_rows] * k + entry_class
        elif classes is not None:
            predictions = predict_expr.eval(batch, runtime)
            class_of_label = {label: index for index, label in enumerate(classes)}
            uniques, inverse = _factorize(np.asarray(predictions, dtype=object))
            table = np.asarray(
                [class_of_label[label] for label in uniques.tolist()], dtype=np.int64
            )
            entry_class = table[inverse]
            entry_rows = np.arange(n_rows, dtype=np.int64)
            entry_conds = (
                batch.cond_nodes
                if debug
                else None
            )
            entry_codes = det_codes * len(classes) + entry_class
        else:
            entry_rows = np.arange(n_rows, dtype=np.int64)
            entry_class = None
            entry_conds = batch.cond_nodes if debug else None
            entry_codes = det_codes

        present_codes, entry_group = np.unique(entry_codes, return_inverse=True)
        n_groups = present_codes.shape[0]

        # Candidate keys, ordered like the reference path (string tokens).
        first_entry = np.zeros(n_groups, dtype=np.int64)
        order_by_group = np.argsort(entry_group, kind="stable")
        group_counts = np.bincount(entry_group, minlength=n_groups)
        group_offsets = np.concatenate([[0], np.cumsum(group_counts)]).astype(np.int64)
        if n_groups:
            first_entry = order_by_group[group_offsets[:-1]]
        keys: list[tuple] = []
        for group_index in range(n_groups):
            entry = int(first_entry[group_index])
            row = int(entry_rows[entry])
            parts = tuple(
                _key_token_value(values[row]) for values in det_parts_per_row
            )
            if entry_class is not None:
                parts = parts + (classes[int(entry_class[entry])],)
            keys.append(parts)
        group_order = sorted(range(n_groups), key=lambda g: _key_sort_token(keys[g]))

        # Global aggregate: exactly one group even with zero entries.
        global_empty = not plan.group_by and n_groups == 0
        if global_empty:
            keys = [()]
            group_order = [0]
            group_counts = np.zeros(1, dtype=np.int64)
            group_offsets = np.zeros(2, dtype=np.int64)
            n_groups = 1

        # Member arrays in final group order.
        member_rows = entry_rows[order_by_group] if entry_rows.size else entry_rows
        member_conds = (
            entry_conds[order_by_group] if (debug and entry_conds is not None) else None
        )
        # Reorder CSR segments into sorted group order.
        sorted_counts = group_counts[np.asarray(group_order, dtype=np.int64)]
        sorted_offsets = np.concatenate([[0], np.cumsum(sorted_counts)]).astype(np.int64)
        if n_groups and not global_empty:
            gather = _flat_ranges(
                group_offsets[:-1][np.asarray(group_order, dtype=np.int64)],
                group_offsets[1:][np.asarray(group_order, dtype=np.int64)],
            )
            member_rows = member_rows[gather]
            if member_conds is not None:
                member_conds = member_conds[gather]
        keys = [keys[g] for g in group_order]

        key_names = [name for name, _ in det_keys] + (
            [model_keys[0][0]] if model_keys else []
        )

        if debug:
            return self._finish_aggregate_compiled(
                plan,
                runtime,
                batch,
                keys,
                key_names,
                member_rows,
                member_conds,
                sorted_offsets,
            )
        return self._finish_aggregate_concrete(
            plan,
            runtime,
            batch,
            keys,
            key_names,
            member_rows,
            sorted_offsets,
        )

    def _finish_aggregate_compiled(
        self,
        plan: Aggregate,
        runtime: QueryRuntime,
        batch: TupleBatch,
        keys: list[tuple],
        key_names: list[str],
        member_rows: np.ndarray,
        member_conds: np.ndarray,
        offsets: np.ndarray,
    ) -> QueryResult:
        pool = runtime.pool
        n_groups = len(keys)
        condition_nodes = pool.or_segments(member_conds, offsets)
        if not plan.group_by:
            # A global aggregate row always exists.
            condition_nodes = np.full(n_groups, TRUE_NODE, dtype=np.int64)

        ones = np.ones(member_rows.shape[0], dtype=np.float64)
        cell_nodes: dict[str, np.ndarray] = {}
        count_nodes: np.ndarray | None = None
        for spec in plan.aggregates:
            if spec.func == "count":
                if count_nodes is None:
                    count_nodes = pool.add_segments(ones, member_conds, offsets)
                cell_nodes[spec.name] = count_nodes
                continue
            value_nodes = spec.arg.symbolic_num_nodes(batch, runtime)
            terms = pool.mul2(member_conds, value_nodes[member_rows])
            total_nodes = pool.add_segments(ones, terms, offsets)
            if spec.func == "sum":
                cell_nodes[spec.name] = total_nodes
            else:  # avg
                if count_nodes is None:
                    count_nodes = pool.add_segments(ones, member_conds, offsets)
                cell_nodes[spec.name] = pool.div2(total_nodes, count_nodes)

        group_infos = [
            GroupInfo(
                key=keys[g],
                condition_node=int(condition_nodes[g]),
                cell_nodes={
                    spec.name: int(cell_nodes[spec.name][g])
                    for spec in plan.aggregates
                },
                pool=pool,
            )
            for g in range(n_groups)
        ]

        # One vectorized evaluation recovers existence and every cell value.
        label_ids = runtime.site_label_ids(pool)
        roots = np.concatenate(
            [condition_nodes] + [cell_nodes[spec.name] for spec in plan.aggregates]
        )
        values = CompiledProvenance(pool, roots).evaluate_labels(label_ids)
        exists = values[:n_groups] >= 0.5
        if not plan.group_by:
            exists[:] = True
        out_rows = np.flatnonzero(exists)
        out_cells: dict[str, list] = {}
        for position, spec in enumerate(plan.aggregates):
            cells = values[(1 + position) * n_groups : (2 + position) * n_groups]
            out_cells[spec.name] = [float(cells[g]) for g in out_rows]
        return self._build_output(
            plan,
            key_names,
            [keys[g] for g in out_rows],
            out_cells,
            runtime,
            group_infos,
            out_rows.tolist(),
        )

    def _finish_aggregate_concrete(
        self,
        plan: Aggregate,
        runtime: QueryRuntime,
        batch: TupleBatch,
        keys: list[tuple],
        key_names: list[str],
        member_rows: np.ndarray,
        offsets: np.ndarray,
    ) -> QueryResult:
        n_groups = len(keys)
        counts = np.diff(offsets).astype(np.float64)
        out_cells: dict[str, list] = {}
        for spec in plan.aggregates:
            if spec.func == "count":
                cells = counts
            else:
                values = np.asarray(
                    spec.arg.eval(batch, runtime), dtype=np.float64
                )
                group_of_member = np.repeat(
                    np.arange(n_groups, dtype=np.int64), np.diff(offsets)
                )
                sums = np.bincount(
                    group_of_member,
                    weights=values[member_rows],
                    minlength=n_groups,
                )
                if spec.func == "sum":
                    cells = sums
                else:
                    with np.errstate(divide="ignore", invalid="ignore"):
                        cells = np.where(counts == 0.0, np.nan, sums / counts)
            out_cells[spec.name] = [float(cells[g]) for g in range(n_groups)]
        return self._build_output(
            plan,
            key_names,
            keys,
            out_cells,
            runtime,
            None,
            list(range(n_groups)),
        )

    # -- aggregation: interpreted reference ------------------------------------

    def _execute_aggregate_reference(
        self, plan: Aggregate, runtime: QueryRuntime
    ) -> QueryResult:
        batch = self._eval(plan.child, runtime)
        n_rows = len(batch)
        det_keys, model_keys = self._aggregate_keys(plan, batch, runtime)

        # Row membership: (deterministic key tuple, per-class condition).
        if runtime.debug:
            row_conditions = [batch.condition(i) for i in range(n_rows)]
        else:
            row_conditions = [prov.TRUE] * n_rows

        if model_keys:
            key_name, predict_expr = model_keys[0]
            classes = runtime.model_classes(predict_expr.model_name)
            site_ids = predict_expr.site_ids(batch, runtime)
        else:
            classes = None
            site_ids = None

        # Candidate groups: det-key combos present in the batch x classes.
        membership: dict[tuple, list[tuple[int, prov.BoolExpr]]] = {}
        for i in range(n_rows):
            det_part = tuple(
                values[i].item() if hasattr(values[i], "item") else values[i]
                for _, values in det_keys
            )
            if classes is None:
                key = det_part
                cond = row_conditions[i]
                membership.setdefault(key, []).append((i, cond))
            else:
                for label in classes:
                    key = det_part + (label,)
                    cond = prov.and_(
                        row_conditions[i], prov.PredIs(site_ids[i], label)
                    )
                    if cond.is_false():
                        continue
                    membership.setdefault(key, []).append((i, cond))

        # Global aggregate: exactly one group even with zero rows.
        if not plan.group_by and not membership:
            membership[()] = []

        agg_values = self._aggregate_arguments(plan.aggregates, batch, runtime)

        group_order = sorted(membership.keys(), key=_key_sort_token)
        group_infos: list[GroupInfo] = []
        for key in group_order:
            members = membership[key]
            condition = prov.or_(*[cond for _, cond in members]) if members else prov.FALSE
            if not plan.group_by:
                condition = prov.TRUE  # a global aggregate row always exists
            info = GroupInfo(key=key, condition=condition)
            for position, spec in enumerate(plan.aggregates):
                info.cell_polys[spec.name] = _aggregate_polynomial(
                    spec, position, members, agg_values
                )
            group_infos.append(info)

        # The prediction cache is populated in both modes (site_ids/symbolic_num
        # run model inference), so the assignment is always available.
        assignment = runtime.current_assignment()
        # Concrete output: groups that currently exist.
        out_rows: list[int] = []
        for index, info in enumerate(group_infos):
            if not plan.group_by or info.condition.evaluate(assignment):
                out_rows.append(index)

        key_names = [name for name, _ in det_keys] + (
            [model_keys[0][0]] if model_keys else []
        )
        out_cells: dict[str, list] = {spec.name: [] for spec in plan.aggregates}
        out_keys: list[tuple] = []
        for index in out_rows:
            info = group_infos[index]
            out_keys.append(info.key)
            for spec in plan.aggregates:
                out_cells[spec.name].append(
                    info.cell_polys[spec.name].evaluate(assignment)
                )
        result = self._build_output(
            plan, key_names, out_keys, out_cells, runtime, group_infos, out_rows
        )
        return result

    def _aggregate_arguments(
        self,
        aggregates: Sequence[AggSpec],
        batch: TupleBatch,
        runtime: QueryRuntime,
    ) -> dict[int, list[prov.NumExpr]]:
        """Per-aggregate numeric provenance of each input row."""
        out: dict[int, list[prov.NumExpr]] = {}
        for position, spec in enumerate(aggregates):
            if spec.arg is None:
                continue
            out[position] = spec.arg.symbolic_num(batch, runtime)
        return out


def _aggregate_polynomial(
    spec: AggSpec,
    position: int,
    members: list[tuple[int, prov.BoolExpr]],
    agg_values: dict[int, list[prov.NumExpr]],
) -> prov.NumExpr:
    """Provenance polynomial of one aggregate cell."""
    if spec.func == "count":
        return prov.LinearSum([(1.0, cond) for _, cond in members])
    values = agg_values[position]
    terms: list[prov.NumExpr] = []
    for row_index, cond in members:
        value = values[row_index]
        if cond.is_true():
            terms.append(value)
        else:
            terms.append(prov.mul_(prov.BoolAsNum(cond), value))
    total = prov.add_(*terms) if terms else prov.ConstNum(0.0)
    if spec.func == "sum":
        return total
    count = prov.LinearSum([(1.0, cond) for _, cond in members])
    return prov.DivExpr(total, count)


def _key_token_value(value):
    return value.item() if hasattr(value, "item") else value


def _key_sort_token(key: tuple):
    return tuple(str(part) for part in key)


def _factorize(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(..., return_inverse=True)`` with an order-insensitive
    fallback for object columns numpy cannot sort."""
    values = np.asarray(values)
    try:
        # equal_nan=False: each NaN key is its own group, matching the
        # reference membership dict (NaN != NaN under Python equality).
        uniques, inverse = np.unique(values, return_inverse=True, equal_nan=False)
        return uniques, inverse.reshape(-1).astype(np.int64)
    except TypeError:
        seen: dict[object, int] = {}
        inverse = np.empty(values.shape[0], dtype=np.int64)
        ordered: list[object] = []
        for index, value in enumerate(values.tolist()):
            code = seen.get(value)
            if code is None:
                code = len(ordered)
                seen[value] = code
                ordered.append(value)
            inverse[index] = code
        return np.asarray(ordered, dtype=object), inverse


def _compact_codes(codes: np.ndarray) -> np.ndarray:
    """Re-densify combined key codes to avoid overflow across columns."""
    _, inverse = np.unique(codes, return_inverse=True)
    return inverse.reshape(-1).astype(np.int64)


def _flat_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    from .compile import _flat_ranges as impl

    return impl(np.asarray(starts, dtype=np.int64), np.asarray(ends, dtype=np.int64))


def _split_join_condition(
    condition: Expr, left: TupleBatch, right: TupleBatch
) -> tuple[list[tuple[str, str]], Expr | None]:
    """Split a join condition into deterministic equi-pairs + residual.

    Returns ``(equi_pairs, residual)`` where each equi pair is a
    (left column, right column) qualified-name pair usable by a hash join.
    Model-dependent or non-equality conjuncts stay in the residual.
    """
    conjuncts = _flatten_and(condition)
    equi: list[tuple[str, str]] = []
    residual: list[Expr] = []
    for conjunct in conjuncts:
        pair = _as_equi_pair(conjunct, left, right)
        if pair is not None:
            equi.append(pair)
        else:
            residual.append(conjunct)
    residual_expr: Expr | None = None
    if residual:
        residual_expr = residual[0] if len(residual) == 1 else BoolAnd(residual)
    return equi, residual_expr


def _flatten_and(expr: Expr) -> list[Expr]:
    if isinstance(expr, BoolAnd):
        out: list[Expr] = []
        for child in expr.children():
            out.extend(_flatten_and(child))
        return out
    return [expr]


def _as_equi_pair(
    expr: Expr, left: TupleBatch, right: TupleBatch
) -> tuple[str, str] | None:
    if not isinstance(expr, Cmp) or expr.op != "=" or expr.depends_on_model():
        return None
    if not isinstance(expr.left, Col) or not isinstance(expr.right, Col):
        return None
    try:
        left_name = left.resolve(expr.left.name)
        right_name = right.resolve(expr.right.name)
        return (left_name, right_name)
    except QueryError:
        pass
    try:
        left_name = left.resolve(expr.right.name)
        right_name = right.resolve(expr.left.name)
        return (left_name, right_name)
    except QueryError:
        return None


def _hash_join(
    left: TupleBatch, right: TupleBatch, equi: list[tuple[str, str]]
) -> TupleBatch:
    """Deterministic equi join on equality column pairs.

    The probe is columnar: both sides' key tuples are factorized into dense
    codes (one ``np.unique`` over the concatenated columns per pair), the
    right side is stably grouped by code, and matching (left, right) index
    pairs are emitted with ``searchsorted`` + ``repeat`` — no per-row Python.
    Falls back to the dictionary probe for key columns numpy cannot sort
    (mixed-type or multidimensional feature keys).
    """
    n_left, n_right = len(left), len(right)
    left_codes = np.zeros(n_left, dtype=np.int64)
    right_codes = np.zeros(n_right, dtype=np.int64)
    for left_name, right_name in equi:
        left_values = left.columns[left_name]
        right_values = right.columns[right_name]
        if left_values.ndim != 1 or right_values.ndim != 1:
            return _hash_join_reference(left, right, equi)
        if _unsafe_key_promotion(left_values.dtype, right_values.dtype):
            # np.concatenate would stringify one side (e.g. int vs str
            # columns), silently equating values the reference dict probe
            # keeps distinct.
            return _hash_join_reference(left, right, equi)
        try:
            # equal_nan=False: NaN keys never join, matching the reference
            # dictionary probe (distinct NaN objects are distinct keys).
            _, inverse = np.unique(
                np.concatenate([left_values, right_values]),
                return_inverse=True,
                equal_nan=False,
            )
        except TypeError:
            return _hash_join_reference(left, right, equi)
        inverse = inverse.reshape(-1).astype(np.int64)
        n_codes = int(inverse.max()) + 1 if inverse.size else 1
        left_codes = _compact_join_codes(
            left_codes * n_codes + inverse[:n_left],
            right_codes * n_codes + inverse[n_left:],
        )
        right_codes = left_codes[1]
        left_codes = left_codes[0]
    right_order = np.argsort(right_codes, kind="stable")
    right_sorted = right_codes[right_order]
    starts = np.searchsorted(right_sorted, left_codes, side="left")
    ends = np.searchsorted(right_sorted, left_codes, side="right")
    counts = ends - starts
    total = int(counts.sum())
    left_index = np.repeat(np.arange(n_left, dtype=np.int64), counts)
    base = np.repeat(np.cumsum(counts) - counts, counts)
    position = np.arange(total, dtype=np.int64) - base
    right_index = right_order[np.repeat(starts, counts) + position]
    return TupleBatch.paired(left, right, left_index, right_index)


def _unsafe_key_promotion(left_dtype: np.dtype, right_dtype: np.dtype) -> bool:
    """True when concatenating the key columns would coerce across kinds.

    A str/bytes side paired with anything but the same kind (or object,
    which keeps Python equality) gets promoted by ``np.concatenate`` —
    e.g. ``int 1`` and ``str '1'`` would collapse to one join code even
    though they are unequal under the reference probe's semantics.
    """
    kinds = {left_dtype.kind, right_dtype.kind}
    if not kinds & {"U", "S"}:
        return False
    return len(kinds - {"O"}) > 1


def _compact_join_codes(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Jointly re-densify both sides' codes (keeps cross-side equality)."""
    _, inverse = np.unique(
        np.concatenate([left_codes, right_codes]), return_inverse=True
    )
    inverse = inverse.reshape(-1).astype(np.int64)
    return inverse[: left_codes.shape[0]], inverse[left_codes.shape[0] :]


def _hash_join_reference(
    left: TupleBatch, right: TupleBatch, equi: list[tuple[str, str]]
) -> TupleBatch:
    """The original dictionary-probe hash join (fallback path)."""
    left_keys = [left.columns[l] for l, _ in equi]
    right_keys = [right.columns[r] for _, r in equi]
    table: dict[tuple, list[int]] = {}
    for j in range(len(right)):
        key = tuple(_hashable(values[j]) for values in right_keys)
        table.setdefault(key, []).append(j)
    left_index: list[int] = []
    right_index: list[int] = []
    for i in range(len(left)):
        key = tuple(_hashable(values[i]) for values in left_keys)
        for j in table.get(key, ()):
            left_index.append(i)
            right_index.append(j)
    return TupleBatch.paired(
        left,
        right,
        np.asarray(left_index, dtype=np.int64),
        np.asarray(right_index, dtype=np.int64),
    )


def _hashable(value):
    if isinstance(value, np.ndarray):
        return value.tobytes()
    if hasattr(value, "item"):
        return value.item()
    return value


class ExecutionCache:
    """Per-iteration debug-execution cache keyed by plan fingerprint.

    The serving layer executes each *distinct* plan once per train-rank-fix
    iteration and shares the resulting :class:`QueryResult` — including its
    frozen compiled :class:`~repro.relational.compile.NodePool` — across
    every complaint case over that plan.  Sharing is semantically
    transparent: a compiled debug result is a pure function of
    (plan, data, model parameters), complaint-side consumers only *read*
    node ids out of the pool, and each case still builds its own
    :class:`~repro.relational.compile.CompiledProvenance` program over its
    own complaint roots.

    Only the compiled representation is cacheable; ``provenance="tree"``
    is the golden reference path and always re-executes per case.

    The cache is scoped to one iteration (model parameters change every
    iteration), so the driver constructs a fresh one per loop step and
    accumulates ``hits``/``misses`` for the iteration diagnostics.
    """

    def __init__(self, executor: Executor, provenance: str = "compiled") -> None:
        self.executor = executor
        self.provenance = provenance
        self.cacheable = provenance == "compiled"
        self._results: dict[str, QueryResult] = {}
        self.hits = 0
        self.misses = 0

    def fingerprint(self, plan: Plan) -> str:
        return plan_fingerprint(plan)

    def fetch(self, plan: Plan, fingerprint: str | None = None) -> QueryResult:
        """The debug-mode result for ``plan``, executed at most once."""
        if not self.cacheable:
            self.misses += 1
            return self.executor.execute(
                plan, debug=True, provenance=self.provenance
            )
        key = fingerprint if fingerprint is not None else plan_fingerprint(plan)
        cached = self._results.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self.executor.execute(plan, debug=True, provenance=self.provenance)
        if result.pool is not None:
            # Prewarm the pool-wide tape on the executing thread so the
            # per-case programs built later only read immutable arrays.
            result.pool.ensure_frozen()
        self._results[key] = result
        return result

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
