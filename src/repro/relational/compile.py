"""Tensorized provenance: compile Bool/Num polynomials into flat arrays.

The interpreted provenance of :mod:`repro.relational.provenance` represents
every existence condition and aggregate polynomial as a Python object tree
and evaluates it by recursion — one Python call per operator per tuple.
This module is the *compiled* counterpart: provenance is lowered into a
:class:`NodePool`, a flat columnar store of expression nodes

- ``op``        — one small-int opcode per node,
- ``children``  — a CSR layout (``child_start``/``child_end`` into one flat
  ``child`` array) holding every node's operands,
- ``coeff``     — per-child weights (the ``Σ coeff·child`` of COUNT/SUM
  polynomials),
- ``site``/``label`` — the inference-site id and interned class label of
  each prediction atom,

so that a whole query's provenance is a handful of integer arrays rather
than thousands of heap objects.  :class:`CompiledProvenance` then evaluates
*all* roots (every output tuple's condition, every aggregate cell) in one
level-batched sweep of numpy ops — and, for the Holistic relaxation, one
reverse sweep computes ``∂value/∂P`` for every root simultaneously.

Three evaluation modes share the same tape:

- ``evaluate(assignment)`` — exact boolean/numeric semantics under a
  discrete ``site → class`` assignment (atoms become 0/1 indicators);
- ``relaxed_values(P)`` — the Section 5.3 relaxation at a probability
  matrix ``P[site, class]`` (AND → product, OR → 1-∏(1-x), NOT → 1-x);
- ``relaxed_values_and_pgrad(P, seed)`` — relaxed values plus the seeded
  vector-Jacobian product ``Σ_r seed[r] · ∂value_r/∂P`` via one backward
  pass (exclusive products handle zero factors exactly).

The executor writes nodes directly in compiled form (one bulk constructor
call per operator per batch — see :meth:`NodePool.atoms`,
:meth:`NodePool.and2`, :meth:`NodePool.or_segments`); tree-built provenance
from the golden reference path can be lowered with
:func:`NodePool.add_expr`, and any compiled node can be materialized back
into an equivalent expression tree with :func:`NodePool.to_expr` for
consumers that still walk trees (the ILP encoder, complaint replay).

Worked example — ``COUNT(*) WHERE predict(x) = 'match'`` over three rows::

    pool = NodePool()
    atoms = pool.atoms(np.array([0, 1, 2]), pool.intern_labels(
        np.array(['match', 'match', 'match'], dtype=object)))
    count = pool.add_segments(np.ones(3), atoms, np.array([0, 3]))
    prog = CompiledProvenance(pool, count)
    prog.relaxed_values(P)               # array([P[0,m] + P[1,m] + P[2,m]])
    prog.evaluate({0: 'match', 1: 'no', 2: 'match'})   # array([2.0])
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..errors import ProvenanceError, RelaxationError
from ..utils import grow_array
from . import provenance as prov

# Opcodes.  FALSE/TRUE are the two reserved constant nodes 0 and 1.
OP_CONST = 0  # numeric constant; payload = value
OP_ATOM = 1  # prediction atom; payloads = (site_id, label_id)
OP_NOT = 2  # 1 - child                     (boolean)
OP_AND = 3  # ∏ child                       (boolean)
OP_OR = 4  # 1 - ∏ (1 - child)             (boolean)
OP_ADD = 5  # Σ coeff·child                 (numeric; LinearSum/AddExpr)
OP_MUL = 6  # ∏ child                       (numeric)
OP_DIV = 7  # child₀ / child₁               (numeric; AVG cells)

FALSE_NODE = 0
TRUE_NODE = 1

_BOOL_OPS = frozenset((OP_ATOM, OP_NOT, OP_AND, OP_OR))


class NodePool:
    """Append-only columnar store of provenance nodes.

    Nodes are created strictly children-before-parents, so node indices
    double as a topological order.  The two reserved nodes ``FALSE_NODE``
    and ``TRUE_NODE`` are boolean constants shared by every expression.
    """

    def __init__(self) -> None:
        self._op: list[int] = []
        self._value: list[float] = []  # OP_CONST payload
        self._site: list[int] = []  # OP_ATOM payload
        self._label: list[int] = []  # OP_ATOM payload (interned label id)
        self._child_start: list[int] = []
        self._child_end: list[int] = []
        self._child: list[int] = []
        self._coeff: list[float] = []
        self._is_bool: list[bool] = []
        self.labels: list[object] = []
        self._label_ids: dict[object, int] = {}
        # label_id -> dense site-indexed table of atom node ids (-1 = none).
        self._atom_tables: dict[int, np.ndarray] = {}
        self._expr_cache: dict[int, object] = {}
        # id(materialized expr) -> node id; the reverse of _expr_cache,
        # registered first-come so aliased nodes map to their canonical
        # representative (see node_for_expr).
        self._expr_nodes: dict[int, int] = {}
        self._frozen: _FrozenPool | None = None
        # FALSE and TRUE constants.
        self._append_scalar(OP_CONST, value=0.0, is_bool=True)
        self._append_scalar(OP_CONST, value=1.0, is_bool=True)

    # -- low-level append ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._op)

    def _append_scalar(
        self,
        op: int,
        value: float = 0.0,
        site: int = -1,
        label: int = -1,
        children: Sequence[int] = (),
        coeffs: Sequence[float] | None = None,
        is_bool: bool = False,
    ) -> int:
        index = len(self._op)
        self._op.append(op)
        self._value.append(float(value))
        self._site.append(int(site))
        self._label.append(int(label))
        self._child_start.append(len(self._child))
        self._child.extend(int(c) for c in children)
        if coeffs is None:
            self._coeff.extend(1.0 for _ in children)
        else:
            self._coeff.extend(float(c) for c in coeffs)
        self._child_end.append(len(self._child))
        self._is_bool.append(bool(is_bool))
        self._frozen = None
        return index

    def _append_bulk(
        self,
        op: int,
        n: int,
        child_flat: np.ndarray,
        offsets: np.ndarray,
        coeffs: np.ndarray | None = None,
        is_bool: bool = False,
    ) -> np.ndarray:
        """Append ``n`` nodes of one op; returns their indices."""
        if n == 0:
            return np.empty(0, dtype=np.int64)
        first = len(self._op)
        base = len(self._child)
        self._op.extend([op] * n)
        self._value.extend([0.0] * n)
        self._site.extend([-1] * n)
        self._label.extend([-1] * n)
        self._child_start.extend((offsets[:-1] + base).tolist())
        self._child_end.extend((offsets[1:] + base).tolist())
        self._child.extend(np.asarray(child_flat, dtype=np.int64).tolist())
        if coeffs is None:
            self._coeff.extend([1.0] * len(child_flat))
        else:
            self._coeff.extend(np.asarray(coeffs, dtype=np.float64).tolist())
        self._is_bool.extend([is_bool] * n)
        self._frozen = None
        return np.arange(first, first + n, dtype=np.int64)

    # -- labels and atoms ---------------------------------------------------------

    def intern_label(self, label: object) -> int:
        """Intern one class label; returns its dense label id."""
        try:
            return self._label_ids[label]
        except KeyError:
            label_id = len(self.labels)
            self._label_ids[label] = label_id
            self.labels.append(label)
            return label_id

    def intern_labels(self, labels: np.ndarray) -> np.ndarray:
        """Intern an object array of class labels into label-id ints."""
        return np.asarray([self.intern_label(label) for label in labels], dtype=np.int64)

    def _atom_table(self, label_id: int, min_size: int) -> np.ndarray:
        table = self._atom_tables.get(label_id)
        if table is None:
            table = np.full(0, -1, dtype=np.int64)
        table = grow_array(table, min_size, fill=-1)
        self._atom_tables[label_id] = table
        return table

    def atom(self, site_id: int, label: object) -> int:
        """The (deduplicated) atom node ``[site = label]``."""
        site_id = int(site_id)
        label_id = self.intern_label(label)
        table = self._atom_table(label_id, site_id + 1)
        node = int(table[site_id])
        if node < 0:
            node = self._append_scalar(
                OP_ATOM, site=site_id, label=label_id, is_bool=True
            )
            table[site_id] = node
        return node

    def atoms(self, site_ids: np.ndarray, label_ids: np.ndarray) -> np.ndarray:
        """Vectorized atom interning for parallel (site, label-id) arrays."""
        site_ids = np.asarray(site_ids, dtype=np.int64)
        label_ids = np.asarray(label_ids, dtype=np.int64)
        if site_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        out = np.empty(site_ids.shape[0], dtype=np.int64)
        for label_id in np.unique(label_ids).tolist():
            mask = label_ids == label_id
            sites = site_ids[mask]
            table = self._atom_table(label_id, int(sites.max()) + 1)
            nodes = table[sites]
            fresh = nodes < 0
            if np.any(fresh):
                new_sites = np.unique(sites[fresh])
                n_fresh = new_sites.shape[0]
                first = len(self._op)
                self._op.extend([OP_ATOM] * n_fresh)
                self._value.extend([0.0] * n_fresh)
                self._site.extend(new_sites.tolist())
                self._label.extend([label_id] * n_fresh)
                start = len(self._child)
                self._child_start.extend([start] * n_fresh)
                self._child_end.extend([start] * n_fresh)
                self._is_bool.extend([True] * n_fresh)
                self._frozen = None
                table[new_sites] = np.arange(first, first + n_fresh, dtype=np.int64)
                nodes = table[sites]
            out[mask] = nodes
        return out

    def const_bool(self, values: np.ndarray) -> np.ndarray:
        """TRUE/FALSE node per boolean value (no new nodes)."""
        return np.where(np.asarray(values, dtype=bool), TRUE_NODE, FALSE_NODE).astype(
            np.int64
        )

    def const_num(self, values: np.ndarray) -> np.ndarray:
        """One numeric-constant node per value."""
        values = np.asarray(values, dtype=np.float64)
        first = len(self._op)
        n = values.shape[0]
        self._op.extend([OP_CONST] * n)
        self._value.extend(values.tolist())
        self._site.extend([-1] * n)
        self._label.extend([-1] * n)
        start = len(self._child)
        self._child_start.extend([start] * n)
        self._child_end.extend([start] * n)
        self._is_bool.extend([False] * n)
        self._frozen = None
        return np.arange(first, first + n, dtype=np.int64)

    # -- boolean builders (constant folding mirrors and_/or_/not_) ----------------

    def and2(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise conjunction of two node arrays with folding."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = np.empty(a.shape[0], dtype=np.int64)
        false_mask = (a == FALSE_NODE) | (b == FALSE_NODE)
        out[false_mask] = FALSE_NODE
        a_true = a == TRUE_NODE
        b_true = b == TRUE_NODE
        take_a = ~false_mask & b_true
        out[take_a] = a[take_a]
        take_b = ~false_mask & a_true & ~b_true
        out[take_b] = b[take_b]
        fresh = ~(false_mask | a_true | b_true)
        n_fresh = int(np.count_nonzero(fresh))
        if n_fresh:
            child_flat = np.empty(2 * n_fresh, dtype=np.int64)
            child_flat[0::2] = a[fresh]
            child_flat[1::2] = b[fresh]
            offsets = np.arange(n_fresh + 1, dtype=np.int64) * 2
            out[fresh] = self._append_bulk(
                OP_AND, n_fresh, child_flat, offsets, is_bool=True
            )
        return out

    def not_(self, nodes: np.ndarray) -> np.ndarray:
        """Element-wise negation with TRUE/FALSE and double-negation folding."""
        nodes = np.asarray(nodes, dtype=np.int64)
        out = np.empty(nodes.shape[0], dtype=np.int64)
        out[nodes == TRUE_NODE] = FALSE_NODE
        out[nodes == FALSE_NODE] = TRUE_NODE
        # Index the builder lists per input node (O(batch), not O(pool)).
        op_list, start_list, child_list = self._op, self._child_start, self._child
        op = np.asarray([op_list[node] for node in nodes.tolist()], dtype=np.int8)
        double = op == OP_NOT
        if np.any(double):
            out[double] = np.asarray(
                [child_list[start_list[node]] for node in nodes[double].tolist()],
                dtype=np.int64,
            )
        fresh = (nodes != TRUE_NODE) & (nodes != FALSE_NODE) & ~double
        n_fresh = int(np.count_nonzero(fresh))
        if n_fresh:
            offsets = np.arange(n_fresh + 1, dtype=np.int64)
            out[fresh] = self._append_bulk(
                OP_NOT, n_fresh, nodes[fresh], offsets, is_bool=True
            )
        return out

    def _nary_bool(
        self, op: int, child_flat: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        """Shared n-ary AND/OR builder over CSR segments with folding.

        For OR: any TRUE child short-circuits to TRUE and FALSE children are
        dropped; for AND the roles are swapped.  Empty segments fold to the
        operator's identity (FALSE for OR, TRUE for AND).
        """
        child_flat = np.asarray(child_flat, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        n_seg = offsets.shape[0] - 1
        if n_seg == 0:
            return np.empty(0, dtype=np.int64)
        if op == OP_OR:
            absorbing, identity = TRUE_NODE, FALSE_NODE
        else:
            absorbing, identity = FALSE_NODE, TRUE_NODE
        counts = np.diff(offsets)
        seg_id = np.repeat(np.arange(n_seg, dtype=np.int64), counts)
        short = np.zeros(n_seg, dtype=bool)
        hit = child_flat == absorbing
        if np.any(hit):
            short[seg_id[hit]] = True
        keep = (child_flat != absorbing) & (child_flat != identity) & ~short[seg_id]
        kept_flat = child_flat[keep]
        kept_seg = seg_id[keep]
        kept_counts = np.bincount(kept_seg, minlength=n_seg)

        out = np.full(n_seg, identity, dtype=np.int64)
        out[short] = absorbing
        single = (kept_counts == 1) & ~short
        if np.any(single):
            starts = np.searchsorted(kept_seg, np.flatnonzero(single))
            out[np.flatnonzero(single)] = kept_flat[starts]
        multi = (kept_counts >= 2) & ~short
        n_multi = int(np.count_nonzero(multi))
        if n_multi:
            take = multi[kept_seg]
            new_flat = kept_flat[take]
            new_counts = kept_counts[multi]
            new_offsets = np.concatenate(
                [[0], np.cumsum(new_counts)]
            ).astype(np.int64)
            out[multi] = self._append_bulk(
                op, n_multi, new_flat, new_offsets, is_bool=True
            )
        return out

    def or_segments(self, child_flat: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """One disjunction node per CSR segment (with constant folding)."""
        return self._nary_bool(OP_OR, child_flat, offsets)

    def and_segments(self, child_flat: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """One conjunction node per CSR segment (with constant folding)."""
        return self._nary_bool(OP_AND, child_flat, offsets)

    # -- numeric builders -----------------------------------------------------------

    def add_segments(
        self,
        coeffs: np.ndarray,
        child_flat: np.ndarray,
        offsets: np.ndarray,
    ) -> np.ndarray:
        """One ``Σ coeff·child`` node per CSR segment (COUNT/SUM cells).

        Boolean children act as 0/1 indicators; an empty segment is the
        constant 0 (an empty COUNT).
        """
        coeffs = np.asarray(coeffs, dtype=np.float64)
        child_flat = np.asarray(child_flat, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        n_seg = offsets.shape[0] - 1
        counts = np.diff(offsets)
        out = np.empty(n_seg, dtype=np.int64)
        empty = counts == 0
        if np.any(empty):
            n_empty = int(np.count_nonzero(empty))
            # Childless ADD nodes: value 0, materialize as empty LinearSums.
            out[empty] = self._append_bulk(
                OP_ADD,
                n_empty,
                np.empty(0, dtype=np.int64),
                np.zeros(n_empty + 1, dtype=np.int64),
            )
        filled = ~empty
        n_filled = int(np.count_nonzero(filled))
        if n_filled:
            seg_id = np.repeat(np.arange(n_seg, dtype=np.int64), counts)
            take = filled[seg_id]
            new_counts = counts[filled]
            new_offsets = np.concatenate([[0], np.cumsum(new_counts)]).astype(np.int64)
            out[filled] = self._append_bulk(
                OP_ADD, n_filled, child_flat[take], new_offsets, coeffs=coeffs[take]
            )
        return out

    def mul2(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise product nodes (bool children act as indicators).

        A TRUE factor folds away (matching the reference path, which emits
        the bare value when a member's condition is deterministically true);
        a FALSE factor folds the whole product to the constant 0.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = np.empty(a.shape[0], dtype=np.int64)
        zero = (a == FALSE_NODE) | (b == FALSE_NODE)
        if np.any(zero):
            out[zero] = self.const_num(np.zeros(int(np.count_nonzero(zero))))
        take_b = ~zero & (a == TRUE_NODE)
        out[take_b] = b[take_b]
        take_a = ~zero & ~take_b & (b == TRUE_NODE)
        out[take_a] = a[take_a]
        fresh = ~(zero | take_a | take_b)
        n_fresh = int(np.count_nonzero(fresh))
        if n_fresh:
            child_flat = np.empty(2 * n_fresh, dtype=np.int64)
            child_flat[0::2] = a[fresh]
            child_flat[1::2] = b[fresh]
            offsets = np.arange(n_fresh + 1, dtype=np.int64) * 2
            out[fresh] = self._append_bulk(OP_MUL, n_fresh, child_flat, offsets)
        return out

    def div2(self, numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
        """Element-wise ratio nodes (AVG = SUM / COUNT)."""
        numerator = np.asarray(numerator, dtype=np.int64)
        denominator = np.asarray(denominator, dtype=np.int64)
        n = numerator.shape[0]
        child_flat = np.empty(2 * n, dtype=np.int64)
        child_flat[0::2] = numerator
        child_flat[1::2] = denominator
        offsets = np.arange(n + 1, dtype=np.int64) * 2
        return self._append_bulk(OP_DIV, n, child_flat, offsets)

    def linear_sum(self, terms: Sequence[tuple[float, int]]) -> int:
        """A single ``Σ coeff·cond`` node from (coeff, node) pairs."""
        children = [node for _, node in terms]
        coeffs = [coeff for coeff, _ in terms]
        if not children:
            return self._append_scalar(OP_CONST, value=0.0)
        return self._append_scalar(OP_ADD, children=children, coeffs=coeffs)

    # -- compiling existing expression trees ------------------------------------------

    def add_expr(self, expr: prov.BoolExpr | prov.NumExpr) -> int:
        """Lower one interpreted expression tree/DAG into the pool."""
        memo: dict[int, int] = {}
        post: list[object] = []
        stack: list[tuple[object, bool]] = [(expr, False)]
        seen: set[int] = set()
        while stack:
            node, processed = stack.pop()
            if processed:
                post.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for child in _tree_children(node):
                if id(child) not in seen:
                    stack.append((child, False))
        for node in post:
            if id(node) in memo:
                continue
            memo[id(node)] = self._lower_one(node, memo)
        return memo[id(expr)]

    def add_exprs(self, exprs: Sequence[prov.BoolExpr | prov.NumExpr]) -> np.ndarray:
        return np.asarray([self.add_expr(expr) for expr in exprs], dtype=np.int64)

    def _lower_one(self, node, memo: dict[int, int]) -> int:
        if isinstance(node, prov.TrueExpr):
            return TRUE_NODE
        if isinstance(node, prov.FalseExpr):
            return FALSE_NODE
        if isinstance(node, prov.PredIs):
            return self.atom(node.site_id, node.label)
        if isinstance(node, prov.NotExpr):
            return self._append_scalar(
                OP_NOT, children=(memo[id(node.child)],), is_bool=True
            )
        if isinstance(node, prov.AndExpr):
            return self._append_scalar(
                OP_AND,
                children=[memo[id(child)] for child in node.children],
                is_bool=True,
            )
        if isinstance(node, prov.OrExpr):
            return self._append_scalar(
                OP_OR,
                children=[memo[id(child)] for child in node.children],
                is_bool=True,
            )
        if isinstance(node, prov.ConstNum):
            return self._append_scalar(OP_CONST, value=node.value)
        if isinstance(node, prov.BoolAsNum):
            # Identity under both discrete and relaxed semantics.
            return memo[id(node.expr)]
        if isinstance(node, prov.LinearSum):
            return self._append_scalar(
                OP_ADD,
                children=[memo[id(cond)] for _, cond in node.terms],
                coeffs=[coeff for coeff, _ in node.terms],
            )
        if isinstance(node, prov.AddExpr):
            return self._append_scalar(
                OP_ADD, children=[memo[id(child)] for child in node.children]
            )
        if isinstance(node, prov.MulExpr):
            return self._append_scalar(
                OP_MUL, children=[memo[id(child)] for child in node.children]
            )
        if isinstance(node, prov.DivExpr):
            return self._append_scalar(
                OP_DIV,
                children=(memo[id(node.numerator)], memo[id(node.denominator)]),
            )
        raise ProvenanceError(f"cannot compile node of type {type(node).__name__}")

    # -- materializing compiled nodes back into trees --------------------------------------

    def to_expr(self, node: int) -> prov.BoolExpr | prov.NumExpr:
        """Materialize a compiled node as an equivalent expression tree.

        The result is value-equivalent (and relaxation-equivalent) to the
        compiled node; structural normalizations applied during compilation
        (constant folding, identity elision) are not undone.  Materialized
        trees are cached per node, so repeated calls — and shared
        subexpressions across calls — return the *same* objects, exactly as
        the tree-building path shares DAG nodes.
        """
        memo = self._expr_cache
        stack: list[tuple[int, bool]] = [(int(node), False)]
        while stack:
            current, processed = stack.pop()
            if current in memo:
                continue
            start, end = self._child_start[current], self._child_end[current]
            children = self._child[start:end]
            if not processed:
                stack.append((current, True))
                stack.extend((child, False) for child in children if child not in memo)
                continue
            obj = self._materialize_one(current, children, memo)
            memo[current] = obj
            # First-come registration: constant folding can alias several
            # nodes to one shared object, and the lowest-index node — the
            # first to materialize — is the canonical representative.
            # repro: ignore[DET001] — sound: _expr_cache holds a strong
            # reference to every materialized expr for the pool's lifetime,
            # so an id in _expr_nodes can never be recycled while keyed.
            self._expr_nodes.setdefault(id(obj), current)
        return memo[int(node)]

    def to_exprs(self, nodes: Sequence[int]) -> list:
        return [self.to_expr(node) for node in nodes]

    def node_for_expr(self, expr) -> int | None:
        """The canonical pool node a materialized tree came from, if any.

        Only trees produced by :meth:`to_expr` (and their subtrees) are
        known; anything else returns ``None``.  Because registration is
        first-come, every expression object maps to the lowest-index node
        that materializes to it, giving a stable structural key shared by
        all aliases — the ILP encoder uses this to dedup aux variables
        across complaints.
        """
        # repro: ignore[DET001] — see to_expr: ids pinned by _expr_cache.
        return self._expr_nodes.get(id(expr))

    def _materialize_one(self, node: int, children: list[int], memo: dict):
        op = self._op[node]
        if node == FALSE_NODE:
            return prov.FALSE
        if node == TRUE_NODE:
            return prov.TRUE
        if op == OP_CONST:
            return prov.ConstNum(self._value[node])
        if op == OP_ATOM:
            return prov.PredIs(self._site[node], self.labels[self._label[node]])
        kids = [memo[child] for child in children]
        if op == OP_NOT:
            return prov.not_(kids[0])
        if op == OP_AND:
            return prov.and_(*kids)
        if op == OP_OR:
            return prov.or_(*kids)
        if op == OP_MUL:
            return prov.mul_(*[_as_num(kid) for kid in kids])
        if op == OP_DIV:
            return prov.DivExpr(_as_num(kids[0]), _as_num(kids[1]))
        if op == OP_ADD:
            start = self._child_start[node]
            coeffs = self._coeff[start : self._child_end[node]]
            if all(isinstance(kid, prov.BoolExpr) for kid in kids):
                return prov.LinearSum(list(zip(coeffs, kids)))
            terms = []
            for coeff, kid in zip(coeffs, kids):
                value = _as_num(kid)
                if coeff != 1.0:
                    value = prov.mul_(prov.ConstNum(coeff), value)
                terms.append(value)
            return prov.add_(*terms)
        raise ProvenanceError(f"unknown opcode {op}")

    def is_bool_node(self, node: int) -> bool:
        return self._is_bool[int(node)]

    def linear_frontier_terms(
        self, node: int
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Decompose a ``Σ coeff·bool`` node into its non-linear frontier.

        Returns ``(coeffs, child_nodes)`` when ``node`` is an ADD whose
        children are all boolean — atoms, TRUE/FALSE, or compound AND/OR/NOT
        conditions (the shape of COUNT cells and of SUM cells whose member
        values folded away).  The children are the *frontier*: everything
        above them is affine, everything below needs linearization.  Returns
        ``None`` for non-ADD nodes or ADDs with numeric children.
        """
        node = int(node)
        if self._op[node] != OP_ADD:
            return None
        start, end = self._child_start[node], self._child_end[node]
        children = self._child[start:end]
        is_bool = self._is_bool
        if any(not is_bool[child] for child in children):
            return None
        coeffs = np.asarray(self._coeff[start:end], dtype=np.float64)
        return coeffs, np.asarray(children, dtype=np.int64)

    def linear_atom_terms(
        self, node: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Decompose a ``Σ coeff·atom`` node into flat term arrays.

        Returns ``(coeffs, site_ids, label_ids)`` when ``node`` is an ADD
        whose children are all prediction atoms — the shape of COUNT/SUM
        cells — and ``None`` otherwise.  Consumers (the ILP encoder) can
        then build affine forms without materializing trees.
        """
        frontier = self.linear_frontier_terms(node)
        if frontier is None:
            return None
        coeffs, children = frontier
        op_list = self._op
        if children.size == 0 or any(
            op_list[child] != OP_ATOM for child in children.tolist()
        ):
            return None
        sites = np.asarray(
            [self._site[child] for child in children.tolist()], dtype=np.int64
        )
        labels = np.asarray(
            [self._label[child] for child in children.tolist()], dtype=np.int64
        )
        return coeffs, sites, labels

    # -- frozen view ----------------------------------------------------------------------

    def frozen(self) -> "_FrozenPool":
        """Immutable array view of the pool (cached until the next append)."""
        if self._frozen is None:
            self._frozen = _FrozenPool(self)
        return self._frozen

    def ensure_frozen(self) -> "_FrozenPool":
        """Prewarm and return the frozen view for cross-case sharing.

        The sharded serving layer calls this once per execution before
        fanning complaint cases out to workers: the frozen snapshot (and
        its pool-wide level tape) is built exactly once on the driver
        thread, after which concurrent readers — one
        :class:`CompiledProvenance` program per case sharing this pool —
        only touch immutable arrays.  Appending to the pool after
        prewarming invalidates the snapshot, so callers must finish
        building all case programs' nodes first (compiled query results
        already contain every complaint-addressable node).
        """
        return self.frozen()


def _as_num(expr):
    return prov.BoolAsNum(expr) if isinstance(expr, prov.BoolExpr) else expr


def _tree_children(node) -> Sequence:
    if isinstance(node, (prov.AndExpr, prov.OrExpr, prov.AddExpr, prov.MulExpr)):
        return node.children
    if isinstance(node, prov.NotExpr):
        return (node.child,)
    if isinstance(node, prov.BoolAsNum):
        return (node.expr,)
    if isinstance(node, prov.LinearSum):
        return tuple(cond for _, cond in node.terms)
    if isinstance(node, prov.DivExpr):
        return (node.numerator, node.denominator)
    return ()


class _FrozenPool:
    """Numpy snapshot of a :class:`NodePool` with a cached evaluation tape.

    Levels and per-(level, op) step groups depend only on the node arrays,
    so they are computed once per freeze and shared by every
    :class:`CompiledProvenance` built over this snapshot.
    """

    def __init__(self, pool: NodePool) -> None:
        self.op = np.asarray(pool._op, dtype=np.int8)
        self.value = np.asarray(pool._value, dtype=np.float64)
        self.site = np.asarray(pool._site, dtype=np.int64)
        self.label = np.asarray(pool._label, dtype=np.int64)
        self.child_start = np.asarray(pool._child_start, dtype=np.int64)
        self.child_end = np.asarray(pool._child_end, dtype=np.int64)
        self.child = np.asarray(pool._child, dtype=np.int64)
        self.coeff = np.asarray(pool._coeff, dtype=np.float64)
        self.labels = list(pool.labels)
        self._tape: list[tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] | None = None
        self._level: np.ndarray | None = None
        self._bool_structure: BoolStructure | None = None

    def tape(self) -> tuple[np.ndarray, list]:
        """``(level, steps)`` over the whole pool (children before parents)."""
        if self._tape is not None:
            return self._level, self._tape
        counts = self.child_end - self.child_start
        level = np.zeros(self.op.shape[0], dtype=np.int64)
        internal = np.flatnonzero(counts > 0)
        while internal.size:
            child_levels = level[self.child]
            seg_max = np.maximum.reduceat(child_levels, self.child_start[internal])
            new_level = level.copy()
            new_level[internal] = seg_max + 1
            if np.array_equal(new_level, level):
                break
            level = new_level
        steps: list[tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        max_level = int(level.max()) if level.size else 0
        for lvl in range(1, max_level + 1):
            at_level = np.flatnonzero(level == lvl)
            for op in (OP_NOT, OP_AND, OP_OR, OP_ADD, OP_MUL, OP_DIV):
                nodes = at_level[self.op[at_level] == op]
                if nodes.size == 0:
                    continue
                seg_counts = self.child_end[nodes] - self.child_start[nodes]
                flat = _flat_ranges(self.child_start[nodes], self.child_end[nodes])
                offsets = np.concatenate([[0], np.cumsum(seg_counts)]).astype(np.int64)
                steps.append(
                    (op, nodes, self.child[flat], offsets, self.coeff[flat])
                )
        self._level = level
        self._tape = steps
        return level, steps

    def bool_structure(self) -> "BoolStructure":
        """Canonicalized boolean structure of the pool (cached per freeze).

        :meth:`NodePool.to_expr` does not replay the raw CSR verbatim — its
        ``prov.and_``/``or_``/``not_`` constructors fold constants, elide
        single-child operators, splice same-op children, and collapse double
        negation.  The ILP encoder must see exactly that *effective*
        structure to stay bit-identical with the tree walk, so this pass
        mirrors the folds bottom-up over the node arrays (index order is a
        valid level order — children strictly precede parents):

        - ``rep[i]`` is the canonical node ``i`` aliases to after folding
          (``rep[i] == i`` for canonical nodes);
        - canonical AND/OR nodes get an *effective* children CSR
          (``eff_start``/``eff_end`` into ``eff_child``) holding their
          flattened, constant-free, already-canonical operands (always ≥ 2).
        """
        if self._bool_structure is not None:
            return self._bool_structure
        # Fast path: folds only trigger on TRUE/FALSE children, same-op
        # children (splice / double negation), or AND/OR arity < 2 — and
        # with zero folds anywhere no node aliases, so the raw CSR IS the
        # effective structure.  One vectorized scan decides.
        bool_idx = np.flatnonzero((self.op >= OP_NOT) & (self.op <= OP_OR))
        clean = True
        if bool_idx.size:
            k = self.child_end[bool_idx] - self.child_start[bool_idx]
            flat = _flat_ranges(self.child_start[bool_idx], self.child_end[bool_idx])
            kids = self.child[flat]
            parent_op = np.repeat(self.op[bool_idx], k)
            clean = (
                not np.any((self.op[bool_idx] != OP_NOT) & (k < 2))
                and not np.any(kids <= TRUE_NODE)
                and not np.any(self.op[kids] == parent_op)
            )
        if clean:
            self._bool_structure = BoolStructure(
                rep=np.arange(self.op.shape[0], dtype=np.int64),
                eff_start=self.child_start,
                eff_end=self.child_end,
                eff_child=self.child,
            )
            return self._bool_structure
        op = self.op.tolist()
        child_start = self.child_start.tolist()
        child_end = self.child_end.tolist()
        child = self.child.tolist()
        n = len(op)
        rep = list(range(n))
        # Effective children accumulate straight into one flat list:
        # canonical AND/OR nodes record their [start, end) slice of it,
        # and same-op splices copy an earlier slice (children strictly
        # precede parents, so a child's slice is final when read).
        eff_start = [0] * n
        eff_end = [0] * n
        flat_all: list[int] = []
        append = flat_all.append
        extend = flat_all.extend
        # Only NOT/AND/OR nodes can alias or grow effective children; the
        # fold loop skips everything else (atoms, constants, arithmetic).
        bool_nodes = np.flatnonzero(
            (self.op >= OP_NOT) & (self.op <= OP_OR)
        ).tolist()
        for i in bool_nodes:
            o = op[i]
            if o == OP_NOT:
                r = rep[child[child_start[i]]]
                if r == TRUE_NODE:
                    rep[i] = FALSE_NODE
                elif r == FALSE_NODE:
                    rep[i] = TRUE_NODE
                elif op[r] == OP_NOT:
                    # not_(NotExpr) returns the inner child.
                    rep[i] = rep[child[child_start[r]]]
                continue
            absorbing = FALSE_NODE if o == OP_AND else TRUE_NODE
            identity = TRUE_NODE if o == OP_AND else FALSE_NODE
            start = len(flat_all)
            dead = False
            for c in child[child_start[i] : child_end[i]]:
                r = rep[c]
                if r == absorbing:
                    dead = True
                    break
                if r == identity:
                    continue
                if op[r] == o:
                    # Same-op canonical child: splice its (already
                    # flattened) effective operands, as and_/or_ do.
                    extend(flat_all[eff_start[r] : eff_end[r]])
                else:
                    append(r)
            count = len(flat_all) - start
            if dead:
                rep[i] = absorbing
                del flat_all[start:]
            elif count == 0:
                rep[i] = identity
            elif count == 1:
                rep[i] = flat_all[start]
                del flat_all[start:]
            else:
                eff_start[i] = start
                eff_end[i] = start + count
        self._bool_structure = BoolStructure(
            rep=np.asarray(rep, dtype=np.int64),
            eff_start=np.asarray(eff_start, dtype=np.int64),
            eff_end=np.asarray(eff_end, dtype=np.int64),
            eff_child=np.asarray(flat_all, dtype=np.int64),
            lists=(rep, eff_start, eff_end, flat_all),
        )
        return self._bool_structure


class BoolStructure:
    """Canonical boolean aliasing + effective-children CSR of a frozen pool."""

    __slots__ = ("rep", "eff_start", "eff_end", "eff_child", "_lists")

    def __init__(
        self,
        rep: np.ndarray,
        eff_start: np.ndarray,
        eff_end: np.ndarray,
        eff_child: np.ndarray,
        lists: tuple[list, list, list, list] | None = None,
    ) -> None:
        self.rep = rep
        self.eff_start = eff_start
        self.eff_end = eff_end
        self.eff_child = eff_child
        self._lists = lists

    def lists(self) -> tuple[list, list, list, list]:
        """``(rep, eff_start, eff_end, eff_child)`` as plain lists, cached."""
        if self._lists is None:
            self._lists = (
                self.rep.tolist(),
                self.eff_start.tolist(),
                self.eff_end.tolist(),
                self.eff_child.tolist(),
            )
        return self._lists


class CompiledProvenance:
    """A set of compiled roots with a reusable level-batched evaluation tape.

    Construction extracts the sub-DAG reachable from ``roots``, assigns each
    node a level (children strictly below parents) and groups nodes into
    per-(level, op) steps.  Each evaluation is then a fixed sequence of
    segmented numpy operations — no per-node Python dispatch.
    """

    def __init__(self, pool: NodePool, roots: np.ndarray) -> None:
        self.pool = pool
        self.roots = np.asarray(roots, dtype=np.int64).ravel()
        frozen = pool.frozen()
        self._f = frozen
        n = frozen.op.shape[0]

        # Reachable sub-DAG: frontier expansion over the flat child arrays
        # (children have smaller indices than parents, so depth is bounded).
        counts = frozen.child_end - frozen.child_start
        reachable = np.zeros(n, dtype=bool)
        expanded = np.zeros(n, dtype=bool)
        if self.roots.size:
            reachable[self.roots] = True
            while True:
                frontier = np.flatnonzero(reachable & (counts > 0) & ~expanded)
                if frontier.size == 0:
                    break
                expanded[frontier] = True
                kids = frozen.child[
                    _flat_ranges(frozen.child_start[frontier], frozen.child_end[frontier])
                ]
                reachable[kids] = True
        self.reachable = reachable

        # Restrict the pool-wide cached tape to the reachable sub-DAG.
        level, full_steps = frozen.tape()
        self.level = level
        self._steps: list[tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        for op, nodes, child_flat, offsets, coeffs in full_steps:
            keep = reachable[nodes]
            if not keep.any():
                continue
            if keep.all():
                self._steps.append((op, nodes, child_flat, offsets, coeffs))
                continue
            kept = np.flatnonzero(keep)
            seg_counts = offsets[1:][kept] - offsets[:-1][kept]
            flat = _flat_ranges(offsets[:-1][kept], offsets[1:][kept])
            new_offsets = np.concatenate([[0], np.cumsum(seg_counts)]).astype(np.int64)
            self._steps.append(
                (op, nodes[kept], child_flat[flat], new_offsets, coeffs[flat])
            )
        leaf_mask = reachable & (level == 0)
        self._atom_nodes = np.flatnonzero(leaf_mask & (frozen.op == OP_ATOM))
        self._const_nodes = np.flatnonzero(leaf_mask & (frozen.op == OP_CONST))
        # Degenerate childless operators: empty AND/MUL is 1, empty OR/ADD is 0.
        self._unit_nodes = np.flatnonzero(
            leaf_mask & ((frozen.op == OP_AND) | (frozen.op == OP_MUL))
        )
        self._atom_sites = frozen.site[self._atom_nodes]
        self._atom_labels = frozen.label[self._atom_nodes]

    # -- leaves -------------------------------------------------------------------

    @property
    def atom_sites(self) -> np.ndarray:
        """Site ids of every atom reachable from the roots."""
        return self._atom_sites

    def atom_columns(self, class_columns: Mapping[object, int]) -> np.ndarray:
        """Map each reachable atom's label to a column of ``P``."""
        colmap = np.full(len(self._f.labels), -1, dtype=np.int64)
        for label, column in class_columns.items():
            label_id = self.pool._label_ids.get(label)
            if label_id is not None:
                colmap[label_id] = column
        columns = colmap[self._atom_labels]
        if np.any(columns < 0):
            bad = self._f.labels[int(self._atom_labels[int(np.argmax(columns < 0))])]
            raise RelaxationError(f"atom class {bad!r} is not a model class")
        return columns

    # -- evaluation --------------------------------------------------------------------

    def _forward(self, leaf_values: np.ndarray, strict_div: bool) -> np.ndarray:
        f = self._f
        values = np.zeros(f.op.shape[0], dtype=np.float64)
        values[self._const_nodes] = f.value[self._const_nodes]
        values[self._atom_nodes] = leaf_values
        values[self._unit_nodes] = 1.0
        for op, nodes, child_flat, offsets, coeffs in self._steps:
            child_vals = values[child_flat]
            if op == OP_NOT:
                values[nodes] = 1.0 - child_vals
            elif op in (OP_AND, OP_MUL):
                values[nodes] = np.multiply.reduceat(child_vals, offsets[:-1])
            elif op == OP_OR:
                values[nodes] = 1.0 - np.multiply.reduceat(
                    1.0 - child_vals, offsets[:-1]
                )
            elif op == OP_ADD:
                values[nodes] = np.add.reduceat(coeffs * child_vals, offsets[:-1])
            else:  # OP_DIV
                numerator = child_vals[0::2]
                denominator = child_vals[1::2]
                if strict_div and np.any(denominator == 0.0):
                    raise RelaxationError(
                        "relaxed AVG denominator is zero; the complained group "
                        "is unreachable under the current model"
                    )
                with np.errstate(divide="ignore", invalid="ignore"):
                    ratio = numerator / denominator
                values[nodes] = np.where(denominator == 0.0, np.nan, ratio)
        return values

    def evaluate(self, assignment: Mapping[int, object]) -> np.ndarray:
        """Exact root values under a discrete ``site → class`` assignment."""
        if self._atom_nodes.size:
            label_of_site = np.full(int(self._atom_sites.max()) + 1, -2, dtype=np.int64)
            for site in np.unique(self._atom_sites):
                try:
                    label = assignment[int(site)]
                except KeyError as exc:
                    raise ProvenanceError(
                        f"assignment is missing inference site {int(site)}"
                    ) from exc
                label_of_site[site] = self.pool._label_ids.get(label, -3)
            leaf = (label_of_site[self._atom_sites] == self._atom_labels).astype(
                np.float64
            )
        else:
            leaf = np.empty(0, dtype=np.float64)
        values = self._forward(leaf, strict_div=False)
        return values[self.roots]

    def evaluate_labels(self, site_label_ids: np.ndarray) -> np.ndarray:
        """Exact root values from a dense ``site → label-id`` array."""
        leaf = (
            np.asarray(site_label_ids, dtype=np.int64)[self._atom_sites]
            == self._atom_labels
        ).astype(np.float64)
        return self._forward(leaf, strict_div=False)[self.roots]

    def relaxed_values(
        self, P: np.ndarray, class_columns: Mapping[object, int] | None = None
    ) -> np.ndarray:
        """Section 5.3 relaxation of every root at probability matrix ``P``."""
        columns = self._resolve_columns(class_columns)
        leaf = P[self._atom_sites, columns].astype(np.float64)
        return self._forward(leaf, strict_div=True)[self.roots]

    def relaxed_forward(
        self, P: np.ndarray, class_columns: Mapping[object, int] | None = None
    ) -> tuple[np.ndarray, tuple]:
        """Forward-only relaxation; returns (root values, backward cache)."""
        columns = self._resolve_columns(class_columns)
        leaf = P[self._atom_sites, columns].astype(np.float64)
        values = self._forward(leaf, strict_div=True)
        return values[self.roots], (values, columns, P.shape)

    def relaxed_backward(self, cache: tuple, seed: np.ndarray) -> np.ndarray:
        """Seeded reverse sweep over a :meth:`relaxed_forward` cache."""
        values, columns, p_shape = cache
        adjoint = self._backward(values, seed)
        grad = np.zeros(p_shape, dtype=np.float64)
        np.add.at(grad, (self._atom_sites, columns), adjoint[self._atom_nodes])
        return grad

    def relaxed_values_and_pgrad(
        self,
        P: np.ndarray,
        seed: np.ndarray,
        class_columns: Mapping[object, int] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Relaxed root values and ``Σ_r seed[r]·∂value_r/∂P`` in one sweep."""
        root_values, cache = self.relaxed_forward(P, class_columns)
        return root_values, self.relaxed_backward(cache, seed)

    def _backward(self, values: np.ndarray, seed: np.ndarray) -> np.ndarray:
        adjoint = np.zeros(values.shape[0], dtype=np.float64)
        np.add.at(adjoint, self.roots, np.asarray(seed, dtype=np.float64))
        for op, nodes, child_flat, offsets, coeffs in reversed(self._steps):
            parent_adj = adjoint[nodes]
            counts = np.diff(offsets)
            parent_rep = np.repeat(parent_adj, counts)
            child_vals = values[child_flat]
            if op == OP_NOT:
                np.add.at(adjoint, child_flat, -parent_rep)
            elif op in (OP_AND, OP_MUL):
                np.add.at(
                    adjoint,
                    child_flat,
                    parent_rep * _exclusive_products(child_vals, offsets),
                )
            elif op == OP_OR:
                np.add.at(
                    adjoint,
                    child_flat,
                    parent_rep * _exclusive_products(1.0 - child_vals, offsets),
                )
            elif op == OP_ADD:
                np.add.at(adjoint, child_flat, parent_rep * coeffs)
            else:  # OP_DIV
                numerator = child_vals[0::2]
                denominator = child_vals[1::2]
                np.add.at(adjoint, child_flat[0::2], parent_adj / denominator)
                np.add.at(
                    adjoint,
                    child_flat[1::2],
                    -parent_adj * numerator / denominator**2,
                )
        return adjoint

    def _resolve_columns(self, class_columns: Mapping[object, int] | None) -> np.ndarray:
        if class_columns is None:
            # Default: label ids double as probability columns.
            return self._atom_labels
        return self.atom_columns(class_columns)


def _flat_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(start, end)`` for each (start, end) pair."""
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    nonempty = counts > 0
    starts = starts[nonempty]
    ends = ends[nonempty]
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    offsets = np.cumsum(counts[nonempty])[:-1]
    out[offsets] = starts[1:] - ends[:-1] + 1
    return np.cumsum(out)


def _exclusive_products(factors: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per element, the product of the *other* factors in its segment.

    Zero factors are handled exactly: with one zero in a segment, only the
    zero element sees the product of the non-zeros; with two or more zeros
    every exclusive product is zero.
    """
    counts = np.diff(offsets)
    seg_id = np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)
    is_zero = factors == 0.0
    nonzero = np.where(is_zero, 1.0, factors)
    prod_nonzero = np.multiply.reduceat(nonzero, offsets[:-1])
    prod_nonzero[counts == 0] = 1.0  # reduceat artifacts on empty segments
    zero_count = np.bincount(seg_id[is_zero], minlength=counts.shape[0])
    with np.errstate(divide="ignore", invalid="ignore"):
        exclusive = prod_nonzero[seg_id] / factors
    one_zero = zero_count[seg_id] == 1
    exclusive = np.where(one_zero, 0.0, exclusive)
    exclusive = np.where(one_zero & is_zero, prod_nonzero[seg_id], exclusive)
    exclusive = np.where(zero_count[seg_id] >= 2, 0.0, exclusive)
    return exclusive
