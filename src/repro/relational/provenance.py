"""Provenance polynomials over model-prediction atoms.

The debug-mode executor (:mod:`repro.relational.executor`) runs a Query 2.0
query *symbolically* with respect to the embedded model's predictions: every
deterministic predicate is evaluated concretely against the queried data,
while every predicate that depends on ``M.predict(...)`` is recorded as a
boolean expression over *prediction atoms*.

A prediction atom :class:`PredIs` states "the model predicts class ``label``
for inference site ``site_id``".  Inference sites are deduplicated per
(model, base relation, base row), so a self-join or a model reused in two
expressions shares atoms, exactly as required by the paper (Section 3.1,
"the query can use the same model in multiple expressions").

Two symbolic languages are provided:

- :class:`BoolExpr` — existence conditions of output tuples (the classic
  boolean provenance of probabilistic databases [Dalvi & Suciu 2004;
  Green et al. 2007]).
- :class:`NumExpr` — aggregate cell polynomials (COUNT/SUM/AVG), following
  the aggregate provenance of [Amsterdamer et al. 2011].

Both support:

- concrete evaluation under an assignment of classes to inference sites
  (used to check complaints and to replay the query after retraining), and
- structural traversal (used by the ILP encoder and the Holistic relaxation).

Constructor helpers (:func:`and_`, :func:`or_`, :func:`not_`) fold constants
eagerly so deterministic sub-predicates disappear from the polynomial and
the remaining expression mentions only genuine prediction atoms.

Two evaluation paths
--------------------

The object trees in this module are the *interpreted* path: one Python
object per operator, evaluated by recursion.  They remain the readable,
golden-reference semantics — randomized equivalence tests pin the compiled
path to them.  The *compiled* path (:mod:`repro.relational.compile`) lowers
the same polynomials into flat index arrays (opcode / CSR-children /
coefficient / atom-site columns) and evaluates **all** of a query's
conditions and aggregate cells in one batched numpy sweep; the debug-mode
executor emits provenance directly in that form and materializes trees
from it lazily when a consumer asks for one.

Worked example: the count query ``SELECT COUNT(*) FROM R WHERE
predict(x) = 'match'`` over rows {0, 1, 2} yields, per row, the existence
condition ``PredIs(i, 'match')`` and the aggregate cell

    ``LinearSum([(1.0, PredIs(0, 'match')), (1.0, PredIs(1, 'match')),
    (1.0, PredIs(2, 'match'))])``

Interpreted, ``cell.evaluate({0: 'match', 1: 'nonmatch', 2: 'match'})``
recurses over the three terms and returns ``2.0``; compiled, the same cell
is an ``OP_ADD`` node whose children array holds three atom node ids, and
evaluation is a single ``np.add.reduceat`` over the gathered atom values —
for every output cell of the query at once.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from ..errors import ProvenanceError

ClassLabel = Union[int, str]
Assignment = Mapping[int, ClassLabel]


# ---------------------------------------------------------------------------
# Inference sites
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InferenceSite:
    """One model inference over one base-relation row.

    Attributes:
        site_id: Dense integer id, unique within a query execution.
        model_name: Name of the model in the model registry.
        relation_name: Name of the *base* relation (not the alias), so that
            self-joins share sites.
        row_id: Row id within the base relation.
    """

    site_id: int
    model_name: str
    relation_name: str
    row_id: int

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.model_name, self.relation_name, self.row_id)


class SiteRegistry:
    """Deduplicating registry of inference sites for one query execution.

    Sites are stored columnar: contiguous *runs* of site ids share one
    (model, relation) pair, with a dense ``row_id -> site_id`` map per pair
    for O(1) vectorized interning (:meth:`intern_batch`).  The
    :class:`InferenceSite` objects of the original API are materialized
    lazily — hot paths only ever touch the integer arrays.
    """

    def __init__(self) -> None:
        # One (start_site_id, model, relation) record per contiguous run.
        self._runs: list[tuple[int, str, str]] = []
        self._run_rows: list[np.ndarray] = []
        self._n = 0
        self._dense: dict[tuple[str, str], np.ndarray] = {}
        self._cache: dict[int, InferenceSite] = {}

    def _dense_for(
        self, model_name: str, relation_name: str, min_size: int
    ) -> np.ndarray:
        from ..utils import grow_array  # local import: utils is a leaf module

        key = (model_name, relation_name)
        table = self._dense.get(key)
        if table is None:
            table = np.full(0, -1, dtype=np.int64)
        table = grow_array(table, min_size, fill=-1)
        self._dense[key] = table
        return table

    def intern_batch(
        self, model_name: str, relation_name: str, row_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Intern many rows at once.

        Returns ``(site_ids, new_rows, first_new_site_id)`` where
        ``new_rows`` are the (sorted, unique) base rows that had no site
        yet; their sites are ``first_new_site_id + arange(len(new_rows))``.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if row_ids.size == 0:
            return row_ids.copy(), row_ids.copy(), self._n
        table = self._dense_for(model_name, relation_name, int(row_ids.max()) + 1)
        sites = table[row_ids]
        first_new = self._n
        missing = sites < 0
        if np.any(missing):
            new_rows = np.unique(row_ids[missing])
            table[new_rows] = np.arange(
                self._n, self._n + new_rows.size, dtype=np.int64
            )
            self._runs.append((self._n, model_name, relation_name))
            self._run_rows.append(new_rows)
            self._n += new_rows.size
            sites = table[row_ids]
        else:
            new_rows = np.empty(0, dtype=np.int64)
        return sites, new_rows, first_new

    def intern(self, model_name: str, relation_name: str, row_id: int) -> InferenceSite:
        """Return the existing site for this key, or create a new one."""
        sites, _, _ = self.intern_batch(
            model_name, relation_name, np.asarray([int(row_id)], dtype=np.int64)
        )
        return self[int(sites[0])]

    def __len__(self) -> int:
        return self._n

    def __iter__(self):
        return (self[site_id] for site_id in range(self._n))

    def __getitem__(self, site_id: int) -> InferenceSite:
        site_id = int(site_id)
        site = self._cache.get(site_id)
        if site is None:
            if not 0 <= site_id < self._n:
                raise IndexError(f"site id {site_id} out of range [0, {self._n})")
            run_index = _run_of(self._runs, site_id)
            start, model_name, relation_name = self._runs[run_index]
            row_id = int(self._run_rows[run_index][site_id - start])
            site = InferenceSite(site_id, model_name, relation_name, row_id)
            self._cache[site_id] = site
        return site

    @property
    def sites(self) -> list[InferenceSite]:
        return [self[site_id] for site_id in range(self._n)]

    def runs(self) -> Iterable[tuple[int, str, str, np.ndarray]]:
        """Yield ``(start_site_id, model, relation, row_ids)`` per run."""
        for (start, model_name, relation_name), rows in zip(
            self._runs, self._run_rows
        ):
            yield start, model_name, relation_name, rows

    def model_names(self) -> set[str]:
        """Distinct model names across all sites (no object materialization)."""
        return {model_name for _, model_name, _ in self._runs}


def _run_of(runs: Sequence[tuple[int, str, str]], site_id: int) -> int:
    """Index of the run containing ``site_id`` (runs start sorted)."""
    low, high = 0, len(runs) - 1
    while low < high:
        mid = (low + high + 1) // 2
        if runs[mid][0] <= site_id:
            low = mid
        else:
            high = mid - 1
    return low


# ---------------------------------------------------------------------------
# Boolean provenance
# ---------------------------------------------------------------------------


class BoolExpr:
    """Base class of boolean provenance expressions."""

    __slots__ = ()

    def evaluate(self, assignment: Assignment) -> bool:
        """Evaluate under ``assignment`` mapping ``site_id -> predicted class``."""
        raise NotImplementedError

    def atoms(self) -> "set[PredIs]":
        """The set of :class:`PredIs` atoms mentioned by this expression."""
        collected: set[PredIs] = set()
        _collect_atoms(self, collected)
        return collected

    def is_true(self) -> bool:
        return isinstance(self, TrueExpr)

    def is_false(self) -> bool:
        return isinstance(self, FalseExpr)


class TrueExpr(BoolExpr):
    """The constant TRUE (deterministically satisfied predicate)."""

    __slots__ = ()

    def evaluate(self, assignment: Assignment) -> bool:
        return True

    def __repr__(self) -> str:
        return "⊤"


class FalseExpr(BoolExpr):
    """The constant FALSE (deterministically violated predicate)."""

    __slots__ = ()

    def evaluate(self, assignment: Assignment) -> bool:
        return False

    def __repr__(self) -> str:
        return "⊥"


TRUE = TrueExpr()
FALSE = FalseExpr()


class PredIs(BoolExpr):
    """Atom: the model at ``site_id`` predicts exactly ``label``."""

    __slots__ = ("site_id", "label")

    def __init__(self, site_id: int, label: ClassLabel) -> None:
        self.site_id = site_id
        self.label = label

    def evaluate(self, assignment: Assignment) -> bool:
        try:
            return assignment[self.site_id] == self.label
        except KeyError as exc:
            raise ProvenanceError(
                f"assignment is missing inference site {self.site_id}"
            ) from exc

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PredIs)
            and self.site_id == other.site_id
            and self.label == other.label
        )

    def __hash__(self) -> int:
        return hash((PredIs, self.site_id, self.label))

    def __repr__(self) -> str:
        return f"[site {self.site_id} = {self.label!r}]"


class AndExpr(BoolExpr):
    """Conjunction of two or more children."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[BoolExpr]) -> None:
        self.children = tuple(children)

    def evaluate(self, assignment: Assignment) -> bool:
        return all(child.evaluate(assignment) for child in self.children)

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(map(repr, self.children)) + ")"


class OrExpr(BoolExpr):
    """Disjunction of two or more children."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[BoolExpr]) -> None:
        self.children = tuple(children)

    def evaluate(self, assignment: Assignment) -> bool:
        return any(child.evaluate(assignment) for child in self.children)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(map(repr, self.children)) + ")"


class NotExpr(BoolExpr):
    """Negation of one child."""

    __slots__ = ("child",)

    def __init__(self, child: BoolExpr) -> None:
        self.child = child

    def evaluate(self, assignment: Assignment) -> bool:
        return not self.child.evaluate(assignment)

    def __repr__(self) -> str:
        return f"¬{self.child!r}"


def and_(*children: BoolExpr) -> BoolExpr:
    """Conjunction with constant folding and flattening."""
    flat: list[BoolExpr] = []
    for child in children:
        if child.is_false():
            return FALSE
        if child.is_true():
            continue
        if isinstance(child, AndExpr):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return AndExpr(flat)


def or_(*children: BoolExpr) -> BoolExpr:
    """Disjunction with constant folding and flattening."""
    flat: list[BoolExpr] = []
    for child in children:
        if child.is_true():
            return TRUE
        if child.is_false():
            continue
        if isinstance(child, OrExpr):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return OrExpr(flat)


def not_(child: BoolExpr) -> BoolExpr:
    """Negation with constant folding and double-negation elimination."""
    if child.is_true():
        return FALSE
    if child.is_false():
        return TRUE
    if isinstance(child, NotExpr):
        return child.child
    return NotExpr(child)


def const(value: bool) -> BoolExpr:
    """TRUE/FALSE constant for a concrete boolean."""
    return TRUE if value else FALSE


def _collect_atoms(expr: "BoolExpr | NumExpr", out: set[PredIs]) -> None:
    stack: list[object] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, PredIs):
            out.add(node)
        elif isinstance(node, (AndExpr, OrExpr)):
            stack.extend(node.children)
        elif isinstance(node, NotExpr):
            stack.append(node.child)
        elif isinstance(node, BoolAsNum):
            stack.append(node.expr)
        elif isinstance(node, (AddExpr, MulExpr)):
            stack.extend(node.children)
        elif isinstance(node, DivExpr):
            stack.append(node.numerator)
            stack.append(node.denominator)
        elif isinstance(node, LinearSum):
            stack.extend(term for _, term in node.terms)
        # constants and ConstNum carry no atoms


# ---------------------------------------------------------------------------
# Numeric provenance (aggregate polynomials)
# ---------------------------------------------------------------------------


class NumExpr:
    """Base class of numeric provenance expressions (aggregate cells)."""

    __slots__ = ()

    def evaluate(self, assignment: Assignment) -> float:
        raise NotImplementedError

    def atoms(self) -> set[PredIs]:
        collected: set[PredIs] = set()
        _collect_atoms(self, collected)
        return collected


class ConstNum(NumExpr):
    """A numeric constant."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def evaluate(self, assignment: Assignment) -> float:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


class BoolAsNum(NumExpr):
    """Indicator of a boolean provenance expression (1.0 if true else 0.0)."""

    __slots__ = ("expr",)

    def __init__(self, expr: BoolExpr) -> None:
        self.expr = expr

    def evaluate(self, assignment: Assignment) -> float:
        return 1.0 if self.expr.evaluate(assignment) else 0.0

    def __repr__(self) -> str:
        return f"1[{self.expr!r}]"


class AddExpr(NumExpr):
    """Sum of children."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[NumExpr]) -> None:
        self.children = tuple(children)

    def evaluate(self, assignment: Assignment) -> float:
        return float(sum(child.evaluate(assignment) for child in self.children))

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.children)) + ")"


class MulExpr(NumExpr):
    """Product of children."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[NumExpr]) -> None:
        self.children = tuple(children)

    def evaluate(self, assignment: Assignment) -> float:
        result = 1.0
        for child in self.children:
            result *= child.evaluate(assignment)
        return result

    def __repr__(self) -> str:
        return "(" + " · ".join(map(repr, self.children)) + ")"


class DivExpr(NumExpr):
    """Ratio of two numeric expressions (AVG = SUM / COUNT)."""

    __slots__ = ("numerator", "denominator")

    def __init__(self, numerator: NumExpr, denominator: NumExpr) -> None:
        self.numerator = numerator
        self.denominator = denominator

    def evaluate(self, assignment: Assignment) -> float:
        den = self.denominator.evaluate(assignment)
        if den == 0.0:
            return float("nan")
        return self.numerator.evaluate(assignment) / den

    def __repr__(self) -> str:
        return f"({self.numerator!r} / {self.denominator!r})"


class LinearSum(NumExpr):
    """Weighted sum ``Σ coeff_i · 1[cond_i]`` — the workhorse for COUNT/SUM.

    COUNT(*) over tuples with existence conditions ``c_i`` is
    ``LinearSum([(1, c_1), ..., (1, c_n)])``; SUM of a deterministic value
    ``v_i`` weights each condition by ``v_i``.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Sequence[tuple[float, BoolExpr]]) -> None:
        self.terms = tuple((float(coeff), cond) for coeff, cond in terms)

    def evaluate(self, assignment: Assignment) -> float:
        return float(
            sum(coeff for coeff, cond in self.terms if cond.evaluate(assignment))
        )

    def constant_part(self) -> float:
        """Sum of the coefficients of deterministically-true terms."""
        return float(sum(coeff for coeff, cond in self.terms if cond.is_true()))

    def __repr__(self) -> str:
        inner = " + ".join(f"{coeff}·1[{cond!r}]" for coeff, cond in self.terms)
        return f"Σ({inner})"


def add_(*children: NumExpr) -> NumExpr:
    """Sum with constant folding."""
    const_total = 0.0
    rest: list[NumExpr] = []
    for child in children:
        if isinstance(child, ConstNum):
            const_total += child.value
        elif isinstance(child, AddExpr):
            rest.extend(child.children)
        else:
            rest.append(child)
    if const_total != 0.0 or not rest:
        rest.append(ConstNum(const_total))
    if len(rest) == 1:
        return rest[0]
    return AddExpr(rest)


def mul_(*children: NumExpr) -> NumExpr:
    """Product with constant folding."""
    const_total = 1.0
    rest: list[NumExpr] = []
    for child in children:
        if isinstance(child, ConstNum):
            const_total *= child.value
        elif isinstance(child, MulExpr):
            rest.extend(child.children)
        else:
            rest.append(child)
    if const_total == 0.0:
        return ConstNum(0.0)
    if const_total != 1.0 or not rest:
        rest.insert(0, ConstNum(const_total))
    if len(rest) == 1:
        return rest[0]
    return MulExpr(rest)


def pred_value(site_id: int, class_values: Iterable[tuple[ClassLabel, float]]) -> NumExpr:
    """Numeric value of a prediction: ``Σ_c value(c) · 1[pred = c]``.

    Used when ``M.predict(...)`` appears inside an aggregate, e.g.
    ``AVG(predict(*))`` with classes {0, 1} or the appendix's OCR example
    ``SUM(POWER(10, position) * predict(image))``.
    """
    terms = [(float(value), PredIs(site_id, label)) for label, value in class_values]
    return LinearSum(terms)


# ---------------------------------------------------------------------------
# Vectorized evaluation helpers
# ---------------------------------------------------------------------------


def evaluate_bool_batch(
    exprs: Sequence[BoolExpr], assignment: Assignment
) -> np.ndarray:
    """Evaluate many boolean expressions under one assignment."""
    return np.array([expr.evaluate(assignment) for expr in exprs], dtype=bool)


def assignment_from_predictions(
    sites: Sequence[InferenceSite], predictions: Mapping[tuple[str, str, int], ClassLabel]
) -> dict[int, ClassLabel]:
    """Build a ``site_id -> class`` assignment from keyed predictions."""
    out: dict[int, ClassLabel] = {}
    for site in sites:
        try:
            out[site.site_id] = predictions[site.key]
        except KeyError as exc:
            raise ProvenanceError(f"missing prediction for site {site.key}") from exc
    return out
