"""Relations and databases: the minimal storage layer under the query engine.

A :class:`Relation` is a named collection of equal-length columns.  Scalar
columns are 1-d numpy arrays; *feature* columns (model inputs: feature
vectors, images) are numpy arrays whose first axis indexes rows, e.g. an
MNIST column of shape ``(n, 28, 28)``.  Every relation carries stable
``row_ids`` so that lineage survives filters, joins, and projections.

A :class:`Database` is a dictionary of relations plus a registry of named
models — the ``D`` and ``M`` of the paper's ``Q(D; M(T))``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from ..errors import SchemaError


class Relation:
    """An immutable-by-convention table with named columns and row ids."""

    def __init__(
        self,
        name: str,
        columns: Mapping[str, np.ndarray | Sequence],
        row_ids: np.ndarray | Sequence[int] | None = None,
    ) -> None:
        if not columns:
            raise SchemaError(f"relation {name!r} must have at least one column")
        self.name = name
        self.columns: dict[str, np.ndarray] = {}
        n_rows: int | None = None
        for col_name, values in columns.items():
            array = np.asarray(values)
            if array.ndim == 0:
                raise SchemaError(
                    f"column {col_name!r} of relation {name!r} is a scalar"
                )
            if n_rows is None:
                n_rows = array.shape[0]
            elif array.shape[0] != n_rows:
                raise SchemaError(
                    f"column {col_name!r} of {name!r} has {array.shape[0]} rows, "
                    f"expected {n_rows}"
                )
            self.columns[col_name] = array
        assert n_rows is not None
        if row_ids is None:
            self.row_ids = np.arange(n_rows, dtype=np.int64)
        else:
            self.row_ids = np.asarray(row_ids, dtype=np.int64)
            if self.row_ids.shape != (n_rows,):
                raise SchemaError(
                    f"row_ids of {name!r} has shape {self.row_ids.shape}, "
                    f"expected ({n_rows},)"
                )

    # -- basic protocol -----------------------------------------------------

    def __len__(self) -> int:
        return int(self.row_ids.shape[0])

    def __repr__(self) -> str:
        cols = ", ".join(self.column_names)
        return f"Relation({self.name!r}, {len(self)} rows, columns=[{cols}])"

    @property
    def column_names(self) -> list[str]:
        return list(self.columns.keys())

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no column {name!r}; "
                f"available: {self.column_names}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self.columns

    # -- derivations ---------------------------------------------------------

    def take(self, indices: np.ndarray | Sequence[int], name: str | None = None) -> "Relation":
        """Row subset by positional indices, preserving row ids."""
        indices = np.asarray(indices, dtype=np.int64)
        new_columns = {col: values[indices] for col, values in self.columns.items()}
        return Relation(name or self.name, new_columns, row_ids=self.row_ids[indices])

    def filter_mask(self, mask: np.ndarray, name: str | None = None) -> "Relation":
        """Row subset by boolean mask, preserving row ids."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise SchemaError(
                f"mask shape {mask.shape} does not match relation of {len(self)} rows"
            )
        return self.take(np.flatnonzero(mask), name=name)

    def project(self, column_names: Sequence[str], name: str | None = None) -> "Relation":
        """Column subset, preserving row ids."""
        new_columns = {col: self.column(col) for col in column_names}
        return Relation(name or self.name, new_columns, row_ids=self.row_ids.copy())

    def rename(self, name: str) -> "Relation":
        return Relation(name, self.columns, row_ids=self.row_ids.copy())

    def with_column(self, column_name: str, values: np.ndarray | Sequence) -> "Relation":
        """A copy with one column added or replaced."""
        new_columns = dict(self.columns)
        new_columns[column_name] = np.asarray(values)
        return Relation(self.name, new_columns, row_ids=self.row_ids.copy())

    def row(self, index: int) -> dict[str, Any]:
        """One row as a plain dict (scalar cells unwrapped)."""
        out: dict[str, Any] = {}
        for col, values in self.columns.items():
            cell = values[index]
            out[col] = cell.item() if np.ndim(cell) == 0 else cell
        return out

    def iter_rows(self) -> Iterable[dict[str, Any]]:
        for index in range(len(self)):
            yield self.row(index)

    def to_dicts(self) -> list[dict[str, Any]]:
        return list(self.iter_rows())

    @classmethod
    def from_dicts(cls, name: str, rows: Sequence[Mapping[str, Any]]) -> "Relation":
        """Build a relation from a list of homogeneous row dicts."""
        if not rows:
            raise SchemaError("from_dicts needs at least one row")
        keys = list(rows[0].keys())
        for index, row in enumerate(rows):
            if list(row.keys()) != keys:
                raise SchemaError(f"row {index} keys differ from row 0")
        columns = {key: np.asarray([row[key] for row in rows]) for key in keys}
        return cls(name, columns)


class Database:
    """Named relations plus named models — the queried world ``D``."""

    def __init__(
        self,
        relations: Mapping[str, Relation] | Iterable[Relation] = (),
        models: Mapping[str, Any] | None = None,
    ) -> None:
        self._relations: dict[str, Relation] = {}
        if isinstance(relations, Mapping):
            for name, rel in relations.items():
                self.add_relation(rel if rel.name == name else rel.rename(name))
        else:
            for rel in relations:
                self.add_relation(rel)
        self._models: dict[str, Any] = dict(models or {})

    def add_relation(self, relation: Relation) -> None:
        self._relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"database has no relation {name!r}; "
                f"available: {sorted(self._relations)}"
            ) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    @property
    def relation_names(self) -> list[str]:
        return sorted(self._relations)

    def add_model(self, name: str, model: Any) -> None:
        self._models[name] = model

    def model(self, name: str) -> Any:
        try:
            return self._models[name]
        except KeyError:
            raise SchemaError(
                f"database has no model {name!r}; available: {sorted(self._models)}"
            ) from None

    def has_model(self, name: str) -> bool:
        return name in self._models

    @property
    def model_names(self) -> list[str]:
        return sorted(self._models)
