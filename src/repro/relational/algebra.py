"""Logical plan nodes for the supported SPJA fragment.

Plans are small immutable trees.  ``Scan``/``Filter``/``Join``/``Project``
cover SP and SPJ queries; ``Aggregate`` covers the A in SPJA, including
model predictions as GROUP BY keys (the paper's Q5) and inside aggregate
arguments (Q1, Q6, Q7).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..errors import QueryError
from .expressions import Expr

AGG_FUNCS = ("count", "sum", "avg")


@dataclass(frozen=True)
class Plan:
    """Base class for plan nodes."""


@dataclass(frozen=True)
class Scan(Plan):
    """Read a base relation under an alias."""

    relation_name: str
    alias: str | None = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.relation_name


@dataclass(frozen=True)
class Filter(Plan):
    """Keep tuples satisfying ``predicate``."""

    child: Plan
    predicate: Expr


@dataclass(frozen=True)
class Join(Plan):
    """Inner join (``condition=None`` means cross product)."""

    left: Plan
    right: Plan
    condition: Expr | None = None


@dataclass(frozen=True)
class Project(Plan):
    """Evaluate expressions into named output columns."""

    child: Plan
    items: tuple[tuple[Expr, str], ...]

    def __init__(self, child: Plan, items: Sequence[tuple[Expr, str]]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "items", tuple(items))
        if not self.items:
            raise QueryError("projection needs at least one item")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output: ``func(arg) AS name``.

    ``arg`` is ``None`` for COUNT(*).
    """

    func: str
    arg: Expr | None
    name: str

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise QueryError(
                f"unsupported aggregate {self.func!r}; supported: {AGG_FUNCS}"
            )
        if self.func != "count" and self.arg is None:
            raise QueryError(f"{self.func.upper()} requires an argument")


@dataclass(frozen=True)
class Aggregate(Plan):
    """GROUP BY + aggregation.  Empty ``group_by`` is a global aggregate."""

    child: Plan
    group_by: tuple[tuple[Expr, str], ...] = field(default=())
    aggregates: tuple[AggSpec, ...] = field(default=())

    def __init__(
        self,
        child: Plan,
        group_by: Sequence[tuple[Expr, str]] = (),
        aggregates: Sequence[AggSpec] = (),
    ) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "group_by", tuple(group_by))
        object.__setattr__(self, "aggregates", tuple(aggregates))
        if not self.aggregates:
            raise QueryError("aggregate node needs at least one aggregate")


def plan_fingerprint(plan: Plan) -> str:
    """Canonical structural fingerprint of a plan.

    Two plans share a fingerprint exactly when they are structurally
    identical (same node tree, same expressions, same aliases), even if
    they are distinct objects — e.g. the same SQL text parsed twice.  The
    serving layer keys its per-iteration compiled-provenance cache on this,
    so complaint cases over the same query share one execution and one
    frozen :class:`~repro.relational.compile.NodePool` per iteration.

    Expressions contribute through their ``repr``, which every
    :class:`~repro.relational.expressions.Expr` subclass defines to spell
    out all of its distinguishing fields.
    """
    if isinstance(plan, Scan):
        return f"Scan({plan.relation_name!r},{plan.alias!r})"
    if isinstance(plan, Filter):
        return f"Filter({plan_fingerprint(plan.child)},{plan.predicate!r})"
    if isinstance(plan, Join):
        return (
            f"Join({plan_fingerprint(plan.left)},"
            f"{plan_fingerprint(plan.right)},{plan.condition!r})"
        )
    if isinstance(plan, Project):
        items = ";".join(f"{expr!r} AS {name!r}" for expr, name in plan.items)
        return f"Project({plan_fingerprint(plan.child)},[{items}])"
    if isinstance(plan, Aggregate):
        keys = ";".join(f"{expr!r} AS {name!r}" for expr, name in plan.group_by)
        aggs = ";".join(
            f"{spec.func}({spec.arg!r}) AS {spec.name!r}" for spec in plan.aggregates
        )
        return f"Aggregate({plan_fingerprint(plan.child)},[{keys}],[{aggs}])"
    raise QueryError(f"unknown plan node {type(plan).__name__}")


def plan_relations(plan: Plan) -> list[Scan]:
    """All Scan leaves of a plan, in left-to-right order."""
    if isinstance(plan, Scan):
        return [plan]
    if isinstance(plan, Filter):
        return plan_relations(plan.child)
    if isinstance(plan, Join):
        return plan_relations(plan.left) + plan_relations(plan.right)
    if isinstance(plan, Project):
        return plan_relations(plan.child)
    if isinstance(plan, Aggregate):
        return plan_relations(plan.child)
    raise QueryError(f"unknown plan node {type(plan).__name__}")


def is_aggregate_plan(plan: Plan) -> bool:
    return isinstance(plan, Aggregate)
