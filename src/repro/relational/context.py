"""Execution context shared by expressions and plan operators.

Intermediate results flow through the executor as :class:`TupleBatch`
objects: a set of qualified columns (``alias.column``) plus, per aliased
base relation, the base row ids each output tuple derives from.  In debug
mode each tuple additionally carries its boolean existence condition —
either a tree (:class:`~repro.relational.provenance.BoolExpr`, the golden
reference path) or a node id into the runtime's shared
:class:`~repro.relational.compile.NodePool` (the compiled path, one int64
per tuple).

:class:`QueryRuntime` holds everything that outlives one batch: the model
registry, the inference-site registry, and the per-site prediction cache.
All caches are columnar — predictions, site features, and site labels live
in dense arrays keyed by base row / site id so that batch operations never
loop over tuples.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..errors import QueryError, SchemaError
from ..utils import grow_array
from .compile import NodePool, TRUE_NODE
from .provenance import TRUE, BoolExpr, SiteRegistry
from .schema import Database


class QueryRuntime:
    """Per-execution state: models, inference sites, prediction cache."""

    def __init__(
        self, database: Database, debug: bool = False, provenance: str = "compiled"
    ) -> None:
        if provenance not in ("compiled", "tree"):
            raise QueryError(
                f"provenance must be 'compiled' or 'tree', got {provenance!r}"
            )
        self.database = database
        self.debug = debug
        self.provenance = provenance
        self.sites = SiteRegistry()
        self.pool: NodePool | None = (
            NodePool() if (debug and provenance == "compiled") else None
        )
        # (model_name, relation_name) -> dense row_id-indexed caches.
        self._pred_known: dict[tuple[str, str], np.ndarray] = {}
        self._pred_labels: dict[tuple[str, str], np.ndarray] = {}
        # site-id-indexed stores (grown on demand).
        self._feat_rows = np.full(0, -1, dtype=np.int64)  # site -> feature row
        self._feat_blocks: list[np.ndarray] = []
        self._feat_total = 0
        self._feat_cat: np.ndarray | None = None
        self._labels = np.empty(0, dtype=object)  # site -> predicted label
        self._labels_known = np.zeros(0, dtype=bool)

    def model(self, model_name: str):
        return self.database.model(model_name)

    def model_classes(self, model_name: str) -> list:
        model = self.model(model_name)
        try:
            return list(model.classes)
        except AttributeError as exc:
            raise QueryError(
                f"model {model_name!r} does not expose a .classes attribute"
            ) from exc

    # -- prediction cache ---------------------------------------------------------

    def _pred_store(
        self, model_name: str, relation_name: str, min_size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        key = (model_name, relation_name)
        known = self._pred_known.get(key)
        if known is None:
            known = np.zeros(0, dtype=bool)
            self._pred_labels[key] = np.empty(0, dtype=object)
        self._pred_known[key] = known = grow_array(known, min_size, fill=False)
        self._pred_labels[key] = grow_array(
            self._pred_labels[key], min_size, fill=None
        )
        return known, self._pred_labels[key]

    def predict(
        self,
        model_name: str,
        relation_name: str,
        row_ids: np.ndarray,
        features: np.ndarray,
    ) -> np.ndarray:
        """Predict labels for base rows, caching per (model, relation, row).

        The cache guarantees that the same base row always receives the same
        prediction within one execution, and that debug-mode inference sites
        are consistent with the concrete predictions.  Lookups and inserts
        are dense array operations; the model is invoked once per batch on
        the not-yet-cached rows only.
        """
        model = self.model(model_name)
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if row_ids.size == 0:
            return np.asarray([])
        known, labels = self._pred_store(
            model_name, relation_name, int(row_ids.max()) + 1
        )
        if self.provenance == "tree":
            return self._predict_reference(model, known, labels, row_ids, features)
        missing = ~known[row_ids]
        if np.any(missing):
            positions = np.flatnonzero(missing)
            unique_rows, first = np.unique(row_ids[positions], return_index=True)
            take = positions[first]
            predicted = model.predict(features[take])
            labels[unique_rows] = np.asarray(predicted, dtype=object)
            known[unique_rows] = True
        # Re-infer the natural dtype (str/int) the way per-row caching did.
        return np.asarray(labels[row_ids].tolist())

    def _predict_reference(
        self,
        model,
        known: np.ndarray,
        labels: np.ndarray,
        row_ids: np.ndarray,
        features: np.ndarray,
    ) -> np.ndarray:
        """The seed's row-at-a-time cache probe (golden-reference path)."""
        missing_positions = [
            position
            for position, row_id in enumerate(row_ids)
            if not known[int(row_id)]
        ]
        if missing_positions:
            missing_features = features[missing_positions]
            predicted = model.predict(missing_features)
            for position, label in zip(missing_positions, predicted):
                cell = (
                    label.item()
                    if np.ndim(label) == 0 and hasattr(label, "item")
                    else label
                )
                labels[int(row_ids[position])] = cell
                known[int(row_ids[position])] = True
        return np.asarray([labels[int(row_id)] for row_id in row_ids])

    # -- inference sites ----------------------------------------------------------

    def _grow_site_stores(self, n_sites: int) -> None:
        self._feat_rows = grow_array(self._feat_rows, n_sites, fill=-1)
        self._labels = grow_array(self._labels, n_sites, fill=None)
        self._labels_known = grow_array(self._labels_known, n_sites, fill=False)

    def intern_sites(
        self,
        model_name: str,
        relation_name: str,
        row_ids: np.ndarray,
        features: np.ndarray | None = None,
    ) -> np.ndarray:
        """Intern inference sites for base rows; returns site ids per row.

        When ``features`` is given, the per-site feature rows are recorded so
        influence analysis can later rebuild the model inputs of every site.
        Cached predictions (populated by :meth:`predict`) are copied onto the
        new sites so the current assignment is always one array gather away.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if self.provenance == "tree":
            return self._intern_sites_reference(
                model_name, relation_name, row_ids, features
            )
        site_ids, new_rows, first_new = self.sites.intern_batch(
            model_name, relation_name, row_ids
        )
        if new_rows.size:
            self._grow_site_stores(len(self.sites))
            new_sites = np.arange(first_new, first_new + new_rows.size)
            if features is not None:
                unique_rows, first = np.unique(row_ids, return_index=True)
                take = first[np.searchsorted(unique_rows, new_rows)]
                self._feat_blocks.append(np.asarray(features)[take])
                self._feat_cat = None
                self._feat_rows[new_sites] = self._feat_total + np.arange(
                    new_rows.size
                )
                self._feat_total += new_rows.size
            key = (model_name, relation_name)
            known = self._pred_known.get(key)
            if known is not None:
                in_store = new_rows < known.shape[0]
                have = np.zeros(new_rows.shape[0], dtype=bool)
                have[in_store] = known[new_rows[in_store]]
                self._labels[new_sites[have]] = self._pred_labels[key][
                    new_rows[have]
                ]
                self._labels_known[new_sites[have]] = True
        return site_ids

    def _intern_sites_reference(
        self,
        model_name: str,
        relation_name: str,
        row_ids: np.ndarray,
        features: np.ndarray | None,
    ) -> np.ndarray:
        """The seed's site-at-a-time interning loop (golden-reference path)."""
        site_ids = []
        for position, row_id in enumerate(row_ids):
            site = self.sites.intern(model_name, relation_name, int(row_id))
            site_ids.append(site.site_id)
            self._grow_site_stores(len(self.sites))
            if features is not None and self._feat_rows[site.site_id] < 0:
                self._feat_blocks.append(np.asarray(features[position])[None])
                self._feat_cat = None
                self._feat_rows[site.site_id] = self._feat_total
                self._feat_total += 1
            if not self._labels_known[site.site_id]:
                try:
                    self._labels[site.site_id] = self.prediction_for_site(site.key)
                    self._labels_known[site.site_id] = True
                except QueryError:
                    pass
        return np.asarray(site_ids, dtype=np.int64)

    def features_for_sites(self, site_ids) -> np.ndarray:
        """Stacked feature array for the given site ids."""
        site_ids = np.asarray(list(site_ids), dtype=np.int64)
        in_range = (site_ids >= 0) & (site_ids < self._feat_rows.shape[0])
        rows = np.full(site_ids.shape[0], -1, dtype=np.int64)
        rows[in_range] = self._feat_rows[site_ids[in_range]]
        if np.any(rows < 0):
            missing = site_ids[rows < 0][0]
            raise QueryError(f"no recorded features for inference site {int(missing)}")
        if self._feat_cat is None:
            self._feat_cat = (
                np.concatenate(self._feat_blocks, axis=0)
                if self._feat_blocks
                else np.zeros((0, 0))
            )
        return self._feat_cat[rows]

    def prediction_for_site(self, site_key: tuple[str, str, int]):
        model_name, relation_name, row_id = site_key
        known = self._pred_known.get((model_name, relation_name))
        if known is not None and 0 <= row_id < known.shape[0] and known[row_id]:
            return self._pred_labels[(model_name, relation_name)][row_id]
        raise QueryError(f"no cached prediction for site {site_key}")

    def site_labels(self) -> np.ndarray:
        """Object array of the current predicted class per site id."""
        n = len(self.sites)
        if not np.all(self._labels_known[:n]):
            missing = int(np.flatnonzero(~self._labels_known[:n])[0])
            raise QueryError(
                f"no cached prediction for site {self.sites[missing].key}"
            )
        return self._labels[:n]

    def site_label_ids(self, pool: NodePool) -> np.ndarray:
        """Dense ``site -> pool label id`` array for compiled evaluation."""
        labels = self.site_labels()
        out = np.empty(labels.shape[0], dtype=np.int64)
        if labels.shape[0] == 0:
            return out
        # Per distinct class one vectorized comparison; labels the pool has
        # never seen cannot match any atom, so any sentinel id works.
        out[:] = -3
        for label_id, label in enumerate(pool.labels):
            out[labels == label] = label_id
        return out

    def current_assignment(self) -> dict[int, object]:
        """``site_id -> predicted class`` under the current model."""
        return dict(enumerate(self.site_labels()))


class TupleBatch:
    """A batch of intermediate tuples with lineage back to base relations.

    Attributes:
        columns: qualified column name (``alias.column``) -> value array.
        alias_relations: alias -> underlying base relation name.
        alias_row_ids: alias -> int64 array of base row ids (one per tuple).
        conditions: per-tuple existence condition trees (tree debug mode),
            or ``None``.  In compiled debug mode this property materializes
            trees from ``cond_nodes`` on first access.
        cond_nodes: per-tuple condition node ids into ``pool`` (compiled
            debug mode), or ``None``.
    """

    def __init__(
        self,
        columns: Mapping[str, np.ndarray],
        alias_relations: Mapping[str, str],
        alias_row_ids: Mapping[str, np.ndarray],
        conditions: list[BoolExpr] | None = None,
        cond_nodes: np.ndarray | None = None,
        pool: NodePool | None = None,
    ) -> None:
        self.columns = dict(columns)
        self.alias_relations = dict(alias_relations)
        self.alias_row_ids = {
            alias: np.asarray(ids, dtype=np.int64)
            for alias, ids in alias_row_ids.items()
        }
        lengths = {array.shape[0] for array in self.columns.values()}
        lengths |= {array.shape[0] for array in self.alias_row_ids.values()}
        if len(lengths) > 1:
            raise SchemaError(f"inconsistent batch column lengths: {lengths}")
        self._n_rows = lengths.pop() if lengths else 0
        if conditions is not None and len(conditions) != self._n_rows:
            raise SchemaError(
                f"{len(conditions)} conditions for {self._n_rows} tuples"
            )
        self._conditions = conditions
        if cond_nodes is not None:
            cond_nodes = np.asarray(cond_nodes, dtype=np.int64)
            if cond_nodes.shape[0] != self._n_rows:
                raise SchemaError(
                    f"{cond_nodes.shape[0]} condition nodes for {self._n_rows} tuples"
                )
            if pool is None:
                raise SchemaError("cond_nodes requires the owning NodePool")
        self.cond_nodes = cond_nodes
        self.pool = pool

    def __len__(self) -> int:
        return self._n_rows

    @property
    def conditions(self) -> list[BoolExpr] | None:
        if self._conditions is None and self.cond_nodes is not None:
            self._conditions = self.pool.to_exprs(self.cond_nodes)
        return self._conditions

    @property
    def column_names(self) -> list[str]:
        return list(self.columns.keys())

    def resolve(self, name: str) -> str:
        """Resolve a possibly-unqualified column name to its qualified form."""
        if name in self.columns:
            return name
        matches = [
            qualified
            for qualified in self.columns
            if qualified.split(".", 1)[-1] == name
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise QueryError(
                f"unknown column {name!r}; available: {sorted(self.columns)}"
            )
        raise QueryError(f"ambiguous column {name!r}: matches {sorted(matches)}")

    def values(self, name: str) -> np.ndarray:
        return self.columns[self.resolve(name)]

    def alias_of_column(self, name: str) -> str:
        qualified = self.resolve(name)
        return qualified.split(".", 1)[0]

    def take(self, indices: np.ndarray) -> "TupleBatch":
        indices = np.asarray(indices, dtype=np.int64)
        columns = {name: values[indices] for name, values in self.columns.items()}
        alias_row_ids = {
            alias: ids[indices] for alias, ids in self.alias_row_ids.items()
        }
        conditions = None
        cond_nodes = None
        if self.cond_nodes is not None:
            cond_nodes = self.cond_nodes[indices]
        elif self._conditions is not None:
            conditions = [self._conditions[int(i)] for i in indices]
        return TupleBatch(
            columns,
            self.alias_relations,
            alias_row_ids,
            conditions,
            cond_nodes=cond_nodes,
            pool=self.pool,
        )

    def with_conditions(self, conditions: list[BoolExpr]) -> "TupleBatch":
        return TupleBatch(
            self.columns, self.alias_relations, self.alias_row_ids, conditions
        )

    def with_cond_nodes(self, cond_nodes: np.ndarray) -> "TupleBatch":
        return TupleBatch(
            self.columns,
            self.alias_relations,
            self.alias_row_ids,
            None,
            cond_nodes=cond_nodes,
            pool=self.pool,
        )

    def condition(self, index: int) -> BoolExpr:
        if self.cond_nodes is not None:
            return self.pool.to_expr(int(self.cond_nodes[index]))
        if self._conditions is None:
            return TRUE
        return self._conditions[index]

    @classmethod
    def from_relation(
        cls,
        relation,
        alias: str,
        debug: bool = False,
        pool: NodePool | None = None,
    ) -> "TupleBatch":
        columns = {
            f"{alias}.{name}": values for name, values in relation.columns.items()
        }
        conditions: list[BoolExpr] | None = None
        cond_nodes: np.ndarray | None = None
        if debug and pool is not None:
            cond_nodes = np.full(len(relation), TRUE_NODE, dtype=np.int64)
        elif debug:
            conditions = [TRUE] * len(relation)
        return cls(
            columns,
            {alias: relation.name},
            {alias: relation.row_ids},
            conditions,
            cond_nodes=cond_nodes,
            pool=pool,
        )

    @classmethod
    def cross_product(cls, left: "TupleBatch", right: "TupleBatch") -> "TupleBatch":
        """All pairs of left/right tuples (the executor filters afterwards)."""
        overlap = set(left.alias_relations) & set(right.alias_relations)
        if overlap:
            raise QueryError(f"duplicate aliases across join sides: {sorted(overlap)}")
        n_left, n_right = len(left), len(right)
        left_index = np.repeat(np.arange(n_left, dtype=np.int64), n_right)
        right_index = np.tile(np.arange(n_right, dtype=np.int64), n_left)
        return cls.paired(left, right, left_index, right_index)

    @classmethod
    def paired(
        cls,
        left: "TupleBatch",
        right: "TupleBatch",
        left_index: np.ndarray,
        right_index: np.ndarray,
    ) -> "TupleBatch":
        """Combine selected (left, right) tuple pairs into one batch."""
        from .provenance import and_  # local import to avoid cycle at module load

        columns: dict[str, np.ndarray] = {}
        for name, values in left.columns.items():
            columns[name] = values[left_index]
        for name, values in right.columns.items():
            columns[name] = values[right_index]
        alias_relations = {**left.alias_relations, **right.alias_relations}
        alias_row_ids: dict[str, np.ndarray] = {}
        for alias, ids in left.alias_row_ids.items():
            alias_row_ids[alias] = ids[left_index]
        for alias, ids in right.alias_row_ids.items():
            alias_row_ids[alias] = ids[right_index]
        conditions = None
        cond_nodes = None
        pool = left.pool or right.pool
        if left.cond_nodes is not None and right.cond_nodes is not None:
            cond_nodes = pool.and2(
                left.cond_nodes[left_index], right.cond_nodes[right_index]
            )
        elif left._conditions is not None and right._conditions is not None:
            conditions = [
                and_(left._conditions[int(li)], right._conditions[int(ri)])
                for li, ri in zip(left_index, right_index)
            ]
        return cls(
            columns,
            alias_relations,
            alias_row_ids,
            conditions,
            cond_nodes=cond_nodes,
            pool=pool,
        )


def empty_like(batch: TupleBatch) -> TupleBatch:
    """An empty batch with the same schema as ``batch``."""
    return batch.take(np.array([], dtype=np.int64))


def stack_columns(column: Sequence[np.ndarray]) -> np.ndarray:
    """Stack per-row feature cells back into a single array."""
    return np.stack(list(column), axis=0)
