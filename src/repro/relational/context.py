"""Execution context shared by expressions and plan operators.

Intermediate results flow through the executor as :class:`TupleBatch`
objects: a set of qualified columns (``alias.column``) plus, per aliased
base relation, the base row ids each output tuple derives from.  In debug
mode each tuple additionally carries its boolean existence condition (a
:class:`~repro.relational.provenance.BoolExpr`).

:class:`QueryRuntime` holds everything that outlives one batch: the model
registry, the inference-site registry, and the per-site prediction cache.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..errors import QueryError, SchemaError
from .provenance import TRUE, BoolExpr, SiteRegistry
from .schema import Database


class QueryRuntime:
    """Per-execution state: models, inference sites, prediction cache."""

    def __init__(self, database: Database, debug: bool = False) -> None:
        self.database = database
        self.debug = debug
        self.sites = SiteRegistry()
        # (model_name, relation_name, row_id) -> predicted label
        self._prediction_cache: dict[tuple[str, str, int], object] = {}
        # site_id -> feature array (recorded when the site is interned)
        self.site_features: dict[int, np.ndarray] = {}

    def model(self, model_name: str):
        return self.database.model(model_name)

    def model_classes(self, model_name: str) -> list:
        model = self.model(model_name)
        try:
            return list(model.classes)
        except AttributeError as exc:
            raise QueryError(
                f"model {model_name!r} does not expose a .classes attribute"
            ) from exc

    def predict(
        self,
        model_name: str,
        relation_name: str,
        row_ids: np.ndarray,
        features: np.ndarray,
    ) -> np.ndarray:
        """Predict labels for base rows, caching per (model, relation, row).

        The cache guarantees that the same base row always receives the same
        prediction within one execution, and that debug-mode inference sites
        are consistent with the concrete predictions.
        """
        model = self.model(model_name)
        row_ids = np.asarray(row_ids, dtype=np.int64)
        missing_positions = [
            position
            for position, row_id in enumerate(row_ids)
            if (model_name, relation_name, int(row_id)) not in self._prediction_cache
        ]
        if missing_positions:
            missing_features = features[missing_positions]
            labels = model.predict(missing_features)
            for position, label in zip(missing_positions, labels):
                key = (model_name, relation_name, int(row_ids[position]))
                cell = label.item() if np.ndim(label) == 0 and hasattr(label, "item") else label
                self._prediction_cache[key] = cell
        return np.asarray(
            [
                self._prediction_cache[(model_name, relation_name, int(row_id))]
                for row_id in row_ids
            ]
        )

    def intern_sites(
        self,
        model_name: str,
        relation_name: str,
        row_ids: np.ndarray,
        features: np.ndarray | None = None,
    ) -> list[int]:
        """Intern inference sites for base rows; returns site ids per row.

        When ``features`` is given, the per-site feature array is recorded so
        influence analysis can later rebuild the model inputs of every site.
        """
        site_ids = []
        for position, row_id in enumerate(row_ids):
            site = self.sites.intern(model_name, relation_name, int(row_id))
            site_ids.append(site.site_id)
            if features is not None and site.site_id not in self.site_features:
                self.site_features[site.site_id] = np.asarray(features[position])
        return site_ids

    def features_for_sites(self, site_ids) -> np.ndarray:
        """Stacked feature array for the given site ids."""
        try:
            return np.stack([self.site_features[int(s)] for s in site_ids], axis=0)
        except KeyError as exc:
            raise QueryError(
                f"no recorded features for inference site {exc.args[0]}"
            ) from None

    def prediction_for_site(self, site_key: tuple[str, str, int]):
        try:
            return self._prediction_cache[site_key]
        except KeyError:
            raise QueryError(f"no cached prediction for site {site_key}") from None

    def current_assignment(self) -> dict[int, object]:
        """``site_id -> predicted class`` under the current model."""
        return {
            site.site_id: self.prediction_for_site(site.key) for site in self.sites
        }


class TupleBatch:
    """A batch of intermediate tuples with lineage back to base relations.

    Attributes:
        columns: qualified column name (``alias.column``) -> value array.
        alias_relations: alias -> underlying base relation name.
        alias_row_ids: alias -> int64 array of base row ids (one per tuple).
        conditions: per-tuple existence conditions (debug mode), or ``None``.
    """

    def __init__(
        self,
        columns: Mapping[str, np.ndarray],
        alias_relations: Mapping[str, str],
        alias_row_ids: Mapping[str, np.ndarray],
        conditions: list[BoolExpr] | None = None,
    ) -> None:
        self.columns = dict(columns)
        self.alias_relations = dict(alias_relations)
        self.alias_row_ids = {
            alias: np.asarray(ids, dtype=np.int64)
            for alias, ids in alias_row_ids.items()
        }
        lengths = {array.shape[0] for array in self.columns.values()}
        lengths |= {array.shape[0] for array in self.alias_row_ids.values()}
        if len(lengths) > 1:
            raise SchemaError(f"inconsistent batch column lengths: {lengths}")
        self._n_rows = lengths.pop() if lengths else 0
        if conditions is not None and len(conditions) != self._n_rows:
            raise SchemaError(
                f"{len(conditions)} conditions for {self._n_rows} tuples"
            )
        self.conditions = conditions

    def __len__(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> list[str]:
        return list(self.columns.keys())

    def resolve(self, name: str) -> str:
        """Resolve a possibly-unqualified column name to its qualified form."""
        if name in self.columns:
            return name
        matches = [
            qualified
            for qualified in self.columns
            if qualified.split(".", 1)[-1] == name
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise QueryError(
                f"unknown column {name!r}; available: {sorted(self.columns)}"
            )
        raise QueryError(f"ambiguous column {name!r}: matches {sorted(matches)}")

    def values(self, name: str) -> np.ndarray:
        return self.columns[self.resolve(name)]

    def alias_of_column(self, name: str) -> str:
        qualified = self.resolve(name)
        return qualified.split(".", 1)[0]

    def take(self, indices: np.ndarray) -> "TupleBatch":
        indices = np.asarray(indices, dtype=np.int64)
        columns = {name: values[indices] for name, values in self.columns.items()}
        alias_row_ids = {
            alias: ids[indices] for alias, ids in self.alias_row_ids.items()
        }
        conditions = None
        if self.conditions is not None:
            conditions = [self.conditions[int(i)] for i in indices]
        return TupleBatch(columns, self.alias_relations, alias_row_ids, conditions)

    def with_conditions(self, conditions: list[BoolExpr]) -> "TupleBatch":
        return TupleBatch(
            self.columns, self.alias_relations, self.alias_row_ids, conditions
        )

    def condition(self, index: int) -> BoolExpr:
        if self.conditions is None:
            return TRUE
        return self.conditions[index]

    @classmethod
    def from_relation(
        cls, relation, alias: str, debug: bool = False
    ) -> "TupleBatch":
        columns = {
            f"{alias}.{name}": values for name, values in relation.columns.items()
        }
        conditions: list[BoolExpr] | None = None
        if debug:
            conditions = [TRUE] * len(relation)
        return cls(
            columns,
            {alias: relation.name},
            {alias: relation.row_ids},
            conditions,
        )

    @classmethod
    def cross_product(cls, left: "TupleBatch", right: "TupleBatch") -> "TupleBatch":
        """All pairs of left/right tuples (the executor filters afterwards)."""
        overlap = set(left.alias_relations) & set(right.alias_relations)
        if overlap:
            raise QueryError(f"duplicate aliases across join sides: {sorted(overlap)}")
        n_left, n_right = len(left), len(right)
        left_index = np.repeat(np.arange(n_left, dtype=np.int64), n_right)
        right_index = np.tile(np.arange(n_right, dtype=np.int64), n_left)
        return cls.paired(left, right, left_index, right_index)

    @classmethod
    def paired(
        cls,
        left: "TupleBatch",
        right: "TupleBatch",
        left_index: np.ndarray,
        right_index: np.ndarray,
    ) -> "TupleBatch":
        """Combine selected (left, right) tuple pairs into one batch."""
        from .provenance import and_  # local import to avoid cycle at module load

        columns: dict[str, np.ndarray] = {}
        for name, values in left.columns.items():
            columns[name] = values[left_index]
        for name, values in right.columns.items():
            columns[name] = values[right_index]
        alias_relations = {**left.alias_relations, **right.alias_relations}
        alias_row_ids: dict[str, np.ndarray] = {}
        for alias, ids in left.alias_row_ids.items():
            alias_row_ids[alias] = ids[left_index]
        for alias, ids in right.alias_row_ids.items():
            alias_row_ids[alias] = ids[right_index]
        conditions = None
        if left.conditions is not None and right.conditions is not None:
            conditions = [
                and_(left.conditions[int(li)], right.conditions[int(ri)])
                for li, ri in zip(left_index, right_index)
            ]
        return cls(columns, alias_relations, alias_row_ids, conditions)


def empty_like(batch: TupleBatch) -> TupleBatch:
    """An empty batch with the same schema as ``batch``."""
    return batch.take(np.array([], dtype=np.int64))


def stack_columns(column: Sequence[np.ndarray]) -> np.ndarray:
    """Stack per-row feature cells back into a single array."""
    return np.stack(list(column), axis=0)
