"""A small SQL front-end for the Query 2.0 fragment of the paper.

Supports the query shapes of Table 1 / Table 2:

.. code-block:: sql

    SELECT COUNT(*) FROM R WHERE predict(*) = 1
    SELECT COUNT(*) FROM Enron WHERE predict(*) = 'spam' AND text LIKE '%http%'
    SELECT * FROM MNIST_L L, MNIST_R R WHERE predict(L) = predict(R)
    SELECT AVG(predict(*)) FROM Adult GROUP BY gender
    SELECT COUNT(*) FROM Users U JOIN Logins L ON U.id = L.id
        WHERE L.active_last_month = 1 AND churn.predict(U.features) = 'churn'

``predict(...)`` resolves to a registered model: ``name.predict(...)`` picks
the model explicitly; bare ``predict(...)`` works when the database has
exactly one model.  The argument may be ``*`` (the single feature column of
the single FROM relation), an alias (that relation's feature column), or a
column reference.  A *feature column* is any column whose cells are arrays
(``ndim >= 2``), or a column literally named ``features``.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from dataclasses import dataclass

from ..errors import SQLSyntaxError, UnsupportedQueryError
from .algebra import AggSpec, Aggregate, Filter, Join, Plan, Project, Scan
from .expressions import (
    Arith,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Col,
    Const,
    Expr,
    Like,
    ModelPredict,
)
from .schema import Database

_KEYWORDS = {
    "select", "from", "where", "group", "by", "and", "or", "not", "like",
    "as", "join", "on", "count", "sum", "avg", "inner",
}

_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<number>\d+\.\d+|\d+)
      | (?P<string>'[^']*'|"[^"]*")
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|!=|<>|=|<|>|\(|\)|,|\*|\+|-|/|\.)
    )
    """,
    re.VERBOSE,
)


@dataclass
class _Token:
    kind: str  # 'number' | 'string' | 'name' | 'keyword' | 'op' | 'eof'
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SQLSyntaxError(
                f"cannot tokenize SQL near {remainder[:20]!r} (offset {position})"
            )
        position = match.end()
        if match.group("number") is not None:
            tokens.append(_Token("number", match.group("number"), match.start()))
        elif match.group("string") is not None:
            tokens.append(_Token("string", match.group("string")[1:-1], match.start()))
        elif match.group("name") is not None:
            name = match.group("name")
            kind = "keyword" if name.lower() in _KEYWORDS else "name"
            value = name.lower() if kind == "keyword" else name
            tokens.append(_Token(kind, value, match.start()))
        else:
            op = match.group("op")
            if op == "<>":
                op = "!="
            tokens.append(_Token("op", op, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _PredictCall(Expr):
    """Unresolved ``predict(...)`` placeholder created by the parser."""

    def __init__(self, model_name: str | None, argument: str) -> None:
        self.model_name = model_name
        self.argument = argument  # '*', an alias, or a (dotted) column name

    def eval(self, batch, runtime):  # pragma: no cover - resolved before exec
        raise SQLSyntaxError("unresolved predict(...) placeholder")

    def depends_on_model(self) -> bool:
        return True

    def __repr__(self) -> str:
        model = self.model_name or "<default>"
        return f"{model}.predict({self.argument})"


@dataclass
class _SelectItem:
    expr: Expr | None  # None for bare '*'
    agg: str | None  # 'count' | 'sum' | 'avg' | None
    alias: str | None
    is_star: bool = False
    raw: str = ""


@dataclass
class _FromItem:
    relation: str
    alias: str


@dataclass
class ParsedQuery:
    """Parser output; call :meth:`to_plan` with a database to resolve names."""

    select_items: list[_SelectItem]
    from_items: list[_FromItem]
    where: Expr | None
    group_by: list[Expr]
    group_by_raw: list[str]
    text: str

    # -- planning ------------------------------------------------------------

    def to_plan(self, database: Database) -> Plan:
        resolver = _Resolver(database, self.from_items)
        where = resolver.resolve(self.where) if self.where is not None else None

        plan: Plan = Scan(self.from_items[0].relation, self.from_items[0].alias)
        for item in self.from_items[1:]:
            plan = Join(plan, Scan(item.relation, item.alias), condition=None)
        if where is not None:
            if isinstance(plan, Join):
                plan = Join(plan.left, plan.right, condition=where)
            else:
                plan = Filter(plan, where)

        has_aggregate = any(item.agg is not None for item in self.select_items)
        if not has_aggregate and self.group_by:
            raise UnsupportedQueryError(
                "GROUP BY without aggregates is not supported", feature="group-by"
            )
        if not has_aggregate:
            star = any(item.is_star for item in self.select_items)
            if star:
                if len(self.select_items) != 1:
                    raise UnsupportedQueryError(
                        "SELECT * cannot be mixed with other select items",
                        feature="select-star",
                    )
                return plan
            items = []
            for index, item in enumerate(self.select_items):
                expr = resolver.resolve(item.expr)
                items.append((expr, item.alias or item.raw or f"col{index}"))
            return Project(plan, items)

        group_items: list[tuple[Expr, str]] = []
        for raw, expr in zip(self.group_by_raw, self.group_by):
            group_items.append((resolver.resolve(expr), raw))
        aggregates: list[AggSpec] = []
        used_names: set[str] = set()
        for item in self.select_items:
            if item.agg is None:
                # A non-aggregate select item must be one of the group keys.
                if item.raw not in {name for _, name in group_items}:
                    raise UnsupportedQueryError(
                        f"select item {item.raw!r} is neither aggregated nor a "
                        "GROUP BY key",
                        feature="select-non-grouped",
                    )
                continue
            name = item.alias or item.agg
            suffix = 2
            while name in used_names:
                name = f"{item.alias or item.agg}_{suffix}"
                suffix += 1
            used_names.add(name)
            arg = resolver.resolve(item.expr) if item.expr is not None else None
            aggregates.append(AggSpec(item.agg, arg, name))
        return Aggregate(plan, group_items, aggregates)


class _Resolver:
    """Resolves parser placeholders (predict calls) against a database."""

    def __init__(self, database: Database, from_items: Sequence[_FromItem]) -> None:
        self.database = database
        self.from_items = list(from_items)
        self.aliases = {item.alias: item.relation for item in from_items}

    def resolve(self, expr: Expr | None) -> Expr:
        if expr is None:
            raise SQLSyntaxError("missing expression")
        if isinstance(expr, _PredictCall):
            return self._resolve_predict(expr)
        if isinstance(expr, Cmp):
            return Cmp(expr.op, self.resolve(expr.left), self.resolve(expr.right))
        if isinstance(expr, Arith):
            return Arith(expr.op, self.resolve(expr.left), self.resolve(expr.right))
        if isinstance(expr, BoolAnd):
            return BoolAnd([self.resolve(child) for child in expr.children()])
        if isinstance(expr, BoolOr):
            return BoolOr([self.resolve(child) for child in expr.children()])
        if isinstance(expr, BoolNot):
            return BoolNot(self.resolve(expr.child))
        if isinstance(expr, Like):
            return Like(self.resolve(expr.column), expr.pattern)
        return expr

    def _resolve_predict(self, call: _PredictCall) -> ModelPredict:
        model_name = call.model_name
        if model_name is None:
            names = self.database.model_names
            if len(names) != 1:
                raise UnsupportedQueryError(
                    f"bare predict(...) needs exactly one registered model, "
                    f"found {names}; qualify as <model>.predict(...)",
                    feature="predict-model",
                )
            model_name = names[0]
        elif not self.database.has_model(model_name):
            raise UnsupportedQueryError(
                f"unknown model {model_name!r}; registered: "
                f"{self.database.model_names}",
                feature="predict-model",
            )

        argument = call.argument
        if argument == "*":
            if len(self.from_items) != 1:
                raise UnsupportedQueryError(
                    "predict(*) is ambiguous with multiple FROM relations; "
                    "use predict(<alias>)",
                    feature="predict-star",
                )
            alias = self.from_items[0].alias
            return ModelPredict(model_name, Col(self._feature_column(alias)))
        if argument in self.aliases:
            return ModelPredict(model_name, Col(self._feature_column(argument)))
        # Otherwise treat it as a column reference (possibly qualified).
        return ModelPredict(model_name, Col(argument))

    def _feature_column(self, alias: str) -> str:
        relation = self.database.relation(self.aliases[alias])
        array_columns = [
            name for name, values in relation.columns.items() if values.ndim >= 2
        ]
        if len(array_columns) == 1:
            return f"{alias}.{array_columns[0]}"
        if relation.has_column("features"):
            return f"{alias}.features"
        raise UnsupportedQueryError(
            f"cannot infer the feature column of {relation.name!r}: "
            f"array-valued columns {array_columns}; add a 'features' column "
            "or name the column in predict(...)",
            feature="feature-column",
        )


class _Parser:
    def __init__(self, tokens: list[_Token], text: str) -> None:
        self.tokens = tokens
        self.index = 0
        self.text = text

    # -- token helpers ---------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.advance()
        if token.kind != "keyword" or token.value != keyword:
            raise SQLSyntaxError(
                f"expected {keyword.upper()}, got {token.value!r} at offset "
                f"{token.position}"
            )

    def accept_keyword(self, keyword: str) -> bool:
        token = self.peek()
        if token.kind == "keyword" and token.value == keyword:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        token = self.advance()
        if token.kind != "op" or token.value != op:
            raise SQLSyntaxError(
                f"expected {op!r}, got {token.value!r} at offset {token.position}"
            )

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token.kind == "op" and token.value == op:
            self.advance()
            return True
        return False

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> ParsedQuery:
        self.expect_keyword("select")
        select_items = self._select_list()
        self.expect_keyword("from")
        from_items = self._from_list()
        where = None
        if self.accept_keyword("where"):
            where = self._expr()
        group_by: list[Expr] = []
        group_by_raw: list[str] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            while True:
                start = self.peek().position
                group_by.append(self._primary())
                end = self.peek().position
                group_by_raw.append(self.text[start:end].strip())
                if not self.accept_op(","):
                    break
        token = self.peek()
        if token.kind != "eof":
            raise SQLSyntaxError(
                f"unexpected trailing input {token.value!r} at offset {token.position}"
            )
        return ParsedQuery(
            select_items, from_items, where, group_by, group_by_raw, self.text
        )

    def _select_list(self) -> list[_SelectItem]:
        items = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> _SelectItem:
        token = self.peek()
        if token.kind == "op" and token.value == "*":
            self.advance()
            return _SelectItem(None, None, None, is_star=True, raw="*")
        if token.kind == "keyword" and token.value in ("count", "sum", "avg"):
            agg = token.value
            self.advance()
            self.expect_op("(")
            if agg == "count" and self.accept_op("*"):
                arg: Expr | None = None
            else:
                arg = self._expr()
            self.expect_op(")")
            alias = self._maybe_alias()
            return _SelectItem(arg, agg, alias, raw=agg)
        start = token.position
        expr = self._expr()
        end = self.peek().position
        raw = self.text[start:end].strip()
        alias = self._maybe_alias()
        if alias is not None:
            raw = self.text[start:end].strip()
        return _SelectItem(expr, None, alias, raw=raw)

    def _maybe_alias(self) -> str | None:
        if self.accept_keyword("as"):
            token = self.advance()
            if token.kind != "name":
                raise SQLSyntaxError(f"expected alias name, got {token.value!r}")
            return token.value
        return None

    def _from_list(self) -> list[_FromItem]:
        items = [self._table_ref()]
        while True:
            if self.accept_op(","):
                items.append(self._table_ref())
                continue
            if self.peek().kind == "keyword" and self.peek().value in ("join", "inner"):
                if self.accept_keyword("inner"):
                    self.expect_keyword("join")
                else:
                    self.expect_keyword("join")
                items.append(self._table_ref())
                if self.accept_keyword("on"):
                    condition = self._expr()
                    # Record the ON condition to be ANDed into WHERE later by
                    # stashing it on the item; handled below via _join_filters.
                    self._join_filters.append(condition)
                continue
            break
        return items

    _join_filters: list[Expr]

    def _table_ref(self) -> _FromItem:
        token = self.advance()
        if token.kind != "name":
            raise SQLSyntaxError(f"expected relation name, got {token.value!r}")
        relation = token.value
        alias = relation
        if self.accept_keyword("as"):
            alias_token = self.advance()
            if alias_token.kind != "name":
                raise SQLSyntaxError(f"expected alias, got {alias_token.value!r}")
            alias = alias_token.value
        elif self.peek().kind == "name":
            alias = self.advance().value
        return _FromItem(relation, alias)

    # -- expressions -------------------------------------------------------------

    def _expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        parts = [self._and_expr()]
        while self.accept_keyword("or"):
            parts.append(self._and_expr())
        return parts[0] if len(parts) == 1 else BoolOr(parts)

    def _and_expr(self) -> Expr:
        parts = [self._not_expr()]
        while self.accept_keyword("and"):
            parts.append(self._not_expr())
        return parts[0] if len(parts) == 1 else BoolAnd(parts)

    def _not_expr(self) -> Expr:
        if self.accept_keyword("not"):
            return BoolNot(self._not_expr())
        return self._cmp_expr()

    def _cmp_expr(self) -> Expr:
        left = self._add_expr()
        token = self.peek()
        if token.kind == "op" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            right = self._add_expr()
            return Cmp(op, left, right)
        if token.kind == "keyword" and token.value == "like":
            self.advance()
            pattern = self.advance()
            if pattern.kind != "string":
                raise SQLSyntaxError("LIKE requires a string pattern")
            return Like(left, pattern.value)
        return left

    def _add_expr(self) -> Expr:
        left = self._mul_expr()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("+", "-"):
                op = self.advance().value
                left = Arith(op, left, self._mul_expr())
            else:
                return left

    def _mul_expr(self) -> Expr:
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("*", "/"):
                op = self.advance().value
                left = Arith(op, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self.accept_op("-"):
            return Arith("-", Const(0), self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self.advance()
        if token.kind == "number":
            value = float(token.value) if "." in token.value else int(token.value)
            return Const(value)
        if token.kind == "string":
            return Const(token.value)
        if token.kind == "op" and token.value == "(":
            inner = self._expr()
            self.expect_op(")")
            return inner
        if token.kind == "name":
            return self._name_expr(token.value)
        raise SQLSyntaxError(
            f"unexpected token {token.value!r} at offset {token.position}"
        )

    def _name_expr(self, first: str) -> Expr:
        # Possibilities: column, alias.column, predict(...), model.predict(...),
        # power(a, b).
        if first.lower() == "predict" and self.accept_op("("):
            return self._predict_args(None)
        if first.lower() == "power" and self.accept_op("("):
            base = self._expr()
            self.expect_op(",")
            exponent = self._expr()
            self.expect_op(")")
            return Arith("**", base, exponent)
        if self.accept_op("."):
            second_token = self.advance()
            if second_token.kind not in ("name", "keyword"):
                raise SQLSyntaxError(
                    f"expected name after {first!r}., got {second_token.value!r}"
                )
            second = second_token.value
            if second.lower() == "predict" and self.accept_op("("):
                return self._predict_args(first)
            return Col(f"{first}.{second}")
        return Col(first)

    def _predict_args(self, model_name: str | None) -> _PredictCall:
        if self.accept_op("*"):
            self.expect_op(")")
            return _PredictCall(model_name, "*")
        token = self.advance()
        if token.kind != "name":
            raise SQLSyntaxError(
                f"predict(...) takes * or a column/alias, got {token.value!r}"
            )
        argument = token.value
        if self.accept_op("."):
            sub = self.advance()
            if sub.kind not in ("name", "keyword"):
                raise SQLSyntaxError(f"expected name, got {sub.value!r}")
            argument = f"{argument}.{sub.value}"
        self.expect_op(")")
        return _PredictCall(model_name, argument)


def parse(text: str) -> ParsedQuery:
    """Parse SQL text into a :class:`ParsedQuery` (names unresolved)."""
    parser = _Parser(_tokenize(text), text)
    parser._join_filters = []
    parsed = parser.parse()
    if parser._join_filters:
        conjuncts = list(parser._join_filters)
        if parsed.where is not None:
            conjuncts.append(parsed.where)
        parsed.where = conjuncts[0] if len(conjuncts) == 1 else BoolAnd(conjuncts)
    return parsed


def plan_sql(text: str, database: Database) -> Plan:
    """Parse and plan SQL against ``database``."""
    return parse(text).to_plan(database)
