"""Reverse-mode automatic differentiation over numpy arrays.

This is the library's stand-in for the paper's TensorFlow substrate: a
tape-based autodiff engine sufficient for logistic/softmax regression and
small convolutional networks, producing exact gradients (verified against
finite differences in the test suite).

Design notes:

- ``Tensor`` wraps a float64 numpy array; ``backward()`` runs a topological
  reverse sweep accumulating ``grad`` on every ``requires_grad`` tensor.
- Broadcasting is supported by un-broadcasting gradients back to the
  operand's shape (:func:`_unbroadcast`).
- The graph is built eagerly and is single-use per backward pass (grads can
  be zeroed and re-run, matching how the training loop uses it).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were expanded from 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad
        self._parents = tuple(parents)
        self._backward_fn = backward_fn

    # -- bookkeeping ---------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Reverse sweep from this tensor.

        ``grad`` defaults to 1 for scalar outputs (the usual loss case).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar"
                )
            grad = np.ones_like(self.data)
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # -- operators -------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        return add(self, _as_tensor(other))

    def __radd__(self, other) -> "Tensor":
        return add(_as_tensor(other), self)

    def __sub__(self, other) -> "Tensor":
        return sub(self, _as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return sub(_as_tensor(other), self)

    def __mul__(self, other) -> "Tensor":
        return mul(self, _as_tensor(other))

    def __rmul__(self, other) -> "Tensor":
        return mul(_as_tensor(other), self)

    def __truediv__(self, other) -> "Tensor":
        return div(self, _as_tensor(other))

    def __rtruediv__(self, other) -> "Tensor":
        return div(_as_tensor(other), self)

    def __neg__(self) -> "Tensor":
        return mul(self, _as_tensor(-1.0))

    def __matmul__(self, other) -> "Tensor":
        return matmul(self, _as_tensor(other))

    def __pow__(self, exponent: float) -> "Tensor":
        return power(self, exponent)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        return reshape(self, shape if len(shape) > 1 else shape[0])

    @property
    def T(self) -> "Tensor":
        return transpose(self)


def _as_tensor(value) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _make(
    data: np.ndarray,
    parents: Sequence[Tensor],
    backward_fn: Callable[[np.ndarray], None],
) -> Tensor:
    requires = any(parent.requires_grad for parent in parents)
    if not requires:
        return Tensor(data)
    return Tensor(data, requires_grad=True, parents=parents, backward_fn=backward_fn)


# -- elementwise arithmetic ---------------------------------------------------


def add(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad, b.shape))

    return _make(out_data, (a, b), backward)


def sub(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(-grad, b.shape))

    return _make(out_data, (a, b), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * b.data, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * a.data, b.shape))

    return _make(out_data, (a, b), backward)


def div(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad / b.data, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(-grad * a.data / (b.data ** 2), b.shape))

    return _make(out_data, (a, b), backward)


def power(a: Tensor, exponent: float) -> Tensor:
    out_data = a.data ** exponent

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * exponent * a.data ** (exponent - 1))

    return _make(out_data, (a,), backward)


def exp(a: Tensor) -> Tensor:
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * out_data)

    return _make(out_data, (a,), backward)


def log(a: Tensor) -> Tensor:
    out_data = np.log(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad / a.data)

    return _make(out_data, (a,), backward)


def sigmoid(a: Tensor) -> Tensor:
    out_data = _stable_sigmoid(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * out_data * (1.0 - out_data))

    return _make(out_data, (a,), backward)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def tanh(a: Tensor) -> Tensor:
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * (1.0 - out_data ** 2))

    return _make(out_data, (a,), backward)


def relu(a: Tensor) -> Tensor:
    out_data = np.maximum(a.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * (a.data > 0.0))

    return _make(out_data, (a,), backward)


# -- linear algebra & shaping ---------------------------------------------------


def matmul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad @ b.data.T if b.data.ndim == 2 else np.outer(grad, b.data))
        if b.requires_grad:
            b._accumulate(a.data.T @ grad if a.data.ndim == 2 else np.outer(a.data, grad))

    return _make(out_data, (a, b), backward)


def transpose(a: Tensor) -> Tensor:
    out_data = a.data.T

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad.T)

    return _make(out_data, (a,), backward)


def reshape(a: Tensor, shape) -> Tensor:
    out_data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad.reshape(a.shape))

    return _make(out_data, (a,), backward)


def sum_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        expanded = grad
        if axis is not None and not keepdims:
            expanded = np.expand_dims(grad, axis=axis)
        a._accumulate(np.broadcast_to(expanded, a.shape).copy())

    return _make(out_data, (a,), backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.data.size
    elif isinstance(axis, int):
        count = a.data.shape[axis]
    else:
        count = int(np.prod([a.data.shape[ax] for ax in axis]))
    return mul(sum_(a, axis=axis, keepdims=keepdims), _as_tensor(1.0 / count))


def take_rows(a: Tensor, indices: np.ndarray) -> Tensor:
    """Row selection ``a[indices]`` with scatter-add backward."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = a.data[indices]

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            full = np.zeros_like(a.data)
            np.add.at(full, indices, grad)
            a._accumulate(full)

    return _make(out_data, (a,), backward)


def pick(a: Tensor, column_indices: np.ndarray) -> Tensor:
    """Per-row column selection ``a[i, column_indices[i]]``."""
    column_indices = np.asarray(column_indices, dtype=np.int64)
    rows = np.arange(a.shape[0])
    out_data = a.data[rows, column_indices]

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            full = np.zeros_like(a.data)
            full[rows, column_indices] = grad
            a._accumulate(full)

    return _make(out_data, (a,), backward)


def log_softmax(a: Tensor) -> Tensor:
    """Numerically stable log-softmax along the last axis."""
    shifted = a.data - a.data.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    out_data = shifted - log_z
    softmax_data = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad - softmax_data * grad.sum(axis=-1, keepdims=True))

    return _make(out_data, (a,), backward)


def softmax(a: Tensor) -> Tensor:
    return exp(log_softmax(a))


def grad_tap(a: Tensor, sink: dict) -> Tensor:
    """Identity whose backward records the incoming gradient in ``sink``.

    The recorded array lands in ``sink["grad"]`` and is also propagated to
    ``a`` unchanged.  Because every network op is batch-parallel, tapping a
    layer *output* during a backward pass whose upstream gradient stacks one
    loss gradient per row yields exactly the per-sample deltas that layer
    needs to reconstruct per-sample parameter gradients.
    """

    def backward(grad: np.ndarray) -> None:
        sink["grad"] = np.array(grad, copy=True)
        if a.requires_grad:
            a._accumulate(grad)

    return _make(a.data, (a,), backward)


def concat_rows(tensors: Sequence[Tensor]) -> Tensor:
    """Concatenate along axis 0."""
    data = np.concatenate([tensor.data for tensor in tensors], axis=0)
    offsets = np.cumsum([0] + [tensor.data.shape[0] for tensor in tensors])

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                tensor._accumulate(grad[start:stop])

    return _make(data, tuple(tensors), backward)


# -- convolution / pooling -------------------------------------------------------


def _im2col(x: np.ndarray, kh: int, kw: int) -> tuple[np.ndarray, tuple[int, int]]:
    """(N, C, H, W) -> (N, out_h, out_w, C*kh*kw) patch matrix, stride 1."""
    n, c, h, w = x.shape
    out_h, out_w = h - kh + 1, w - kw + 1
    strides = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(strides[0], strides[1], strides[2], strides[3], strides[2], strides[3]),
        writeable=False,
    )
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kh * kw)
    return np.ascontiguousarray(cols), (out_h, out_w)


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Valid convolution, stride 1.  x: (N,C,H,W); weight: (F,C,KH,KW)."""
    f, c, kh, kw = weight.shape
    cols, (out_h, out_w) = _im2col(x.data, kh, kw)
    w_mat = weight.data.reshape(f, c * kh * kw)
    out_data = cols @ w_mat.T  # (N, out_h, out_w, F)
    out_data = out_data.transpose(0, 3, 1, 2)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, f, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_nhwf = grad.transpose(0, 2, 3, 1)  # (N, out_h, out_w, F)
        if weight.requires_grad:
            grad_w = np.einsum("nhwf,nhwk->fk", grad_nhwf, cols)
            weight._accumulate(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_nhwf.sum(axis=(0, 1, 2)))
        if x.requires_grad:
            grad_cols = grad_nhwf @ w_mat  # (N, out_h, out_w, C*kh*kw)
            grad_x = np.zeros_like(x.data)
            n = x.data.shape[0]
            patches = grad_cols.reshape(n, out_h, out_w, c, kh, kw)
            for dy in range(kh):
                for dx in range(kw):
                    grad_x[:, :, dy:dy + out_h, dx:dx + out_w] += patches[
                        :, :, :, :, dy, dx
                    ].transpose(0, 3, 1, 2)
            x._accumulate(grad_x)

    return _make(out_data, parents, backward)


def maxpool2d(x: Tensor, size: int) -> Tensor:
    """Non-overlapping max pooling with kernel = stride = ``size``."""
    n, c, h, w = x.shape
    if h % size or w % size:
        raise ValueError(f"spatial dims {(h, w)} not divisible by pool size {size}")
    out_h, out_w = h // size, w // size
    blocks = x.data.reshape(n, c, out_h, size, out_w, size)
    out_data = blocks.max(axis=(3, 5))
    # Mask of maxima for routing gradients (ties split the gradient evenly).
    expanded = out_data[:, :, :, None, :, None]
    mask = (blocks == expanded).astype(np.float64)
    mask_sum = mask.sum(axis=(3, 5), keepdims=True)
    mask = mask / mask_sum

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            grad_blocks = grad[:, :, :, None, :, None] * mask
            x._accumulate(grad_blocks.reshape(n, c, h, w))

    return _make(out_data, (x,), backward)
