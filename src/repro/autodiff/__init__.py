"""Tape-based reverse-mode autodiff (the TensorFlow stand-in)."""

from .nn import Conv2D, Dense, Flatten, MaxPool2D, Module, ReLU, Sequential
from .tensor import (
    Tensor,
    add,
    concat_rows,
    conv2d,
    div,
    exp,
    log,
    log_softmax,
    matmul,
    maxpool2d,
    mean,
    mul,
    pick,
    power,
    relu,
    reshape,
    sigmoid,
    softmax,
    sub,
    sum_,
    take_rows,
    tanh,
    transpose,
)

__all__ = [
    "Conv2D", "Dense", "Flatten", "MaxPool2D", "Module", "ReLU", "Sequential",
    "Tensor", "add", "concat_rows", "conv2d", "div", "exp", "log",
    "log_softmax", "matmul", "maxpool2d", "mean", "mul", "pick", "power",
    "relu", "reshape", "sigmoid", "softmax", "sub", "sum_", "take_rows",
    "tanh", "transpose",
]
