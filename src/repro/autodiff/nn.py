"""Neural-network layers on top of the autodiff engine.

Layers hold their parameters as :class:`~repro.autodiff.tensor.Tensor`
objects with ``requires_grad=True``.  Networks expose a flat parameter
vector (``get_flat`` / ``set_flat``), which is the representation the
influence-function machinery works in.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..utils import as_rng
from . import tensor as T
from .tensor import Tensor


class Module:
    """Base class: a callable graph fragment with named parameters."""

    def parameters(self) -> list[Tensor]:
        return []

    def __call__(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    # -- flat parameter vector -------------------------------------------------

    def n_params(self) -> int:
        return int(sum(param.size for param in self.parameters()))

    def get_flat(self) -> np.ndarray:
        params = self.parameters()
        if not params:
            return np.zeros(0)
        return np.concatenate([param.data.ravel() for param in params])

    def set_flat(self, flat: np.ndarray) -> None:
        flat = np.asarray(flat, dtype=np.float64)
        if flat.shape != (self.n_params(),):
            raise ValueError(
                f"flat vector has shape {flat.shape}, expected ({self.n_params()},)"
            )
        offset = 0
        for param in self.parameters():
            size = param.size
            param.data = flat[offset:offset + size].reshape(param.shape).copy()
            offset += size

    def grad_flat(self) -> np.ndarray:
        """Flattened gradient after a backward pass (zeros where absent)."""
        chunks = []
        for param in self.parameters():
            if param.grad is None:
                chunks.append(np.zeros(param.size))
            else:
                chunks.append(param.grad.ravel())
        return np.concatenate(chunks) if chunks else np.zeros(0)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()


class Dense(Module):
    """Fully-connected layer ``x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng=None, bias: bool = True) -> None:
        rng = as_rng(rng)
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Tensor(
            rng.uniform(-scale, scale, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def parameters(self) -> list[Tensor]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def __call__(self, x: Tensor) -> Tensor:
        out = T.matmul(x, self.weight)
        if self.bias is not None:
            out = T.add(out, self.bias)
        return out


class Conv2D(Module):
    """Valid 2-d convolution, stride 1."""

    def __init__(
        self, in_channels: int, out_channels: int, kernel_size: int, rng=None
    ) -> None:
        rng = as_rng(rng)
        fan_in = in_channels * kernel_size * kernel_size
        scale = 1.0 / np.sqrt(fan_in)
        self.weight = Tensor(
            rng.uniform(
                -scale, scale,
                size=(out_channels, in_channels, kernel_size, kernel_size),
            ),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True)

    def parameters(self) -> list[Tensor]:
        return [self.weight, self.bias]

    def __call__(self, x: Tensor) -> Tensor:
        return T.conv2d(x, self.weight, self.bias)


class MaxPool2D(Module):
    """Non-overlapping max pooling."""

    def __init__(self, size: int) -> None:
        self.size = size

    def __call__(self, x: Tensor) -> Tensor:
        return T.maxpool2d(x, self.size)


class Flatten(Module):
    """Collapse all but the batch dimension."""

    def __call__(self, x: Tensor) -> Tensor:
        n = x.shape[0]
        return T.reshape(x, (n, -1))


class ReLU(Module):
    def __call__(self, x: Tensor) -> Tensor:
        return T.relu(x)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, layers: Sequence[Module]) -> None:
        self.layers = list(layers)

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def __call__(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
