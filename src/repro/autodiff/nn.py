"""Neural-network layers on top of the autodiff engine.

Layers hold their parameters as :class:`~repro.autodiff.tensor.Tensor`
objects with ``requires_grad=True``.  Networks expose a flat parameter
vector (``get_flat`` / ``set_flat``), which is the representation the
influence-function machinery works in.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..utils import as_rng
from . import tensor as T
from .tensor import Tensor


class PerSampleCapture:
    """One parameterized layer's forward context for per-sample gradients.

    ``layer`` saw input ``x_data`` during the captured forward pass; after a
    backward pass whose upstream gradient stacks one per-sample loss gradient
    per row, ``sink["grad"]`` holds the per-sample deltas at the layer output.
    """

    __slots__ = ("layer", "x_data", "sink")

    def __init__(self, layer: "Module", x_data: np.ndarray, sink: dict) -> None:
        self.layer = layer
        self.x_data = x_data
        self.sink = sink


class Module:
    """Base class: a callable graph fragment with named parameters."""

    def parameters(self) -> list[Tensor]:
        return []

    def __call__(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    # -- per-sample gradient support -------------------------------------------

    def forward_captured(self, x: Tensor, captures: list[PerSampleCapture]) -> Tensor:
        """Forward pass that records per-sample-gradient captures.

        Layers that know how to reconstruct per-sample parameter gradients
        (Dense, Conv2D) append a :class:`PerSampleCapture` and tap their
        output gradient; everything else falls through to the plain forward.
        A layer with parameters that does *not* override this is simply not
        captured — callers detect the coverage gap and fall back to the
        per-row loop.
        """
        return self(x)

    def per_sample_param_grads(
        self, x_data: np.ndarray, delta: np.ndarray
    ) -> list[np.ndarray]:
        """Per-sample gradients for each parameter, given the layer input
        ``x_data`` and the per-sample output deltas ``delta``.

        Returns one ``(n, *param.shape)`` array per entry of
        :meth:`parameters`, in the same order.
        """
        raise NotImplementedError

    # -- flat parameter vector -------------------------------------------------

    def n_params(self) -> int:
        return int(sum(param.size for param in self.parameters()))

    def get_flat(self) -> np.ndarray:
        params = self.parameters()
        if not params:
            return np.zeros(0)
        return np.concatenate([param.data.ravel() for param in params])

    def set_flat(self, flat: np.ndarray) -> None:
        flat = np.asarray(flat, dtype=np.float64)
        if flat.shape != (self.n_params(),):
            raise ValueError(
                f"flat vector has shape {flat.shape}, expected ({self.n_params()},)"
            )
        offset = 0
        for param in self.parameters():
            size = param.size
            param.data = flat[offset:offset + size].reshape(param.shape).copy()
            offset += size

    def grad_flat(self) -> np.ndarray:
        """Flattened gradient after a backward pass (zeros where absent)."""
        chunks = []
        for param in self.parameters():
            if param.grad is None:
                chunks.append(np.zeros(param.size))
            else:
                chunks.append(param.grad.ravel())
        return np.concatenate(chunks) if chunks else np.zeros(0)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()


class Dense(Module):
    """Fully-connected layer ``x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng=None, bias: bool = True) -> None:
        rng = as_rng(rng)
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Tensor(
            rng.uniform(-scale, scale, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def parameters(self) -> list[Tensor]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def __call__(self, x: Tensor) -> Tensor:
        out = T.matmul(x, self.weight)
        if self.bias is not None:
            out = T.add(out, self.bias)
        return out

    def forward_captured(self, x: Tensor, captures: list[PerSampleCapture]) -> Tensor:
        sink: dict = {}
        out = T.grad_tap(self(x), sink)
        captures.append(PerSampleCapture(self, x.data, sink))
        return out

    def per_sample_param_grads(self, x_data, delta):
        # grad_W[i] = x_i ⊗ delta_i ; grad_b[i] = delta_i.
        grads = [np.einsum("ni,no->nio", x_data, delta)]
        if self.bias is not None:
            grads.append(delta.copy())
        return grads


class Conv2D(Module):
    """Valid 2-d convolution, stride 1."""

    def __init__(
        self, in_channels: int, out_channels: int, kernel_size: int, rng=None
    ) -> None:
        rng = as_rng(rng)
        fan_in = in_channels * kernel_size * kernel_size
        scale = 1.0 / np.sqrt(fan_in)
        self.weight = Tensor(
            rng.uniform(
                -scale, scale,
                size=(out_channels, in_channels, kernel_size, kernel_size),
            ),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True)

    def parameters(self) -> list[Tensor]:
        return [self.weight, self.bias]

    def __call__(self, x: Tensor) -> Tensor:
        return T.conv2d(x, self.weight, self.bias)

    def forward_captured(self, x: Tensor, captures: list[PerSampleCapture]) -> Tensor:
        sink: dict = {}
        out = T.grad_tap(self(x), sink)
        captures.append(PerSampleCapture(self, x.data, sink))
        return out

    def per_sample_param_grads(self, x_data, delta):
        f, c, kh, kw = self.weight.shape
        cols, _ = T._im2col(x_data, kh, kw)  # (n, out_h, out_w, c*kh*kw)
        delta_nhwf = delta.transpose(0, 2, 3, 1)  # (n, out_h, out_w, f)
        grad_w = np.einsum("nhwf,nhwk->nfk", delta_nhwf, cols)
        n = x_data.shape[0]
        return [
            grad_w.reshape(n, f, c, kh, kw),
            delta_nhwf.sum(axis=(1, 2)),
        ]


class MaxPool2D(Module):
    """Non-overlapping max pooling."""

    def __init__(self, size: int) -> None:
        self.size = size

    def __call__(self, x: Tensor) -> Tensor:
        return T.maxpool2d(x, self.size)


class Flatten(Module):
    """Collapse all but the batch dimension."""

    def __call__(self, x: Tensor) -> Tensor:
        n = x.shape[0]
        return T.reshape(x, (n, -1))


class ReLU(Module):
    def __call__(self, x: Tensor) -> Tensor:
        return T.relu(x)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, layers: Sequence[Module]) -> None:
        self.layers = list(layers)

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def __call__(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def forward_captured(self, x: Tensor, captures: list[PerSampleCapture]) -> Tensor:
        for layer in self.layers:
            x = layer.forward_captured(x, captures)
        return x
