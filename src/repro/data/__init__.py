"""Synthetic datasets mirroring the paper's four benchmarks + corruption."""

from .adult import (
    AdultDataset,
    encode_features,
    make_adult,
    section65_predicate,
)
from .corrupt import Corruption, corrupt_labels, corrupt_where_label
from .dblp import DBLPDataset, make_dblp
from .enron import (
    EnronDataset,
    contains_token,
    labelling_function_corruption,
    make_enron,
)
from .mnist import MNISTDataset, make_mnist, render_digit, split_by_digit

__all__ = [
    "AdultDataset", "encode_features", "make_adult", "section65_predicate",
    "Corruption", "corrupt_labels", "corrupt_where_label",
    "DBLPDataset", "make_dblp",
    "EnronDataset", "contains_token", "labelling_function_corruption",
    "make_enron",
    "MNISTDataset", "make_mnist", "render_digit", "split_by_digit",
]
