"""Synthetic MNIST-like digits (Sections 6.3, 6.4, 6.6 and Appendix D).

The real MNIST images are unavailable offline, so digits are rendered
procedurally: a 5×7 glyph bitmap per class is upscaled into a 28×28 canvas
with random translation, per-image stroke intensity, multiplicative stroke
jitter, and additive pixel noise.  The result preserves everything the
experiments rely on: 10 visually distinct classes learnable by both
logistic regression and a small CNN, with genuine intra-class variation so
the models do not reach trivial 100% accuracy.

Digits 1 and 7 — the corruption pair used throughout Section 6.3 — share
the diagonal/vertical stroke structure that makes them confusable, like in
real MNIST.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import as_rng

IMAGE_SIZE = 28
CLASSES = tuple(range(10))

_GLYPHS = {
    0: ["01110",
        "10001",
        "10001",
        "10001",
        "10001",
        "10001",
        "01110"],
    1: ["00100",
        "01100",
        "00100",
        "00100",
        "00100",
        "00100",
        "01110"],
    2: ["01110",
        "10001",
        "00001",
        "00110",
        "01000",
        "10000",
        "11111"],
    3: ["11110",
        "00001",
        "00001",
        "01110",
        "00001",
        "00001",
        "11110"],
    4: ["00010",
        "00110",
        "01010",
        "10010",
        "11111",
        "00010",
        "00010"],
    5: ["11111",
        "10000",
        "11110",
        "00001",
        "00001",
        "10001",
        "01110"],
    6: ["00110",
        "01000",
        "10000",
        "11110",
        "10001",
        "10001",
        "01110"],
    7: ["11111",
        "00001",
        "00010",
        "00100",
        "00100",
        "01000",
        "01000"],
    8: ["01110",
        "10001",
        "10001",
        "01110",
        "10001",
        "10001",
        "01110"],
    9: ["01110",
        "10001",
        "10001",
        "01111",
        "00001",
        "00010",
        "01100"],
}


def _glyph_array(digit: int) -> np.ndarray:
    rows = _GLYPHS[digit]
    return np.asarray([[int(ch) for ch in row] for row in rows], dtype=np.float64)


def render_digit(digit: int, rng, scale: int = 3) -> np.ndarray:
    """One noisy 28×28 rendering of ``digit`` in [0, 1]."""
    glyph = _glyph_array(digit)
    upscaled = np.kron(glyph, np.ones((scale, scale)))
    height, width = upscaled.shape
    canvas = np.zeros((IMAGE_SIZE, IMAGE_SIZE))
    max_dy = IMAGE_SIZE - height
    max_dx = IMAGE_SIZE - width
    dy = int(rng.integers(2, max_dy - 1)) if max_dy > 3 else 0
    dx = int(rng.integers(2, max_dx - 1)) if max_dx > 3 else 0
    intensity = rng.uniform(0.8, 1.0)
    stroke = upscaled * intensity
    # Multiplicative stroke jitter: some pixels fainter, none brighter than 1.
    stroke = stroke * rng.uniform(0.75, 1.0, size=stroke.shape)
    canvas[dy:dy + height, dx:dx + width] = stroke
    canvas = canvas + rng.normal(0.0, 0.045, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0)


@dataclass
class MNISTDataset:
    """Images plus flattened features, split into train and query sets."""

    images_train: np.ndarray
    y_train: np.ndarray
    images_query: np.ndarray
    y_query: np.ndarray
    classes: tuple = CLASSES

    @property
    def X_train(self) -> np.ndarray:
        """Flattened (n, 784) features for linear models."""
        return self.images_train.reshape(self.images_train.shape[0], -1)

    @property
    def X_query(self) -> np.ndarray:
        return self.images_query.reshape(self.images_query.shape[0], -1)


def make_mnist(
    n_train: int = 500,
    n_query: int = 300,
    digits=CLASSES,
    seed=0,
) -> MNISTDataset:
    """Generate a synthetic digit dataset over the requested ``digits``."""
    rng = as_rng(seed)
    digits = tuple(digits)

    def sample(n: int):
        labels = rng.choice(digits, size=n)
        images = np.stack([render_digit(int(d), rng) for d in labels])
        return images, labels.astype(int)

    images_train, y_train = sample(n_train)
    images_query, y_query = sample(n_query)
    return MNISTDataset(images_train, y_train, images_query, y_query)


def split_by_digit(
    images: np.ndarray, labels: np.ndarray, digits
) -> tuple[np.ndarray, np.ndarray]:
    """Subset of (images, labels) whose label is in ``digits``."""
    digits = set(int(d) for d in digits)
    mask = np.asarray([int(label) in digits for label in labels])
    return images[mask], labels[mask]
