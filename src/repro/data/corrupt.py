"""Systematic training-label corruption (Section 6.1.3).

The paper's experiments "choose records that match a predicate, and change
the labels for a subset of the matching records".  :func:`corrupt_labels`
implements exactly that: given a candidate mask (the predicate), flip a
fraction of the matching records to a new label, and return both the
corrupted labels and the ground-truth corrupted indices that recall curves
are computed against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import as_rng


@dataclass
class Corruption:
    """Corrupted labels plus ground truth bookkeeping."""

    y_corrupted: np.ndarray
    corrupted_indices: np.ndarray
    candidate_indices: np.ndarray
    fraction: float

    @property
    def n_corrupted(self) -> int:
        return int(self.corrupted_indices.size)

    def corruption_rate_overall(self) -> float:
        """Fraction of the whole training set that was corrupted."""
        return self.n_corrupted / self.y_corrupted.shape[0]


def corrupt_labels(
    y: np.ndarray,
    candidate_mask: np.ndarray,
    new_label,
    fraction: float,
    rng=None,
) -> Corruption:
    """Flip ``fraction`` of the records matching ``candidate_mask``.

    Args:
        y: clean labels (any dtype).
        candidate_mask: boolean mask selecting the predicate's records.
        new_label: the (wrong) label to assign.  May also be a callable
            ``old_label -> new_label`` for per-record flips.
        fraction: fraction of candidates to corrupt, in (0, 1].
        rng: seed or generator; the corrupted subset is sampled uniformly.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    y = np.asarray(y)
    candidate_mask = np.asarray(candidate_mask, dtype=bool)
    if candidate_mask.shape != y.shape:
        raise ValueError(
            f"mask shape {candidate_mask.shape} != labels shape {y.shape}"
        )
    rng = as_rng(rng)
    candidates = np.flatnonzero(candidate_mask)
    if candidates.size == 0:
        raise ValueError("the corruption predicate matches no records")
    n_corrupt = max(1, int(round(fraction * candidates.size)))
    chosen = rng.choice(candidates, size=n_corrupt, replace=False)
    chosen.sort()
    y_corrupted = y.copy()
    if callable(new_label):
        for index in chosen:
            y_corrupted[index] = new_label(y[index])
    else:
        y_corrupted[chosen] = new_label
    return Corruption(
        y_corrupted=y_corrupted,
        corrupted_indices=chosen,
        candidate_indices=candidates,
        fraction=fraction,
    )


def corrupt_where_label(
    y: np.ndarray, from_label, to_label, fraction: float, rng=None
) -> Corruption:
    """Convenience: corrupt records whose clean label equals ``from_label``."""
    mask = np.asarray(y) == from_label
    return corrupt_labels(y, mask, to_label, fraction, rng=rng)
