"""Systematic training-label corruption (Section 6.1.3).

The paper's experiments "choose records that match a predicate, and change
the labels for a subset of the matching records".  :func:`corrupt_labels`
implements exactly that: given a candidate mask (the predicate), flip a
fraction of the matching records to a new label, and return both the
corrupted labels and the ground-truth corrupted indices that recall curves
are computed against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import as_rng


@dataclass
class Corruption:
    """Corrupted labels plus ground truth bookkeeping."""

    y_corrupted: np.ndarray
    corrupted_indices: np.ndarray
    candidate_indices: np.ndarray
    fraction: float

    @property
    def n_corrupted(self) -> int:
        return int(self.corrupted_indices.size)

    def corruption_rate_overall(self) -> float:
        """Fraction of the whole training set that was corrupted."""
        return self.n_corrupted / self.y_corrupted.shape[0]


def corrupt_labels(
    y: np.ndarray,
    candidate_mask: np.ndarray,
    new_label,
    fraction: float,
    rng=None,
    n_shards: int | None = None,
) -> Corruption:
    """Flip ``fraction`` of the records matching ``candidate_mask``.

    Args:
        y: clean labels (any dtype).
        candidate_mask: boolean mask selecting the predicate's records.
        new_label: the (wrong) label to assign.  May also be a callable
            ``old_label -> new_label`` for per-record flips.
        fraction: fraction of candidates to corrupt, in (0, 1].
        rng: seed or generator; the corrupted subset is sampled uniformly.
        n_shards: ``None`` (the default) keeps the original single-stream
            sampling exactly.  A positive integer partitions the candidates
            into that many contiguous shards and samples each shard with
            its own child generator spawned via
            ``np.random.SeedSequence.spawn`` — each shard's draw depends
            only on (seed, shard index), so workers can corrupt shards in
            parallel, in any order, under any worker count, and the
            corrupted subset is bit-identical every time.  Requires an
            integer seed (a shared ``Generator`` is exactly the
            nondeterminism being fixed: its state would depend on which
            worker drew first).

    The global corruption count is preserved under sharding: the total
    ``max(1, round(fraction * n_candidates))`` is apportioned to shards by
    largest remainder, so ``n_shards`` changes *which* records are sampled
    but never *how many*.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    y = np.asarray(y)
    candidate_mask = np.asarray(candidate_mask, dtype=bool)
    if candidate_mask.shape != y.shape:
        raise ValueError(
            f"mask shape {candidate_mask.shape} != labels shape {y.shape}"
        )
    candidates = np.flatnonzero(candidate_mask)
    if candidates.size == 0:
        raise ValueError("the corruption predicate matches no records")
    n_corrupt = max(1, int(round(fraction * candidates.size)))
    if n_shards is None:
        rng = as_rng(rng)
        chosen = rng.choice(candidates, size=n_corrupt, replace=False)
        chosen.sort()
    else:
        chosen = _sharded_choice(candidates, n_corrupt, rng, n_shards)
    y_corrupted = y.copy()
    if callable(new_label):
        for index in chosen:
            y_corrupted[index] = new_label(y[index])
    else:
        y_corrupted[chosen] = new_label
    return Corruption(
        y_corrupted=y_corrupted,
        corrupted_indices=chosen,
        candidate_indices=candidates,
        fraction=fraction,
    )


def _sharded_choice(
    candidates: np.ndarray, n_corrupt: int, seed, n_shards: int
) -> np.ndarray:
    """Sample ``n_corrupt`` of ``candidates`` across independent shards.

    Shard boundaries (``np.array_split`` on the sorted candidate array)
    and per-shard quotas (largest remainder over exact proportional
    shares) are pure functions of the candidate set, and each shard draws
    from its own ``SeedSequence``-spawned generator — nothing here depends
    on scheduling, so any number of workers consuming the shards in any
    order reproduces the same subset.
    """
    if isinstance(seed, np.random.Generator):
        raise ValueError(
            "sharded corruption needs an integer seed, not a shared "
            "Generator (worker draws from a shared stream are "
            "order-dependent)"
        )
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    n_shards = min(int(n_shards), candidates.size)
    shards = np.array_split(candidates, n_shards)

    sizes = np.asarray([shard.size for shard in shards], dtype=np.int64)
    exact = n_corrupt * sizes / candidates.size
    quotas = np.floor(exact).astype(np.int64)
    np.minimum(quotas, sizes, out=quotas)
    remainder = n_corrupt - int(quotas.sum())
    if remainder > 0:
        # Largest fractional shares first; ties broken by shard index
        # (stable sort on the negated remainders).
        order = np.argsort(-(exact - quotas), kind="stable")
        for index in order:
            if remainder == 0:
                break
            if quotas[index] < sizes[index]:
                quotas[index] += 1
                remainder -= 1

    children = np.random.SeedSequence(seed).spawn(n_shards)
    picks = [
        np.random.default_rng(child).choice(shard, size=int(quota), replace=False)
        for shard, quota, child in zip(shards, quotas, children)
    ]
    chosen = np.concatenate(picks)
    chosen.sort()
    return chosen


def corrupt_where_label(
    y: np.ndarray, from_label, to_label, fraction: float, rng=None
) -> Corruption:
    """Convenience: corrupt records whose clean label equals ``from_label``."""
    mask = np.asarray(y) == from_label
    return corrupt_labels(y, mask, to_label, fraction, rng=rng)
