"""Synthetic Enron spam dataset (Sections 6.1.2 and 6.2).

The paper's ENRON experiments classify emails (bag-of-words features,
logistic regression) and corrupt labels with *rule-based labelling
functions*: "label all training emails containing 'http' as spam", and
similarly for 'deal'.  The queries then filter with
``text LIKE '%http%'`` / ``'%deal%'``.

This generator synthesizes emails from class-conditional token
distributions over a small vocabulary that includes the trigger tokens
``http`` and ``deal``.  Token rates are calibrated to the paper's reported
statistics: ~13% of emails contain 'http' (76% of those already spam) and
~18% contain 'deal' (only 2.7% of those spam), so applying the labelling
functions flips roughly the same share of labels as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import as_rng

CLASSES = ("ham", "spam")

# (token, P(token | ham), P(token | spam)) — per-email inclusion rates.
_VOCAB_SPEC = [
    ("http", 0.035, 0.45),
    ("deal", 0.22, 0.03),
    ("free", 0.03, 0.40),
    ("winner", 0.01, 0.25),
    ("viagra", 0.002, 0.18),
    ("click", 0.04, 0.35),
    ("unsubscribe", 0.02, 0.30),
    ("money", 0.08, 0.30),
    ("offer", 0.06, 0.28),
    ("credit", 0.04, 0.22),
    ("meeting", 0.45, 0.05),
    ("schedule", 0.35, 0.04),
    ("report", 0.40, 0.06),
    ("contract", 0.30, 0.05),
    ("gas", 0.25, 0.03),
    ("energy", 0.28, 0.04),
    ("pipeline", 0.18, 0.02),
    ("trading", 0.22, 0.05),
    ("lunch", 0.15, 0.02),
    ("attached", 0.38, 0.08),
    ("review", 0.30, 0.06),
    ("thanks", 0.42, 0.10),
    ("project", 0.33, 0.05),
    ("friday", 0.20, 0.05),
    ("call", 0.30, 0.15),
    ("team", 0.25, 0.04),
    ("budget", 0.18, 0.03),
    ("invoice", 0.12, 0.10),
    ("password", 0.03, 0.12),
    ("account", 0.10, 0.20),
]

VOCABULARY = tuple(token for token, _, _ in _VOCAB_SPEC)
N_FEATURES = len(VOCABULARY)


@dataclass
class EnronDataset:
    """Train/query emails: binary bag-of-words features plus raw text."""

    X_train: np.ndarray
    y_train: np.ndarray
    text_train: np.ndarray
    X_query: np.ndarray
    y_query: np.ndarray
    text_query: np.ndarray
    classes: tuple = CLASSES
    vocabulary: tuple = VOCABULARY


def make_enron(
    n_train: int = 900,
    n_query: int = 500,
    spam_rate: float = 0.3,
    seed=0,
) -> EnronDataset:
    """Generate the synthetic spam dataset."""
    rng = as_rng(seed)
    ham_probs = np.array([spec[1] for spec in _VOCAB_SPEC])
    spam_probs = np.array([spec[2] for spec in _VOCAB_SPEC])

    def sample(n: int):
        y = (rng.random(n) < spam_rate).astype(int)
        probs = np.where(y[:, None] == 1, spam_probs[None, :], ham_probs[None, :])
        X = (rng.random((n, N_FEATURES)) < probs).astype(float)
        texts = np.asarray(
            [
                " ".join(
                    token for token, present in zip(VOCABULARY, row) if present
                )
                or "empty"
                for row in X
            ],
            dtype=object,
        )
        labels = np.asarray([CLASSES[value] for value in y], dtype=object)
        return X, labels, texts

    X_train, y_train, text_train = sample(n_train)
    X_query, y_query, text_query = sample(n_query)
    return EnronDataset(X_train, y_train, text_train, X_query, y_query, text_query)


def contains_token(texts: np.ndarray, token: str) -> np.ndarray:
    """Mask of emails whose text contains ``token`` (the labelling-function
    predicate and the LIKE predicate share this)."""
    return np.asarray([token in str(text).split() for text in texts], dtype=bool)


def labelling_function_corruption(
    y: np.ndarray, texts: np.ndarray, token: str
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the paper's rule: label every email containing ``token`` as spam.

    Returns the corrupted labels and the indices whose label actually
    changed (the ground truth for recall curves).
    """
    y = np.asarray(y)
    mask = contains_token(texts, token)
    y_corrupted = y.copy()
    y_corrupted[mask] = "spam"
    changed = np.flatnonzero(mask & (y != "spam"))
    return y_corrupted, changed
