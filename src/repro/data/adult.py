"""Synthetic Adult ("Census Income") dataset (Sections 6.1.2 and 6.5).

The paper follows [Calmon et al. 2017]: keep only *age*, *education*, and
*gender*, one-hot encoded into 18 binary variables.  That preprocessing
creates massive feature duplication (118 of 6512 training points were
unique), which Section 6.5 shows breaks TwoStep and Loss.

This generator reproduces the same structure:

- ``age_decade`` ∈ {10, 20, ..., 100}  → 10 one-hot columns,
- ``education`` ∈ 6 levels             → 6 one-hot columns,
- ``gender`` ∈ {male, female}          → 2 one-hot columns,

for exactly 18 binary features and at most 120 distinct feature vectors.
The income label depends log-linearly on the three attributes plus noise.
The corruption predicate of Section 6.5 (low income AND male AND 40-50)
is provided as :func:`section65_predicate`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import as_rng

AGE_DECADES = tuple(range(10, 101, 10))  # 10 decades
EDUCATIONS = ("dropout", "hs", "some-college", "bachelors", "masters", "phd")
GENDERS = ("male", "female")
N_FEATURES = len(AGE_DECADES) + len(EDUCATIONS) + len(GENDERS)
CLASSES = (0, 1)  # low / high income


@dataclass
class AdultDataset:
    """Train/query split with raw attributes alongside one-hot features."""

    X_train: np.ndarray
    y_train: np.ndarray
    age_train: np.ndarray
    education_train: np.ndarray
    gender_train: np.ndarray
    X_query: np.ndarray
    y_query: np.ndarray
    age_query: np.ndarray
    education_query: np.ndarray
    gender_query: np.ndarray
    classes: tuple = CLASSES


def _one_hot(values: np.ndarray, vocabulary: tuple) -> np.ndarray:
    index = {item: position for position, item in enumerate(vocabulary)}
    out = np.zeros((values.shape[0], len(vocabulary)))
    for row, value in enumerate(values):
        out[row, index[value]] = 1.0
    return out


def encode_features(
    age_decade: np.ndarray, education: np.ndarray, gender: np.ndarray
) -> np.ndarray:
    """The 18 binary variables of [Calmon et al. 2017]'s preprocessing."""
    return np.hstack(
        [
            _one_hot(np.asarray(age_decade), AGE_DECADES),
            _one_hot(np.asarray(education), EDUCATIONS),
            _one_hot(np.asarray(gender), GENDERS),
        ]
    )


def make_adult(n_train: int = 2000, n_query: int = 1200, seed=0) -> AdultDataset:
    """Generate the synthetic census dataset."""
    rng = as_rng(seed)

    age_logits = np.array([0.6, 1.6, 2.0, 1.9, 1.6, 1.2, 0.8, 0.4, 0.2, 0.1])
    age_probs = np.exp(age_logits) / np.exp(age_logits).sum()
    education_probs = np.array([0.12, 0.32, 0.22, 0.2, 0.1, 0.04])

    # Income model: rises with age until 60 then flattens, rises with
    # education, and is shifted by gender (matching the real dataset's skew).
    age_effect = {10: -2.5, 20: -1.2, 30: -0.2, 40: 0.4, 50: 0.6, 60: 0.5,
                  70: 0.1, 80: -0.4, 90: -0.8, 100: -1.0}
    education_effect = {
        "dropout": -1.5, "hs": -0.6, "some-college": -0.1,
        "bachelors": 0.7, "masters": 1.2, "phd": 1.6,
    }
    gender_effect = {"male": 0.35, "female": -0.35}
    intercept = -0.9

    def sample(n: int):
        age = rng.choice(AGE_DECADES, size=n, p=age_probs)
        education = rng.choice(EDUCATIONS, size=n, p=education_probs)
        gender = rng.choice(GENDERS, size=n, p=[0.67, 0.33])
        logits = np.asarray(
            [
                intercept
                + age_effect[int(a)]
                + education_effect[str(e)]
                + gender_effect[str(g)]
                for a, e, g in zip(age, education, gender)
            ]
        )
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        y = (rng.random(n) < probabilities).astype(int)
        X = encode_features(age, education, gender)
        return X, y, age.astype(int), education.astype(object), gender.astype(object)

    X_train, y_train, age_train, education_train, gender_train = sample(n_train)
    X_query, y_query, age_query, education_query, gender_query = sample(n_query)
    return AdultDataset(
        X_train, y_train, age_train, education_train, gender_train,
        X_query, y_query, age_query, education_query, gender_query,
    )


def section65_predicate(
    y: np.ndarray, age_decade: np.ndarray, gender: np.ndarray
) -> np.ndarray:
    """The Section 6.5 corruption predicate: low income ∧ male ∧ 40-50.

    (Age decade 40 or 50 covers the paper's "40-50 years old" bucket.)
    """
    y = np.asarray(y)
    age_decade = np.asarray(age_decade)
    gender = np.asarray(gender)
    return (y == 0) & (gender == "male") & ((age_decade == 40) | (age_decade == 50))
