"""Synthetic DBLP-Scholar entity-resolution pairs (Section 6.1.2).

The paper uses the Magellan DBLP-Google Scholar dataset: pairs of
bibliographic records with 17 similarity features and a binary
match / non-match label, classified with logistic regression.  The public
pairs are not available offline, so this generator synthesizes pairs whose
*feature geometry* matches what entity-resolution similarity vectors look
like: matches concentrate near high similarity on most features, non-matches
near low similarity, with per-feature informativeness varying (some features
— e.g. "year difference" — are noisy for both classes).  The task is
linearly learnable with realistic class overlap, which is all the paper's
experiments require (labels are then corrupted systematically).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import as_rng

N_FEATURES = 17
CLASSES = ("nonmatch", "match")


@dataclass
class DBLPDataset:
    """Train/query split of synthetic entity-resolution pairs."""

    X_train: np.ndarray
    y_train: np.ndarray
    X_query: np.ndarray
    y_query: np.ndarray
    classes: tuple = CLASSES


def make_dblp(
    n_train: int = 600,
    n_query: int = 400,
    match_rate: float = 0.3,
    noise: float = 0.16,
    seed=0,
) -> DBLPDataset:
    """Generate the synthetic DBLP pairs dataset.

    Args:
        n_train: number of training pairs.
        n_query: number of queried pairs.
        match_rate: fraction of true matches.
        noise: per-feature Gaussian noise scale (controls class overlap).
        seed: RNG seed / generator.
    """
    rng = as_rng(seed)
    # Feature informativeness: most features separate well, a few are weak.
    separation = rng.uniform(0.25, 0.55, size=N_FEATURES)
    separation[-3:] = rng.uniform(0.02, 0.08, size=3)  # noisy features
    center = rng.uniform(0.35, 0.55, size=N_FEATURES)

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        y = (rng.random(n) < match_rate).astype(int)
        signs = np.where(y[:, None] == 1, 1.0, -1.0)
        X = center[None, :] + signs * separation[None, :] / 2.0
        X = X + rng.normal(0.0, noise, size=(n, N_FEATURES))
        X = np.clip(X, 0.0, 1.0)
        labels = np.asarray([CLASSES[value] for value in y], dtype=object)
        return X, labels

    X_train, y_train = sample(n_train)
    X_query, y_query = sample(n_query)
    return DBLPDataset(X_train, y_train, X_query, y_query)
