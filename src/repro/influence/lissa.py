"""LiSSA: stochastic estimation of inverse-Hessian-vector products.

An alternative to conjugate gradients from [Agarwal et al. 2017], used by
[Koh & Liang 2017] for large models.  The recursion::

    u_0 = v
    u_j = v + (I - (H + damping·I)/scale) u_{j-1}

converges to ``scale · (H + damping·I)⁻¹ v`` when the scaled spectral radius
is below one.  This module is an *extension* beyond the paper's evaluation
(which uses CG throughout); the test suite checks LiSSA and CG produce
matching rankings on convex models, and the ablation benchmark compares
their runtime.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..errors import ConvergenceError


def lissa_inverse_hvp(
    hvp: Callable[[np.ndarray], np.ndarray],
    v: np.ndarray,
    damping: float = 0.0,
    scale: float = 10.0,
    iterations: int = 100,
    tol: float = 1e-7,
    raise_on_divergence: bool = True,
) -> np.ndarray:
    """Estimate ``(H + damping·I)⁻¹ v`` via the LiSSA recursion.

    Args:
        hvp: Hessian-vector product oracle.
        v: right-hand side.
        damping: diagonal damping.
        scale: must satisfy ``λ_max(H + damping·I) < scale`` for convergence.
        iterations: recursion depth.
        tol: early-exit threshold on the update norm.
        raise_on_divergence: raise when the iterates blow up (scale too small).
    """
    v = np.asarray(v, dtype=np.float64)
    u = v.copy()
    v_norm = float(np.linalg.norm(v))
    if v_norm == 0.0:
        return np.zeros_like(v)
    previous_norm = np.inf
    for iteration in range(iterations):
        hu = np.asarray(hvp(u), dtype=np.float64) + damping * u
        new_u = v + u - hu / scale
        update_norm = float(np.linalg.norm(new_u - u))
        u = new_u
        current_norm = float(np.linalg.norm(u))
        if current_norm > 1e12 * v_norm or (
            iteration > 10 and current_norm > 10 * previous_norm
        ):
            if raise_on_divergence:
                raise ConvergenceError(
                    f"LiSSA diverged at iteration {iteration}: ‖u‖ = "
                    f"{current_norm:.3e}; increase `scale`"
                )
            break
        previous_norm = current_norm
        if update_norm <= tol * v_norm:
            break
    return u / scale
