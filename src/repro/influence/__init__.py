"""Influence functions: inverse-Hessian solvers and Eq. (4) scoring.

This package owns the numerical core of Rain's rankers — the Koh & Liang
influence machinery behind the TwoStep, Holistic and InfLoss approaches:

``cg``
    Conjugate-gradient solvers for ``(H + λI) x = b`` given only
    Hessian-vector products.  :func:`conjugate_gradient` handles a single
    right-hand side; :func:`block_conjugate_gradient` solves a whole matrix
    of right-hand sides in ONE sweep (every CG iteration issues one batched
    Hessian-matrix product over all still-active columns, with per-column
    convergence tracking).  The block solver is the engine behind batched
    self-influence and multi-query scoring.

``functions``
    :class:`InfluenceAnalyzer` — Eq. (4) scores for a single objective
    (``scores_from_q_grad``), for many objectives at once
    (``scores_from_q_grads``, one block solve per call), and the
    InfLoss statistic (``self_influence``, one block solve for all training
    records; ``self_influence_scalar`` keeps the paper's per-record loop as
    the golden reference).  The analyzer counts its solves
    (``solve_counts``) and records per-column diagnostics
    (``last_cg_results``), supports CG warm starts (``x0``/``X0`` — how
    Rain's train-rank-fix loop reuses the previous iteration's solutions),
    and can share a :class:`PerSampleGradCache` so per-sample gradients
    survive top-k deletions that leave θ* unchanged.

``lissa``
    :func:`lissa_inverse_hvp` — the stochastic-recursion alternative to CG
    from [Agarwal et al. 2017], used in the ablation benchmarks.
"""

from .cg import (
    BlockCGResult,
    CGResult,
    block_conjugate_gradient,
    conjugate_gradient,
)
from .functions import (
    InfluenceAnalyzer,
    PerSampleGradCache,
    q_grad_for_target_predictions,
)
from .lissa import lissa_inverse_hvp

__all__ = [
    "BlockCGResult",
    "CGResult",
    "block_conjugate_gradient",
    "conjugate_gradient",
    "InfluenceAnalyzer",
    "PerSampleGradCache",
    "q_grad_for_target_predictions",
    "lissa_inverse_hvp",
]
