"""Influence functions: CG-based inverse HVPs and Eq. (4) scoring."""

from .cg import CGResult, conjugate_gradient
from .functions import InfluenceAnalyzer, q_grad_for_target_predictions
from .lissa import lissa_inverse_hvp

__all__ = [
    "CGResult",
    "conjugate_gradient",
    "InfluenceAnalyzer",
    "q_grad_for_target_predictions",
    "lissa_inverse_hvp",
]
