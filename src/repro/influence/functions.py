"""Influence-function scoring (Eq. 4 of the paper).

Given a trained model with parameters θ*, a differentiable complaint
encoding ``q(θ)``, and the training set, the influence of upweighting a
training record ``z`` on ``q`` is::

    dq(θ_ε)/dε |_{ε=0}  =  -∇q(θ*)ᵀ H⁻¹_{θ*} ∇ℓ(z, θ*)        (Eq. 4)

Records with large **positive** scores are the ones whose *removal*
decreases ``q`` the most — i.e. best addresses the complaint — so Rain
ranks descending by this score.

The expensive part is the inverse-Hessian factor.  Single objectives
(``u = H⁻¹ ∇q``) go through one scalar CG solve; multi-right-hand-side
workloads — the InfLoss statistic (one RHS per training record) and
multi-query rankings (one RHS per complaint case) — go through ONE
:func:`~repro.influence.cg.block_conjugate_gradient` call, which batches
every Hessian product across all right-hand sides.  The analyzer counts its
solves (``solve_counts``) and keeps per-column CG diagnostics
(``last_cg_results``) so callers can verify exactly how much work a ranking
issued.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from ..ml.base import ClassificationModel
from .cg import BlockCGResult, CGResult, block_conjugate_gradient, conjugate_gradient


class PerSampleGradCache:
    """Caches the ``(n, n_params)`` per-sample gradient matrix across Rain
    iterations.

    The cache is keyed on the exact parameter vector: any refit that moves
    θ invalidates it wholesale (gradients are functions of θ).  When θ is
    unchanged and only *rows* changed — the train-rank-fix loop deleting the
    top-k records — the surviving rows are sliced out of the cached matrix
    instead of being recomputed, which is the "invalidate only the rows
    touched by deletions" contract.
    """

    def __init__(self) -> None:
        self._params_key: bytes | None = None
        self._positions: dict[int, int] | None = None
        self._grads: np.ndarray | None = None
        self.hits = 0
        self.misses = 0

    def invalidate(self) -> None:
        self._params_key = None
        self._positions = None
        self._grads = None

    def get(
        self,
        model: ClassificationModel,
        X: np.ndarray,
        y: np.ndarray,
        row_ids: np.ndarray,
    ) -> np.ndarray:
        """Per-sample gradients for the records ``row_ids`` (global ids
        aligned with the rows of ``X``/``y``)."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        key = model.get_params().tobytes()
        if (
            key == self._params_key
            and self._positions is not None
            and self._grads is not None
        ):
            positions = [self._positions.get(int(rid), -1) for rid in row_ids]
            if -1 not in positions:
                self.hits += 1
                return self._grads[np.asarray(positions, dtype=np.int64)]
        self.misses += 1
        grads = model.per_sample_grads(X, y)
        self._params_key = key
        self._positions = {int(rid): pos for pos, rid in enumerate(row_ids)}
        self._grads = grads
        return grads


class InfluenceAnalyzer:
    """Computes influence scores of training records on scalar objectives."""

    def __init__(
        self,
        model: ClassificationModel,
        X_train: np.ndarray,
        y_train: np.ndarray,
        damping: float = 0.0,
        cg_tol: float = 1e-8,
        cg_max_iter: int | None = None,
        grad_cache: PerSampleGradCache | None = None,
        row_ids: np.ndarray | None = None,
    ) -> None:
        if not model.is_fitted:
            raise ModelError("InfluenceAnalyzer requires a fitted model")
        self.model = model
        self.X_train = np.asarray(X_train, dtype=np.float64)
        self.y_train = np.asarray(y_train)
        self.damping = float(damping)
        self.cg_tol = float(cg_tol)
        self.cg_max_iter = cg_max_iter
        self.grad_cache = grad_cache
        self.row_ids = None if row_ids is None else np.asarray(row_ids, dtype=np.int64)
        # Solve diagnostics: how many CG solves this analyzer issued, the
        # most recent scalar result, and — for block solves — the per-column
        # results of the most recent block (satellite of the batched engine:
        # the old per-record loop clobbered `last_cg_result` n times).
        self.solve_counts: dict[str, int] = {"scalar": 0, "block": 0}
        self.last_cg_result: CGResult | None = None
        self.last_cg_results: list[CGResult] = []
        self.last_block_cg_result: BlockCGResult | None = None

    def spawn(self) -> "InfluenceAnalyzer":
        """An independent analyzer over the same data and settings.

        The serving layer spawns one per solve shard so concurrent block
        solves don't race on the parent's CG diagnostics.  The per-sample
        gradient cache is shared (callers prewarm it on the driver thread
        via :meth:`per_sample_grads` before fanning out, making later
        lookups pure reads).
        """
        return InfluenceAnalyzer(
            self.model,
            self.X_train,
            self.y_train,
            damping=self.damping,
            cg_tol=self.cg_tol,
            cg_max_iter=self.cg_max_iter,
            grad_cache=self.grad_cache,
            row_ids=self.row_ids,
        )

    # -- core ------------------------------------------------------------------

    def inverse_hvp(self, v: np.ndarray, x0: np.ndarray | None = None) -> np.ndarray:
        """``(H + damping·I)⁻¹ v`` for the regularized training Hessian.

        ``x0`` optionally warm-starts CG (Rain passes the previous
        iteration's solution; θ* barely moves after a top-k deletion, so the
        solve typically finishes in a fraction of the cold iterations).
        """
        result = conjugate_gradient(
            lambda w: self.model.hvp(self.X_train, self.y_train, w),
            np.asarray(v, dtype=np.float64),
            damping=self.damping,
            tol=self.cg_tol,
            max_iter=self.cg_max_iter,
            x0=x0,
        )
        self.solve_counts["scalar"] += 1
        self.last_cg_result = result
        return result.x

    def inverse_hvp_block(
        self, V: np.ndarray, X0: np.ndarray | None = None
    ) -> np.ndarray:
        """``(H + damping·I)⁻¹ V`` for a whole matrix of right-hand sides.

        One :func:`block_conjugate_gradient` call no matter how many columns
        ``V`` has; per-column diagnostics land in ``last_cg_results`` /
        ``last_block_cg_result``.
        """
        result = block_conjugate_gradient(
            lambda W: self.model.hvp_block(self.X_train, self.y_train, W),
            np.asarray(V, dtype=np.float64),
            damping=self.damping,
            tol=self.cg_tol,
            max_iter=self.cg_max_iter,
            X0=X0,
        )
        self.solve_counts["block"] += 1
        self.last_block_cg_result = result
        self.last_cg_results = result.columns()
        return result.X

    def per_sample_grads(self) -> np.ndarray:
        """Per-sample training-loss gradients, via the shared cache if one
        was provided (Rain threads a cache through its iterations)."""
        if self.grad_cache is not None and self.row_ids is not None:
            return self.grad_cache.get(
                self.model, self.X_train, self.y_train, self.row_ids
            )
        return self.model.per_sample_grads(self.X_train, self.y_train)

    def scores_from_q_grad(
        self, q_grad: np.ndarray, x0: np.ndarray | None = None
    ) -> np.ndarray:
        """Eq. (4) for every training record given ``∇q(θ*)``.

        Returns the vector ``s`` with ``s_i = -∇q(θ*)ᵀ H⁻¹ ∇ℓ(z_i, θ*)``;
        rank descending to get Rain's top-k deletions.
        """
        q_grad = np.asarray(q_grad, dtype=np.float64)
        if q_grad.shape != (self.model.n_params,):
            raise ModelError(
                f"q_grad has shape {q_grad.shape}, expected ({self.model.n_params},)"
            )
        u = self.inverse_hvp(q_grad, x0=x0)
        return -self.model.grad_dot(self.X_train, self.y_train, u)

    def scores_from_q_grads(
        self, q_grads: np.ndarray, X0: np.ndarray | None = None
    ) -> np.ndarray:
        """Eq. (4) for several objectives at once — ONE block solve.

        ``q_grads`` stacks ``m`` objective gradients as rows ``(m, n_params)``;
        the result is the ``(m, n)`` score matrix whose row ``j`` equals
        ``scores_from_q_grad(q_grads[j])`` (exactly for linear models; for
        neural models the scalar path contracts with finite-difference
        ``grad_dot`` while this one uses exact per-sample gradients, so the
        two agree only to FD error).  This is how multi-query rankings
        amortize the inverse-Hessian factor across complaint cases.
        """
        Q = np.asarray(q_grads, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[1] != self.model.n_params:
            raise ModelError(
                f"q_grads has shape {Q.shape}, expected (m, {self.model.n_params})"
            )
        U = self.inverse_hvp_block(Q.T, X0=None if X0 is None else np.asarray(X0).T)
        return -self.model.grad_dot_block(self.X_train, self.y_train, U).T

    def removal_effect_on_q(self, q_grad: np.ndarray, indices: np.ndarray) -> float:
        """First-order estimate of Δq when deleting the records ``indices``.

        Deleting record ``i`` corresponds to ε = -1/n in Eq. (3), so
        Δq ≈ -(1/n) Σ_{i∈S} score_i.
        """
        scores = self.scores_from_q_grad(q_grad)
        n = self.X_train.shape[0]
        return float(-np.sum(scores[np.asarray(indices, dtype=np.int64)]) / n)

    # -- loss-based baselines -----------------------------------------------------

    def self_influence(
        self, max_records: int | None = None, X0: np.ndarray | None = None
    ) -> np.ndarray:
        """The InfLoss statistic: ``-∇ℓ(z,θ*)ᵀ H⁻¹ ∇ℓ(z,θ*)`` per record.

        Scores are ≤ 0 for convex models; *large negative* values mean the
        record's own loss grows fastest when it is removed (the memorized
        records InfLoss ranks at the top).  The paper reports InfLoss as "by
        far the slowest" because it needs one inverse-HVP per training
        record; here all records share ONE block CG solve (every Hessian
        product batched across the still-active columns), with
        ``max_records`` truncating the block and ``X0`` optionally
        warm-starting it column-by-column.
        """
        grads = self.per_sample_grads()
        n = grads.shape[0] if max_records is None else min(max_records, grads.shape[0])
        scores = np.zeros(grads.shape[0])
        if n == 0:
            self.last_block_cg_result = None
            self.last_cg_results = []
            return scores
        if X0 is not None and X0.shape != (self.model.n_params, n):
            X0 = None
        U = self.inverse_hvp_block(grads[:n].T, X0=X0)
        scores[:n] = -np.einsum("ij,ji->i", grads[:n], U)
        return scores

    def self_influence_scalar(self, max_records: int | None = None) -> np.ndarray:
        """Per-record scalar-CG reference for :meth:`self_influence`.

        The paper-faithful (and paper-slow) loop: one full CG solve per
        training record.  Kept as the golden implementation the block solve
        is tested against, and for the fig5 runtime table's before/after
        comparison.  Each solve's :class:`CGResult` is appended to
        ``last_cg_results`` so the diagnostics reflect the whole sweep rather
        than the last record only.
        """
        grads = self.per_sample_grads()
        n = grads.shape[0] if max_records is None else min(max_records, grads.shape[0])
        scores = np.zeros(grads.shape[0])
        self.last_cg_results = []
        for index in range(n):
            u = self.inverse_hvp(grads[index])
            self.last_cg_results.append(self.last_cg_result)
            scores[index] = -float(grads[index] @ u)
        return scores

    def training_losses(self) -> np.ndarray:
        """Per-record training losses (the Loss baseline statistic)."""
        return self.model.per_sample_losses(self.X_train, self.y_train)


def q_grad_for_target_predictions(
    model: ClassificationModel,
    X: np.ndarray,
    target_labels: np.ndarray,
) -> np.ndarray:
    """∇q for TwoStep's ``q(θ) = -Σ_i p_{t_i}(x_i; θ)`` (Section 5.2).

    ``target_labels`` are the ILP-corrected labels t_i; minimizing ``q``
    pushes the model toward predicting them.
    """
    X = np.asarray(X, dtype=np.float64)
    target_idx = model.labels_to_indices(target_labels)
    weights = np.zeros((X.shape[0], model.n_classes))
    weights[np.arange(X.shape[0]), target_idx] = -1.0
    return model.prob_vjp(X, weights)
