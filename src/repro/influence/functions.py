"""Influence-function scoring (Eq. 4 of the paper).

Given a trained model with parameters θ*, a differentiable complaint
encoding ``q(θ)``, and the training set, the influence of upweighting a
training record ``z`` on ``q`` is::

    dq(θ_ε)/dε |_{ε=0}  =  -∇q(θ*)ᵀ H⁻¹_{θ*} ∇ℓ(z, θ*)        (Eq. 4)

Records with large **positive** scores are the ones whose *removal*
decreases ``q`` the most — i.e. best addresses the complaint — so Rain
ranks descending by this score.

The expensive part, ``u = H⁻¹ ∇q``, is computed once per ranking via
conjugate gradients; per-record scores are then the per-sample directional
derivatives ``-∇ℓ(z_i)ᵀ u``, delegated to the model (vectorized for linear
models, two forward passes for neural ones).
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from ..ml.base import ClassificationModel
from .cg import CGResult, conjugate_gradient


class InfluenceAnalyzer:
    """Computes influence scores of training records on scalar objectives."""

    def __init__(
        self,
        model: ClassificationModel,
        X_train: np.ndarray,
        y_train: np.ndarray,
        damping: float = 0.0,
        cg_tol: float = 1e-8,
        cg_max_iter: int | None = None,
    ) -> None:
        if not model.is_fitted:
            raise ModelError("InfluenceAnalyzer requires a fitted model")
        self.model = model
        self.X_train = np.asarray(X_train, dtype=np.float64)
        self.y_train = np.asarray(y_train)
        self.damping = float(damping)
        self.cg_tol = float(cg_tol)
        self.cg_max_iter = cg_max_iter
        self.last_cg_result: CGResult | None = None

    # -- core ------------------------------------------------------------------

    def inverse_hvp(self, v: np.ndarray) -> np.ndarray:
        """``(H + damping·I)⁻¹ v`` for the regularized training Hessian."""
        result = conjugate_gradient(
            lambda w: self.model.hvp(self.X_train, self.y_train, w),
            np.asarray(v, dtype=np.float64),
            damping=self.damping,
            tol=self.cg_tol,
            max_iter=self.cg_max_iter,
        )
        self.last_cg_result = result
        return result.x

    def scores_from_q_grad(self, q_grad: np.ndarray) -> np.ndarray:
        """Eq. (4) for every training record given ``∇q(θ*)``.

        Returns the vector ``s`` with ``s_i = -∇q(θ*)ᵀ H⁻¹ ∇ℓ(z_i, θ*)``;
        rank descending to get Rain's top-k deletions.
        """
        q_grad = np.asarray(q_grad, dtype=np.float64)
        if q_grad.shape != (self.model.n_params,):
            raise ModelError(
                f"q_grad has shape {q_grad.shape}, expected ({self.model.n_params},)"
            )
        u = self.inverse_hvp(q_grad)
        return -self.model.grad_dot(self.X_train, self.y_train, u)

    def removal_effect_on_q(self, q_grad: np.ndarray, indices: np.ndarray) -> float:
        """First-order estimate of Δq when deleting the records ``indices``.

        Deleting record ``i`` corresponds to ε = -1/n in Eq. (3), so
        Δq ≈ -(1/n) Σ_{i∈S} score_i.
        """
        scores = self.scores_from_q_grad(q_grad)
        n = self.X_train.shape[0]
        return float(-np.sum(scores[np.asarray(indices, dtype=np.int64)]) / n)

    # -- loss-based baselines -----------------------------------------------------

    def self_influence(self, max_records: int | None = None) -> np.ndarray:
        """The InfLoss statistic: ``-∇ℓ(z,θ*)ᵀ H⁻¹ ∇ℓ(z,θ*)`` per record.

        Scores are ≤ 0 for convex models; *large negative* values mean the
        record's own loss grows fastest when it is removed (the memorized
        records InfLoss ranks at the top).  This requires one CG solve per
        training record, which is why the paper reports it as "by far the
        slowest" — ``max_records`` truncates for practicality.
        """
        grads = self.model.per_sample_grads(self.X_train, self.y_train)
        n = grads.shape[0] if max_records is None else min(max_records, grads.shape[0])
        scores = np.zeros(grads.shape[0])
        for index in range(n):
            u = self.inverse_hvp(grads[index])
            scores[index] = -float(grads[index] @ u)
        return scores

    def training_losses(self) -> np.ndarray:
        """Per-record training losses (the Loss baseline statistic)."""
        return self.model.per_sample_losses(self.X_train, self.y_train)


def q_grad_for_target_predictions(
    model: ClassificationModel,
    X: np.ndarray,
    target_labels: np.ndarray,
) -> np.ndarray:
    """∇q for TwoStep's ``q(θ) = -Σ_i p_{t_i}(x_i; θ)`` (Section 5.2).

    ``target_labels`` are the ILP-corrected labels t_i; minimizing ``q``
    pushes the model toward predicting them.
    """
    X = np.asarray(X, dtype=np.float64)
    target_idx = model.labels_to_indices(target_labels)
    weights = np.zeros((X.shape[0], model.n_classes))
    weights[np.arange(X.shape[0]), target_idx] = -1.0
    return model.prob_vjp(X, weights)
