"""Conjugate-gradient solvers for inverse-Hessian-vector products.

The paper (Section 4.1) follows [Koh & Liang 2017; Martens 2010]: instead of
inverting the training-loss Hessian (O(d³)), pose ``H u = v`` as a linear
system and solve it with conjugate gradients, where each iteration needs only
one Hessian-vector product.  A damping term ``(H + damping·I) u = v`` keeps
the system positive definite for non-convex (neural) models.

Two solvers live here:

- :func:`conjugate_gradient` — the classic single right-hand-side solve;
- :func:`block_conjugate_gradient` — ``(H + λI) X = B`` for a whole matrix
  of right-hand sides at once.  Each column runs the standard CG recurrence,
  but every iteration issues **one** batched Hessian-matrix product over all
  still-active columns, so the per-iteration work is a handful of BLAS-3
  calls instead of thousands of tiny Python-level matvecs.  Converged (and
  negative-curvature) columns are frozen and drop out of the batch, so the
  solver tracks convergence per column exactly like ``k`` scalar solves.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError


@dataclass
class CGResult:
    """Solution plus convergence diagnostics."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def conjugate_gradient(
    hvp: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    damping: float = 0.0,
    max_iter: int | None = None,
    tol: float = 1e-8,
    x0: np.ndarray | None = None,
    raise_on_failure: bool = False,
) -> CGResult:
    """Solve ``(H + damping I) x = b`` given only products ``v ↦ H v``.

    Args:
        hvp: Hessian-vector product oracle.
        b: right-hand side.
        damping: Tikhonov damping added to the diagonal.
        max_iter: iteration cap (default ``10 * dim`` capped at 1000).
        tol: relative residual tolerance ``‖r‖ ≤ tol·‖b‖``.
        x0: optional warm start.
        raise_on_failure: raise :class:`ConvergenceError` instead of
            returning a non-converged result.
    """
    b = np.asarray(b, dtype=np.float64)
    dim = b.shape[0]
    if max_iter is None:
        max_iter = min(10 * dim, 1000)

    def operator(v: np.ndarray) -> np.ndarray:
        out = np.asarray(hvp(v), dtype=np.float64)
        if damping:
            out = out + damping * v
        return out

    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - operator(x) if x.any() else b.copy()
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(np.zeros_like(b), 0, 0.0, True)
    threshold = (tol * b_norm) ** 2

    iterations = 0
    for iterations in range(1, max_iter + 1):
        if rs_old <= threshold:
            iterations -= 1
            break
        hp = operator(p)
        denominator = float(p @ hp)
        if denominator <= 0:
            # Negative curvature: the (possibly non-convex) Hessian needs more
            # damping; stop at the best iterate found so far.
            break
        alpha = rs_old / denominator
        x = x + alpha * p
        r = r - alpha * hp
        rs_new = float(r @ r)
        if rs_new <= threshold:
            rs_old = rs_new
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new

    residual_norm = float(np.sqrt(rs_old))
    converged = residual_norm <= tol * b_norm
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"CG did not converge in {iterations} iterations "
            f"(residual {residual_norm:.3e}, target {tol * b_norm:.3e})"
        )
    return CGResult(x, iterations, residual_norm, converged)


@dataclass
class BlockCGResult:
    """Solution matrix plus per-column convergence diagnostics.

    ``X[:, j]`` solves ``(H + damping·I) x = B[:, j]``; ``iterations``,
    ``residual_norms`` and ``converged`` are aligned with the columns of
    ``B``.  ``block_hvp_calls`` counts the batched operator applications —
    the quantity a block solve actually amortizes.
    """

    X: np.ndarray
    iterations: np.ndarray
    residual_norms: np.ndarray
    converged: np.ndarray
    block_hvp_calls: int

    @property
    def n_columns(self) -> int:
        return self.X.shape[1]

    @property
    def all_converged(self) -> bool:
        return bool(np.all(self.converged))

    def column(self, index: int) -> CGResult:
        """Diagnostics of column ``index`` as a scalar-solve :class:`CGResult`."""
        return CGResult(
            x=self.X[:, index].copy(),
            iterations=int(self.iterations[index]),
            residual_norm=float(self.residual_norms[index]),
            converged=bool(self.converged[index]),
        )

    def columns(self) -> list[CGResult]:
        return [self.column(index) for index in range(self.n_columns)]

    def summary(self) -> dict:
        """Compact diagnostics dict (what Rain stores per iteration)."""
        if self.n_columns == 0:
            return {
                "columns": 0, "converged": 0, "max_iterations": 0,
                "max_residual_norm": 0.0, "block_hvp_calls": self.block_hvp_calls,
            }
        return {
            "columns": self.n_columns,
            "converged": int(np.sum(self.converged)),
            "max_iterations": int(np.max(self.iterations)),
            "max_residual_norm": float(np.max(self.residual_norms)),
            "block_hvp_calls": self.block_hvp_calls,
        }


def block_conjugate_gradient(
    hvp_block: Callable[[np.ndarray], np.ndarray],
    B: np.ndarray,
    damping: float = 0.0,
    max_iter: int | None = None,
    tol: float = 1e-8,
    X0: np.ndarray | None = None,
    raise_on_failure: bool = False,
) -> BlockCGResult:
    """Solve ``(H + damping I) X = B`` for all columns of ``B`` at once.

    Args:
        hvp_block: batched oracle mapping a ``(dim, k)`` matrix ``V`` to
            ``H V`` (one column per right-hand side).
        B: ``(dim, k)`` matrix of right-hand sides.
        damping: Tikhonov damping added to the diagonal.
        max_iter: per-column iteration cap (default ``10 * dim`` capped at
            1000, matching :func:`conjugate_gradient`).
        tol: per-column relative residual tolerance ``‖r_j‖ ≤ tol·‖b_j‖``.
        X0: optional ``(dim, k)`` warm start, one column per RHS.
        raise_on_failure: raise :class:`ConvergenceError` if any column fails
            to converge.

    Columns follow the scalar recurrence independently (per-column step
    sizes), so each solution matches ``conjugate_gradient`` on that column
    up to floating-point association; zero right-hand sides return zero
    immediately and negative-curvature columns freeze at their best iterate,
    also matching the scalar solver.
    """
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValueError(f"B must be a (dim, k) matrix, got shape {B.shape}")
    dim, n_rhs = B.shape
    if max_iter is None:
        max_iter = min(10 * dim, 1000)

    def operator(V: np.ndarray) -> np.ndarray:
        out = np.asarray(hvp_block(V), dtype=np.float64)
        if out.shape != V.shape:
            raise ValueError(
                f"hvp_block returned shape {out.shape}, expected {V.shape}"
            )
        if damping:
            out = out + damping * V
        return out

    b_norms = np.linalg.norm(B, axis=0)
    zero_rhs = b_norms == 0.0

    if X0 is None:
        X = np.zeros_like(B)
    else:
        X = np.asarray(X0, dtype=np.float64).copy()
        if X.shape != B.shape:
            raise ValueError(f"X0 has shape {X.shape}, expected {B.shape}")
    # Zero right-hand sides have the exact solution 0 regardless of X0.
    X[:, zero_rhs] = 0.0

    hvp_calls = 0
    if n_rhs and X.any():
        R = B - operator(X)
        hvp_calls += 1
    else:
        R = B.copy()
    P = R.copy()
    rs = np.einsum("ij,ij->j", R, R)
    thresholds = (tol * b_norms) ** 2

    iterations = np.zeros(n_rhs, dtype=np.int64)
    active = (~zero_rhs) & (rs > thresholds)

    for _ in range(max_iter):
        indices = np.flatnonzero(active)
        if indices.size == 0:
            break
        HP = operator(P[:, indices])
        hvp_calls += 1
        denominators = np.einsum("ij,ij->j", P[:, indices], HP)
        # Negative curvature: freeze those columns at the best iterate found.
        bad = denominators <= 0
        if bad.any():
            active[indices[bad]] = False
            good = ~bad
            indices = indices[good]
            HP = HP[:, good]
            denominators = denominators[good]
            if indices.size == 0:
                continue
        alphas = rs[indices] / denominators
        X[:, indices] += P[:, indices] * alphas
        R[:, indices] -= HP * alphas
        iterations[indices] += 1
        rs_new = np.einsum("ij,ij->j", R[:, indices], R[:, indices])
        betas = rs_new / rs[indices]
        rs[indices] = rs_new
        done = rs_new <= thresholds[indices]
        if done.any():
            active[indices[done]] = False
        continuing = indices[~done]
        if continuing.size:
            P[:, continuing] = R[:, continuing] + P[:, continuing] * betas[~done]

    residual_norms = np.sqrt(rs)
    converged = residual_norms <= tol * b_norms
    converged[zero_rhs] = True
    if raise_on_failure and not np.all(converged):
        worst = int(np.argmax(residual_norms / np.where(b_norms == 0, 1.0, b_norms)))
        raise ConvergenceError(
            f"block CG left {int(np.sum(~converged))}/{n_rhs} columns "
            f"unconverged (worst column {worst}: residual "
            f"{residual_norms[worst]:.3e}, target {tol * b_norms[worst]:.3e})"
        )
    return BlockCGResult(
        X=X,
        iterations=iterations,
        residual_norms=residual_norms,
        converged=converged,
        block_hvp_calls=hvp_calls,
    )
