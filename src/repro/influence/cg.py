"""Conjugate-gradient solver for inverse-Hessian-vector products.

The paper (Section 4.1) follows [Koh & Liang 2017; Martens 2010]: instead of
inverting the training-loss Hessian (O(d³)), pose ``H u = v`` as a linear
system and solve it with conjugate gradients, where each iteration needs only
one Hessian-vector product.  A damping term ``(H + damping·I) u = v`` keeps
the system positive definite for non-convex (neural) models.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError


@dataclass
class CGResult:
    """Solution plus convergence diagnostics."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def conjugate_gradient(
    hvp: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    damping: float = 0.0,
    max_iter: int | None = None,
    tol: float = 1e-8,
    x0: np.ndarray | None = None,
    raise_on_failure: bool = False,
) -> CGResult:
    """Solve ``(H + damping I) x = b`` given only products ``v ↦ H v``.

    Args:
        hvp: Hessian-vector product oracle.
        b: right-hand side.
        damping: Tikhonov damping added to the diagonal.
        max_iter: iteration cap (default ``10 * dim`` capped at 1000).
        tol: relative residual tolerance ``‖r‖ ≤ tol·‖b‖``.
        x0: optional warm start.
        raise_on_failure: raise :class:`ConvergenceError` instead of
            returning a non-converged result.
    """
    b = np.asarray(b, dtype=np.float64)
    dim = b.shape[0]
    if max_iter is None:
        max_iter = min(10 * dim, 1000)

    def operator(v: np.ndarray) -> np.ndarray:
        out = np.asarray(hvp(v), dtype=np.float64)
        if damping:
            out = out + damping * v
        return out

    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - operator(x) if x.any() else b.copy()
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(np.zeros_like(b), 0, 0.0, True)
    threshold = (tol * b_norm) ** 2

    iterations = 0
    for iterations in range(1, max_iter + 1):
        if rs_old <= threshold:
            iterations -= 1
            break
        hp = operator(p)
        denominator = float(p @ hp)
        if denominator <= 0:
            # Negative curvature: the (possibly non-convex) Hessian needs more
            # damping; stop at the best iterate found so far.
            break
        alpha = rs_old / denominator
        x = x + alpha * p
        r = r - alpha * hp
        rs_new = float(r @ r)
        if rs_new <= threshold:
            rs_old = rs_new
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new

    residual_norm = float(np.sqrt(rs_old))
    converged = residual_norm <= tol * b_norm
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"CG did not converge in {iterations} iterations "
            f"(residual {residual_norm:.3e}, target {tol * b_norm:.3e})"
        )
    return CGResult(x, iterations, residual_norm, converged)
