"""Exception hierarchy for the Rain reproduction.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch library failures without masking programming errors (``TypeError``,
``ValueError`` from numpy, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relation/column was used inconsistently with its schema."""


class QueryError(ReproError):
    """A query is malformed or references unknown relations/columns."""


class SQLSyntaxError(QueryError):
    """The SQL text could not be parsed."""


class UnsupportedQueryError(QueryError):
    """The query parses but lies outside the supported SPJA fragment."""

    def __init__(self, message: str, *, feature: str | None = None) -> None:
        super().__init__(message)
        self.feature = feature


class ProvenanceError(ReproError):
    """Lineage/provenance capture failed or was requested when disabled."""


class ModelError(ReproError):
    """An ML model was misconfigured or used before fitting."""


class NotFittedError(ModelError):
    """Model parameters were requested before :meth:`fit` was called."""


class ConvergenceError(ModelError):
    """An iterative routine (training, CG) failed to converge."""


class ILPError(ReproError):
    """The ILP is malformed or could not be solved."""


class InfeasibleError(ILPError):
    """The ILP has no feasible point."""


class ILPTimeoutError(ILPError):
    """Branch & bound exceeded its node or time budget."""


class ComplaintError(ReproError):
    """A complaint refers to a missing output tuple/attribute or is invalid."""


class RelaxationError(ReproError):
    """A provenance polynomial could not be relaxed to a differentiable form."""


class DebuggingError(ReproError):
    """The Rain train-rank-fix loop hit an unrecoverable state."""
