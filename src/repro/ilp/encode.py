"""Complaints + provenance → 0-1 ILP (the TwoStep SQL step, Section 5.2).

Following Tiresias [Meliou & Suciu 2012], the *marked attribute* is the
model prediction: each inference site ``i`` gets one binary variable
``y[i, c]`` per class with ``Σ_c y[i, c] = 1``; the objective minimizes the
number of prediction changes ``Σ_i (1 - y[i, r_i])`` where ``r_i`` is the
current prediction.  Complaints become linear constraints over the boolean
provenance (compound conditions are linearized with auxiliary variables and
the standard AND/OR linking inequalities).

A satisfying assignment is read back as a per-site *target labelling*
``t_i``; sites with ``t_i ≠ r_i`` are the marked mispredictions handed to
the influence step.

Two encoders produce byte-identical programs:

- :class:`TiresiasEncoder` — the golden reference; walks expression trees
  recursively, one ``add_var``/``add_constraint`` per node.
- :class:`CompiledILPEncoder` — the array path for compiled-provenance
  results; allocates aux variables in bulk per complaint, emits the
  AND/OR linking inequalities as CSR constraint blocks straight from the
  :class:`~repro.relational.compile.NodePool` arrays, and dedups shared
  subtrees across complaints by keying aux variables on canonical pool
  node ids.  Variable allocation order (DFS preorder), constraint order
  (postorder, child rows then sum row, complaint row last) and
  within-row coefficient order all replicate the tree walk exactly, so
  optimal solutions *and* the enumeration order of tied optima match.

:func:`make_encoder` picks between them (``REPRO_ILP_ENCODER`` /
``ilp_encoder=`` knobs; compiled is the default when the result carries
compiled provenance).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..analysis import knobs
from ..complaints.complaint import (
    PredictionComplaint,
    TupleComplaint,
    ValueComplaint,
)
from ..errors import ComplaintError, ILPError
from ..relational import provenance as prov
from ..relational.compile import (
    OP_ADD,
    OP_AND,
    OP_ATOM,
    OP_CONST,
    OP_DIV,
    OP_MUL,
    OP_NOT,
    OP_OR,
    TRUE_NODE,
    _flat_ranges,
)
from ..relational.executor import QueryResult
from .model import BinaryProgram
from .solver import ILPSolution

Affine = tuple[dict[int, float], float]

# Back-compat aliases; the registry in repro.analysis.knobs is canonical.
ENCODER_ENV_VAR = knobs.ILP_ENCODER.env_var
_ENCODER_CHOICES = knobs.ILP_ENCODER.choices


def resolve_ilp_encoder(choice: str | None = None) -> str:
    """Resolve the encoder knob: explicit argument, else the registered
    ``REPRO_ILP_ENCODER`` environment knob, else compiled."""
    if choice is None:
        choice = knobs.read("ilp_encoder").strip() or "compiled"
    if choice not in _ENCODER_CHOICES:
        raise ILPError(
            f"ilp_encoder must be one of {_ENCODER_CHOICES}, got {choice!r}"
        )
    return choice


def make_encoder(result: QueryResult, choice: str | None = None) -> "TiresiasEncoder":
    """The TwoStep encoder for this result: array path when provenance is compiled.

    Tree-mode results always get the tree-walking reference encoder; the
    ``REPRO_ILP_ENCODER=tree`` escape hatch forces it for compiled results
    too (both encoders build byte-identical programs).
    """
    if resolve_ilp_encoder(choice) == "compiled" and getattr(
        result, "compiled", False
    ):
        return CompiledILPEncoder(result)
    return TiresiasEncoder(result)


class _ExprKey:
    """Identity key for an aux-cache entry that pins its expression alive.

    Keying the cache on a bare ``id(expr)`` is unsound for lazily built
    trees: once an expression is garbage collected its id can be reused by
    a *different* subexpression, silently merging the two.  The wrapper
    holds a strong reference (the cache keeps the key), so the id stays
    taken for as long as the entry exists.
    """

    __slots__ = ("expr",)

    def __init__(self, expr) -> None:
        self.expr = expr

    def __hash__(self) -> int:
        return hash(id(self.expr))

    def __eq__(self, other) -> bool:
        return isinstance(other, _ExprKey) and self.expr is other.expr


def _affine_add(a: Affine, b: Affine, scale: float = 1.0) -> Affine:
    coeffs = dict(a[0])
    for index, coeff in b[0].items():
        coeffs[index] = coeffs.get(index, 0.0) + scale * coeff
    return coeffs, a[1] + scale * b[1]


def _affine_scale(a: Affine, scale: float) -> Affine:
    return {index: coeff * scale for index, coeff in a[0].items()}, a[1] * scale


class TiresiasEncoder:
    """Builds the TwoStep ILP for one debug-mode query result."""

    def __init__(self, result: QueryResult) -> None:
        if not result.debug:
            raise ILPError("TwoStep needs a debug-mode query result")
        self.result = result
        self.runtime = result.runtime
        self.program = BinaryProgram()

        self.site_ids = list(range(len(self.runtime.sites)))
        if not self.site_ids:
            raise ILPError("the query contains no model inference; nothing to fix")
        self.classes_by_site: dict[int, list] = {}
        self.current_labels: dict[int, object] = dict(
            enumerate(self.runtime.site_labels())
        )
        # (site_id, label) -> y variable index
        self.y_vars: dict[tuple[int, object], int] = {}
        # Aux-variable cache keyed by canonical pool node id when the
        # expression came from a compiled pool, else by an identity key
        # that keeps the expression alive (see _aux_key / _ExprKey).
        self._aux_cache: dict[object, Affine] = {}
        self._pool = getattr(result, "pool", None) if getattr(
            result, "compiled", False
        ) else None

        # One run of the site registry shares a model, so variables and
        # one-hot constraints are laid out run by run in bulk.
        classes_of_model: dict[str, list] = {}
        for start, model_name, _relation, rows in self.runtime.sites.runs():
            classes = classes_of_model.get(model_name)
            if classes is None:
                classes = self.runtime.model_classes(model_name)
                classes_of_model[model_name] = classes
            run_sites = range(start, start + rows.shape[0])
            names = [
                f"y[{site_id},{label}]" for site_id in run_sites for label in classes
            ]
            first = self.program.add_vars(names).start
            k = len(classes)
            self.y_vars.update(
                {
                    (site_id, label): first + offset * k + column
                    for offset, site_id in enumerate(run_sites)
                    for column, label in enumerate(classes)
                }
            )
            self.classes_by_site.update(dict.fromkeys(run_sites, classes))
            for offset in range(rows.shape[0]):
                base = first + offset * k
                self.program.add_constraint(
                    {base + column: 1.0 for column in range(k)}, "=", 1.0
                )

        # Objective: number of changed predictions.
        objective: dict[int, float] = {}
        constant = 0.0
        for site_id in self.site_ids:
            current = self.current_labels[site_id]
            objective[self.y_vars[(site_id, current)]] = -1.0
            constant += 1.0
        self.program.set_objective(objective, constant)

    # -- boolean linearization ---------------------------------------------------

    def _aux_key(self, expr: prov.BoolExpr) -> object:
        """Stable aux-cache key: canonical pool node id when known.

        Trees materialized from a compiled pool share one canonical node
        per structurally-distinct subexpression, so node-id keys let the
        array encoder and this tree walk share one cache.  Everything else
        gets an identity wrapper that pins the object (``id()`` alone can
        be recycled after GC, merging distinct subexpressions).
        """
        if self._pool is not None:
            node = self._pool.node_for_expr(expr)
            if node is not None:
                return node
        return _ExprKey(expr)

    def bool_affine(self, expr: prov.BoolExpr) -> Affine:
        """Affine form whose value equals the boolean expression's truth."""
        if isinstance(expr, prov.TrueExpr):
            return {}, 1.0
        if isinstance(expr, prov.FalseExpr):
            return {}, 0.0
        if isinstance(expr, prov.PredIs):
            key = (expr.site_id, expr.label)
            if key not in self.y_vars:
                raise ILPError(f"atom {expr!r} refers to an unknown site/class")
            return {self.y_vars[key]: 1.0}, 0.0
        if isinstance(expr, prov.NotExpr):
            inner = self.bool_affine(expr.child)
            return _affine_add(({}, 1.0), inner, scale=-1.0)
        key = self._aux_key(expr)
        cached = self._aux_cache.get(key)
        if cached is not None:
            return cached
        if isinstance(expr, prov.AndExpr):
            affine = self._linearize_and(expr)
        elif isinstance(expr, prov.OrExpr):
            affine = self._linearize_or(expr)
        else:
            raise ILPError(f"cannot linearize {type(expr).__name__}")
        self._aux_cache[key] = affine
        return affine

    def _linearize_and(self, expr: prov.AndExpr) -> Affine:
        z = self.program.add_var(f"and_{len(self._aux_cache)}")
        children = [self.bool_affine(child) for child in expr.children]
        # z <= child_i  →  z - child_i <= 0
        for child in children:
            coeffs = {z: 1.0}
            for index, coeff in child[0].items():
                coeffs[index] = coeffs.get(index, 0.0) - coeff
            self.program.add_constraint(coeffs, "<=", child[1])
        # z >= Σ child_i - (k - 1)
        total: Affine = ({}, 0.0)
        for child in children:
            total = _affine_add(total, child)
        coeffs = {z: 1.0}
        for index, coeff in total[0].items():
            coeffs[index] = coeffs.get(index, 0.0) - coeff
        self.program.add_constraint(coeffs, ">=", total[1] - (len(children) - 1))
        return {z: 1.0}, 0.0

    def _linearize_or(self, expr: prov.OrExpr) -> Affine:
        z = self.program.add_var(f"or_{len(self._aux_cache)}")
        children = [self.bool_affine(child) for child in expr.children]
        # z >= child_i
        for child in children:
            coeffs = {z: 1.0}
            for index, coeff in child[0].items():
                coeffs[index] = coeffs.get(index, 0.0) - coeff
            self.program.add_constraint(coeffs, ">=", child[1])
        # z <= Σ child_i
        total: Affine = ({}, 0.0)
        for child in children:
            total = _affine_add(total, child)
        coeffs = {z: 1.0}
        for index, coeff in total[0].items():
            coeffs[index] = coeffs.get(index, 0.0) - coeff
        self.program.add_constraint(coeffs, "<=", total[1])
        return {z: 1.0}, 0.0

    # -- numeric linearization ------------------------------------------------------

    def num_affine(self, expr: prov.NumExpr) -> Affine:
        if isinstance(expr, prov.ConstNum):
            return {}, expr.value
        if isinstance(expr, prov.BoolAsNum):
            return self.bool_affine(expr.expr)
        if isinstance(expr, prov.LinearSum):
            total: Affine = ({}, 0.0)
            for coeff, cond in expr.terms:
                total = _affine_add(total, self.bool_affine(cond), scale=coeff)
            return total
        if isinstance(expr, prov.AddExpr):
            total = ({}, 0.0)
            for child in expr.children:
                total = _affine_add(total, self.num_affine(child))
            return total
        if isinstance(expr, prov.MulExpr):
            return self._linearize_product(expr)
        if isinstance(expr, prov.DivExpr):
            raise ILPError(
                "ratio polynomials must be handled at the complaint level "
                "(AVG complaints are cross-multiplied)"
            )
        raise ILPError(f"cannot linearize numeric node {type(expr).__name__}")

    def _linearize_product(self, expr: prov.MulExpr) -> Affine:
        constant = 1.0
        bools: list[prov.BoolExpr] = []
        linear_sums: list[prov.LinearSum] = []
        for child in expr.children:
            if isinstance(child, prov.ConstNum):
                constant *= child.value
            elif isinstance(child, prov.BoolAsNum):
                bools.append(child.expr)
            elif isinstance(child, prov.LinearSum):
                linear_sums.append(child)
            else:
                raise ILPError(
                    f"product over {type(child).__name__} is not linearizable"
                )
        if len(linear_sums) > 1:
            raise ILPError("products of two non-boolean sums are not linearizable")
        if not linear_sums:
            if not bools:
                return {}, constant
            conjunction = prov.and_(*bools)
            return _affine_scale(self.bool_affine(conjunction), constant)
        # boolean(s) × LinearSum: distribute over the sum's terms.
        linear = linear_sums[0]
        total: Affine = ({}, 0.0)
        for coeff, cond in linear.terms:
            conjunction = prov.and_(*bools, cond)
            total = _affine_add(total, self.bool_affine(conjunction), scale=coeff)
        return _affine_scale(total, constant)

    # -- complaints ---------------------------------------------------------------------

    def add_complaints(self, complaints: Sequence) -> None:
        for complaint in complaints:
            self.add_complaint(complaint)

    def _compiled_value_affine(self, complaint: ValueComplaint) -> Affine | None:
        """Affine form straight from compiled ``Σ coeff·atom`` cell arrays.

        COUNT/SUM cells compile to one ADD-over-atoms node; its flat term
        arrays map directly onto y-variables without materializing a tree.
        Returns ``None`` for other shapes (AVG ratios, deterministic
        members, tree-mode results), which take the interpreted path.
        """
        result = self.result
        if not getattr(result, "compiled", False):
            return None
        node = result.cell_node_for(
            complaint.column,
            row_index=complaint.row_index,
            group_key=complaint.group_key,
        )
        terms = result.pool.linear_atom_terms(node)
        if terms is None:
            return None
        coeffs, sites, label_ids = terms
        labels = result.pool.labels
        affine: dict[int, float] = {}
        for coeff, site, label_id in zip(
            coeffs.tolist(), sites.tolist(), label_ids.tolist()
        ):
            var = self.y_vars.get((site, labels[label_id]))
            if var is None:
                raise ILPError(
                    f"atom [site {site} = {labels[label_id]!r}] refers to an "
                    "unknown site/class"
                )
            affine[var] = affine.get(var, 0.0) + coeff
        return affine, 0.0

    def add_complaint(self, complaint) -> None:
        if isinstance(complaint, ValueComplaint):
            fast = self._compiled_value_affine(complaint)
            if fast is not None:
                self.program.add_constraint(
                    fast[0], complaint.op, complaint.value - fast[1]
                )
                return
            poly = complaint.polynomial(self.result)
            if isinstance(poly, prov.DivExpr):
                # AVG: num / den op X  →  num - X·den op 0 (den ≥ 0).
                numerator = self.num_affine(poly.numerator)
                denominator = self.num_affine(poly.denominator)
                affine = _affine_add(numerator, denominator, scale=-complaint.value)
                self.program.add_constraint(affine[0], complaint.op, -affine[1])
                return
            affine = self.num_affine(poly)
            self.program.add_constraint(
                affine[0], complaint.op, complaint.value - affine[1]
            )
            return
        if isinstance(complaint, TupleComplaint):
            condition = complaint.condition(self.result)
            affine = self.bool_affine(condition)
            self.program.add_constraint(affine[0], "=", -affine[1])
            return
        if isinstance(complaint, PredictionComplaint):
            site_id = complaint.site_id(self.result)
            key = (site_id, complaint.label)
            if key not in self.y_vars:
                raise ILPError(f"{complaint.label!r} is not a class of the model")
            self.program.add_constraint({self.y_vars[key]: 1.0}, "=", 1.0)
            return
        raise ILPError(f"unknown complaint type {type(complaint).__name__}")

    # -- reading back solutions -------------------------------------------------------------

    def solution_targets(self, solution: ILPSolution) -> dict[int, object]:
        """``site_id -> target label`` from an integral solution."""
        targets: dict[int, object] = {}
        for site_id in self.site_ids:
            chosen = [
                label
                for label in self.classes_by_site[site_id]
                if solution.values[self.y_vars[(site_id, label)]] > 0.5
            ]
            if len(chosen) != 1:
                raise ILPError(
                    f"site {site_id} has {len(chosen)} selected classes; "
                    "the solution is not a valid labelling"
                )
            targets[site_id] = chosen[0]
        return targets

    def marked_mispredictions(
        self, solution: ILPSolution
    ) -> list[tuple[int, object]]:
        """Sites whose target label differs from the current prediction."""
        targets = self.solution_targets(solution)
        return [
            (site_id, label)
            for site_id, label in targets.items()
            if label != self.current_labels[site_id]
        ]

    def changed_count(self, solution: ILPSolution) -> int:
        return len(self.marked_mispredictions(solution))


class CompiledILPEncoder(TiresiasEncoder):
    """Array-native TwoStep encoder over a compiled provenance pool.

    Instead of materializing expression trees and walking them node by
    node, complaints are encoded straight from the pool's flat arrays:

    - the pool's *effective* boolean structure (constant folds, same-op
      flattening and aliasing exactly as tree materialization would apply
      them) comes from :meth:`_FrozenPool.bool_structure`;
    - aux variables for all fresh AND/OR nodes of a complaint are
      allocated as one :meth:`BinaryProgram.add_var_block` in DFS preorder;
    - the linking inequalities land as one CSR
      :meth:`BinaryProgram.add_constraint_block` in DFS postorder;
    - aux variables are keyed on canonical pool node ids (``_aux_var``),
      so a subtree shared by several complaints is linearized once.

    The emitted program is byte-identical to :class:`TiresiasEncoder` on
    the same result — variables, constraint order, coefficient order and
    right-hand sides — which keeps optimal solutions and the enumeration
    order of tied optima bit-identical.  Unsupported cell shapes fall back
    to the tree walk per complaint (sharing the same aux cache).
    """

    def __init__(self, result: QueryResult) -> None:
        super().__init__(result)
        if not getattr(result, "compiled", False):
            raise ILPError("CompiledILPEncoder needs a compiled-provenance result")
        self.pool = result.pool
        f = self.pool.ensure_frozen()
        self._f = f
        structure = f.bool_structure()
        self._rep = structure.rep
        self._eff_start = structure.eff_start
        self._eff_end = structure.eff_end
        self._eff_child = structure.eff_child
        # Plain-list mirrors for the DFS hot loop: python ints index lists
        # several times faster than numpy scalars.  The structure's lists
        # are cached per freeze, shared across encoders on this pool.
        self._rep_l, self._eff_start_l, self._eff_end_l, self._eff_child_l = (
            structure.lists()
        )
        self._op_l = f.op.tolist()
        self._child_l = f.child.tolist()
        self._child_start_l = f.child_start.tolist()
        # Canonical node id -> aux variable index (-1 = not yet created);
        # the list is the DFS-side mirror of the array, kept in sync.
        self._aux_var = np.full(f.op.shape[0], -1, dtype=np.int64)
        self._aux_l = [-1] * f.op.shape[0]
        # Dense (site, label_id) -> y variable table (-1 = unknown class).
        ytab = np.full((len(self.runtime.sites), len(f.labels)), -1, dtype=np.int64)
        label_ids = self.pool._label_ids
        for (site, label), var in self.y_vars.items():
            label_id = label_ids.get(label)
            if label_id is not None:
                ytab[site, label_id] = var
        self._ytab = ytab
        self.aux_created = 0
        self.aux_reused = 0

    # -- complaints ------------------------------------------------------------

    def add_complaint(self, complaint) -> None:
        if isinstance(complaint, ValueComplaint):
            if self._try_value_complaint(complaint):
                return
            super().add_complaint(complaint)
            return
        if isinstance(complaint, TupleComplaint):
            self._add_tuple_complaint(complaint)
            return
        super().add_complaint(complaint)

    def _try_value_complaint(self, complaint: ValueComplaint) -> bool:
        """Encode a value complaint from cell node arrays; False = fall back."""
        node = int(
            self.result.cell_node_for(
                complaint.column,
                row_index=complaint.row_index,
                group_key=complaint.group_key,
            )
        )
        f = self._f
        if node >= f.op.shape[0]:
            return False  # appended after the freeze; take the tree path
        if f.op[node] == OP_DIV:
            # AVG: num / den op X  →  num - X·den op 0 (den ≥ 0), with the
            # numerator linearized before the denominator like the tree walk.
            num = int(f.child[f.child_start[node]])
            den = int(f.child[f.child_start[node] + 1])
            num_terms = self._value_terms(num)
            den_terms = self._value_terms(den)
            if num_terms is None or den_terms is None:
                return False
            roots = list(zip(num_terms[0], num_terms[3])) + list(
                zip(den_terms[0], den_terms[3])
            )
            post_nodes, post_z, root_z = self._linearize_roots(roots)
            self._emit_link_rows(post_nodes, post_z)
            n_num = len(num_terms[0])
            affine = _affine_add(
                self._terms_affine(*num_terms[:3], root_z[:n_num]),
                self._terms_affine(*den_terms[:3], root_z[n_num:]),
                scale=-complaint.value,
            )
            self.program.add_constraint(affine[0], complaint.op, -affine[1])
            return True
        terms = self._value_terms(node)
        if terms is None:
            return False
        post_nodes, post_z, root_z = self._linearize_roots(
            list(zip(terms[0], terms[3]))
        )
        self._emit_link_rows(post_nodes, post_z)
        affine = self._terms_affine(*terms[:3], root_z)
        self.program.add_constraint(
            affine[0], complaint.op, complaint.value - affine[1]
        )
        return True

    def _add_tuple_complaint(self, complaint: TupleComplaint) -> None:
        node = self._tuple_condition_node(complaint)
        if node is None:
            # A lineage tuple that is not even a candidate: the tree path
            # linearizes prov.FALSE into the vacuous row 0 = 0.
            self.program.add_constraint({}, "=", -0.0)
            return
        post_nodes, post_z, _ = self._linearize_roots([(node, False)])
        self._emit_link_rows(post_nodes, post_z)
        var, sign, const = self._bool_affine_arrays(
            self._rep[np.asarray([node], dtype=np.int64)]
        )
        affine = {int(var[0]): float(sign[0])} if var[0] >= 0 else {}
        self.program.add_constraint(affine, "=", -float(const[0]))

    def _tuple_condition_node(self, complaint: TupleComplaint) -> int | None:
        """Mirror ``TupleComplaint.condition``'s addressing (and errors) on node ids."""
        result = self.result
        if complaint.group_key is not None:
            if result.groups is None:
                raise ComplaintError("group_key complaint on a non-aggregate result")
            for group in result.groups:
                if group.key == complaint.group_key:
                    return int(group.condition_node)
            raise ComplaintError(f"no group with key {complaint.group_key!r}")
        if complaint.lineage is not None:
            batch = result.candidate_batch
            if batch is None:
                raise ComplaintError("lineage complaints need a debug-mode result")
            wanted = dict(complaint.lineage)
            unknown = set(wanted) - set(batch.alias_row_ids)
            if unknown:
                raise ComplaintError(
                    f"lineage aliases {sorted(unknown)} not in the query "
                    f"(available: {sorted(batch.alias_row_ids)})"
                )
            for index in range(len(batch)):
                if all(
                    int(batch.alias_row_ids[alias][index]) == row_id
                    for alias, row_id in wanted.items()
                ):
                    return int(result.candidate_cond_nodes[index])
            return None
        return int(result.tuple_condition_node(complaint.row_index))

    # -- cell decomposition ----------------------------------------------------

    def _value_terms(
        self, node: int
    ) -> tuple[list[int], list[float], float, list[bool]] | None:
        """Ordered affine decomposition of a cell node over boolean terms.

        Returns ``(term_nodes, coeffs, tail_const, fresh)`` replicating
        exactly what tree materialization + ``num_affine`` would produce:
        boolean terms in child order (TRUE/FALSE contribute their constant
        at their position), ``coeff·const`` products folded into one
        trailing constant (the ``add_`` mixed arm moves constants to the
        end), and ``bool × const`` products collapsed to weighted boolean
        terms.  ``fresh[i]`` marks product terms whose boolean is an AND:
        the tree's ``_linearize_product`` wraps those in ``prov.and_()``,
        which *splices* the conjunction into a brand-new AndExpr, so the
        tree allocates a fresh uncached aux variable per such term instead
        of reusing the condition's.  ``None`` means the shape is
        unsupported (nested ADD/DIV, products of several booleans) and the
        complaint takes the tree path.
        """
        f = self._f
        op = int(f.op[node])
        if op != OP_ADD:
            if node <= TRUE_NODE or op in (OP_ATOM, OP_NOT, OP_AND, OP_OR):
                return [node], [1.0], 0.0, [False]
            if op == OP_CONST:
                return [], [], float(f.value[node]), []
            return None
        start, end = int(f.child_start[node]), int(f.child_end[node])
        children = f.child[start:end]
        coeffs = f.coeff[start:end]
        ops = f.op[children]
        bool_mask = (
            (children <= TRUE_NODE)
            | (ops == OP_ATOM)
            | (ops == OP_NOT)
            | (ops == OP_AND)
            | (ops == OP_OR)
        )
        if bool_mask.all():
            # All-boolean children materialize as one LinearSum: terms in
            # child order, no trailing constant, conditions linearized
            # directly (no and_() wrapper).
            return (
                children.tolist(),
                coeffs.tolist(),
                0.0,
                [False] * children.shape[0],
            )
        # Mixed arm: prov.add_ keeps non-constant terms in order and folds
        # constants into one ConstNum appended at the end.
        out_nodes: list[int] = []
        out_coeffs: list[float] = []
        out_fresh: list[bool] = []
        tail = 0.0
        for child, coeff, is_bool in zip(
            children.tolist(), coeffs.tolist(), bool_mask.tolist()
        ):
            if is_bool:
                if coeff == 0.0:
                    continue  # mul_(ConstNum(0), bool) folds to the constant 0
                out_nodes.append(child)
                out_coeffs.append(coeff)
                # coeff ≠ 1 materializes as mul_(ConstNum(coeff), bool) — a
                # MulExpr whose product walk and_()-wraps an AND condition.
                out_fresh.append(
                    coeff != 1.0
                    and int(f.op[self._rep[child]]) == OP_AND
                )
                continue
            child_op = int(f.op[child])
            if child_op == OP_CONST:
                tail = tail + coeff * float(f.value[child])
                continue
            if child_op != OP_MUL:
                return None  # nested ADD/DIV: tree path
            weight = 1.0
            bools: list[int] = []
            for factor in f.child[
                int(f.child_start[child]) : int(f.child_end[child])
            ].tolist():
                factor_op = int(f.op[factor])
                if factor <= TRUE_NODE:
                    # TRUE/FALSE factors only arise from raw tree lowering;
                    # mirror the and_() folds via the tree path instead.
                    return None
                if factor_op == OP_CONST:
                    weight = weight * float(f.value[factor])
                elif factor_op in (OP_ATOM, OP_NOT, OP_AND, OP_OR):
                    bools.append(factor)
                else:
                    return None
            if len(bools) > 1:
                # and_(b1, b2, …) builds a fresh AndExpr per complaint in
                # the tree walk — no pool node to dedup against.
                return None
            scaled = coeff * weight
            if not bools:
                tail = tail + scaled
                continue
            if scaled == 0.0:
                continue  # mul_ folds the whole product to the constant 0
            out_nodes.append(bools[0])
            out_coeffs.append(scaled)
            # The term stays a MulExpr — and its product walk and_()-wraps
            # an AND condition — unless *both* mul_ folds alias it away:
            # the node's own constants folding to exactly 1.0 and the ADD
            # coefficient being exactly 1.0.
            out_fresh.append(
                not (coeff == 1.0 and weight == 1.0)
                and int(f.op[self._rep[bools[0]]]) == OP_AND
            )
        return out_nodes, out_coeffs, tail, out_fresh

    def _terms_affine(
        self,
        nodes: list[int],
        coeffs: list[float],
        tail: float,
        term_z: list[int] | None = None,
    ) -> Affine:
        """Accumulate weighted boolean terms into an affine dict.

        Matches the tree walk's sequential ``_affine_add`` loop bit for
        bit: variables claim dict positions at first occurrence, repeated
        variables accumulate in term order, and constants accumulate in
        term order with the folded tail added last.  ``term_z`` carries
        the per-term fresh aux variables from :meth:`_linearize_roots`
        (-1 = use the node's canonical affine form).
        """
        if not nodes:
            return {}, tail
        var, sign, const = self._bool_affine_arrays(
            self._rep[np.asarray(nodes, dtype=np.int64)]
        )
        if term_z is not None:
            fz = np.asarray(term_z, dtype=np.int64)
            fresh = fz >= 0
            var[fresh] = fz[fresh]
            sign[fresh] = 1.0
            const[fresh] = 0.0
        affine: dict[int, float] = {}
        total = 0.0
        for v, s, k, c in zip(
            var.tolist(), sign.tolist(), coeffs, const.tolist()
        ):
            if v >= 0:
                affine[v] = affine.get(v, 0.0) + k * s
            total = total + k * c
        return affine, total + tail

    # -- bulk AND/OR linearization ---------------------------------------------

    def _linearize_roots(
        self, roots: Sequence[tuple[int, bool]]
    ) -> tuple[list[int], list[int], list[int]]:
        """DFS over canonical structure; allocates fresh aux vars in preorder.

        ``roots`` pairs each root node with a *fresh* flag (see
        :meth:`_value_terms`): fresh AND roots always get a brand-new,
        uncached aux variable — the structural duplicate the tree's
        ``and_()`` splice would build — while their subtrees still share
        the cache.  Returns ``(post_nodes, post_z, root_z)``: the
        postorder list of nodes whose linking rows still need emitting
        with their aux variables, plus each root's fresh variable (-1 for
        non-fresh roots).  Nodes already linearized — by an earlier
        complaint here, or by a tree-path fallback sharing ``_aux_cache``
        — are reused.
        """
        aux = self._aux_l
        cache_get = self._aux_cache.get
        op_l = self._op_l
        rep_l = self._rep_l
        eff_start = self._eff_start_l
        eff_end = self._eff_end_l
        eff_child = self._eff_child_l
        base = self.program.n_vars
        n_alloc = 0
        reused = 0
        fresh_cached: list[int] = []
        post_nodes: list[int] = []
        post_z: list[int] = []
        root_z: list[int] = [-1] * len(roots)
        # Roots drain one at a time (their subtrees never interleave on
        # the tree walk's recursion either); within a drain the int stack
        # holds canonical AND/OR/NOT nodes to visit, or ``~node`` to emit
        # node's linking rows postorder.  Atom/constant children never
        # allocate or emit, so they are filtered at push time — the
        # traversal order over NOT/AND/OR nodes, and hence the aux
        # variable numbering, matches the recursive walk exactly.
        stack: list[int] = []
        for pos, (root, fresh) in enumerate(roots):
            r = rep_l[int(root)]
            op = op_l[r]
            root_emit = -1
            if fresh and op == OP_AND:
                # The and_() splice: a brand-new uncached aux variable for
                # this term, its subtree still shared through the cache.
                root_emit = base + n_alloc
                n_alloc += 1
                root_z[pos] = root_emit
            elif op == OP_NOT:
                inner = rep_l[self._child_l[self._child_start_l[r]]]
                if op_l[inner] >= OP_NOT:
                    stack.append(inner)
            elif op != OP_AND and op != OP_OR:
                continue
            elif aux[r] >= 0:
                reused += 1
                continue
            else:
                cached = cache_get(r)
                if cached is not None:
                    # A tree-path fallback already linearized this node.
                    var = next(iter(cached[0]))
                    aux[r] = var
                    self._aux_var[r] = var
                    reused += 1
                    continue
                root_emit = base + n_alloc
                aux[r] = root_emit
                n_alloc += 1
                fresh_cached.append(r)
            if root_emit >= 0:
                for child in reversed(eff_child[eff_start[r] : eff_end[r]]):
                    if op_l[child] >= OP_NOT:
                        stack.append(child)
            while stack:
                node = stack.pop()
                if node < 0:
                    node = ~node
                    post_nodes.append(node)
                    post_z.append(aux[node])
                    continue
                op = op_l[node]
                if op == OP_NOT:
                    inner = rep_l[self._child_l[self._child_start_l[node]]]
                    if op_l[inner] >= OP_NOT:
                        stack.append(inner)
                    continue
                if aux[node] >= 0:
                    reused += 1
                    continue
                cached = cache_get(node)
                if cached is not None:
                    var = next(iter(cached[0]))
                    aux[node] = var
                    self._aux_var[node] = var
                    reused += 1
                    continue
                z = base + n_alloc
                aux[node] = z
                n_alloc += 1
                fresh_cached.append(node)
                stack.append(~node)
                for child in reversed(eff_child[eff_start[node] : eff_end[node]]):
                    if op_l[child] >= OP_NOT:
                        stack.append(child)
            if root_emit >= 0:
                # The root's own linking rows come last in its postorder.
                post_nodes.append(r)
                post_z.append(root_emit)
        self.aux_reused += reused
        if n_alloc:
            self.program.add_var_block(n_alloc, prefix="aux")
            self.aux_created += n_alloc
            if fresh_cached:
                vals = [aux[r] for r in fresh_cached]
                self._aux_var[np.asarray(fresh_cached, dtype=np.int64)] = vals
                for r, var in zip(fresh_cached, vals):
                    self._aux_cache[r] = ({var: 1.0}, 0.0)
        return post_nodes, post_z, root_z

    def _emit_link_rows(self, post: list[int], post_z: list[int]) -> None:
        """One CSR block of AND/OR linking rows, in tree postorder.

        Per node: k child rows (``z ≤/≥ child_i``) then the sum row
        (``z ≥/≤ Σ child_i …``), coefficients laid out z-first then
        children in child order — exactly the rows and dict orders the
        recursive walk emits one at a time.
        """
        if not post:
            return
        f = self._f
        nodes = np.asarray(post, dtype=np.int64)
        z = np.asarray(post_z, dtype=np.int64)
        is_and = f.op[nodes] == OP_AND
        k = self._eff_end[nodes] - self._eff_start[nodes]
        flat_children = self._eff_child[
            _flat_ranges(self._eff_start[nodes], self._eff_end[nodes])
        ]
        n_nodes = nodes.shape[0]
        seg_id = np.repeat(np.arange(n_nodes, dtype=np.int64), k)
        cvar, csign, cconst = self._bool_affine_arrays(flat_children)
        # A variable repeated among one node's children gets its own child
        # row per occurrence, but accumulates into ONE sum-row coefficient
        # at its first occurrence (the tree's dict insertion order).
        pair_key = seg_id * self.program.n_vars + cvar
        n_flat = pair_key.shape[0]
        sum_coeff = -csign
        keep = np.ones(n_flat, dtype=bool)
        if np.unique(pair_key).shape[0] != n_flat:
            order = np.argsort(pair_key, kind="stable")
            sorted_key = pair_key[order]
            first = np.ones(n_flat, dtype=bool)
            first[1:] = sorted_key[1:] != sorted_key[:-1]
            group = np.cumsum(first) - 1
            acc = np.bincount(group, weights=sum_coeff[order])
            first_pos = order[first]
            keep = np.zeros(n_flat, dtype=bool)
            keep[first_pos] = True
            sum_coeff = sum_coeff.copy()
            sum_coeff[first_pos] = acc
        k_sum = np.bincount(seg_id[keep], minlength=n_nodes).astype(np.int64)
        rows_per_node = k + 1
        row_end = np.cumsum(rows_per_node)
        row_base = row_end - rows_per_node
        n_rows = int(row_end[-1])
        seg_offsets = np.concatenate([[0], np.cumsum(k)]).astype(np.int64)
        within = np.arange(n_flat, dtype=np.int64) - np.repeat(
            seg_offsets[:-1], k
        )
        child_row = row_base[seg_id] + within
        sum_row = row_end - 1
        nnz = np.empty(n_rows, dtype=np.int64)
        nnz[child_row] = 2
        nnz[sum_row] = 1 + k_sum
        starts = np.concatenate([[0], np.cumsum(nnz)]).astype(np.int64)
        indices = np.empty(int(starts[-1]), dtype=np.int64)
        values = np.empty(int(starts[-1]), dtype=np.float64)
        cpos = starts[child_row]
        indices[cpos] = z[seg_id]
        values[cpos] = 1.0
        indices[cpos + 1] = cvar
        values[cpos + 1] = -csign
        spos = starts[sum_row]
        indices[spos] = z
        values[spos] = 1.0
        within_kept = np.cumsum(keep) - 1
        kept_offsets = np.concatenate([[0], np.cumsum(k_sum)]).astype(np.int64)
        svpos = (
            spos[seg_id[keep]]
            + 1
            + within_kept[keep]
            - np.repeat(kept_offsets[:-1], k_sum)
        )
        indices[svpos] = cvar[keep]
        values[svpos] = sum_coeff[keep]
        rhs = np.empty(n_rows, dtype=np.float64)
        rhs[child_row] = cconst
        seg_const = np.bincount(seg_id, weights=cconst, minlength=n_nodes)
        rhs[sum_row] = np.where(is_and, seg_const - (k - 1), seg_const)
        senses = np.empty(n_rows, dtype=np.int8)
        senses[child_row] = np.where(is_and[seg_id], 0, 1)
        senses[sum_row] = np.where(is_and, 1, 0)
        self.program.add_constraint_block(starts, indices, values, senses, rhs)

    # -- canonical-node affine forms ---------------------------------------------

    def _bool_affine_arrays(
        self, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per canonical boolean node: value = sign·x_var + const (var -1 = none)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        f = self._f
        var = np.full(nodes.shape[0], -1, dtype=np.int64)
        sign = np.zeros(nodes.shape[0], dtype=np.float64)
        const = np.zeros(nodes.shape[0], dtype=np.float64)
        if nodes.size == 0:
            return var, sign, const
        op = f.op[nodes]
        const[nodes == TRUE_NODE] = 1.0
        is_atom = op == OP_ATOM
        if np.any(is_atom):
            var[is_atom] = self._atom_vars(nodes[is_atom])
            sign[is_atom] = 1.0
        is_aux = (op == OP_AND) | (op == OP_OR)
        if np.any(is_aux):
            var[is_aux] = self._aux_var[nodes[is_aux]]
            sign[is_aux] = 1.0
        is_not = op == OP_NOT
        if np.any(is_not):
            inner = self._rep[f.child[f.child_start[nodes[is_not]]]]
            inner_op = f.op[inner]
            ivar = np.empty(inner.shape[0], dtype=np.int64)
            atom_mask = inner_op == OP_ATOM
            if np.any(atom_mask):
                ivar[atom_mask] = self._atom_vars(inner[atom_mask])
            if np.any(~atom_mask):
                ivar[~atom_mask] = self._aux_var[inner[~atom_mask]]
            var[is_not] = ivar
            sign[is_not] = -1.0
            const[is_not] = 1.0
        return var, sign, const

    def _atom_vars(self, nodes: np.ndarray) -> np.ndarray:
        f = self._f
        sites = f.site[nodes]
        label_ids = f.label[nodes]
        var = self._ytab[sites, label_ids]
        bad = np.flatnonzero(var < 0)
        if bad.size:
            first = int(bad[0])
            label = f.labels[int(label_ids[first])]
            raise ILPError(
                f"atom [site {int(sites[first])} = {label!r}] refers to an "
                "unknown site/class"
            )
        return var
