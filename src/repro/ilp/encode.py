"""Complaints + provenance → 0-1 ILP (the TwoStep SQL step, Section 5.2).

Following Tiresias [Meliou & Suciu 2012], the *marked attribute* is the
model prediction: each inference site ``i`` gets one binary variable
``y[i, c]`` per class with ``Σ_c y[i, c] = 1``; the objective minimizes the
number of prediction changes ``Σ_i (1 - y[i, r_i])`` where ``r_i`` is the
current prediction.  Complaints become linear constraints over the boolean
provenance (compound conditions are linearized with auxiliary variables and
the standard AND/OR linking inequalities).

A satisfying assignment is read back as a per-site *target labelling*
``t_i``; sites with ``t_i ≠ r_i`` are the marked mispredictions handed to
the influence step.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..complaints.complaint import (
    PredictionComplaint,
    TupleComplaint,
    ValueComplaint,
)
from ..errors import ILPError
from ..relational import provenance as prov
from ..relational.executor import QueryResult
from .model import BinaryProgram
from .solver import ILPSolution

Affine = tuple[dict[int, float], float]


def _affine_add(a: Affine, b: Affine, scale: float = 1.0) -> Affine:
    coeffs = dict(a[0])
    for index, coeff in b[0].items():
        coeffs[index] = coeffs.get(index, 0.0) + scale * coeff
    return coeffs, a[1] + scale * b[1]


def _affine_scale(a: Affine, scale: float) -> Affine:
    return {index: coeff * scale for index, coeff in a[0].items()}, a[1] * scale


class TiresiasEncoder:
    """Builds the TwoStep ILP for one debug-mode query result."""

    def __init__(self, result: QueryResult) -> None:
        if not result.debug:
            raise ILPError("TwoStep needs a debug-mode query result")
        self.result = result
        self.runtime = result.runtime
        self.program = BinaryProgram()

        self.site_ids = list(range(len(self.runtime.sites)))
        if not self.site_ids:
            raise ILPError("the query contains no model inference; nothing to fix")
        self.classes_by_site: dict[int, list] = {}
        self.current_labels: dict[int, object] = dict(
            enumerate(self.runtime.site_labels())
        )
        # (site_id, label) -> y variable index
        self.y_vars: dict[tuple[int, object], int] = {}
        self._aux_cache: dict[int, Affine] = {}

        # One run of the site registry shares a model, so variables and
        # one-hot constraints are laid out run by run in bulk.
        classes_of_model: dict[str, list] = {}
        for start, model_name, _relation, rows in self.runtime.sites.runs():
            classes = classes_of_model.get(model_name)
            if classes is None:
                classes = self.runtime.model_classes(model_name)
                classes_of_model[model_name] = classes
            run_sites = range(start, start + rows.shape[0])
            names = [
                f"y[{site_id},{label}]" for site_id in run_sites for label in classes
            ]
            first = self.program.add_vars(names).start
            k = len(classes)
            self.y_vars.update(
                {
                    (site_id, label): first + offset * k + column
                    for offset, site_id in enumerate(run_sites)
                    for column, label in enumerate(classes)
                }
            )
            self.classes_by_site.update(dict.fromkeys(run_sites, classes))
            for offset in range(rows.shape[0]):
                base = first + offset * k
                self.program.add_constraint(
                    {base + column: 1.0 for column in range(k)}, "=", 1.0
                )

        # Objective: number of changed predictions.
        objective: dict[int, float] = {}
        constant = 0.0
        for site_id in self.site_ids:
            current = self.current_labels[site_id]
            objective[self.y_vars[(site_id, current)]] = -1.0
            constant += 1.0
        self.program.set_objective(objective, constant)

    # -- boolean linearization ---------------------------------------------------

    def bool_affine(self, expr: prov.BoolExpr) -> Affine:
        """Affine form whose value equals the boolean expression's truth."""
        if isinstance(expr, prov.TrueExpr):
            return {}, 1.0
        if isinstance(expr, prov.FalseExpr):
            return {}, 0.0
        if isinstance(expr, prov.PredIs):
            key = (expr.site_id, expr.label)
            if key not in self.y_vars:
                raise ILPError(f"atom {expr!r} refers to an unknown site/class")
            return {self.y_vars[key]: 1.0}, 0.0
        if isinstance(expr, prov.NotExpr):
            inner = self.bool_affine(expr.child)
            return _affine_add(({}, 1.0), inner, scale=-1.0)
        cached = self._aux_cache.get(id(expr))
        if cached is not None:
            return cached
        if isinstance(expr, prov.AndExpr):
            affine = self._linearize_and(expr)
        elif isinstance(expr, prov.OrExpr):
            affine = self._linearize_or(expr)
        else:
            raise ILPError(f"cannot linearize {type(expr).__name__}")
        self._aux_cache[id(expr)] = affine
        return affine

    def _linearize_and(self, expr: prov.AndExpr) -> Affine:
        z = self.program.add_var(f"and_{len(self._aux_cache)}")
        children = [self.bool_affine(child) for child in expr.children]
        # z <= child_i  →  z - child_i <= 0
        for child in children:
            coeffs = {z: 1.0}
            for index, coeff in child[0].items():
                coeffs[index] = coeffs.get(index, 0.0) - coeff
            self.program.add_constraint(coeffs, "<=", child[1])
        # z >= Σ child_i - (k - 1)
        total: Affine = ({}, 0.0)
        for child in children:
            total = _affine_add(total, child)
        coeffs = {z: 1.0}
        for index, coeff in total[0].items():
            coeffs[index] = coeffs.get(index, 0.0) - coeff
        self.program.add_constraint(coeffs, ">=", total[1] - (len(children) - 1))
        return {z: 1.0}, 0.0

    def _linearize_or(self, expr: prov.OrExpr) -> Affine:
        z = self.program.add_var(f"or_{len(self._aux_cache)}")
        children = [self.bool_affine(child) for child in expr.children]
        # z >= child_i
        for child in children:
            coeffs = {z: 1.0}
            for index, coeff in child[0].items():
                coeffs[index] = coeffs.get(index, 0.0) - coeff
            self.program.add_constraint(coeffs, ">=", child[1])
        # z <= Σ child_i
        total: Affine = ({}, 0.0)
        for child in children:
            total = _affine_add(total, child)
        coeffs = {z: 1.0}
        for index, coeff in total[0].items():
            coeffs[index] = coeffs.get(index, 0.0) - coeff
        self.program.add_constraint(coeffs, "<=", total[1])
        return {z: 1.0}, 0.0

    # -- numeric linearization ------------------------------------------------------

    def num_affine(self, expr: prov.NumExpr) -> Affine:
        if isinstance(expr, prov.ConstNum):
            return {}, expr.value
        if isinstance(expr, prov.BoolAsNum):
            return self.bool_affine(expr.expr)
        if isinstance(expr, prov.LinearSum):
            total: Affine = ({}, 0.0)
            for coeff, cond in expr.terms:
                total = _affine_add(total, self.bool_affine(cond), scale=coeff)
            return total
        if isinstance(expr, prov.AddExpr):
            total = ({}, 0.0)
            for child in expr.children:
                total = _affine_add(total, self.num_affine(child))
            return total
        if isinstance(expr, prov.MulExpr):
            return self._linearize_product(expr)
        if isinstance(expr, prov.DivExpr):
            raise ILPError(
                "ratio polynomials must be handled at the complaint level "
                "(AVG complaints are cross-multiplied)"
            )
        raise ILPError(f"cannot linearize numeric node {type(expr).__name__}")

    def _linearize_product(self, expr: prov.MulExpr) -> Affine:
        constant = 1.0
        bools: list[prov.BoolExpr] = []
        linear_sums: list[prov.LinearSum] = []
        for child in expr.children:
            if isinstance(child, prov.ConstNum):
                constant *= child.value
            elif isinstance(child, prov.BoolAsNum):
                bools.append(child.expr)
            elif isinstance(child, prov.LinearSum):
                linear_sums.append(child)
            else:
                raise ILPError(
                    f"product over {type(child).__name__} is not linearizable"
                )
        if len(linear_sums) > 1:
            raise ILPError("products of two non-boolean sums are not linearizable")
        if not linear_sums:
            if not bools:
                return {}, constant
            conjunction = prov.and_(*bools)
            return _affine_scale(self.bool_affine(conjunction), constant)
        # boolean(s) × LinearSum: distribute over the sum's terms.
        linear = linear_sums[0]
        total: Affine = ({}, 0.0)
        for coeff, cond in linear.terms:
            conjunction = prov.and_(*bools, cond)
            total = _affine_add(total, self.bool_affine(conjunction), scale=coeff)
        return _affine_scale(total, constant)

    # -- complaints ---------------------------------------------------------------------

    def add_complaints(self, complaints: Sequence) -> None:
        for complaint in complaints:
            self.add_complaint(complaint)

    def _compiled_value_affine(self, complaint: ValueComplaint) -> Affine | None:
        """Affine form straight from compiled ``Σ coeff·atom`` cell arrays.

        COUNT/SUM cells compile to one ADD-over-atoms node; its flat term
        arrays map directly onto y-variables without materializing a tree.
        Returns ``None`` for other shapes (AVG ratios, deterministic
        members, tree-mode results), which take the interpreted path.
        """
        result = self.result
        if not getattr(result, "compiled", False):
            return None
        node = result.cell_node_for(
            complaint.column,
            row_index=complaint.row_index,
            group_key=complaint.group_key,
        )
        terms = result.pool.linear_atom_terms(node)
        if terms is None:
            return None
        coeffs, sites, label_ids = terms
        labels = result.pool.labels
        affine: dict[int, float] = {}
        for coeff, site, label_id in zip(
            coeffs.tolist(), sites.tolist(), label_ids.tolist()
        ):
            var = self.y_vars.get((site, labels[label_id]))
            if var is None:
                raise ILPError(
                    f"atom [site {site} = {labels[label_id]!r}] refers to an "
                    "unknown site/class"
                )
            affine[var] = affine.get(var, 0.0) + coeff
        return affine, 0.0

    def add_complaint(self, complaint) -> None:
        if isinstance(complaint, ValueComplaint):
            fast = self._compiled_value_affine(complaint)
            if fast is not None:
                self.program.add_constraint(
                    fast[0], complaint.op, complaint.value - fast[1]
                )
                return
            poly = complaint.polynomial(self.result)
            if isinstance(poly, prov.DivExpr):
                # AVG: num / den op X  →  num - X·den op 0 (den ≥ 0).
                numerator = self.num_affine(poly.numerator)
                denominator = self.num_affine(poly.denominator)
                affine = _affine_add(numerator, denominator, scale=-complaint.value)
                self.program.add_constraint(affine[0], complaint.op, -affine[1])
                return
            affine = self.num_affine(poly)
            self.program.add_constraint(
                affine[0], complaint.op, complaint.value - affine[1]
            )
            return
        if isinstance(complaint, TupleComplaint):
            condition = complaint.condition(self.result)
            affine = self.bool_affine(condition)
            self.program.add_constraint(affine[0], "=", -affine[1])
            return
        if isinstance(complaint, PredictionComplaint):
            site_id = complaint.site_id(self.result)
            key = (site_id, complaint.label)
            if key not in self.y_vars:
                raise ILPError(f"{complaint.label!r} is not a class of the model")
            self.program.add_constraint({self.y_vars[key]: 1.0}, "=", 1.0)
            return
        raise ILPError(f"unknown complaint type {type(complaint).__name__}")

    # -- reading back solutions -------------------------------------------------------------

    def solution_targets(self, solution: ILPSolution) -> dict[int, object]:
        """``site_id -> target label`` from an integral solution."""
        targets: dict[int, object] = {}
        for site_id in self.site_ids:
            chosen = [
                label
                for label in self.classes_by_site[site_id]
                if solution.values[self.y_vars[(site_id, label)]] > 0.5
            ]
            if len(chosen) != 1:
                raise ILPError(
                    f"site {site_id} has {len(chosen)} selected classes; "
                    "the solution is not a valid labelling"
                )
            targets[site_id] = chosen[0]
        return targets

    def marked_mispredictions(
        self, solution: ILPSolution
    ) -> list[tuple[int, object]]:
        """Sites whose target label differs from the current prediction."""
        targets = self.solution_targets(solution)
        return [
            (site_id, label)
            for site_id, label in targets.items()
            if label != self.current_labels[site_id]
        ]

    def changed_count(self, solution: ILPSolution) -> int:
        return len(self.marked_mispredictions(solution))
