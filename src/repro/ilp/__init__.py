"""0-1 ILP substrate: model, branch & bound solver, Tiresias encoders."""

from .encode import (
    ENCODER_ENV_VAR,
    CompiledILPEncoder,
    TiresiasEncoder,
    make_encoder,
    resolve_ilp_encoder,
)
from .model import BinaryProgram, Constraint
from .solver import ILPSolution, enumerate_optima, pick_solution, solve

__all__ = [
    "ENCODER_ENV_VAR",
    "CompiledILPEncoder",
    "TiresiasEncoder",
    "make_encoder",
    "resolve_ilp_encoder",
    "BinaryProgram",
    "Constraint",
    "ILPSolution",
    "enumerate_optima",
    "pick_solution",
    "solve",
]
