"""0-1 ILP substrate: model, branch & bound solver, Tiresias encoder."""

from .encode import TiresiasEncoder
from .model import BinaryProgram, Constraint
from .solver import ILPSolution, enumerate_optima, pick_solution, solve

__all__ = [
    "TiresiasEncoder",
    "BinaryProgram",
    "Constraint",
    "ILPSolution",
    "enumerate_optima",
    "pick_solution",
    "solve",
]
