"""Exact branch & bound for 0-1 ILPs over LP relaxations.

This is the library's replacement for the paper's off-the-shelf solver
(Gurobi / CPLEX).  Best-first branch & bound; each node solves the LP
relaxation, prunes by bound, and branches on the most fractional variable.

Two LP backends solve the relaxations:

- ``"highs"`` (default when available): one *persistent* HiGHS instance
  per program (:class:`PersistentLP`) built from the program's cached CSR
  rows.  Branch decisions only mutate column bounds and no-good cuts are
  appended as rows, so each node re-solve skips the matrix rebuild and
  parse that dominate the reference backend.  The solver state is cleared
  before every run, which keeps the returned vertices — and therefore
  branching, optimum enumeration order, and TwoStep's removal orders —
  bit-identical to the ``linprog`` reference (scipy's ``linprog`` is the
  same HiGHS under a per-call wrapper).
- ``"highs-warm"``: same instance, but re-solves warm-start from the
  previous basis — roughly another 5x on the LP time, at the cost of
  possibly landing on *different optimal vertices* than the reference on
  degenerate LPs.  To keep the backend order-stable anyway,
  :func:`enumerate_optima` canonically sorts a warm enumeration by
  variable assignment (the optima are tied, so only the order was ever at
  stake); a complete warm enumeration therefore equals the
  canonically-sorted cold one.
- ``"linprog"``: the original per-node ``scipy.optimize.linprog`` call
  that rebuilds dense matrices every time.  Kept as the reference; the
  benchmarks run it to anchor the persistent backend's speedup.

Also provided:

- :func:`enumerate_optima` — all optimal solutions up to a cap, found by
  repeatedly adding *no-good cuts*.  TwoStep uses this both to measure
  complaint **ambiguity** (the number of satisfying minimal fixes,
  Section 5.2.2) and to emulate an opaque solver "picking one solution"
  (a seeded uniform choice, matching Theorem A.1's random-pick model).
- a node/time budget: the paper itself reports TwoStep's ILP not finishing
  within 30 minutes on the mix-rate experiment, so hitting the budget is a
  *reportable outcome* (:class:`~repro.errors.ILPTimeoutError`), not a bug.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..errors import ILPError, ILPTimeoutError, InfeasibleError
from .model import BinaryProgram

try:  # HiGHS bindings bundled with scipy >= 1.15
    from scipy.optimize._highspy import _core as _highs_core
except ImportError:  # pragma: no cover - environment without the bindings
    _highs_core = None

_INT_TOL = 1e-6

DEFAULT_LP_BACKEND = "highs" if _highs_core is not None else "linprog"


class PersistentLP:
    """One HiGHS instance per program: build once, mutate, re-solve warm.

    The 0-1 box and every constraint row are loaded a single time; branch
    & bound nodes only change column bounds (restored after each solve)
    and :func:`enumerate_optima` appends its objective pin and no-good
    cuts as new rows via :meth:`sync`.
    """

    def __init__(self, program: BinaryProgram, warm: bool = False) -> None:
        if _highs_core is None:  # pragma: no cover
            raise ILPError("the HiGHS bindings are unavailable")
        self.program = program
        self.warm = bool(warm)
        n = program.n_vars
        self._highs = _highs_core._Highs()
        self._highs.setOptionValue("output_flag", False)
        self._highs.setOptionValue("threads", 1)
        self._highs.setOptionValue("random_seed", 0)
        cost = np.zeros(n)
        for index, coeff in program.objective.items():
            cost[index] = coeff
        self._base_lower = np.zeros(n)
        self._base_upper = np.ones(n)
        for index, value in program.fixed.items():
            self._base_lower[index] = float(value)
            self._base_upper[index] = float(value)
        starts, indices, values, lower, upper = program.rows()
        lp = _highs_core.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = lower.shape[0]
        lp.col_cost_ = cost
        lp.col_lower_ = self._base_lower.copy()
        lp.col_upper_ = self._base_upper.copy()
        lp.row_lower_ = np.where(np.isneginf(lower), -_highs_core.kHighsInf, lower)
        lp.row_upper_ = np.where(np.isposinf(upper), _highs_core.kHighsInf, upper)
        lp.a_matrix_.format_ = _highs_core.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = starts
        lp.a_matrix_.index_ = indices.astype(np.int32)
        lp.a_matrix_.value_ = values
        if self._highs.passModel(lp) != _highs_core.HighsStatus.kOk:
            raise ILPError("HiGHS rejected the LP relaxation")
        self._n_rows_synced = lower.shape[0]

    def sync(self) -> None:
        """Append constraint rows added to the program since construction.

        All pending rows go down in one ``addRows`` call — the compiled
        encoder emits constraints in blocks of thousands, and per-row
        ``addRow`` round-trips through the bindings dominate otherwise.
        """
        starts, indices, values, lower, upper = self.program.rows()
        n_rows = lower.shape[0]
        first = self._n_rows_synced
        if n_rows == first:
            return
        lo = np.where(
            np.isneginf(lower[first:n_rows]), -_highs_core.kHighsInf, lower[first:n_rows]
        )
        hi = np.where(
            np.isposinf(upper[first:n_rows]), _highs_core.kHighsInf, upper[first:n_rows]
        )
        base = int(starts[first])
        span = slice(base, int(starts[n_rows]))
        status = self._highs.addRows(
            n_rows - first,
            np.asarray(lo, dtype=np.float64),
            np.asarray(hi, dtype=np.float64),
            int(starts[n_rows]) - base,
            (starts[first:n_rows] - base).astype(np.int32),
            indices[span].astype(np.int32),
            values[span],
        )
        if status != _highs_core.HighsStatus.kOk:
            raise ILPError("HiGHS rejected appended constraint rows")
        self._n_rows_synced = n_rows

    def solve_relaxation(
        self, extra_fixed: dict[int, int]
    ) -> tuple[float, np.ndarray] | None:
        """Solve with extra 0/1 pins; returns (objective, x) or None."""
        self.sync()
        columns = list(extra_fixed.items())
        for index, value in columns:
            self._highs.changeColBounds(int(index), float(value), float(value))
        try:
            if not self.warm:
                # Cold solves reproduce the reference backend's vertices.
                self._highs.clearSolver()
            self._highs.run()
            status = self._highs.getModelStatus()
            if status != _highs_core.HighsModelStatus.kOptimal:
                return None
            x = np.asarray(self._highs.getSolution().col_value, dtype=np.float64)
            objective = float(self._highs.getInfo().objective_function_value)
            return objective + self.program.objective_constant, x
        finally:
            for index, _ in columns:
                self._highs.changeColBounds(
                    int(index),
                    float(self._base_lower[index]),
                    float(self._base_upper[index]),
                )


def _resolve_backend(lp_backend: str | None) -> str:
    backend = lp_backend or DEFAULT_LP_BACKEND
    if backend not in ("highs", "highs-warm", "linprog"):
        raise ILPError(
            f"unknown lp_backend {backend!r}; use 'highs', 'highs-warm', or 'linprog'"
        )
    if backend != "linprog" and _highs_core is None:  # pragma: no cover
        backend = "linprog"
    return backend


def _make_relaxation_solver(program: BinaryProgram, backend: str):
    """Pick the LP relaxation solver for this program."""
    if backend in ("highs", "highs-warm"):
        persistent = PersistentLP(program, warm=backend == "highs-warm")
        return persistent.solve_relaxation
    return lambda extra_fixed: _lp_relaxation(program, extra_fixed)


@dataclass
class ILPSolution:
    """An integral assignment with its objective value."""

    values: np.ndarray
    objective: float
    nodes_explored: int

    def as_bools(self) -> np.ndarray:
        return self.values > 0.5


def _lp_relaxation(
    program: BinaryProgram, extra_fixed: dict[int, int]
) -> tuple[float, np.ndarray] | None:
    """Solve the LP relaxation; returns (objective, x) or None if infeasible."""
    n = program.n_vars
    c = np.zeros(n)
    for index, coeff in program.objective.items():
        c[index] = coeff

    a_ub: list[np.ndarray] = []
    b_ub: list[float] = []
    a_eq: list[np.ndarray] = []
    b_eq: list[float] = []
    for constraint in program.constraints:
        row = np.zeros(n)
        for index, coeff in constraint.coeffs:
            row[index] = coeff
        if constraint.sense == "<=":
            a_ub.append(row)
            b_ub.append(constraint.rhs)
        elif constraint.sense == ">=":
            a_ub.append(-row)
            b_ub.append(-constraint.rhs)
        else:
            a_eq.append(row)
            b_eq.append(constraint.rhs)

    bounds = [(0.0, 1.0)] * n
    for index, value in program.fixed.items():
        bounds[index] = (float(value), float(value))
    for index, value in extra_fixed.items():
        bounds[index] = (float(value), float(value))

    result = optimize.linprog(
        c,
        A_ub=np.asarray(a_ub) if a_ub else None,
        b_ub=np.asarray(b_ub) if b_ub else None,
        A_eq=np.asarray(a_eq) if a_eq else None,
        b_eq=np.asarray(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return None
    return float(result.fun) + program.objective_constant, np.asarray(result.x)


def solve(
    program: BinaryProgram,
    node_limit: int = 20000,
    time_limit: float | None = None,
    lp_backend: str | None = None,
    _relaxation=None,
) -> ILPSolution:
    """Minimize the program exactly (within the node/time budget).

    ``lp_backend`` picks the backend: ``"highs"`` / ``"highs-warm"``
    (persistent instance, default when available) or ``"linprog"`` — the
    seed implementation preserved verbatim in :func:`solve_reference`.

    Raises:
        InfeasibleError: no feasible 0-1 point exists.
        ILPTimeoutError: budget exhausted before proving optimality.
    """
    if _relaxation is None:
        backend = _resolve_backend(lp_backend)
        if backend == "linprog":
            return solve_reference(
                program, node_limit=node_limit, time_limit=time_limit
            )
        _relaxation = _make_relaxation_solver(program, backend)
    relaxation = _relaxation
    start = time.perf_counter()
    root = relaxation({})
    if root is None:
        raise InfeasibleError("LP relaxation is infeasible")

    counter = itertools.count()
    # Heap of (bound, tiebreak, fixed-assignments dict, relaxation solution)
    heap: list[tuple[float, int, dict[int, int], np.ndarray]] = [
        (root[0], next(counter), {}, root[1])
    ]
    best: ILPSolution | None = None
    nodes = 0

    while heap:
        bound, _, fixed, x = heapq.heappop(heap)
        if best is not None and bound >= best.objective - 1e-9:
            continue
        nodes += 1
        if nodes > node_limit or (
            time_limit is not None and time.perf_counter() - start > time_limit
        ):
            if best is not None:
                return best
            raise ILPTimeoutError(
                f"branch & bound exhausted its budget after {nodes} nodes "
                "without an incumbent"
            )

        distance = np.minimum(x, 1.0 - x)
        fractional = np.flatnonzero(distance > _INT_TOL)
        if fractional.size == 0:
            candidate = np.round(x).astype(np.int8)
            if program.is_feasible(candidate):
                objective = program.objective_value(candidate)
                if best is None or objective < best.objective - 1e-9:
                    best = ILPSolution(candidate, objective, nodes)
            continue

        # Most fractional first; argmax keeps the reference tie-break
        # (lowest index among equally fractional variables).
        branch_var = int(fractional[np.argmax(distance[fractional])])
        for value in (0, 1):
            child_fixed = dict(fixed)
            child_fixed[branch_var] = value
            relaxed = relaxation(child_fixed)
            if relaxed is None:
                continue
            child_bound, child_x = relaxed
            if best is not None and child_bound >= best.objective - 1e-9:
                continue
            heapq.heappush(heap, (child_bound, next(counter), child_fixed, child_x))

    if best is None:
        raise InfeasibleError("no feasible 0-1 assignment exists")
    best.nodes_explored = nodes
    return best


def enumerate_optima(
    program: BinaryProgram,
    max_solutions: int = 100,
    node_limit: int = 20000,
    time_limit: float | None = None,
    lp_backend: str | None = None,
) -> list[ILPSolution]:
    """All optimal solutions, up to ``max_solutions``.

    Finds one optimum, then repeatedly adds a *no-good cut* excluding the
    last solution while constraining the objective to the optimal value.
    The length of the returned list (vs. ``max_solutions``) is TwoStep's
    ambiguity measurement.  With the persistent backend the cuts are
    appended to one live HiGHS model instead of being re-parsed from
    scratch on every enumeration step.
    """
    backend = _resolve_backend(lp_backend)
    if backend == "linprog":
        return enumerate_optima_reference(
            program,
            max_solutions=max_solutions,
            node_limit=node_limit,
            time_limit=time_limit,
        )
    # Work on a copy so the caller's program is untouched; one persistent
    # LP serves the base solve and every cut re-solve (the pin and cuts
    # are appended to the same live HiGHS model by sync()).
    restricted = program.clone()
    relaxation = _make_relaxation_solver(restricted, backend)
    first = solve(
        program,
        node_limit=node_limit,
        time_limit=time_limit,
        _relaxation=relaxation,
    )
    solutions = [first]
    optimum = first.objective

    # Pin the objective to the optimal value.
    restricted.add_constraint(
        program.objective, "<=", optimum - program.objective_constant + 1e-6
    )

    while len(solutions) < max_solutions:
        last = solutions[-1].values
        # No-good cut: Σ_{i: last_i=1} (1 - x_i) + Σ_{i: last_i=0} x_i ≥ 1.
        ones = last > 0.5
        signs = np.where(ones, -1.0, 1.0)
        restricted.add_dense_constraint(
            signs, ">=", 1.0 - float(np.count_nonzero(ones))
        )
        try:
            nxt = solve(
                restricted,
                node_limit=node_limit,
                time_limit=time_limit,
                _relaxation=relaxation,
            )
        except InfeasibleError:
            break
        if nxt.objective > optimum + 1e-6:
            break
        solutions.append(nxt)
    if backend == "highs-warm":
        return _canonical_order(solutions)
    return solutions


def _canonical_order(solutions: list[ILPSolution]) -> list[ILPSolution]:
    """Lexicographic tie-break over the enumerated (tied-optimal) optima.

    Warm solves reuse the previous basis, so on degenerate LPs they can
    land on different optimal vertices than a cold solve and *permute* the
    discovery order of tied optima — removal orders downstream then depend
    on solver-internal state.  Sorting the complete enumeration by variable
    assignment (all objectives are equal at the optimum) makes
    ``lp_backend="highs-warm"`` order-stable: the same solution set always
    comes back in the same order, matching the canonically-sorted cold
    enumeration.  Cold backends keep their raw discovery order, which is
    pinned bit-identical between ``"highs"`` and ``"linprog"``.
    """
    return sorted(solutions, key=lambda solution: solution.values.tolist())


def pick_solution(
    solutions: list[ILPSolution], rng: np.random.Generator
) -> ILPSolution:
    """Model the opaque solver pick: uniform over the enumerated optima."""
    if not solutions:
        raise InfeasibleError("no solutions to pick from")
    return solutions[int(rng.integers(len(solutions)))]


# ---------------------------------------------------------------------------
# Reference backend: the seed implementation, preserved verbatim
# ---------------------------------------------------------------------------
#
# ``lp_backend="linprog"`` routes here.  These functions rebuild a dense LP
# and call ``scipy.optimize.linprog`` at every branch-and-bound node, exactly
# as the original code did — per-coefficient feasibility checks included —
# the benchmarks run them to anchor the persistent backend's speedup, and
# the cold persistent backend is pinned to return bit-identical vertices
# (both are HiGHS underneath).


def _is_feasible_reference(program: BinaryProgram, x, tol: float = 1e-6) -> bool:
    """The seed's coefficient-at-a-time feasibility check."""
    for index, value in program.fixed.items():
        if abs(float(x[index]) - value) > tol:
            return False
    for constraint in program.constraints:
        lhs = sum(coeff * float(x[index]) for index, coeff in constraint.coeffs)
        if constraint.sense == "<=" and lhs > constraint.rhs + tol:
            return False
        if constraint.sense == ">=" and lhs < constraint.rhs - tol:
            return False
        if constraint.sense == "=" and abs(lhs - constraint.rhs) > tol:
            return False
    return True


def solve_reference(
    program: BinaryProgram,
    node_limit: int = 20000,
    time_limit: float | None = None,
) -> ILPSolution:
    """Seed branch & bound over per-call scipy LP relaxations."""
    start = time.perf_counter()
    root = _lp_relaxation(program, {})
    if root is None:
        raise InfeasibleError("LP relaxation is infeasible")

    counter = itertools.count()
    heap: list[tuple[float, int, dict[int, int], np.ndarray]] = [
        (root[0], next(counter), {}, root[1])
    ]
    best: ILPSolution | None = None
    nodes = 0

    while heap:
        bound, _, fixed, x = heapq.heappop(heap)
        if best is not None and bound >= best.objective - 1e-9:
            continue
        nodes += 1
        if nodes > node_limit or (
            time_limit is not None and time.perf_counter() - start > time_limit
        ):
            if best is not None:
                return best
            raise ILPTimeoutError(
                f"branch & bound exhausted its budget after {nodes} nodes "
                "without an incumbent"
            )

        fractional = [
            index
            for index in range(program.n_vars)
            if min(x[index], 1.0 - x[index]) > _INT_TOL
        ]
        if not fractional:
            candidate = np.round(x).astype(np.int8)
            if _is_feasible_reference(program, candidate):
                objective = program.objective_value(candidate)
                if best is None or objective < best.objective - 1e-9:
                    best = ILPSolution(candidate, objective, nodes)
            continue

        branch_var = max(fractional, key=lambda index: min(x[index], 1.0 - x[index]))
        for value in (0, 1):
            child_fixed = dict(fixed)
            child_fixed[branch_var] = value
            relaxed = _lp_relaxation(program, child_fixed)
            if relaxed is None:
                continue
            child_bound, child_x = relaxed
            if best is not None and child_bound >= best.objective - 1e-9:
                continue
            heapq.heappush(heap, (child_bound, next(counter), child_fixed, child_x))

    if best is None:
        raise InfeasibleError("no feasible 0-1 assignment exists")
    best.nodes_explored = nodes
    return best


def enumerate_optima_reference(
    program: BinaryProgram,
    max_solutions: int = 100,
    node_limit: int = 20000,
    time_limit: float | None = None,
) -> list[ILPSolution]:
    """Seed optimum enumeration: copy the program, add cuts one dict at a time."""
    first = solve_reference(program, node_limit=node_limit, time_limit=time_limit)
    solutions = [first]
    optimum = first.objective

    restricted = BinaryProgram()
    for index in range(program.n_vars):
        restricted.add_var(program.name(index))
    for index, value in program.fixed.items():
        restricted.fix(index, value)
    restricted.set_objective(program.objective, program.objective_constant)
    for constraint in program.constraints:
        restricted.add_constraint(
            dict(constraint.coeffs), constraint.sense, constraint.rhs
        )
    restricted.add_constraint(
        program.objective, "<=", optimum - program.objective_constant + 1e-6
    )

    while len(solutions) < max_solutions:
        last = solutions[-1].values
        coeffs: dict[int, float] = {}
        rhs = 1.0
        for index in range(restricted.n_vars):
            if last[index] > 0.5:
                coeffs[index] = -1.0
                rhs -= 1.0
            else:
                coeffs[index] = 1.0
        restricted.add_constraint(coeffs, ">=", rhs)
        try:
            nxt = solve_reference(
                restricted, node_limit=node_limit, time_limit=time_limit
            )
        except InfeasibleError:
            break
        if nxt.objective > optimum + 1e-6:
            break
        solutions.append(nxt)
    return solutions
