"""Exact branch & bound for 0-1 ILPs over scipy LP relaxations.

This is the library's replacement for the paper's off-the-shelf solver
(Gurobi / CPLEX).  Best-first branch & bound; each node solves the LP
relaxation with ``scipy.optimize.linprog`` (HiGHS), prunes by bound, and
branches on the most fractional variable.

Also provided:

- :func:`enumerate_optima` — all optimal solutions up to a cap, found by
  repeatedly adding *no-good cuts*.  TwoStep uses this both to measure
  complaint **ambiguity** (the number of satisfying minimal fixes,
  Section 5.2.2) and to emulate an opaque solver "picking one solution"
  (a seeded uniform choice, matching Theorem A.1's random-pick model).
- a node/time budget: the paper itself reports TwoStep's ILP not finishing
  within 30 minutes on the mix-rate experiment, so hitting the budget is a
  *reportable outcome* (:class:`~repro.errors.ILPTimeoutError`), not a bug.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..errors import ILPTimeoutError, InfeasibleError
from .model import BinaryProgram

_INT_TOL = 1e-6


@dataclass
class ILPSolution:
    """An integral assignment with its objective value."""

    values: np.ndarray
    objective: float
    nodes_explored: int

    def as_bools(self) -> np.ndarray:
        return self.values > 0.5


def _lp_relaxation(
    program: BinaryProgram, extra_fixed: dict[int, int]
) -> tuple[float, np.ndarray] | None:
    """Solve the LP relaxation; returns (objective, x) or None if infeasible."""
    n = program.n_vars
    c = np.zeros(n)
    for index, coeff in program.objective.items():
        c[index] = coeff

    a_ub: list[np.ndarray] = []
    b_ub: list[float] = []
    a_eq: list[np.ndarray] = []
    b_eq: list[float] = []
    for constraint in program.constraints:
        row = np.zeros(n)
        for index, coeff in constraint.coeffs:
            row[index] = coeff
        if constraint.sense == "<=":
            a_ub.append(row)
            b_ub.append(constraint.rhs)
        elif constraint.sense == ">=":
            a_ub.append(-row)
            b_ub.append(-constraint.rhs)
        else:
            a_eq.append(row)
            b_eq.append(constraint.rhs)

    bounds = [(0.0, 1.0)] * n
    for index, value in program.fixed.items():
        bounds[index] = (float(value), float(value))
    for index, value in extra_fixed.items():
        bounds[index] = (float(value), float(value))

    result = optimize.linprog(
        c,
        A_ub=np.asarray(a_ub) if a_ub else None,
        b_ub=np.asarray(b_ub) if b_ub else None,
        A_eq=np.asarray(a_eq) if a_eq else None,
        b_eq=np.asarray(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return None
    return float(result.fun) + program.objective_constant, np.asarray(result.x)


def solve(
    program: BinaryProgram,
    node_limit: int = 20000,
    time_limit: float | None = None,
) -> ILPSolution:
    """Minimize the program exactly (within the node/time budget).

    Raises:
        InfeasibleError: no feasible 0-1 point exists.
        ILPTimeoutError: budget exhausted before proving optimality.
    """
    start = time.perf_counter()
    root = _lp_relaxation(program, {})
    if root is None:
        raise InfeasibleError("LP relaxation is infeasible")

    counter = itertools.count()
    # Heap of (bound, tiebreak, fixed-assignments dict, relaxation solution)
    heap: list[tuple[float, int, dict[int, int], np.ndarray]] = [
        (root[0], next(counter), {}, root[1])
    ]
    best: ILPSolution | None = None
    nodes = 0

    while heap:
        bound, _, fixed, x = heapq.heappop(heap)
        if best is not None and bound >= best.objective - 1e-9:
            continue
        nodes += 1
        if nodes > node_limit or (
            time_limit is not None and time.perf_counter() - start > time_limit
        ):
            if best is not None:
                return best
            raise ILPTimeoutError(
                f"branch & bound exhausted its budget after {nodes} nodes "
                "without an incumbent"
            )

        fractional = [
            index
            for index in range(program.n_vars)
            if min(x[index], 1.0 - x[index]) > _INT_TOL
        ]
        if not fractional:
            candidate = np.round(x).astype(np.int8)
            if program.is_feasible(candidate):
                objective = program.objective_value(candidate)
                if best is None or objective < best.objective - 1e-9:
                    best = ILPSolution(candidate, objective, nodes)
            continue

        branch_var = max(fractional, key=lambda index: min(x[index], 1.0 - x[index]))
        for value in (0, 1):
            child_fixed = dict(fixed)
            child_fixed[branch_var] = value
            relaxed = _lp_relaxation(program, child_fixed)
            if relaxed is None:
                continue
            child_bound, child_x = relaxed
            if best is not None and child_bound >= best.objective - 1e-9:
                continue
            heapq.heappush(heap, (child_bound, next(counter), child_fixed, child_x))

    if best is None:
        raise InfeasibleError("no feasible 0-1 assignment exists")
    best.nodes_explored = nodes
    return best


def enumerate_optima(
    program: BinaryProgram,
    max_solutions: int = 100,
    node_limit: int = 20000,
    time_limit: float | None = None,
) -> list[ILPSolution]:
    """All optimal solutions, up to ``max_solutions``.

    Finds one optimum, then repeatedly adds a *no-good cut* excluding the
    last solution while constraining the objective to the optimal value.
    The length of the returned list (vs. ``max_solutions``) is TwoStep's
    ambiguity measurement.
    """
    first = solve(program, node_limit=node_limit, time_limit=time_limit)
    solutions = [first]
    optimum = first.objective

    # Work on a copy so the caller's program is untouched.
    restricted = BinaryProgram()
    for index in range(program.n_vars):
        restricted.add_var(program.name(index))
    for index, value in program.fixed.items():
        restricted.fix(index, value)
    restricted.set_objective(program.objective, program.objective_constant)
    for constraint in program.constraints:
        restricted.add_constraint(dict(constraint.coeffs), constraint.sense, constraint.rhs)
    # Pin the objective to the optimal value.
    restricted.add_constraint(
        program.objective, "<=", optimum - program.objective_constant + 1e-6
    )

    while len(solutions) < max_solutions:
        last = solutions[-1].values
        # No-good cut: Σ_{i: last_i=1} (1 - x_i) + Σ_{i: last_i=0} x_i ≥ 1.
        coeffs: dict[int, float] = {}
        rhs = 1.0
        for index in range(restricted.n_vars):
            if last[index] > 0.5:
                coeffs[index] = -1.0
                rhs -= 1.0
            else:
                coeffs[index] = 1.0
        restricted.add_constraint(coeffs, ">=", rhs)
        try:
            nxt = solve(restricted, node_limit=node_limit, time_limit=time_limit)
        except InfeasibleError:
            break
        if nxt.objective > optimum + 1e-6:
            break
        solutions.append(nxt)
    return solutions


def pick_solution(
    solutions: list[ILPSolution], rng: np.random.Generator
) -> ILPSolution:
    """Model the opaque solver pick: uniform over the enumerated optima."""
    if not solutions:
        raise InfeasibleError("no solutions to pick from")
    return solutions[int(rng.integers(len(solutions)))]
