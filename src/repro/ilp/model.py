"""0-1 integer linear programs: variables, constraints, objective.

The TwoStep SQL step (Section 5.2) translates complaints + provenance into
an ILP à la Tiresias [Meliou & Suciu 2012].  The paper solves these with
Gurobi/CPLEX; this module provides the model representation and
:mod:`repro.ilp.solver` provides an exact branch-and-bound solver over
scipy LP relaxations.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..errors import ILPError

SENSES = ("<=", ">=", "=")


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``Σ coeffs[i]·x_i  sense  rhs``."""

    coeffs: tuple[tuple[int, float], ...]
    sense: str
    rhs: float

    def __post_init__(self) -> None:
        if self.sense not in SENSES:
            raise ILPError(f"constraint sense must be one of {SENSES}, got {self.sense!r}")


class BinaryProgram:
    """A minimization 0-1 ILP."""

    def __init__(self) -> None:
        self._names: list[str] = []
        self._objective: dict[int, float] = {}
        self.objective_constant: float = 0.0
        self.constraints: list[Constraint] = []
        self._fixed: dict[int, int] = {}

    # -- variables ---------------------------------------------------------------

    def add_var(self, name: str | None = None) -> int:
        index = len(self._names)
        self._names.append(name or f"x{index}")
        return index

    @property
    def n_vars(self) -> int:
        return len(self._names)

    def name(self, index: int) -> str:
        return self._names[index]

    def fix(self, index: int, value: int) -> None:
        """Pin a variable to 0 or 1 (used for no-good style restrictions)."""
        if value not in (0, 1):
            raise ILPError(f"binary variable can only be fixed to 0/1, got {value}")
        self._fixed[index] = value

    @property
    def fixed(self) -> dict[int, int]:
        return dict(self._fixed)

    # -- objective / constraints ----------------------------------------------------

    def set_objective(self, coeffs: Mapping[int, float], constant: float = 0.0) -> None:
        self._validate_indices(coeffs)
        self._objective = {int(k): float(v) for k, v in coeffs.items() if v != 0.0}
        self.objective_constant = float(constant)

    def add_objective_term(self, index: int, coeff: float) -> None:
        self._validate_indices({index: coeff})
        self._objective[index] = self._objective.get(index, 0.0) + float(coeff)

    @property
    def objective(self) -> dict[int, float]:
        return dict(self._objective)

    def add_constraint(
        self, coeffs: Mapping[int, float], sense: str, rhs: float
    ) -> None:
        self._validate_indices(coeffs)
        packed = tuple(
            (int(index), float(coeff)) for index, coeff in coeffs.items() if coeff != 0.0
        )
        self.constraints.append(Constraint(packed, sense, float(rhs)))

    def _validate_indices(self, coeffs: Mapping[int, float]) -> None:
        for index in coeffs:
            if not 0 <= int(index) < self.n_vars:
                raise ILPError(
                    f"variable index {index} out of range [0, {self.n_vars})"
                )

    # -- evaluation -------------------------------------------------------------------

    def objective_value(self, x) -> float:
        total = self.objective_constant
        for index, coeff in self._objective.items():
            total += coeff * float(x[index])
        return total

    def is_feasible(self, x, tol: float = 1e-6) -> bool:
        for index, value in self._fixed.items():
            if abs(float(x[index]) - value) > tol:
                return False
        for constraint in self.constraints:
            lhs = sum(coeff * float(x[index]) for index, coeff in constraint.coeffs)
            if constraint.sense == "<=" and lhs > constraint.rhs + tol:
                return False
            if constraint.sense == ">=" and lhs < constraint.rhs - tol:
                return False
            if constraint.sense == "=" and abs(lhs - constraint.rhs) > tol:
                return False
        return True
