"""0-1 integer linear programs: variables, constraints, objective.

The TwoStep SQL step (Section 5.2) translates complaints + provenance into
an ILP à la Tiresias [Meliou & Suciu 2012].  The paper solves these with
Gurobi/CPLEX; this module provides the model representation and
:mod:`repro.ilp.solver` provides an exact branch-and-bound solver over
LP relaxations (a persistent HiGHS instance by default, scipy ``linprog``
as the reference).

Constraints are additionally materialized as one CSR matrix
(:meth:`BinaryProgram.rows`), cached until the next mutation, so that
feasibility checks and LP-backend construction are array operations
rather than per-coefficient Python loops.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from ..errors import ILPError

SENSES = ("<=", ">=", "=")


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``Σ coeffs[i]·x_i  sense  rhs``."""

    coeffs: tuple[tuple[int, float], ...]
    sense: str
    rhs: float

    def __post_init__(self) -> None:
        if self.sense not in SENSES:
            raise ILPError(f"constraint sense must be one of {SENSES}, got {self.sense!r}")


class BinaryProgram:
    """A minimization 0-1 ILP."""

    def __init__(self) -> None:
        self._names: list[str | None] = []
        self._name_blocks: list[tuple[int, int, str]] = []
        self._objective: dict[int, float] = {}
        self.objective_constant: float = 0.0
        # Bulk-appended rows live only in the CSR until someone asks for
        # Constraint objects; None marks a not-yet-materialized row.
        self._constraints: list[Constraint | None] = []
        self._n_lazy = 0
        self._fixed: dict[int, int] = {}
        self._objective_arrays: tuple[np.ndarray, np.ndarray] | None = None
        # Incremental CSR builder (constraints are append-only): amortized
        # growable arrays so rows() hands out views, never re-snapshots.
        self._csr_starts = np.zeros(16, dtype=np.int64)
        self._csr_indices = np.zeros(64, dtype=np.int64)
        self._csr_values = np.zeros(64, dtype=np.float64)
        self._csr_lower = np.zeros(16, dtype=np.float64)
        self._csr_upper = np.zeros(16, dtype=np.float64)
        self._csr_nnz = 0
        self._rows_built = 0

    # -- variables ---------------------------------------------------------------

    def add_var(self, name: str | None = None) -> int:
        index = len(self._names)
        self._names.append(name or f"x{index}")
        return index

    def add_vars(self, names: list[str]) -> range:
        """Bulk variable creation; returns the new index range."""
        first = len(self._names)
        self._names.extend(names)
        return range(first, len(self._names))

    def add_var_block(self, count: int, prefix: str = "z") -> range:
        """Bulk anonymous variable creation with lazily formatted names.

        The block's names are ``f"{prefix}{index}"``, materialized only if
        someone asks (solver diagnostics, repr) — the compiled ILP encoder
        allocates thousands of aux variables per program and the f-string
        per variable is measurable.
        """
        if count < 0:
            raise ILPError(f"variable block size must be >= 0, got {count}")
        first = len(self._names)
        self._names.extend([None] * count)
        if count:
            self._name_blocks.append((first, first + count, prefix))
        return range(first, first + count)

    def clone(self) -> "BinaryProgram":
        """A deep-enough copy sharing no mutable state with the original.

        Constraints are immutable, so the copy reuses them (and the already
        built CSR prefix) instead of re-validating every coefficient.
        """
        other = BinaryProgram()
        other._names = list(self._names)
        other._name_blocks = list(self._name_blocks)
        other._objective = dict(self._objective)
        other.objective_constant = self.objective_constant
        other._constraints = list(self._constraints)
        other._n_lazy = self._n_lazy
        other._fixed = dict(self._fixed)
        self._sync_rows_builder()  # materialize the CSR prefix, then copy it
        other._csr_starts = self._csr_starts.copy()
        other._csr_indices = self._csr_indices.copy()
        other._csr_values = self._csr_values.copy()
        other._csr_lower = self._csr_lower.copy()
        other._csr_upper = self._csr_upper.copy()
        other._csr_nnz = self._csr_nnz
        other._rows_built = self._rows_built
        return other

    @property
    def n_vars(self) -> int:
        return len(self._names)

    def name(self, index: int) -> str:
        name = self._names[index]
        if name is None:
            for start, end, prefix in self._name_blocks:
                if start <= index < end:
                    name = f"{prefix}{index}"
                    self._names[index] = name
                    break
        return name

    def fix(self, index: int, value: int) -> None:
        """Pin a variable to 0 or 1 (used for no-good style restrictions)."""
        if value not in (0, 1):
            raise ILPError(f"binary variable can only be fixed to 0/1, got {value}")
        self._fixed[index] = value

    @property
    def fixed(self) -> dict[int, int]:
        return dict(self._fixed)

    # -- objective / constraints ----------------------------------------------------

    def set_objective(self, coeffs: Mapping[int, float], constant: float = 0.0) -> None:
        self._validate_indices(coeffs)
        self._objective = {int(k): float(v) for k, v in coeffs.items() if v != 0.0}
        self.objective_constant = float(constant)
        self._objective_arrays = None

    def add_objective_term(self, index: int, coeff: float) -> None:
        self._validate_indices({index: coeff})
        self._objective[index] = self._objective.get(index, 0.0) + float(coeff)
        self._objective_arrays = None

    @property
    def objective(self) -> dict[int, float]:
        return dict(self._objective)

    @property
    def n_constraints(self) -> int:
        """Row count without materializing lazily-held CSR rows."""
        return len(self._constraints)

    @property
    def constraints(self) -> list[Constraint]:
        """All constraints as :class:`Constraint` objects.

        Rows appended via :meth:`add_constraint_block` exist only in the
        CSR until first touched here; accessing this property materializes
        them (senses reconstructed from the row bounds).
        """
        if self._n_lazy:
            self._materialize_lazy_rows()
        return self._constraints

    def _materialize_lazy_rows(self) -> None:
        starts = self._csr_starts
        indices = self._csr_indices
        values = self._csr_values
        for row, constraint in enumerate(self._constraints):
            if constraint is not None:
                continue
            lower = self._csr_lower[row]
            upper = self._csr_upper[row]
            if lower == -np.inf:
                sense, rhs = "<=", upper
            elif upper == np.inf:
                sense, rhs = ">=", lower
            else:
                sense, rhs = "=", upper
            span = slice(starts[row], starts[row + 1])
            packed = tuple(zip(indices[span].tolist(), values[span].tolist()))
            self._constraints[row] = Constraint(packed, sense, float(rhs))
        self._n_lazy = 0

    def add_constraint(
        self, coeffs: Mapping[int, float], sense: str, rhs: float
    ) -> None:
        self._validate_indices(coeffs)
        packed = tuple(
            (int(index), float(coeff)) for index, coeff in coeffs.items() if coeff != 0.0
        )
        self._constraints.append(Constraint(packed, sense, float(rhs)))

    def add_constraint_block(
        self,
        starts: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        senses: np.ndarray,
        rhs: np.ndarray,
    ) -> None:
        """Append many constraints at once from CSR arrays.

        ``starts`` has one extra trailing entry (row ``i`` spans
        ``indices[starts[i]:starts[i+1]]``); ``senses`` holds small-int
        codes indexing :data:`SENSES` (0 = "<=", 1 = ">=", 2 = "=").
        Coefficients must already be packed (no explicit zeros) — callers
        are emitting machine-generated rows, not user input.  The rows land
        directly in the CSR builder; Constraint objects are materialized
        lazily on first access to :attr:`constraints`.
        """
        starts = np.asarray(starts, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        senses = np.asarray(senses)
        rhs = np.asarray(rhs, dtype=np.float64)
        n_rows = starts.shape[0] - 1
        if n_rows <= 0:
            if n_rows < 0:
                raise ILPError("constraint block needs at least the trailing start")
            return
        if senses.shape[0] != n_rows or rhs.shape[0] != n_rows:
            raise ILPError("constraint block arrays disagree on the row count")
        if int(starts[-1]) != indices.shape[0] or indices.shape[0] != values.shape[0]:
            raise ILPError("constraint block starts/indices/values disagree")
        if indices.size and (
            int(indices.min()) < 0 or int(indices.max()) >= self.n_vars
        ):
            raise ILPError(
                f"constraint block has variable indices outside [0, {self.n_vars})"
            )
        self._sync_rows_builder()
        self._reserve_rows(n_rows, indices.shape[0])
        nnz = self._csr_nnz
        self._csr_indices[nnz : nnz + indices.shape[0]] = indices
        self._csr_values[nnz : nnz + values.shape[0]] = values
        row = self._rows_built
        self._csr_starts[row + 1 : row + 1 + n_rows] = nnz + starts[1:]
        self._csr_lower[row : row + n_rows] = np.where(senses == 0, -np.inf, rhs)
        self._csr_upper[row : row + n_rows] = np.where(senses == 1, np.inf, rhs)
        self._csr_nnz = nnz + indices.shape[0]
        self._rows_built = row + n_rows
        self._constraints.extend([None] * n_rows)
        self._n_lazy += n_rows

    def _validate_indices(self, coeffs: Mapping[int, float]) -> None:
        for index in coeffs:
            if not 0 <= int(index) < self.n_vars:
                raise ILPError(
                    f"variable index {index} out of range [0, {self.n_vars})"
                )

    # -- evaluation -------------------------------------------------------------------

    def objective_value(self, x) -> float:
        if self._objective_arrays is None:
            self._objective_arrays = (
                np.asarray(list(self._objective.keys()), dtype=np.int64),
                np.asarray(list(self._objective.values()), dtype=np.float64),
            )
        indices, coeffs = self._objective_arrays
        return self.objective_constant + float(
            coeffs @ np.asarray(x, dtype=np.float64)[indices]
        )

    def rows(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """All constraints as one CSR: (starts, indices, values, lower, upper).

        ``starts`` has one extra trailing entry; row bounds encode the sense
        (``<=`` → (-inf, rhs), ``>=`` → (rhs, inf), ``=`` → (rhs, rhs)).
        Built incrementally: only constraints added since the last call are
        walked, and the returned arrays are views into amortized buffers.
        """
        self._sync_rows_builder()
        n_rows = self._rows_built
        return (
            self._csr_starts[: n_rows + 1],
            self._csr_indices[: self._csr_nnz],
            self._csr_values[: self._csr_nnz],
            self._csr_lower[:n_rows],
            self._csr_upper[:n_rows],
        )

    def _reserve_rows(self, extra_rows: int, extra_nnz: int) -> None:
        from ..utils import grow_array

        needed_rows = self._rows_built + extra_rows + 1
        for name in ("_csr_starts", "_csr_lower", "_csr_upper"):
            setattr(self, name, grow_array(getattr(self, name), needed_rows))
        needed_nnz = self._csr_nnz + extra_nnz
        for name in ("_csr_indices", "_csr_values"):
            setattr(self, name, grow_array(getattr(self, name), needed_nnz))

    def _push_row(
        self, indices: np.ndarray, values: np.ndarray, sense: str, rhs: float
    ) -> None:
        count = indices.shape[0]
        self._reserve_rows(1, count)
        nnz = self._csr_nnz
        self._csr_indices[nnz : nnz + count] = indices
        self._csr_values[nnz : nnz + count] = values
        self._csr_nnz = nnz + count
        row = self._rows_built
        self._csr_starts[row + 1] = self._csr_nnz
        if sense == "<=":
            self._csr_lower[row] = -np.inf
            self._csr_upper[row] = rhs
        elif sense == ">=":
            self._csr_lower[row] = rhs
            self._csr_upper[row] = np.inf
        else:
            self._csr_lower[row] = rhs
            self._csr_upper[row] = rhs
        self._rows_built = row + 1

    def _sync_rows_builder(self) -> None:
        # Everything below _rows_built is already in the CSR (including
        # lazy block rows, which are born there); the tail is always made
        # of real Constraint objects from add_constraint.
        for constraint in self._constraints[self._rows_built :]:
            self._push_row(
                np.asarray([index for index, _ in constraint.coeffs], dtype=np.int64),
                np.asarray([coeff for _, coeff in constraint.coeffs], dtype=np.float64),
                constraint.sense,
                constraint.rhs,
            )

    def add_dense_constraint(
        self, values: np.ndarray, sense: str, rhs: float
    ) -> None:
        """Add a constraint from a dense coefficient vector (C-speed packing).

        Equivalent to ``add_constraint(dict(enumerate(values)), ...)`` but
        packs the row and extends the CSR builder without per-coefficient
        Python loops — the no-good cuts of the optimum enumeration are
        full-width rows, so this is their hot path.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] != self.n_vars:
            raise ILPError(
                f"dense row has {values.shape[0]} coefficients for "
                f"{self.n_vars} variables"
            )
        nonzero = np.flatnonzero(values)
        packed = tuple(zip(nonzero.tolist(), values[nonzero].tolist()))
        self._sync_rows_builder()
        self._constraints.append(Constraint(packed, sense, float(rhs)))
        self._push_row(nonzero, values[nonzero], sense, float(rhs))

    def is_feasible(self, x, tol: float = 1e-6) -> bool:
        for index, value in self._fixed.items():
            if abs(float(x[index]) - value) > tol:
                return False
        if not self._constraints:
            return True
        starts, indices, values, lower, upper = self.rows()
        x = np.asarray(x, dtype=np.float64)
        products = values * x[indices]
        counts = np.diff(starts)
        lhs = np.zeros(counts.shape[0], dtype=np.float64)
        nonempty = counts > 0
        if products.size:
            lhs[nonempty] = np.add.reduceat(products, starts[:-1][nonempty])
        return bool(
            np.all(lhs <= upper + tol) and np.all(lhs >= lower - tol)
        )
