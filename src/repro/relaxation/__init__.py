"""Holistic's differentiable relaxation of provenance + complaints."""

from .objective import RelaxedComplaintObjective
from .relax import Relaxer

__all__ = ["RelaxedComplaintObjective", "Relaxer"]
