"""Differentiable relaxation of provenance polynomials (Section 5.3).

Holistic replaces every discrete prediction in a provenance polynomial with
its class probability and every boolean operator with its continuous
counterpart::

    x AND y  →  x · y
    x OR  y  →  1 - (1 - x)(1 - y)
    NOT x    →  1 - x

applied even when sub-expressions share variables (the paper's tractable
independence assumption; exact when each variable occurs once).  Aggregate
polynomials relax linearly (COUNT → Σ p, SUM → Σ coeff·p, AVG → ratio).

:class:`Relaxer` evaluates a polynomial at a probability matrix ``P`` of
shape ``(n_sites, n_classes)`` and returns both the value and ``∂value/∂P``
via one reverse sweep over the expression DAG.  Composed with the model's
probability VJP this yields ``∇_θ q(θ)`` for influence analysis.

This per-tree interpreter is the *golden reference* for the relaxation
semantics.  The production path
(:class:`~repro.relational.compile.CompiledProvenance`, used by
:class:`~repro.relaxation.objective.RelaxedComplaintObjective` by default)
evaluates every complaint polynomial of a query in one level-batched numpy
sweep and is pinned to this implementation by randomized equivalence tests
(values and gradients within 1e-9).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..errors import RelaxationError
from ..relational import provenance as prov


class Relaxer:
    """Evaluates relaxed polynomials and their probability gradients."""

    def __init__(self, class_columns: Mapping[object, int], n_classes: int) -> None:
        """``class_columns`` maps class label -> column index of ``P``."""
        self.class_columns = dict(class_columns)
        self.n_classes = int(n_classes)

    @classmethod
    def for_model(cls, model) -> "Relaxer":
        return cls(
            {label: index for index, label in enumerate(model.classes)},
            len(model.classes),
        )

    # -- forward -------------------------------------------------------------------

    def value(self, node, P: np.ndarray) -> float:
        """Relaxed value of a Bool/Num provenance expression at ``P``."""
        values: dict[int, float] = {}
        for current in _topological(node):
            values[id(current)] = self._forward_one(current, values, P)
        return values[id(node)]

    def value_and_grad(
        self, node, P: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Relaxed value and gradient ``∂value/∂P`` (same shape as ``P``)."""
        order = _topological(node)
        values: dict[int, float] = {}
        for current in order:
            values[id(current)] = self._forward_one(current, values, P)
        adjoints: dict[int, float] = {id(current): 0.0 for current in order}
        adjoints[id(node)] = 1.0
        grad = np.zeros_like(P, dtype=np.float64)
        for current in reversed(order):
            self._backward_one(current, values, adjoints, grad, P)
        return values[id(node)], grad

    # -- per-node rules --------------------------------------------------------------

    def _prob(self, atom: prov.PredIs, P: np.ndarray) -> float:
        try:
            column = self.class_columns[atom.label]
        except KeyError:
            raise RelaxationError(
                f"atom class {atom.label!r} is not a model class"
            ) from None
        return float(P[atom.site_id, column])

    def _forward_one(self, node, values: dict[int, float], P: np.ndarray) -> float:
        if isinstance(node, prov.TrueExpr):
            return 1.0
        if isinstance(node, prov.FalseExpr):
            return 0.0
        if isinstance(node, prov.PredIs):
            return self._prob(node, P)
        if isinstance(node, prov.AndExpr):
            out = 1.0
            for child in node.children:
                out *= values[id(child)]
            return out
        if isinstance(node, prov.OrExpr):
            out = 1.0
            for child in node.children:
                out *= 1.0 - values[id(child)]
            return 1.0 - out
        if isinstance(node, prov.NotExpr):
            return 1.0 - values[id(node.child)]
        if isinstance(node, prov.ConstNum):
            return node.value
        if isinstance(node, prov.BoolAsNum):
            return values[id(node.expr)]
        if isinstance(node, prov.LinearSum):
            return float(
                sum(coeff * values[id(cond)] for coeff, cond in node.terms)
            )
        if isinstance(node, prov.AddExpr):
            return float(sum(values[id(child)] for child in node.children))
        if isinstance(node, prov.MulExpr):
            out = 1.0
            for child in node.children:
                out *= values[id(child)]
            return out
        if isinstance(node, prov.DivExpr):
            denominator = values[id(node.denominator)]
            if denominator == 0.0:
                raise RelaxationError(
                    "relaxed AVG denominator is zero; the complained group is "
                    "unreachable under the current model"
                )
            return values[id(node.numerator)] / denominator
        raise RelaxationError(f"cannot relax node of type {type(node).__name__}")

    def _backward_one(
        self,
        node,
        values: dict[int, float],
        adjoints: dict[int, float],
        grad: np.ndarray,
        P: np.ndarray,
    ) -> None:
        adjoint = adjoints[id(node)]
        if adjoint == 0.0:
            return
        if isinstance(node, prov.PredIs):
            grad[node.site_id, self.class_columns[node.label]] += adjoint
            return
        if isinstance(node, (prov.TrueExpr, prov.FalseExpr, prov.ConstNum)):
            return
        if isinstance(node, prov.AndExpr) or isinstance(node, prov.MulExpr):
            children = node.children
            child_values = [values[id(child)] for child in children]
            for index, child in enumerate(children):
                others = 1.0
                for other_index, value in enumerate(child_values):
                    if other_index != index:
                        others *= value
                adjoints[id(child)] += adjoint * others
            return
        if isinstance(node, prov.OrExpr):
            children = node.children
            complements = [1.0 - values[id(child)] for child in children]
            for index, child in enumerate(children):
                others = 1.0
                for other_index, value in enumerate(complements):
                    if other_index != index:
                        others *= value
                adjoints[id(child)] += adjoint * others
            return
        if isinstance(node, prov.NotExpr):
            adjoints[id(node.child)] -= adjoint
            return
        if isinstance(node, prov.BoolAsNum):
            adjoints[id(node.expr)] += adjoint
            return
        if isinstance(node, prov.LinearSum):
            for coeff, cond in node.terms:
                adjoints[id(cond)] += adjoint * coeff
            return
        if isinstance(node, prov.AddExpr):
            for child in node.children:
                adjoints[id(child)] += adjoint
            return
        if isinstance(node, prov.DivExpr):
            denominator = values[id(node.denominator)]
            numerator = values[id(node.numerator)]
            adjoints[id(node.numerator)] += adjoint / denominator
            adjoints[id(node.denominator)] -= adjoint * numerator / denominator**2
            return
        raise RelaxationError(f"cannot relax node of type {type(node).__name__}")


def _topological(root) -> list:
    """Children-before-parents order over the expression DAG (iterative)."""
    order: list = []
    seen: set[int] = set()
    stack: list[tuple[object, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for child in _children(node):
            if id(child) not in seen:
                stack.append((child, False))
    return order


def _children(node) -> Sequence:
    if isinstance(node, (prov.AndExpr, prov.OrExpr, prov.AddExpr, prov.MulExpr)):
        return node.children
    if isinstance(node, prov.NotExpr):
        return (node.child,)
    if isinstance(node, prov.BoolAsNum):
        return (node.expr,)
    if isinstance(node, prov.LinearSum):
        return tuple(cond for _, cond in node.terms)
    if isinstance(node, prov.DivExpr):
        return (node.numerator, node.denominator)
    return ()
