"""Complaint → differentiable objective ``q(θ)`` (Section 5.3.2).

Given a debug-mode :class:`~repro.relational.executor.QueryResult` and the
complaints raised against it, this module constructs::

    q(θ) = Σ_complaints (rq(θ) - X)²        for value complaints
         + Σ_complaints (rq_t(θ) - 0)²      for tuple complaints
         + Σ_complaints (p_label(θ) - 1)²   for prediction complaints

where every ``rq`` is the relaxed provenance polynomial evaluated on the
model's class probabilities at the query's inference sites.  Inequality
value complaints are treated as equalities only while violated, matching
the paper's train-rank-fix handling.

Two engines compute ``q`` and ``∂q/∂P``:

- ``"compiled"`` (default): every complaint's polynomial is a root of one
  :class:`~repro.relational.compile.CompiledProvenance` program — on a
  compiled query result the executor's node ids are used directly, on a
  tree result the polynomials are lowered first.  One vectorized forward
  pass produces all relaxed values; the residual-weighted seed is pushed
  through one reverse sweep, so the whole complaint set costs two batched
  array passes regardless of how many complaints there are.
- ``"interpreted"``: the original per-complaint
  :class:`~repro.relaxation.relax.Relaxer` reverse sweeps over expression
  trees — the golden reference the compiled engine is tested against.

``∇_θ q`` is then ``prob_vjp(X_sites, ∂q/∂P)`` — one weighted backward
pass in the model, shared by both engines.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..complaints.complaint import (
    PredictionComplaint,
    TupleComplaint,
    ValueComplaint,
)
from ..errors import ComplaintError, RelaxationError
from ..relational.compile import FALSE_NODE, CompiledProvenance, NodePool
from ..relational.executor import QueryResult
from .relax import Relaxer


class RelaxedComplaintObjective:
    """The differentiable q(θ) for one query's complaint set."""

    def __init__(
        self, result: QueryResult, complaints: Sequence, engine: str = "auto"
    ) -> None:
        if not result.debug:
            raise RelaxationError("Holistic needs a debug-mode query result")
        if engine not in ("auto", "compiled", "interpreted"):
            raise RelaxationError(
                f"engine must be 'auto', 'compiled', or 'interpreted', got {engine!r}"
            )
        self.result = result
        self.complaints = list(complaints)
        self.runtime = result.runtime
        if engine == "auto":
            # Compiled results use the batched engine; tree results stay on
            # the interpreted reference so provenance="tree" is end-to-end
            # golden.
            engine = "compiled" if result.compiled else "interpreted"
        self.engine = engine

        site_ids = list(range(len(self.runtime.sites)))
        if not site_ids:
            raise RelaxationError(
                "the query contains no model inference; nothing to debug"
            )
        model_names = self.runtime.sites.model_names()
        if len(model_names) != 1:
            raise RelaxationError(
                f"queries embedding multiple models are unsupported: {model_names}"
            )
        self.model_name = model_names.pop()
        self.model = self.runtime.model(self.model_name)
        self.site_ids = site_ids
        self.X_sites = self.runtime.features_for_sites(site_ids)
        self.relaxer = Relaxer.for_model(self.model)
        self._site_arr = np.asarray(site_ids, dtype=np.int64)
        self._max_site = int(self._site_arr.max()) + 1

        if self.engine == "compiled":
            self._build_compiled_program()

    # -- compiled program over all complaint polynomials ---------------------------

    def _build_compiled_program(self) -> None:
        """One compiled root per relaxable complaint term.

        Per root we record ``(kind, target)``: for value complaints the
        residual is ``value - target`` (gated off while an inequality is
        satisfied); for tuple complaints the residual is the value itself.
        Prediction complaints touch a single probability entry and bypass
        the program.
        """
        result = self.result
        roots: list[int] = []
        self._root_targets: list[float] = []
        self._pred_terms: list[tuple[int, int]] = []  # (site_id, column)
        pool = result.pool
        if pool is None:
            pool = NodePool()
        for complaint in self.complaints:
            if isinstance(complaint, PredictionComplaint):
                site_id = complaint.site_id(result)
                try:
                    column = self.relaxer.class_columns[complaint.label]
                except KeyError:
                    raise RelaxationError(
                        f"atom class {complaint.label!r} is not a model class"
                    ) from None
                self._pred_terms.append((site_id, column))
                continue
            if isinstance(complaint, ValueComplaint):
                if complaint.op in ("<=", ">=") and complaint.is_satisfied(result):
                    # Satisfied inequalities contribute nothing; keep their
                    # polynomials out of the program entirely so they are
                    # never relaxed (the interpreted path short-circuits
                    # before relaxing too — e.g. an AVG over a group whose
                    # relaxed count is zero must not raise here).
                    continue
                node = _value_complaint_node(result, complaint, pool)
                roots.append(node)
                self._root_targets.append(float(complaint.value))
                continue
            if isinstance(complaint, TupleComplaint):
                node = _tuple_complaint_node(result, complaint, pool)
                roots.append(node)
                self._root_targets.append(0.0)
                continue
            raise RelaxationError(
                f"unknown complaint type {type(complaint).__name__}"
            )
        self._pool = pool
        self._program = (
            CompiledProvenance(pool, np.asarray(roots, dtype=np.int64))
            if roots
            else None
        )

    # -- probability matrix ------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Current class probabilities at each inference site."""
        return np.asarray(self.model.predict_proba(self.X_sites), dtype=np.float64)

    def _expand(self, P_rows: np.ndarray) -> np.ndarray:
        """Map row-indexed P to site-indexed P for the relaxation."""
        P = np.zeros((self._max_site, P_rows.shape[1]))
        P[self._site_arr] = P_rows
        return P

    def _collapse(self, grad_sites: np.ndarray) -> np.ndarray:
        return grad_sites[self._site_arr]

    # -- q and its gradients --------------------------------------------------------

    def q_value_and_pgrad(self, P_rows: np.ndarray) -> tuple[float, np.ndarray]:
        """``q`` and ``∂q/∂P`` (both in row-indexed site order)."""
        if self.engine == "compiled":
            return self._q_compiled(P_rows)
        return self._q_interpreted(P_rows)

    def _q_compiled(self, P_rows: np.ndarray) -> tuple[float, np.ndarray]:
        P = self._expand(P_rows)
        total = 0.0
        grad = np.zeros_like(P)
        if self._program is not None:
            values, cache = self._program.relaxed_forward(
                P, self.relaxer.class_columns
            )
            residuals = values - np.asarray(self._root_targets)
            total += float(np.sum(residuals**2))
            grad += self._program.relaxed_backward(cache, 2.0 * residuals)
        for site_id, column in self._pred_terms:
            residual = float(P[site_id, column]) - 1.0
            total += residual**2
            grad[site_id, column] += 2.0 * residual
        return total, self._collapse(grad)

    def _q_interpreted(self, P_rows: np.ndarray) -> tuple[float, np.ndarray]:
        P = self._expand(P_rows)
        total = 0.0
        grad = np.zeros_like(P)
        for complaint in self.complaints:
            value, cgrad = self._complaint_term(complaint, P)
            total += value
            grad += cgrad
        return total, self._collapse(grad)

    def _complaint_term(self, complaint, P: np.ndarray) -> tuple[float, np.ndarray]:
        if isinstance(complaint, ValueComplaint):
            poly = complaint.polynomial(self.result)
            if complaint.op in ("<=", ">=") and complaint.is_satisfied(self.result):
                return 0.0, np.zeros_like(P)
            relaxed, pgrad = self.relaxer.value_and_grad(poly, P)
            residual = relaxed - complaint.value
            return residual**2, 2.0 * residual * pgrad
        if isinstance(complaint, TupleComplaint):
            condition = complaint.condition(self.result)
            relaxed, pgrad = self.relaxer.value_and_grad(condition, P)
            return relaxed**2, 2.0 * relaxed * pgrad
        if isinstance(complaint, PredictionComplaint):
            site_id = complaint.site_id(self.result)
            column = self.relaxer.class_columns[complaint.label]
            residual = float(P[site_id, column]) - 1.0
            pgrad = np.zeros_like(P)
            pgrad[site_id, column] = 2.0 * residual
            return residual**2, pgrad
        raise RelaxationError(f"unknown complaint type {type(complaint).__name__}")

    def q_value(self) -> float:
        q, _ = self.q_value_and_pgrad(self.probabilities())
        return q

    def q_grad_theta(self) -> np.ndarray:
        """``∇_θ q(θ)`` at the current model parameters."""
        return self.q_and_grad_theta()[1]

    def q_and_grad_theta(
        self, P_rows: np.ndarray | None = None
    ) -> tuple[float, np.ndarray]:
        """``(q(θ), ∇_θ q(θ))`` in one relaxation sweep.

        ``P_rows`` optionally supplies precomputed site probabilities.
        Cases sharing one debug result see identical sites, so the serving
        layer computes the matrix once per distinct query result and
        passes it to every case — the values are exactly what
        :meth:`probabilities` would return, so this is a pure dedup.
        """
        if P_rows is None:
            P_rows = self.probabilities()
        q, pgrad_rows = self.q_value_and_pgrad(P_rows)
        return q, self.model.prob_vjp(self.X_sites, pgrad_rows)


def batched_case_objectives(
    case_results: Sequence, engine: str = "auto"
) -> list[RelaxedComplaintObjective]:
    """One :class:`RelaxedComplaintObjective` per ``(case, result)`` pair.

    Construction stays on the calling thread: on compiled results the
    complaint roots are *looked up* in the shared (already frozen) pool,
    never appended, so cases sharing a query result build their programs
    over one immutable node-array snapshot.
    """
    return [
        RelaxedComplaintObjective(result, case.complaints, engine=engine)
        for case, result in case_results
    ]


def batched_q_and_grads(
    objectives: Sequence[RelaxedComplaintObjective],
    n_workers: int = 0,
) -> tuple[list[float], list[np.ndarray]]:
    """``(q, ∇_θ q)`` for every objective, sharded across the worker pool.

    Objectives sharing a query result share its inference sites, so the
    probability matrix is computed once per distinct result (on the
    driver thread, in first-appearance order) and handed to each case's
    relaxation sweep.  The sweeps themselves — forward, seeded backward,
    ``prob_vjp`` — are pure reads of frozen pools and model parameters,
    so they fan out to workers and merge back in case order: the returned
    lists are bit-identical to a serial per-case loop at any worker
    count.
    """
    from ..core.sharding import run_sharded

    shared_P: dict[int, np.ndarray] = {}
    for objective in objectives:
        key = id(objective.result)
        if key not in shared_P:
            shared_P[key] = objective.probabilities()

    outputs = run_sharded(
        lambda objective: objective.q_and_grad_theta(
            P_rows=shared_P[id(objective.result)]
        ),
        list(objectives),
        n_workers,
    )
    q_values = [float(q) for q, _ in outputs]
    q_grads = [grad for _, grad in outputs]
    return q_values, q_grads


def _value_complaint_node(
    result: QueryResult, complaint: ValueComplaint, pool: NodePool
) -> int:
    """Compiled node of a value complaint's cell polynomial."""
    if result.compiled:
        if complaint.group_key is not None:
            group = result.group_by_key(complaint.group_key)
            try:
                return group.cell_nodes[complaint.column]
            except KeyError:
                raise RelaxationError(
                    f"column {complaint.column!r} is not an aggregate output"
                ) from None
        return result.cell_node(complaint.row_index, complaint.column)
    return pool.add_expr(complaint.polynomial(result))


def _tuple_complaint_node(
    result: QueryResult, complaint: TupleComplaint, pool: NodePool
) -> int:
    """Compiled node of a tuple complaint's existence condition."""
    if not result.compiled:
        return pool.add_expr(complaint.condition(result))
    if complaint.group_key is not None:
        node = result.group_by_key(complaint.group_key).condition_node
        if node is None:
            raise RelaxationError("group condition nodes need compiled mode")
        return node
    if complaint.lineage is not None:
        batch = result.candidate_batch
        if batch is None:
            raise ComplaintError("lineage complaints need a debug-mode result")
        wanted = dict(complaint.lineage)
        unknown = set(wanted) - set(batch.alias_row_ids)
        if unknown:
            raise ComplaintError(
                f"lineage aliases {sorted(unknown)} not in the query "
                f"(available: {sorted(batch.alias_row_ids)})"
            )
        mask = np.ones(len(batch), dtype=bool)
        for alias, row_id in wanted.items():
            mask &= batch.alias_row_ids[alias] == int(row_id)
        matches = np.flatnonzero(mask)
        if matches.size == 0:
            # Not even a candidate: deterministically filtered, so the
            # complaint is vacuously satisfied.
            return FALSE_NODE
        return int(batch.cond_nodes[matches[0]])
    return result.tuple_condition_node(complaint.row_index)
