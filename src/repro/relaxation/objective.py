"""Complaint → differentiable objective ``q(θ)`` (Section 5.3.2).

Given a debug-mode :class:`~repro.relational.executor.QueryResult` and the
complaints raised against it, this module constructs::

    q(θ) = Σ_complaints (rq(θ) - X)²        for value complaints
         + Σ_complaints (rq_t(θ) - 0)²      for tuple complaints
         + Σ_complaints (p_label(θ) - 1)²   for prediction complaints

where every ``rq`` is the relaxed provenance polynomial evaluated on the
model's class probabilities at the query's inference sites.  Inequality
value complaints are treated as equalities only while violated, matching
the paper's train-rank-fix handling.

``∇_θ q`` is assembled as ``prob_vjp(X_sites, ∂q/∂P)`` — one reverse sweep
through the relaxation DAG plus one weighted backward pass in the model.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..complaints.complaint import (
    PredictionComplaint,
    TupleComplaint,
    ValueComplaint,
)
from ..errors import RelaxationError
from ..relational.executor import QueryResult
from .relax import Relaxer


class RelaxedComplaintObjective:
    """The differentiable q(θ) for one query's complaint set."""

    def __init__(self, result: QueryResult, complaints: Sequence) -> None:
        if not result.debug:
            raise RelaxationError("Holistic needs a debug-mode query result")
        self.result = result
        self.complaints = list(complaints)
        self.runtime = result.runtime

        site_ids = sorted(site.site_id for site in self.runtime.sites)
        if not site_ids:
            raise RelaxationError(
                "the query contains no model inference; nothing to debug"
            )
        model_names = {self.runtime.sites[s].model_name for s in site_ids}
        if len(model_names) != 1:
            raise RelaxationError(
                f"queries embedding multiple models are unsupported: {model_names}"
            )
        self.model_name = model_names.pop()
        self.model = self.runtime.model(self.model_name)
        self.site_ids = site_ids
        self.X_sites = self.runtime.features_for_sites(site_ids)
        self.relaxer = Relaxer.for_model(self.model)
        # site_id -> row of X_sites / P (site ids are dense, but be safe).
        self._site_row = {site_id: row for row, site_id in enumerate(site_ids)}

    # -- probability matrix ------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Current class probabilities at each inference site."""
        return np.asarray(self.model.predict_proba(self.X_sites), dtype=np.float64)

    def _expand(self, P_rows: np.ndarray) -> np.ndarray:
        """Map row-indexed P to site-indexed P for the relaxer."""
        max_site = max(self.site_ids) + 1
        P = np.zeros((max_site, P_rows.shape[1]))
        for site_id, row in self._site_row.items():
            P[site_id] = P_rows[row]
        return P

    def _collapse(self, grad_sites: np.ndarray) -> np.ndarray:
        rows = np.zeros((len(self.site_ids), grad_sites.shape[1]))
        for site_id, row in self._site_row.items():
            rows[row] = grad_sites[site_id]
        return rows

    # -- q and its gradients --------------------------------------------------------

    def q_value_and_pgrad(self, P_rows: np.ndarray) -> tuple[float, np.ndarray]:
        """``q`` and ``∂q/∂P`` (both in row-indexed site order)."""
        P = self._expand(P_rows)
        total = 0.0
        grad = np.zeros_like(P)
        for complaint in self.complaints:
            value, cgrad = self._complaint_term(complaint, P)
            total += value
            grad += cgrad
        return total, self._collapse(grad)

    def _complaint_term(self, complaint, P: np.ndarray) -> tuple[float, np.ndarray]:
        if isinstance(complaint, ValueComplaint):
            poly = complaint.polynomial(self.result)
            if complaint.op in ("<=", ">=") and complaint.is_satisfied(self.result):
                return 0.0, np.zeros_like(P)
            relaxed, pgrad = self.relaxer.value_and_grad(poly, P)
            residual = relaxed - complaint.value
            return residual**2, 2.0 * residual * pgrad
        if isinstance(complaint, TupleComplaint):
            condition = complaint.condition(self.result)
            relaxed, pgrad = self.relaxer.value_and_grad(condition, P)
            return relaxed**2, 2.0 * relaxed * pgrad
        if isinstance(complaint, PredictionComplaint):
            site_id = complaint.site_id(self.result)
            column = self.relaxer.class_columns[complaint.label]
            residual = float(P[site_id, column]) - 1.0
            pgrad = np.zeros_like(P)
            pgrad[site_id, column] = 2.0 * residual
            return residual**2, pgrad
        raise RelaxationError(f"unknown complaint type {type(complaint).__name__}")

    def q_value(self) -> float:
        q, _ = self.q_value_and_pgrad(self.probabilities())
        return q

    def q_grad_theta(self) -> np.ndarray:
        """``∇_θ q(θ)`` at the current model parameters."""
        P_rows = self.probabilities()
        _, pgrad_rows = self.q_value_and_pgrad(P_rows)
        return self.model.prob_vjp(self.X_sites, pgrad_rows)
