"""Command-line runner for the reproduction experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig3 --out results/
    python -m repro.cli run all --out results/
    python -m repro.cli serve --workers 4 --check
    python -m repro.cli lint --strict

``serve`` runs the sharded multi-query serving layer on the multi-case
Adult workload (one complaint case per aggregate group of Q6/Q7): it
reports the per-stage timing breakdown and the execute stage's plan-dedup
stats, and ``--check`` re-runs serially to verify the determinism
contract (sharded removal orders identical to the serial loop).

Each experiment prints its result table (the same tables the benchmark
suite writes under ``benchmarks/out/``) and optionally saves it.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from .experiments import (
    async_rain,
    fig3_dblp_recall,
    fig4_f1,
    fig5_runtime,
    fig6_mnist_join,
    fig7_ambiguity,
    fig8_multiquery,
    fig9_effort,
    fig10_misspec,
    fig11_nn,
    ilp_encode,
    queries,
    scenario_sweep,
    serving,
    table3_auccr,
    thm_a1,
    thm_c1,
)

EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "table2": (queries.run, "Query zoo Q1-Q7 parse/execute/provenance check"),
    "fig3": (fig3_dblp_recall.run, "DBLP recall curves vs corruption rate"),
    "fig4": (fig4_f1.run, "Model F1 vs corruption rate (DBLP)"),
    "fig5": (fig5_runtime.run, "Per-iteration runtime breakdown (DBLP 50%)"),
    "table3": (table3_auccr.run, "AUCCR: DBLP + ENRON http/deal"),
    "fig6ab": (fig6_mnist_join.run_point_complaints, "MNIST join point complaints"),
    "fig6cd": (fig6_mnist_join.run_count_complaint, "MNIST join COUNT complaint"),
    "mixrate": (fig6_mnist_join.run_mix_rate, "MNIST join mix-rate experiment"),
    "fig7": (fig7_ambiguity.run, "Ambiguity sweep (point vs tuple complaints)"),
    "fig8": (fig8_multiquery.run, "Multi-query complaints on Adult"),
    "fig9": (fig9_effort.run, "Aggregate complaint vs labeled point complaints"),
    "fig10": (fig10_misspec.run, "Mis-specified complaints"),
    "fig11": (fig11_nn.run, "CNN vs logistic debugging (appendix D)"),
    "thm_a1": (thm_a1.run, "Theorem A.1 ambiguity validation"),
    "thm_c1": (thm_c1.run, "Theorem C.1 value-of-complaints validation"),
    "serving": (serving.run, "Sharded multi-query serving: serial vs workers"),
    "async": (async_rain.run, "Async pipelined loop vs serial sharded (DBLP)"),
    "ilp_encode": (ilp_encode.run, "Tree vs array-lowered ILP encode (fig6 joins)"),
    "sweep": (scenario_sweep.run, "ENRON/Adult corruption-rate encode/solve sweep"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Reproduce tables/figures of the Rain paper (SIGMOD 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--out", default=None, help="directory for result tables")
    run.add_argument("--seed", type=int, default=0)
    serve = sub.add_parser(
        "serve", help="sharded multi-query serving on the Adult workload"
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="worker pool size (default: REPRO_N_WORKERS, else 0 = serial)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--n-train", type=int, default=300)
    serve.add_argument("--n-query", type=int, default=2000)
    serve.add_argument("--flip-fraction", type=float, default=0.5)
    serve.add_argument("--max-removals", type=int, default=20)
    serve.add_argument(
        "--async-pipeline", action="store_true", default=None,
        help="pipeline train/execute of the next iteration against the "
             "current drain (default: REPRO_ASYNC, else off)",
    )
    serve.add_argument(
        "--check", action="store_true",
        help="re-run serially and verify the removal orders are identical",
    )
    sub.add_parser(
        "lint",
        help="static determinism & invariant analysis; all arguments are "
        "forwarded to `python -m repro.analysis` (e.g. --strict, "
        "--list-rules, --update-golden, paths)",
        add_help=False,
    )
    return parser


def _serve(args) -> int:
    from .core import RainDebugger

    setting = serving.build_serving_setting(
        args.flip_fraction,
        n_train=args.n_train,
        n_query=args.n_query,
        seed=args.seed,
    )
    initial_params = setting.model.get_params()

    def run_once(n_workers, async_pipeline):
        setting.model.set_params(initial_params)
        debugger = RainDebugger(
            setting.database,
            "income",
            setting.X_train,
            setting.y_corrupted,
            setting.cases,
            method="holistic",
            rng=args.seed,
            n_workers=n_workers,
            async_pipeline=async_pipeline,
        )
        return debugger.run(max_removals=args.max_removals)

    report = run_once(args.workers, args.async_pipeline)
    print(f"served {len(setting.cases)} complaint cases "
          f"over {setting.n_distinct_plans} distinct plans")
    for record in report.iterations:
        cache = record.diagnostics.get("execute_cache")
        if cache:
            print(f"iteration {record.iteration}: "
                  f"{cache['cache_misses']} executions for "
                  f"{cache['n_cases']} cases "
                  f"({cache['cache_hits']} cache hits)")
    for label, total in sorted(report.timings.items()):
        print(f"{label:>8}: {total:.3f}s")
    print(f"removal order ({len(report.removal_order)}): "
          f"{report.removal_order}")
    if args.check:
        serial = run_once(0, False)
        if serial.removal_order != report.removal_order:
            print("DETERMINISM CHECK FAILED: sharded != serial removal order")
            return 1
        print("determinism check passed: sharded == serial removal order")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # `lint` forwards everything (including option-like arguments, which
    # argparse's subparsers would swallow) to the analyzer's own parser.
    if argv[:1] == ["lint"]:
        from .analysis.__main__ import main as analysis_main

        return analysis_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0
    if args.command == "serve":
        return _serve(args)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner, _ = EXPERIMENTS[name]
        try:
            result = runner(seed=args.seed)
        except TypeError:
            result = runner()
        print(result.table())
        print()
        if args.out:
            path = result.save(args.out)
            print(f"[saved {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
