"""Command-line runner for the reproduction experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig3 --out results/
    python -m repro.cli run all --out results/

Each experiment prints its result table (the same tables the benchmark
suite writes under ``benchmarks/out/``) and optionally saves it.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from .experiments import (
    fig3_dblp_recall,
    fig4_f1,
    fig5_runtime,
    fig6_mnist_join,
    fig7_ambiguity,
    fig8_multiquery,
    fig9_effort,
    fig10_misspec,
    fig11_nn,
    queries,
    table3_auccr,
    thm_a1,
    thm_c1,
)

EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "table2": (queries.run, "Query zoo Q1-Q7 parse/execute/provenance check"),
    "fig3": (fig3_dblp_recall.run, "DBLP recall curves vs corruption rate"),
    "fig4": (fig4_f1.run, "Model F1 vs corruption rate (DBLP)"),
    "fig5": (fig5_runtime.run, "Per-iteration runtime breakdown (DBLP 50%)"),
    "table3": (table3_auccr.run, "AUCCR: DBLP + ENRON http/deal"),
    "fig6ab": (fig6_mnist_join.run_point_complaints, "MNIST join point complaints"),
    "fig6cd": (fig6_mnist_join.run_count_complaint, "MNIST join COUNT complaint"),
    "mixrate": (fig6_mnist_join.run_mix_rate, "MNIST join mix-rate experiment"),
    "fig7": (fig7_ambiguity.run, "Ambiguity sweep (point vs tuple complaints)"),
    "fig8": (fig8_multiquery.run, "Multi-query complaints on Adult"),
    "fig9": (fig9_effort.run, "Aggregate complaint vs labeled point complaints"),
    "fig10": (fig10_misspec.run, "Mis-specified complaints"),
    "fig11": (fig11_nn.run, "CNN vs logistic debugging (appendix D)"),
    "thm_a1": (thm_a1.run, "Theorem A.1 ambiguity validation"),
    "thm_c1": (thm_c1.run, "Theorem C.1 value-of-complaints validation"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Reproduce tables/figures of the Rain paper (SIGMOD 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--out", default=None, help="directory for result tables")
    run.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner, _ = EXPERIMENTS[name]
        try:
            result = runner(seed=args.seed)
        except TypeError:
            result = runner()
        print(result.table())
        print()
        if args.out:
            path = result.save(args.out)
            print(f"[saved {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
