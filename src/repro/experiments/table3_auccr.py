"""Table 3: AUCCR on DBLP (medium corruption) and ENRON ('http' / 'deal').

The ENRON rows use the paper's rule-based labelling-function corruption:
every training email containing the search token is labelled spam; the
query then counts predicted spam among emails whose text matches
``LIKE '%token%'``, and the complaint restores the ground-truth count.

Paper values::

    dataset          InfLoss  Loss  TwoStep  Holistic
    DBLP (50%)       0.30     0.35  0.71     0.99
    ENRON '%http%'   0.05     0.02  0.04     0.12
    ENRON '%deal%'   0.17     0.02  0.07     0.40
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..complaints import ComplaintCase, ValueComplaint
from ..data import labelling_function_corruption, make_enron
from ..ml import LogisticRegression
from ..relational import Database, Relation
from .common import ExperimentResult, build_dblp_setting, compare_methods

PAPER = {
    ("dblp", "infloss"): 0.30, ("dblp", "loss"): 0.35,
    ("dblp", "twostep"): 0.71, ("dblp", "holistic"): 0.99,
    ("enron_http", "infloss"): 0.05, ("enron_http", "loss"): 0.02,
    ("enron_http", "twostep"): 0.04, ("enron_http", "holistic"): 0.12,
    ("enron_deal", "infloss"): 0.17, ("enron_deal", "loss"): 0.02,
    ("enron_deal", "twostep"): 0.07, ("enron_deal", "holistic"): 0.40,
}


@dataclass
class EnronSetting:
    database: Database
    model: LogisticRegression
    X_train: np.ndarray
    y_corrupted: np.ndarray
    corrupted_indices: np.ndarray
    case: ComplaintCase


def build_enron_setting(
    token: str, n_train: int = 500, n_query: int = 300, seed: int = 0
) -> EnronSetting:
    """ENRON with the 'label emails containing ``token`` as spam' corruption."""
    ds = make_enron(n_train=n_train, n_query=n_query, seed=seed)
    y_corrupted, corrupted = labelling_function_corruption(
        ds.y_train, ds.text_train, token
    )
    model = LogisticRegression(ds.classes, n_features=ds.X_train.shape[1], l2=1e-3)
    model.fit(ds.X_train, y_corrupted, warm_start=False)

    database = Database()
    database.add_relation(
        Relation("enron", {"features": ds.X_query, "text": ds.text_query})
    )
    database.add_model("spam", model)
    query = (
        "SELECT COUNT(*) FROM enron "
        f"WHERE predict(*) = 'spam' AND text LIKE '%{token}%'"
    )
    token_mask = np.asarray([token in str(t).split() for t in ds.text_query])
    true_count = int(np.sum((ds.y_query == "spam") & token_mask))
    case = ComplaintCase(
        query, [ValueComplaint(column="count", op="=", value=true_count, row_index=0)]
    )
    return EnronSetting(database, model, ds.X_train, y_corrupted, corrupted, case)


def run(
    methods=("loss", "infloss", "twostep", "holistic"),
    seed: int = 0,
    n_train_dblp: int = 400,
    n_train_enron: int = 500,
) -> ExperimentResult:
    result = ExperimentResult("table3_auccr")

    dblp = build_dblp_setting(0.5, n_train=n_train_dblp, seed=seed)
    summaries = compare_methods(
        dblp.database, dblp.model_name, dblp.X_train, dblp.y_corrupted,
        [dblp.case], dblp.corrupted_indices, methods=methods, seed=seed,
    )
    for method, summary in summaries.items():
        result.rows.append(
            {
                "dataset": "dblp",
                "method": method,
                "auccr": summary["auccr"],
                "paper": PAPER.get(("dblp", method)),
            }
        )

    for token in ("http", "deal"):
        setting = build_enron_setting(token, n_train=n_train_enron, seed=seed)
        summaries = compare_methods(
            setting.database, "spam", setting.X_train, setting.y_corrupted,
            [setting.case], setting.corrupted_indices, methods=methods, seed=seed,
        )
        for method, summary in summaries.items():
            result.rows.append(
                {
                    "dataset": f"enron_{token}",
                    "method": method,
                    "auccr": summary["auccr"],
                    "paper": PAPER.get((f"enron_{token}", method)),
                }
            )
    result.notes.append(
        "paper Table 3 shape: Holistic best on every dataset; 'deal' easier "
        "than 'http' for Holistic (more labels actually flipped)."
    )
    return result
