"""Figure 8: combining complaints over multiple queries (Adult, Section 6.5).

Two GROUP BY queries share the income model:

- Q6: ``SELECT AVG(predict(*)) FROM adult GROUP BY gender`` — complaint on
  the *male* group's average;
- Q7: ``SELECT AVG(predict(*)) FROM adult GROUP BY agedecade`` — complaint
  on the *40s* decade's average.

Corruption flips a% of labels matching (low income ∧ male ∧ 40-50) to high
income.  The Adult preprocessing (18 binary one-hots, ≤120 unique feature
vectors) makes individual records nearly indistinguishable, which defeats
TwoStep and Loss; Holistic benefits from combining both complaints because
their corrupted subspaces intersect exactly on the corruption predicate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..complaints import ComplaintCase, ValueComplaint
from ..data import corrupt_labels, make_adult, section65_predicate
from ..ml import LogisticRegression
from ..relational import Database, Relation
from .common import ExperimentResult, compare_methods

Q6 = "SELECT AVG(predict(*)) FROM adult GROUP BY gender"
Q7 = "SELECT AVG(predict(*)) FROM adult GROUP BY agedecade"


@dataclass
class AdultSetting:
    database: Database
    model: LogisticRegression
    X_train: np.ndarray
    y_corrupted: np.ndarray
    corrupted_indices: np.ndarray
    gender_case: ComplaintCase
    age_case: ComplaintCase
    n_unique_train: int


def build_adult_setting(
    flip_fraction: float, n_train: int = 1500, n_query: int = 1000, seed: int = 0
) -> AdultSetting:
    ds = make_adult(n_train=n_train, n_query=n_query, seed=seed)
    predicate = section65_predicate(ds.y_train, ds.age_train, ds.gender_train)
    corruption = corrupt_labels(ds.y_train, predicate, 1, flip_fraction, rng=seed + 1)

    model = LogisticRegression((0, 1), n_features=ds.X_train.shape[1], l2=1e-3)
    model.fit(ds.X_train, corruption.y_corrupted, warm_start=False)

    database = Database()
    database.add_relation(
        Relation(
            "adult",
            {
                "features": ds.X_query,
                "gender": ds.gender_query,
                "agedecade": ds.age_query,
            },
        )
    )
    database.add_model("income", model)

    male = ds.gender_query == "male"
    male_truth = float(np.mean(ds.y_query[male]))
    forties = np.isin(ds.age_query, (40, 50))
    forties_truth = float(np.mean(ds.y_query[forties]))

    gender_case = ComplaintCase(
        Q6, [ValueComplaint(column="avg", op="=", value=male_truth,
                            group_key=("male",))]
    )
    # Complaints for both decades covering ages 40-50.
    age_case = ComplaintCase(
        Q7,
        [
            ValueComplaint(
                column="avg", op="=",
                value=float(np.mean(ds.y_query[ds.age_query == 40])),
                group_key=(40,),
            ),
            ValueComplaint(
                column="avg", op="=",
                value=float(np.mean(ds.y_query[ds.age_query == 50])),
                group_key=(50,),
            ),
        ],
    )
    n_unique = np.unique(ds.X_train, axis=0).shape[0]
    return AdultSetting(
        database, model, ds.X_train, corruption.y_corrupted,
        corruption.corrupted_indices, gender_case, age_case, n_unique,
    )


def run(
    flip_fractions=(0.3, 0.5),
    methods=("loss", "twostep", "holistic"),
    n_train: int = 1500,
    n_query: int = 1000,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult("fig8_multiquery")
    for fraction in flip_fractions:
        setting = build_adult_setting(
            fraction, n_train=n_train, n_query=n_query, seed=seed
        )
        combos = {
            "gender": [setting.gender_case],
            "age": [setting.age_case],
            "both": [setting.gender_case, setting.age_case],
        }
        for combo_name, cases in combos.items():
            run_methods = methods if combo_name == "both" else ("holistic",) + tuple(
                m for m in methods if m == "loss"
            )
            summaries = compare_methods(
                setting.database, "income", setting.X_train,
                setting.y_corrupted, cases, setting.corrupted_indices,
                methods=run_methods, seed=seed,
                ranker_kwargs_by_method={
                    "twostep": {"ambiguity_cap": 3, "time_limit": 20.0}
                },
            )
            for method, summary in summaries.items():
                result.rows.append(
                    {
                        "flip_fraction": fraction,
                        "complaints": combo_name,
                        "method": method,
                        "auccr": summary["auccr"],
                        "unique_train": setting.n_unique_train,
                    }
                )
                result.series[
                    f"recall[{method}|{combo_name}]@{fraction}"
                ] = summary["recall_curve"]
    result.notes.append(
        "paper Figure 8 shape: TwoStep and Loss find nothing (duplicate "
        "features); Holistic improves when combining both complaints."
    )
    return result
