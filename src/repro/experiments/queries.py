"""Table 2's query zoo: all seven Query 2.0 templates execute end to end.

Q1  SELECT COUNT(*) FROM DBLP WHERE predict(*)='match'
Q2  SELECT COUNT(*) FROM Enron WHERE predict(*)='spam' AND text LIKE '%word%'
Q3  SELECT * FROM MNIST L, MNIST R WHERE predict(L) = predict(R)
Q4  SELECT COUNT(*) FROM MNIST L, MNIST R WHERE predict(L) = predict(R)
Q5  SELECT COUNT(*) FROM MNIST WHERE predict(*)=1
Q6  SELECT AVG(predict(*)) FROM Adult GROUP BY gender
Q7  SELECT AVG(predict(*)) FROM Adult GROUP BY agedecade

Each execution runs in debug mode and cross-checks that every provenance
polynomial / tuple condition reproduces the concrete output under the
current prediction assignment — the invariant the whole system rests on.
"""

from __future__ import annotations

import numpy as np

from ..data import make_adult, make_dblp, make_enron, make_mnist, split_by_digit
from ..ml import LogisticRegression, SoftmaxRegression
from ..relational import Database, Relation
from .common import ExperimentResult, execute_sql


def _check_consistency(result) -> bool:
    assignment = result.assignment()
    if result.is_aggregate:
        for row_index in range(len(result.relation)):
            for column, poly in result.groups[
                result.output_to_group[row_index]
            ].cell_polys.items():
                concrete = float(result.relation.column(column)[row_index])
                symbolic = float(poly.evaluate(assignment))
                if not np.isclose(concrete, symbolic, equal_nan=True):
                    return False
        return True
    for row_index in range(len(result.relation)):
        if not result.tuple_condition(row_index).evaluate(assignment):
            return False
    return True


def run(seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("table2_query_zoo")

    dblp = make_dblp(n_train=150, n_query=80, seed=seed)
    er = LogisticRegression(dblp.classes, n_features=17, l2=1e-3)
    er.fit(dblp.X_train, dblp.y_train, warm_start=False)
    dblp_db = Database()
    dblp_db.add_relation(Relation("DBLP", {"features": dblp.X_query}))
    dblp_db.add_model("er", er)

    enron = make_enron(n_train=150, n_query=80, seed=seed)
    spam = LogisticRegression(enron.classes, n_features=enron.X_train.shape[1], l2=1e-3)
    spam.fit(enron.X_train, enron.y_train, warm_start=False)
    enron_db = Database()
    enron_db.add_relation(
        Relation("Enron", {"features": enron.X_query, "text": enron.text_query})
    )
    enron_db.add_model("spam", spam)

    mnist = make_mnist(n_train=200, n_query=60, seed=seed)
    digit = SoftmaxRegression(tuple(range(10)), n_features=784, l2=1e-3)
    digit.fit(mnist.X_train, mnist.y_train, warm_start=False, max_iter=100)
    left_images, _ = split_by_digit(mnist.images_query, mnist.y_query, (1, 2))
    right_images, _ = split_by_digit(mnist.images_query, mnist.y_query, (7, 8))
    mnist_db = Database()
    mnist_db.add_relation(Relation("MNIST", {"features": mnist.X_query}))
    mnist_db.add_relation(
        Relation("MNIST_L", {"features": left_images.reshape(len(left_images), -1)})
    )
    mnist_db.add_relation(
        Relation("MNIST_R", {"features": right_images.reshape(len(right_images), -1)})
    )
    mnist_db.add_model("digit", digit)

    adult = make_adult(n_train=300, n_query=200, seed=seed)
    income = LogisticRegression((0, 1), n_features=18, l2=1e-3)
    income.fit(adult.X_train, adult.y_train, warm_start=False)
    adult_db = Database()
    adult_db.add_relation(
        Relation(
            "Adult",
            {
                "features": adult.X_query,
                "gender": adult.gender_query,
                "agedecade": adult.age_query,
            },
        )
    )
    adult_db.add_model("income", income)

    zoo = [
        ("Q1", dblp_db, "SELECT COUNT(*) FROM DBLP WHERE predict(*) = 'match'"),
        ("Q2", enron_db,
         "SELECT COUNT(*) FROM Enron WHERE predict(*) = 'spam' AND text LIKE '%http%'"),
        ("Q3", mnist_db,
         "SELECT * FROM MNIST_L L, MNIST_R R WHERE predict(L) = predict(R)"),
        ("Q4", mnist_db,
         "SELECT COUNT(*) FROM MNIST_L L, MNIST_R R WHERE predict(L) = predict(R)"),
        ("Q5", mnist_db, "SELECT COUNT(*) FROM MNIST WHERE predict(*) = 1"),
        ("Q6", adult_db, "SELECT AVG(predict(*)) FROM Adult GROUP BY gender"),
        ("Q7", adult_db, "SELECT AVG(predict(*)) FROM Adult GROUP BY agedecade"),
    ]
    for name, database, sql in zoo:
        execution = execute_sql(database, sql, debug=True)
        result.rows.append(
            {
                "query": name,
                "output_rows": len(execution.relation),
                "inference_sites": len(execution.runtime.sites),
                "provenance_consistent": _check_consistency(execution),
                "sql": sql,
            }
        )
    return result
