"""Figure 5: per-iteration runtime breakdown on DBLP at 50% corruption.

The paper decomposes each train-rank-fix iteration into Train (model
refitting), Encode (building the influence objective: ILP for TwoStep,
relaxation for Holistic) and Rank (the conjugate-gradient solve plus
per-record gradient products).  Loss is fastest (no influence machinery);
the paper's InfLoss is slowest by far (one CG solve per training record).

This reproduction adds a row the paper doesn't have: ``infloss`` runs the
batched engine (ONE block CG solve for all records, warm-started across
iterations) while ``infloss-scalar`` keeps the paper-faithful per-record
loop, so the table doubles as the block-solve before/after comparison.

Since the tensorized-provenance engine, the Encode side runs compiled by
default: the executor emits provenance as node arrays, Holistic's relaxed
objective is one batched forward/backward sweep, and TwoStep's ILP uses
the persistent HiGHS backend.  ``benchmarks/test_bench_compiled_provenance``
measures this same configuration against the preserved interpreted
reference (tree provenance + per-call linprog) and asserts identical
removal orders.

We fold query execution time into Encode, matching the paper's grouping.
"""

from __future__ import annotations

from .common import ExperimentResult, build_dblp_setting, run_method


def run(
    methods=("loss", "infloss", "infloss-scalar", "twostep", "holistic"),
    n_train: int = 400,
    n_query: int = 300,
    iterations: int = 3,
    seed: int = 0,
    n_workers: int | None = None,
    async_pipeline: bool | None = None,
) -> ExperimentResult:
    """``n_workers``/``async_pipeline`` feed the serving layer unchanged.

    With ``async_pipeline`` the per-iteration stage attribution blurs
    (train/execute accrue on the stage thread concurrently with rank), but
    the totals — and the removal orders — stay exact; the per-method
    *totals* comparison against the serial run is the pipelining win.
    """
    setting = build_dblp_setting(0.5, n_train=n_train, n_query=n_query, seed=seed)
    initial_params = setting.model.get_params()
    result = ExperimentResult("fig5_runtime")
    for method in methods:
        report = run_method(
            setting.database,
            setting.model_name,
            setting.X_train,
            setting.y_corrupted,
            [setting.case],
            method,
            max_removals=iterations * 10,
            k_per_iteration=10,
            seed=seed,
            reset_params=initial_params,
            n_workers=n_workers,
            async_pipeline=async_pipeline,
        )
        n_iters = max(1, len([r for r in report.iterations if r.removed]))
        timings = report.timings
        result.rows.append(
            {
                "method": method,
                "train_s": timings.get("train", 0.0) / n_iters,
                "encode_s": (timings.get("encode", 0.0) + timings.get("execute", 0.0))
                / n_iters,
                "rank_s": timings.get("rank", 0.0) / n_iters,
                "iterations": n_iters,
            }
        )
    result.notes.append(
        "paper Figure 5 shape: Loss fastest; per-record InfLoss slowest "
        "(46.1s/iter in the paper); TwoStep ≈ Holistic, dominated by Rank."
    )
    result.notes.append(
        "infloss = batched engine (one block CG solve, warm-started); "
        "infloss-scalar = the paper's per-record loop."
    )
    return result
