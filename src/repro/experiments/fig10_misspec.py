"""Figure 10: robustness to mis-specified complaints.

Section 6.6's second question: what if the user's value complaint is wrong?
Starting from the Q5 count complaint with ground truth X*, the variants are

- **exact**     X = X*;
- **overshoot** X = 1.2 · X* (overcompensates, right direction);
- **partial**   X = (X* + current result) / 2 (undershoots, right direction);
- **wrong**     X = 0.8 · current result (moves the *wrong* direction).

Paper shape: Holistic is robust whenever the complaint points in the right
direction (exact ≈ overshoot; partial degrades once satisfied mid-run) and
fails for the wrong direction; Loss is insensitive (it ignores complaints).
"""

from __future__ import annotations

from dataclasses import replace

from ..complaints import ComplaintCase
from .common import ExperimentResult, compare_methods, execute_sql
from .mnist_common import build_count_setting


def run(
    methods=("loss", "twostep", "holistic"),
    corruption_rate: float = 0.1,
    n_train: int = 300,
    n_query: int = 150,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult("fig10_misspec")
    setting = build_count_setting(
        corruption_rate=corruption_rate, n_train=n_train, n_query=n_query, seed=seed
    )
    base_complaint = setting.cases[0].complaints[0]
    true_value = float(base_complaint.value)
    current = execute_sql(setting.database, setting.metadata["query"]).scalar("count")

    variants = {
        "exact": true_value,
        "overshoot": 1.2 * true_value,
        "partial": (true_value + current) / 2.0,
        "wrong": 0.8 * current,
    }
    result.notes.append(f"current result {current}, ground truth {true_value}")

    for variant, value in variants.items():
        complaint = replace(base_complaint, value=float(round(value)))
        case = ComplaintCase(setting.metadata["query"], [complaint])
        summaries = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, [case], setting.corrupted_indices,
            methods=methods, seed=seed,
        )
        for method, summary in summaries.items():
            result.rows.append(
                {
                    "variant": variant,
                    "complaint_value": float(round(value)),
                    "method": method,
                    "auccr": summary["auccr"],
                }
            )
            result.series[f"recall[{method}]@{variant}"] = summary["recall_curve"]
    return result
