"""Figures 11 & 12 (Appendix D): debugging a CNN vs. logistic regression.

Q5 on MNIST with 50% of the 1-digit training images flipped to 7, debugged
for both a softmax-regression model and the appendix's 3-layer CNN
(conv → maxpool → dense).  CNN Hessian-vector products use central finite
differences of the exact autodiff gradient; CG is damped (non-convexity).

Paper shape (Fig. 11): Holistic dominates TwoStep and Loss on both model
families, degrading slightly on the CNN.  Fig. 12: CNN iterations are
dominated by the Rank (Hessian-inverse) step; Loss iterations by retraining.
"""

from __future__ import annotations

from .common import ExperimentResult, compare_methods
from .mnist_common import build_count_setting


def run(
    model_kinds=("logistic", "cnn"),
    methods=("loss", "holistic"),
    corruption_rate: float = 0.5,
    n_train: int = 200,
    n_query: int = 100,
    seed: int = 0,
    cnn_damping: float = 1e-2,
) -> ExperimentResult:
    result = ExperimentResult("fig11_nn")
    for model_kind in model_kinds:
        setting = build_count_setting(
            corruption_rate=corruption_rate,
            n_train=n_train,
            n_query=n_query,
            model_kind=model_kind,
            seed=seed,
        )
        damping = cnn_damping if model_kind == "cnn" else 1e-4
        cg_max_iter = 30 if model_kind == "cnn" else None
        summaries = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, setting.cases, setting.corrupted_indices,
            methods=methods, seed=seed, damping=damping, cg_max_iter=cg_max_iter,
        )
        for method, summary in summaries.items():
            report = summary["report"]
            n_iters = max(1, len([r for r in report.iterations if r.removed]))
            result.rows.append(
                {
                    "model": model_kind,
                    "method": method,
                    "auccr": summary["auccr"],
                    "train_s": report.timings.get("train", 0.0) / n_iters,
                    "encode_s": (
                        report.timings.get("encode", 0.0)
                        + report.timings.get("execute", 0.0)
                    ) / n_iters,
                    "rank_s": report.timings.get("rank", 0.0) / n_iters,
                }
            )
            result.series[f"recall[{model_kind}/{method}]"] = summary["recall_curve"]
    result.notes.append(
        "paper Fig 11/12 shape: Holistic > Loss on both models; CNN slightly "
        "worse than logistic; CNN runtime dominated by the rank step."
    )
    return result
