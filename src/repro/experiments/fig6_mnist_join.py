"""Figure 6 (+ the Section 6.3 mix-rate text experiment): MNIST joins.

Three workloads over disjoint digit subsets with 1→7 label corruption:

- **point complaints** (Fig. 6a/6b): Q3 tuple complaints on individual join
  rows where exactly one side is mispredicted;
- **COUNT complaint** (Fig. 6c/6d): Q4 over {1..5} ⋈ {6..9, 0}, complaint
  "the count should be 0";
- **mix rate**: a fraction of the 1-digit images move to the right side so
  the true output is non-empty — the maximally ambiguous regime where the
  paper's TwoStep cannot solve its ILP within 30 minutes.

Paper shape: Holistic dominates throughout; TwoStep/Loss are poor; the
mix-rate AUCCR for Holistic decays gently (0.78 → 0.57 → 0.48) while Loss
stays flat around 0.24.
"""

from __future__ import annotations

from ..errors import ILPError
from .common import ExperimentResult, compare_methods
from .mnist_common import build_join_setting

TWOSTEP_KWARGS = {"ambiguity_cap": 3, "node_limit": 4000, "time_limit": 20.0}


def run_point_complaints(
    rates=(0.3, 0.5, 0.7),
    methods=("loss", "twostep", "holistic"),
    n_train: int = 300,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult("fig6ab_point_complaints")
    for rate in rates:
        setting = build_join_setting(
            rate, aggregate=False, n_train=n_train, seed=seed
        )
        if not setting.cases:
            result.notes.append(
                f"rate {rate}: no spurious join rows — nothing to complain about"
            )
            continue
        summaries = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, setting.cases, setting.corrupted_indices,
            methods=methods, seed=seed,
            ranker_kwargs_by_method={"twostep": TWOSTEP_KWARGS},
        )
        n_complaints = len(setting.cases[0].complaints)
        for method, summary in summaries.items():
            result.rows.append(
                {
                    "corruption_rate": rate,
                    "method": method,
                    "auccr": summary["auccr"],
                    "n_complaints": n_complaints,
                    "n_corrupted": len(setting.corrupted_indices),
                }
            )
            result.series[f"recall[{method}]@{rate}"] = summary["recall_curve"]
    return result


def run_count_complaint(
    rates=(0.3, 0.5, 0.7),
    methods=("loss", "twostep", "holistic"),
    n_train: int = 350,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult("fig6cd_count_complaint")
    for rate in rates:
        setting = build_join_setting(
            rate,
            left_digits=(1, 2, 3, 4, 5),
            right_digits=(6, 7, 8, 9, 0),
            aggregate=True,
            n_train=n_train,
            n_left=25,
            n_right=25,
            seed=seed,
        )
        summaries = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, setting.cases, setting.corrupted_indices,
            methods=methods, seed=seed,
            ranker_kwargs_by_method={"twostep": TWOSTEP_KWARGS},
        )
        for method, summary in summaries.items():
            result.rows.append(
                {
                    "corruption_rate": rate,
                    "method": method,
                    "auccr": summary["auccr"],
                    "true_count": setting.metadata["true_count"],
                }
            )
            result.series[f"recall[{method}]@{rate}"] = summary["recall_curve"]
    return result


def run_mix_rate(
    mix_rates=(0.05, 0.25, 0.35),
    methods=("loss", "holistic"),
    n_train: int = 350,
    seed: int = 0,
) -> ExperimentResult:
    """The Section 6.3 text experiment; TwoStep is attempted with a small
    budget and reported as timed-out when the ILP cannot be solved."""
    result = ExperimentResult("fig6_mix_rate")
    for mix in mix_rates:
        setting = build_join_setting(
            0.5,
            left_digits=(1, 2, 3, 4, 5),
            right_digits=(6, 7, 8, 9, 0),
            aggregate=True,
            mix_rate=mix,
            n_train=n_train,
            n_left=25,
            n_right=25,
            seed=seed,
        )
        summaries = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, setting.cases, setting.corrupted_indices,
            methods=methods, seed=seed,
        )
        for method, summary in summaries.items():
            result.rows.append(
                {
                    "mix_rate": mix,
                    "method": method,
                    "auccr": summary["auccr"],
                    "true_count": setting.metadata["true_count"],
                }
            )
        # TwoStep with a deliberately small budget: expected to fail, as in
        # the paper ("TwoStep does not solve the ILP within 30 minutes").
        try:
            twostep = compare_methods(
                setting.database, setting.model_name, setting.X_train,
                setting.y_corrupted, setting.cases, setting.corrupted_indices,
                methods=("twostep",), seed=seed,
                ranker_kwargs_by_method={
                    "twostep": {
                        "ambiguity_cap": 1, "node_limit": 300,
                        "time_limit": 5.0, "on_failure": "raise",
                    }
                },
            )
            result.rows.append(
                {
                    "mix_rate": mix,
                    "method": "twostep",
                    "auccr": twostep["twostep"]["auccr"],
                    "true_count": setting.metadata["true_count"],
                }
            )
        except ILPError as exc:
            result.rows.append(
                {
                    "mix_rate": mix,
                    "method": "twostep",
                    "auccr": None,
                    "true_count": setting.metadata["true_count"],
                }
            )
            result.notes.append(f"mix {mix}: TwoStep ILP budget exhausted ({exc})")
    return result
