"""Theorem A.1 validation: ambiguity makes TwoStep miss the noisy record.

Appendix A constructs a setting where the training set is clean except one
noisy record ``t`` whose feature vector is orthogonal to everything else,
and the queried set has only ``m`` records non-orthogonal to ``t``.  A
COUNT complaint asking for ``k`` flips then admits ``C(n0, k)`` minimal ILP
solutions, and only solutions touching one of the ``m`` special records
give ``t`` a non-zero influence score.  As the queried size ``n`` grows
(``m, k`` fixed), the probability of a non-zero score converges to 0:

    P(nonzero) = 1 - C(n - m, k) / C(n, k)  →  0.

This module measures the empirical probability under the random-solution
model (uniform over optimal assignments, exactly the theorem's assumption)
against the closed form.
"""

from __future__ import annotations

from math import comb

import numpy as np

from ..influence import InfluenceAnalyzer, q_grad_for_target_predictions
from ..ml import LogisticRegression
from ..utils import as_rng
from .common import ExperimentResult


def _build_problem(n_query: int, m: int, d: int, rng) -> dict:
    """Training: clean subspace records + one orthogonal noisy record."""
    n_clean = 40
    X_clean = np.zeros((n_clean, d))
    X_clean[:, : d - 1] = rng.normal(size=(n_clean, d - 1))
    w = rng.normal(size=d - 1)
    y_clean = (X_clean[:, : d - 1] @ w > 0).astype(int)
    # The noisy record: pure e_{d-1} direction, labeled l' = 1 (wrong).
    x_noise = np.zeros(d)
    x_noise[d - 1] = 1.0
    X_train = np.vstack([X_clean, x_noise[None, :]])
    y_train = np.concatenate([y_clean, [1]])

    X_query = np.zeros((n_query, d))
    X_query[:, : d - 1] = rng.normal(size=(n_query, d - 1))
    # m special records parallel to the noisy direction.
    X_query[:m] = 0.0
    X_query[:m, d - 1] = rng.uniform(0.5, 1.5, size=m)
    return {
        "X_train": X_train,
        "y_train": y_train,
        "X_query": X_query,
        "noisy_index": n_clean,
    }


def run(
    n_values=(12, 24, 48, 96),
    m: int = 2,
    k: int = 2,
    d: int = 8,
    trials: int = 200,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult("thm_a1_ambiguity")
    rng = as_rng(seed)
    for n_query in n_values:
        problem = _build_problem(n_query, m, d, rng)
        model = LogisticRegression((0, 1), n_features=d, l2=1e-2, fit_intercept=False)
        model.fit(problem["X_train"], problem["y_train"], warm_start=False)
        analyzer = InfluenceAnalyzer(
            model, problem["X_train"], problem["y_train"], damping=0.0
        )
        # Query counts predictions of class 0 (= 1 - l'); the complaint asks
        # for k such predictions.  Eligible flips: rows currently predicted 1.
        predictions = model.labels_to_indices(model.predict(problem["X_query"]))
        eligible = np.flatnonzero(predictions == 1)
        if eligible.size < k:
            result.notes.append(f"n={n_query}: fewer than k eligible rows; skipped")
            continue
        nonzero = 0
        for _ in range(trials):
            chosen = rng.choice(eligible, size=k, replace=False)
            q_grad = q_grad_for_target_predictions(
                model, problem["X_query"][chosen], np.zeros(k, dtype=int)
            )
            scores = analyzer.scores_from_q_grad(q_grad)
            if abs(scores[problem["noisy_index"]]) > 1e-9:
                nonzero += 1
        n0 = int(eligible.size)
        m_eligible = int(np.sum(eligible < m))
        theory = 1.0 - comb(n0 - m_eligible, k) / comb(n0, k) if n0 >= k else None
        result.rows.append(
            {
                "n_query": n_query,
                "eligible": n0,
                "empirical_p_nonzero": nonzero / trials,
                "theory_p_nonzero": theory,
            }
        )
    result.notes.append(
        "Theorem A.1: P(noisy record receives a non-zero score) → 0 as the "
        "queried set grows with m, k fixed."
    )
    return result
