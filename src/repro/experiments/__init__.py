"""One module per paper table/figure; consumed by ``benchmarks/``."""

from . import (
    fig3_dblp_recall,
    fig4_f1,
    fig5_runtime,
    fig6_mnist_join,
    fig7_ambiguity,
    fig8_multiquery,
    fig9_effort,
    fig10_misspec,
    fig11_nn,
    ilp_encode,
    queries,
    scenario_sweep,
    table3_auccr,
    thm_a1,
    thm_c1,
)
from .common import (
    ExperimentResult,
    build_dblp_setting,
    compare_methods,
    execute_sql,
    run_method,
)

__all__ = [
    "fig3_dblp_recall", "fig4_f1", "fig5_runtime", "fig6_mnist_join",
    "fig7_ambiguity", "fig8_multiquery", "fig9_effort", "fig10_misspec",
    "fig11_nn", "ilp_encode", "queries", "scenario_sweep", "table3_auccr",
    "thm_a1", "thm_c1",
    "ExperimentResult", "build_dblp_setting", "compare_methods",
    "execute_sql", "run_method",
]
