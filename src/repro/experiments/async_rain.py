"""Async Rain loop: pipelined train/execute overlap vs the serial loop.

The train-rank-fix iteration is a strict chain per iteration k —
train(k) -> execute(k) -> encode(k) -> rank(k) -> select(k) — but across
iterations there is slack: once select(k) has fixed the removal set,
train(k+1) and execute(k+1) depend only on that set and on theta_{k+1},
not on anything rank(k) still owes (the satisfied-flag drain, report
bookkeeping).  The async pipeline runs train(k+1)/execute(k+1) on a
single-worker stage thread while the driver drains iteration k, and
evaluates the drain's complaint-satisfaction check columnarly (one
vectorized compiled forward per distinct result instead of a Python
provenance-tree walk per complaint).

This experiment measures that overlap on the fig5 DBLP workload: for each
method it runs the serial sharded loop and the async loop at the same
worker count, asserts removal orders are identical (the determinism
contract — pinned bit-exact by ``tests/core/test_async_pipeline.py``) and
reports the wall-clock speedup.
"""

from __future__ import annotations

import time

from .common import ExperimentResult, build_dblp_setting, run_method

DEFAULT_ASYNC_METHODS = ("loss", "infloss", "holistic")


def run(
    methods=DEFAULT_ASYNC_METHODS,
    n_train: int = 400,
    n_query: int = 16000,
    max_removals: int = 50,
    k_per_iteration: int = 10,
    n_workers: int = 2,
    rounds: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Serial-sharded vs async on DBLP; one row per method.

    ``n_query`` defaults large (16k candidate rows) because that is the
    regime the pipeline targets: query execution and the complaint drain
    dominate the iteration, so overlapping them with train/rank pays.
    ``rounds`` runs each configuration several times and keeps the best
    wall clock (standard best-of-N to damp scheduler noise).
    """
    setting = build_dblp_setting(0.5, n_train=n_train, n_query=n_query, seed=seed)
    initial_params = setting.model.get_params()
    result = ExperimentResult("async_rain")

    def timed(method: str, async_pipeline: bool):
        best = float("inf")
        report = None
        for _ in range(max(1, rounds)):
            start = time.perf_counter()
            report = run_method(
                setting.database,
                setting.model_name,
                setting.X_train,
                setting.y_corrupted,
                [setting.case],
                method,
                max_removals=max_removals,
                k_per_iteration=k_per_iteration,
                seed=seed,
                reset_params=initial_params,
                n_workers=n_workers,
                async_pipeline=async_pipeline,
            )
            best = min(best, time.perf_counter() - start)
        return best, report

    for method in methods:
        serial_s, serial_report = timed(method, async_pipeline=False)
        async_s, async_report = timed(method, async_pipeline=True)
        result.rows.append(
            {
                "method": method,
                "n_workers": n_workers,
                "serial_s": serial_s,
                "async_s": async_s,
                "speedup": serial_s / async_s,
                "order_matches_serial": (
                    async_report.removal_order == serial_report.removal_order
                ),
            }
        )
        result.series[f"removal_order/{method}"] = serial_report.removal_order
    result.notes.append(
        "speedup = pipelined train/execute prefetch + columnar complaint "
        "drain; orders must match (async determinism contract)."
    )
    return result
