"""Figure 4: model F1 on the querying set vs. training corruption rate.

Section 6.2's companion plot: at small corruption rates the model treats
corruptions as outliers (robust F1); past ~50% it starts fitting them and
F1 collapses — the regime where loss-based debugging fails.
"""

from __future__ import annotations

import numpy as np

from .common import ExperimentResult, build_dblp_setting


def run(
    rates=(0.1, 0.3, 0.5, 0.6, 0.7, 0.8),
    n_train: int = 400,
    n_query: int = 300,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult("fig4_f1")
    f1_values = []
    for rate in rates:
        setting = build_dblp_setting(rate, n_train=n_train, n_query=n_query, seed=seed)
        f1 = setting.model.f1_binary(setting.X_query, setting.y_query, positive="match")
        f1_values.append(f1)
        result.rows.append(
            {
                "corruption_rate": rate,
                "f1_match": f1,
                "overall_label_error": len(setting.corrupted_indices) / n_train,
            }
        )
    result.series["f1_vs_rate"] = np.asarray(f1_values)
    result.notes.append(
        "paper Figure 4 shape: F1 roughly flat until ~50% corruption of match "
        "labels, then drops sharply."
    )
    return result
