"""Figure 9: one aggregate complaint vs. many labeled point complaints.

Section 6.6: with 10% of the 1-digit training images flipped to 7, compare

- **Agg Complaint**: a single value complaint on Q5's count (Holistic);
- **Point Complaints**: ``n`` labeled mispredictions of querying records
  (equivalent to state-of-the-art influence analysis [Koh & Liang 2017]),
  sweeping ``n``.

Paper shape: the single aggregate complaint reaches AUCCR ≈ 1 while the
point-complaint approach needs hundreds of labeled mispredictions to come
close (≈ 0.87 with 200+ in the paper).
"""

from __future__ import annotations

from ..complaints import ComplaintCase
from .common import ExperimentResult, compare_methods
from .mnist_common import build_count_setting, query_point_complaints


def run(
    point_counts=(1, 5, 20, 50),
    corruption_rate: float = 0.1,
    n_train: int = 300,
    n_query: int = 150,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult("fig9_effort")
    setting = build_count_setting(
        corruption_rate=corruption_rate, n_train=n_train, n_query=n_query, seed=seed
    )

    agg = compare_methods(
        setting.database, setting.model_name, setting.X_train,
        setting.y_corrupted, setting.cases, setting.corrupted_indices,
        methods=("holistic",), seed=seed,
    )
    result.rows.append(
        {
            "complaint": "agg (count)",
            "n_complaints": 1,
            "auccr": agg["holistic"]["auccr"],
        }
    )
    result.series["recall[agg]"] = agg["holistic"]["recall_curve"]

    available = query_point_complaints(setting)
    result.notes.append(f"{len(available)} mispredicted querying records available")
    for n_points in point_counts:
        complaints = available[: min(n_points, len(available))]
        if not complaints:
            result.notes.append("model makes no mispredictions; cannot form "
                                "point complaints")
            break
        case = ComplaintCase(setting.metadata["query"], complaints)
        summary = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, [case], setting.corrupted_indices,
            methods=("twostep",), seed=seed,
        )
        result.rows.append(
            {
                "complaint": "point (labeled mispredictions)",
                "n_complaints": len(complaints),
                "auccr": summary["twostep"]["auccr"],
            }
        )
        result.series[f"recall[point@{len(complaints)}]"] = summary["twostep"][
            "recall_curve"
        ]
    return result
