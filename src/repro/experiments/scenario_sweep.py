"""Encode/solve timing sweep over the ENRON and Adult paper scenarios.

Table 3's ENRON settings use the rule-based labelling-function
corruption ("label every email containing the token as spam"); the
sweep grades it by only applying the rule to a *fraction* of the
matching emails (via :func:`repro.data.corrupt_labels` over the token
mask), giving a corruption-rate axis the original rule lacks.  Figure
8's Adult setting already takes a flip fraction directly.

For every (scenario, rate) cell the experiment executes the complaint
query once with compiled provenance, then times the tree-walking
reference encoder against the array-lowered compiled encoder
(best-of-N, fresh result per round so neither path inherits warmed
``to_expr`` memos), checks the two programs are identical up to
variable naming, and times one deterministic branch & bound solve of
the complaint ILP.
"""

from __future__ import annotations

import time

import numpy as np

from ..complaints import ComplaintCase, ValueComplaint
from ..data import contains_token, corrupt_labels, make_enron
from ..errors import ILPError
from ..ilp import CompiledILPEncoder, TiresiasEncoder, solve
from ..ml import LogisticRegression
from ..relational import Database, Executor, Relation, plan_sql
from .common import ExperimentResult
from .fig8_multiquery import build_adult_setting
from .ilp_encode import _program_signature


def build_enron_rate_setting(
    token: str,
    rate: float,
    n_train: int = 400,
    n_query: int = 250,
    seed: int = 0,
):
    """ENRON labelling-function corruption applied to ``rate`` of the matches.

    ``rate=1.0`` recovers Table 3's rule exactly (every training email
    containing ``token`` relabelled spam); smaller rates corrupt a
    uniform subset of the matching emails.
    """
    ds = make_enron(n_train=n_train, n_query=n_query, seed=seed)
    mask = contains_token(ds.text_train, token)
    corruption = corrupt_labels(ds.y_train, mask, "spam", rate, rng=seed + 1)
    model = LogisticRegression(ds.classes, n_features=ds.X_train.shape[1], l2=1e-3)
    model.fit(ds.X_train, corruption.y_corrupted, warm_start=False)

    database = Database()
    database.add_relation(
        Relation("enron", {"features": ds.X_query, "text": ds.text_query})
    )
    database.add_model("spam", model)
    query = (
        "SELECT COUNT(*) FROM enron "
        f"WHERE predict(*) = 'spam' AND text LIKE '%{token}%'"
    )
    token_mask = contains_token(ds.text_query, token)
    true_count = int(np.sum((ds.y_query == "spam") & token_mask))
    case = ComplaintCase(
        query, [ValueComplaint(column="count", op="=", value=true_count, row_index=0)]
    )
    return database, case


def _scenarios(rates, flip_fractions, n_train, n_query, seed):
    for token in ("http", "deal"):
        for rate in rates:
            database, case = build_enron_rate_setting(
                token, rate, n_train=n_train, n_query=n_query, seed=seed
            )
            yield f"enron_{token}", rate, database, case
    for fraction in flip_fractions:
        setting = build_adult_setting(
            fraction, n_train=n_train, n_query=n_query, seed=seed
        )
        yield "adult_q6_gender", fraction, setting.database, setting.gender_case
        yield "adult_q7_age", fraction, setting.database, setting.age_case


def run(
    rates=(0.5, 1.0),
    flip_fractions=(0.3, 0.5),
    n_train: int = 400,
    n_query: int = 250,
    rounds: int = 3,
    node_limit: int = 4000,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult("scenario_sweep")
    for name, rate, database, case in _scenarios(
        rates, flip_fractions, n_train, n_query, seed
    ):
        executor = Executor(database)
        plan = plan_sql(case.query, database)

        def encode_with(encoder_cls):
            best = float("inf")
            encoder = None
            for _ in range(max(1, rounds)):
                fresh = executor.execute(plan, debug=True, provenance="compiled")
                start = time.perf_counter()
                encoder = encoder_cls(fresh)
                encoder.add_complaints(case.complaints)
                encoder.program.n_constraints
                best = min(best, time.perf_counter() - start)
            return best, encoder

        tree_s, tree_encoder = encode_with(TiresiasEncoder)
        compiled_s, compiled_encoder = encode_with(CompiledILPEncoder)
        program_identical = _program_signature(
            tree_encoder.program
        ) == _program_signature(compiled_encoder.program)

        start = time.perf_counter()
        try:
            solution = solve(
                compiled_encoder.program, node_limit=node_limit, time_limit=None
            )
            solve_status = f"optimal(obj={solution.objective:g})"
        except ILPError as exc:
            solve_status = type(exc).__name__
        solve_s = time.perf_counter() - start

        result.rows.append(
            {
                "scenario": name,
                "rate": rate,
                "n_vars": tree_encoder.program.n_vars,
                "n_rows": tree_encoder.program.n_constraints,
                "tree_encode_s": tree_s,
                "compiled_encode_s": compiled_s,
                "speedup": tree_s / compiled_s if compiled_s > 0 else float("inf"),
                "program_identical": program_identical,
                "solve_s": solve_s,
                "solve_status": solve_status,
            }
        )
    result.notes.append(
        "ENRON rate = fraction of token-matching training emails the "
        "labelling-function corruption relabels (1.0 = Table 3's rule); "
        "Adult rate = Figure 8's flip fraction on the Section 6.5 predicate."
    )
    result.notes.append(
        "encode timings are best-of-N on a fresh debug execution per round; "
        "solve is one deterministic branch & bound run (node budget, no "
        "wall-clock limit) on the compiled program."
    )
    result.notes.append(
        "these single-table paper scenarios carry *flat* provenance (each "
        "aggregate cell is a linear sum of prediction atoms, no nested "
        "AND/OR), so tree and compiled encode at rough parity here — the "
        "array lowering's headroom is on deep join provenance, measured by "
        "the ilp_encode bench."
    )
    return result
