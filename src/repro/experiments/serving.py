"""Sharded multi-query serving workload (fig8's Adult substrate, scaled out).

The paper's multi-query experiment (Figure 8) serves two complaint cases;
a serving deployment fields many concurrent complaints — typically several
users complaining about different output cells of the *same* dashboard
queries.  This module builds that workload: one complaint case per
aggregate group of Q6 (``GROUP BY gender``) and Q7 (``GROUP BY
agedecade``), all sharing the income model — many cases, two distinct
plans.

``run`` measures the serving layer end to end: the serial loop
(``n_workers=0``) against sharded runs, asserting that removal orders are
identical (the sharding determinism contract) and reporting the measured
wall-clock speedup.  The speedup is algorithmic as much as it is
parallel: the execute stage collapses C case executions into P distinct
plan executions per iteration (plan-fingerprint dedup), and the encode
stage evaluates one probability matrix per distinct result instead of one
per case — wins that hold even on a single core, where threads alone
could not help.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..complaints import ComplaintCase, ValueComplaint
from ..data import corrupt_labels, make_adult, section65_predicate
from ..ml import LogisticRegression
from ..relational import Database, Relation
from .common import ExperimentResult, run_method
from .fig8_multiquery import Q6, Q7


@dataclass
class ServingSetting:
    """A multi-case Adult serving workload over two distinct plans."""

    database: Database
    model: LogisticRegression
    X_train: np.ndarray
    y_corrupted: np.ndarray
    corrupted_indices: np.ndarray
    cases: list[ComplaintCase]
    n_distinct_plans: int


def build_serving_setting(
    flip_fraction: float = 0.5,
    n_train: int = 300,
    n_query: int = 2000,
    seed: int = 0,
    corruption_shards: int | None = None,
) -> ServingSetting:
    """One complaint case per group of Q6 and Q7 — many cases, two plans.

    ``corruption_shards`` optionally samples the corrupted subset with the
    sharded (``SeedSequence.spawn``) scheme, matching how a parallel
    ingest pipeline would corrupt; ``None`` keeps the single-stream
    sampling of the fig8 experiment.
    """
    ds = make_adult(n_train=n_train, n_query=n_query, seed=seed)
    predicate = section65_predicate(ds.y_train, ds.age_train, ds.gender_train)
    corruption = corrupt_labels(
        ds.y_train, predicate, 1, flip_fraction, rng=seed + 1,
        n_shards=corruption_shards,
    )

    model = LogisticRegression((0, 1), n_features=ds.X_train.shape[1], l2=1e-3)
    model.fit(ds.X_train, corruption.y_corrupted, warm_start=False)

    database = Database()
    database.add_relation(
        Relation(
            "adult",
            {
                "features": ds.X_query,
                "gender": ds.gender_query,
                "agedecade": ds.age_query,
            },
        )
    )
    database.add_model("income", model)

    cases: list[ComplaintCase] = []
    for gender in sorted(np.unique(ds.gender_query).tolist()):
        truth = float(np.mean(ds.y_query[ds.gender_query == gender]))
        cases.append(
            ComplaintCase(
                Q6,
                [ValueComplaint(column="avg", op="=", value=truth,
                                group_key=(gender,))],
            )
        )
    for decade in sorted(int(d) for d in np.unique(ds.age_query)):
        truth = float(np.mean(ds.y_query[ds.age_query == decade]))
        cases.append(
            ComplaintCase(
                Q7,
                [ValueComplaint(column="avg", op="=", value=truth,
                                group_key=(decade,))],
            )
        )
    return ServingSetting(
        database=database,
        model=model,
        X_train=ds.X_train,
        y_corrupted=corruption.y_corrupted,
        corrupted_indices=corruption.corrupted_indices,
        cases=cases,
        n_distinct_plans=2,
    )


def run(
    n_workers_grid=(0, 2, 4),
    flip_fraction: float = 0.5,
    n_train: int = 300,
    n_query: int = 2000,
    max_removals: int = 20,
    k_per_iteration: int = 10,
    seed: int = 0,
    async_pipeline: bool | None = None,
) -> ExperimentResult:
    """Serial vs sharded serving on the multi-case fig8 workload.

    One row per worker count: wall-clock seconds, speedup over the serial
    loop, whether the removal order matched the serial golden order, and
    the execute stage's plan-dedup hit rate.  ``async_pipeline`` layers
    the pipelined loop on top of every non-serial row (the ``n_workers=0``
    baseline row stays fully serial so the golden order is the tree
    reference).
    """
    setting = build_serving_setting(
        flip_fraction, n_train=n_train, n_query=n_query, seed=seed
    )
    initial_params = setting.model.get_params()
    result = ExperimentResult("serving_sharded")

    reports = {}
    seconds = {}
    for n_workers in n_workers_grid:
        start = time.perf_counter()
        reports[n_workers] = run_method(
            setting.database,
            "income",
            setting.X_train,
            setting.y_corrupted,
            setting.cases,
            "holistic",
            max_removals=max_removals,
            k_per_iteration=k_per_iteration,
            seed=seed,
            reset_params=initial_params,
            n_workers=n_workers,
            async_pipeline=False if n_workers == 0 else async_pipeline,
        )
        seconds[n_workers] = time.perf_counter() - start

    serial_workers = n_workers_grid[0]
    serial_order = reports[serial_workers].removal_order
    for n_workers in n_workers_grid:
        report = reports[n_workers]
        cache = {}
        for record in report.iterations:
            cache = record.diagnostics.get("execute_cache", cache)
        result.rows.append(
            {
                "n_workers": n_workers,
                "n_cases": len(setting.cases),
                "distinct_plans": cache.get("n_distinct_plans"),
                "seconds": seconds[n_workers],
                "speedup": seconds[serial_workers] / seconds[n_workers],
                "order_matches_serial": report.removal_order == serial_order,
            }
        )
        result.series[f"removal_order@{n_workers}w"] = report.removal_order
    result.notes.append(
        "orders must match at every worker count (sharding determinism "
        "contract); speedup combines plan-fingerprint dedup with the "
        "worker pool."
    )
    return result
