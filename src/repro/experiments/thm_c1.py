"""Theorem C.1 validation: why complaints beat loss-based rankings.

Appendix C: corrupted training records with *parallel* feature vectors
(orthogonal to all clean records) and flipped labels are linearly separable
from nothing — the model happily fits them, so as their count K grows both
their training loss and their self-influence (InfLoss statistic) go to 0,
pushing them to the *bottom* of loss-based rankings.  A single complaint on
a mispredicted queried record parallel to the corrupted direction, however,
gives every corrupted record a strictly positive influence score, ranking
all of them at the top.
"""

from __future__ import annotations

import numpy as np

from ..influence import InfluenceAnalyzer, q_grad_for_target_predictions
from ..ml import LogisticRegression
from ..utils import argsort_desc, as_rng
from .common import ExperimentResult


def run(
    k_values=(4, 16, 64, 256),
    n_clean: int = 60,
    d: int = 10,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult("thm_c1_value_of_complaints")
    rng = as_rng(seed)

    X_clean = np.zeros((n_clean, d))
    X_clean[:, : d - 1] = rng.normal(size=(n_clean, d - 1))
    w = rng.normal(size=d - 1)
    y_clean = (X_clean[:, : d - 1] @ w > 0).astype(int)

    for k in k_values:
        # Corrupted records: parallel to e_{d-1}, true class 0, labeled 1.
        X_corrupt = np.zeros((k, d))
        X_corrupt[:, d - 1] = rng.uniform(0.8, 1.2, size=k)
        y_corrupt = np.ones(k, dtype=int)
        X = np.vstack([X_clean, X_corrupt])
        y = np.concatenate([y_clean, y_corrupt])
        corrupted_indices = np.arange(n_clean, n_clean + k)

        model = LogisticRegression((0, 1), n_features=d, l2=1e-3, fit_intercept=False)
        model.fit(X, y, warm_start=False, max_iter=500)
        analyzer = InfluenceAnalyzer(model, X, y, damping=0.0)

        losses = model.per_sample_losses(X, y)
        max_corrupt_loss = float(losses[corrupted_indices].max())
        self_influence = analyzer.self_influence()
        min_corrupt_selfinf = float(np.abs(self_influence[corrupted_indices]).max())

        # Loss ranking position of the best-ranked corrupted record.
        loss_order = argsort_desc(losses)
        loss_rank_best = int(
            min(np.where(np.isin(loss_order, corrupted_indices))[0]) + 1
        )

        # Complaint: one queried record parallel to e_{d-1}, true class 0,
        # currently predicted 1 → point complaint with the correct label.
        x_query = np.zeros((1, d))
        x_query[0, d - 1] = 1.0
        q_grad = q_grad_for_target_predictions(model, x_query, np.zeros(1, dtype=int))
        scores = analyzer.scores_from_q_grad(q_grad)
        complaint_order = argsort_desc(scores)
        top_k = set(complaint_order[:k].tolist())
        complaint_recall_at_k = len(top_k & set(corrupted_indices.tolist())) / k
        min_corrupt_score = float(scores[corrupted_indices].min())

        result.rows.append(
            {
                "K": k,
                "max_corrupt_loss": max_corrupt_loss,
                "max_abs_corrupt_selfinf": min_corrupt_selfinf,
                "loss_rank_of_best_corrupt": loss_rank_best,
                "min_corrupt_complaint_score": min_corrupt_score,
                "complaint_recall@K": complaint_recall_at_k,
            }
        )
    result.notes.append(
        "Theorem C.1: corrupted loss and self-influence shrink toward 0 as K "
        "grows while the complaint keeps every corrupted score positive "
        "(recall@K = 1)."
    )
    return result
