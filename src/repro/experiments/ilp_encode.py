"""Array-lowered ILP encoding vs the tree-walking reference encoder.

The fig6-shaped join workload (model inference on both sides of an
L ⋈ R equi-join, AND/OR predicate trees, COUNT/SUM/AVG aggregates) is
where TwoStep's encode step used to dominate: the tree encoder first
materializes every provenance expression out of the compiled NodePool
and then walks it node by Python node, allocating aux variables and
emitting linking rows one ``add_constraint`` call at a time.  The
compiled encoder (:class:`repro.ilp.CompiledILPEncoder`) reads the
opcode/CSR arrays directly — bulk aux-variable blocks, vectorized CSR
constraint blocks, and cross-complaint aux reuse keyed on stable pool
node ids.

For each scenario this experiment re-executes the plan to get a fresh
result (so neither path inherits the other's materialization caches),
times both encoders best-of-N, and verifies the compiled program is
*identical* to the tree program — same variable count, objective,
constraint rows and coefficient order (names aside) — and that branch &
bound enumerates the same optima in the same order.
"""

from __future__ import annotations

import time

import numpy as np

from ..complaints import TupleComplaint, ValueComplaint
from ..ilp import CompiledILPEncoder, TiresiasEncoder, enumerate_optima
from ..relational import (
    Aggregate,
    AggSpec,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Col,
    Const,
    Database,
    Executor,
    Filter,
    Join,
    ModelPredict,
    Relation,
    Scan,
)
from .common import ExperimentResult


def build_join_database(
    n_left: int = 48, n_right: int = 32, n_keys: int = 8, seed: int = 0
) -> Database:
    """An L ⋈ R fig6-style database with a trained binary model."""
    from ..ml import LogisticRegression

    rng = np.random.default_rng(seed)
    n, d = 80, 4
    X = rng.normal(size=(n, d))
    w = np.asarray([1.5, -2.0, 0.5, 0.0])
    y = (X @ w + 0.2 * rng.normal(size=n) > 0).astype(int)
    model = LogisticRegression((0, 1), n_features=d, l2=1e-2)
    model.fit(X, y, warm_start=False)

    db = Database()
    db.add_relation(
        Relation(
            "L",
            {
                "features": rng.normal(size=(n_left, d)),
                "key": rng.integers(0, n_keys, size=n_left),
            },
        )
    )
    db.add_relation(
        Relation(
            "R",
            {
                "features": rng.normal(size=(n_right, d)),
                "key": rng.integers(0, n_keys, size=n_right),
                "weight": rng.uniform(0.5, 2.5, size=n_right),
            },
        )
    )
    db.add_model("m", model)
    return db


def _random_predicate(rng: np.random.Generator, depth: int):
    if depth == 0:
        leaf = int(rng.integers(4))
        if leaf == 0:
            return Cmp(
                "=", ModelPredict("m", Col("L.features")), Const(int(rng.integers(2)))
            )
        if leaf == 1:
            return Cmp(
                "=", ModelPredict("m", Col("R.features")), Const(int(rng.integers(2)))
            )
        if leaf == 2:
            return Cmp(
                "=",
                ModelPredict("m", Col("L.features")),
                ModelPredict("m", Col("R.features")),
            )
        return Cmp("<", Col("R.weight"), Const(float(rng.uniform(1.0, 2.0))))
    children = [
        _random_predicate(rng, depth - 1) for _ in range(int(rng.integers(2, 4)))
    ]
    kind = int(rng.integers(3))
    if kind == 0:
        return BoolAnd(children)
    if kind == 1:
        return BoolOr(children)
    return BoolNot(children[0])


def _filtered_join(rng: np.random.Generator, depth: int):
    joined = Join(
        Scan("L", "L"), Scan("R", "R"), Cmp("=", Col("L.key"), Col("R.key"))
    )
    predicate = BoolAnd(
        [
            Cmp(
                "=",
                ModelPredict("m", Col("L.features")),
                ModelPredict("m", Col("R.features")),
            ),
            _random_predicate(rng, depth),
        ]
    )
    return Filter(joined, predicate)


def build_scenarios(seed: int = 0, depth: int = 4):
    """(name, plan, complaints_fn) triples spanning the complaint shapes."""
    rng = np.random.default_rng(seed)

    def selection_complaints(result):
        n = len(result.relation)
        return [TupleComplaint(row_index=i) for i in range(min(4, n))]

    def count_complaints(result):
        current = float(result.relation.column("count")[0])
        return [
            ValueComplaint(
                column="count", op="<=", value=max(current - 1.0, 0.0), row_index=0
            )
        ]

    def grouped_complaints(result):
        out = []
        for row in range(min(4, len(result.relation))):
            count = float(result.relation.column("count")[row])
            total = float(result.relation.column("total")[row])
            mean = float(result.relation.column("mean")[row])
            out.append(
                ValueComplaint(
                    column="count", op="<=", value=count - 1.0, row_index=row
                )
            )
            out.append(
                ValueComplaint(
                    column="total", op=">=", value=0.5 * total, row_index=row
                )
            )
            out.append(
                ValueComplaint(
                    column="mean", op="<=", value=mean + 0.1, row_index=row
                )
            )
        return out

    selection = _filtered_join(rng, depth)
    count = Aggregate(
        _filtered_join(rng, depth), (), [AggSpec("count", None, "count")]
    )
    grouped = Aggregate(
        _filtered_join(rng, depth),
        ((Col("L.key"), "key"),),
        [
            AggSpec("count", None, "count"),
            AggSpec("sum", Col("R.weight"), "total"),
            AggSpec("avg", Col("R.weight"), "mean"),
        ],
    )
    return [
        ("selection", selection, selection_complaints),
        ("count", count, count_complaints),
        ("grouped_sum_avg", grouped, grouped_complaints),
    ]


def _program_signature(program):
    return (
        program.n_vars,
        tuple(sorted(program.objective.items())),
        program.objective_constant,
        tuple(
            (constraint.sense, constraint.rhs, tuple(constraint.coeffs))
            for constraint in program.constraints
        ),
    )


def _optima_trace(program, max_solutions: int, node_limit: int):
    """Deterministic branch & bound outcome: optima trace or typed failure.

    No wall-clock limit — the node budget keeps the solver's behavior a
    pure function of the program, so identical programs must produce
    identical traces *including* identical failures.
    """
    from ..errors import ILPError

    try:
        solutions = enumerate_optima(
            program, max_solutions=max_solutions, node_limit=node_limit,
            time_limit=None,
        )
    except ILPError as exc:
        return [(type(exc).__name__, str(exc))]
    return [(s.objective, tuple(s.values.tolist())) for s in solutions]


def run(
    n_left: int = 240,
    n_right: int = 160,
    n_keys: int = 8,
    depth: int = 4,
    rounds: int = 3,
    max_solutions: int = 8,
    node_limit: int = 1500,
    seed: int = 0,
) -> ExperimentResult:
    """Tree vs compiled encode wall clock, dedup rates, and order parity.

    Each timing round re-executes the plan so every encode starts from a
    fresh result: the tree path pays its real cost (NodePool -> expression
    materialization plus the recursive walk) instead of hitting the
    pool's ``to_expr`` memo warmed by a previous round.
    """
    db = build_join_database(n_left=n_left, n_right=n_right, n_keys=n_keys, seed=seed)
    executor = Executor(db)
    result = ExperimentResult("ilp_encode")

    # The timing programs are too large to branch & bound inside the
    # bench budget, so the enumeration-order parity check runs on a
    # small companion workload per scenario shape; at timing scale the
    # programs are verified *identical*, which pins the enumeration
    # order a fortiori.
    parity_db = build_join_database(n_left=24, n_right=16, n_keys=6, seed=seed)
    parity_executor = Executor(parity_db)
    parity_scenarios = {
        name: (plan, complaints_fn)
        for name, plan, complaints_fn in build_scenarios(seed=seed, depth=2)
    }

    for name, plan, complaints_fn in build_scenarios(seed=seed, depth=depth):
        def encode_with(encoder_cls):
            best = float("inf")
            encoder = None
            for _ in range(max(1, rounds)):
                fresh = executor.execute(plan, debug=True, provenance="compiled")
                complaints = complaints_fn(fresh)
                start = time.perf_counter()
                encoder = encoder_cls(fresh)
                for complaint in complaints:
                    encoder.add_complaint(complaint)
                n_rows = encoder.program.n_constraints
                best = min(best, time.perf_counter() - start)
            return best, encoder, n_rows

        tree_s, tree_encoder, tree_rows = encode_with(TiresiasEncoder)
        compiled_s, compiled_encoder, compiled_rows = encode_with(CompiledILPEncoder)

        program_identical = _program_signature(
            tree_encoder.program
        ) == _program_signature(compiled_encoder.program)

        parity_plan, parity_fn = parity_scenarios[name]
        parity_result = parity_executor.execute(
            parity_plan, debug=True, provenance="compiled"
        )
        parity_tree = TiresiasEncoder(parity_result)
        parity_compiled = CompiledILPEncoder(parity_result)
        for complaint in parity_fn(parity_result):
            parity_tree.add_complaint(complaint)
            parity_compiled.add_complaint(complaint)
        order_matches = _optima_trace(
            parity_tree.program, max_solutions, node_limit
        ) == _optima_trace(parity_compiled.program, max_solutions, node_limit)
        program_identical = program_identical and (
            _program_signature(parity_tree.program)
            == _program_signature(parity_compiled.program)
        )

        created = compiled_encoder.aux_created
        reused = compiled_encoder.aux_reused
        touched = created + reused
        result.rows.append(
            {
                "scenario": name,
                "n_vars": tree_encoder.program.n_vars,
                "n_rows": tree_rows,
                "tree_encode_s": tree_s,
                "compiled_encode_s": compiled_s,
                "speedup": tree_s / compiled_s if compiled_s > 0 else float("inf"),
                "aux_created": created,
                "aux_reused": reused,
                "dedup_hit_rate": reused / touched if touched else 0.0,
                "program_identical": program_identical,
                "order_matches": order_matches,
            }
        )
        assert compiled_rows == tree_rows

    aggregate = [row for row in result.rows if row["scenario"] != "selection"]
    tree_total = sum(row["tree_encode_s"] for row in aggregate)
    compiled_total = sum(row["compiled_encode_s"] for row in aggregate)
    result.rows.append(
        {
            "scenario": "AGGREGATE_TOTAL",
            "n_vars": sum(row["n_vars"] for row in aggregate),
            "n_rows": sum(row["n_rows"] for row in aggregate),
            "tree_encode_s": tree_total,
            "compiled_encode_s": compiled_total,
            "speedup": tree_total / compiled_total,
            "aux_created": sum(row["aux_created"] for row in aggregate),
            "aux_reused": sum(row["aux_reused"] for row in aggregate),
            "dedup_hit_rate": 0.0,
            "program_identical": all(r["program_identical"] for r in aggregate),
            "order_matches": all(r["order_matches"] for r in aggregate),
        }
    )
    result.notes.append(
        "speedup = tree-walk encode (expr materialization + per-node "
        "add_constraint) over array-lowered encode (bulk aux blocks + CSR "
        "constraint blocks); programs must be identical up to var names."
    )
    result.notes.append(
        "selection is the complaint-sparse regime: a handful of tuple "
        "complaints touch a sliver of the pool, so the compiled encoder's "
        "one-time pool canonicalization dominates — the tree walk stays "
        "available via REPRO_ILP_ENCODER=tree.  AGGREGATE_TOTAL sums the "
        "count/grouped rows, where every candidate feeds the complaint."
    )
    return result
