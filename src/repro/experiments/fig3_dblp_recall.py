"""Figure 3 + Figure 4 source: DBLP recall curves across corruption rates.

Section 6.2: Q1 (``SELECT COUNT(*) FROM DBLP WHERE predict(*) = 'match'``)
with a single correct equality complaint; corruption flips 30% / 50% / 70%
of the *match* training labels to *nonmatch*.  The paper's shape:

- Loss and InfLoss degrade as the corruption rate rises (the model starts
  fitting the corruptions);
- TwoStep is weak at low rates (high ambiguity) and improves at 70%;
- Holistic dominates at every rate (AUCCR ≈ 0.99 at 50% in the paper).
"""

from __future__ import annotations

from .common import ExperimentResult, build_dblp_setting, compare_methods

PAPER_AUCCR_MEDIUM = {"infloss": 0.30, "loss": 0.35, "twostep": 0.71, "holistic": 0.99}


def run(
    rates=(0.3, 0.5, 0.7),
    methods=("loss", "infloss", "twostep", "holistic"),
    n_train: int = 400,
    n_query: int = 300,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult("fig3_dblp_recall")
    for rate in rates:
        setting = build_dblp_setting(rate, n_train=n_train, n_query=n_query, seed=seed)
        summaries = compare_methods(
            setting.database,
            setting.model_name,
            setting.X_train,
            setting.y_corrupted,
            [setting.case],
            setting.corrupted_indices,
            methods=methods,
            seed=seed,
        )
        for method, summary in summaries.items():
            paper = PAPER_AUCCR_MEDIUM.get(method) if abs(rate - 0.5) < 1e-9 else None
            result.rows.append(
                {
                    "corruption_rate": rate,
                    "method": method,
                    "auccr": summary["auccr"],
                    "paper_auccr(50%)": paper,
                    "n_corrupted": len(setting.corrupted_indices),
                }
            )
            result.series[f"recall[{method}]@{rate}"] = summary["recall_curve"]
    result.notes.append(
        "paper Figure 3 shape: Holistic ≈ perfect at all rates; Loss/InfLoss "
        "collapse at high rates; TwoStep recovers at 70%."
    )
    return result
