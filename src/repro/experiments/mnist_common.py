"""Shared MNIST experiment scaffolding (Sections 6.3, 6.4, 6.6, Appendix D).

Builders for the three MNIST workloads:

- Q3/Q4 joins of disjoint digit subsets (``predict(L) = predict(R)``),
  with the 1→7 label corruption that creates spurious matches;
- the mix-rate variant where some 1-digit images move to the right side;
- Q5 (``COUNT(*) WHERE predict(*) = 1``) for the effort / misspecification
  / neural-network experiments.

Complaints are generated from ground truth exactly as Section 6.1.4
describes: tuple complaints target join outputs where exactly one side is
mispredicted; value complaints state the ground-truth aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..complaints import ComplaintCase, PredictionComplaint, TupleComplaint, ValueComplaint
from ..data import corrupt_where_label, make_mnist
from ..ml import NeuralClassifier, SoftmaxRegression, image_input_adapter, make_cnn
from ..relational import Database, Executor, Relation, plan_sql
from ..utils import as_rng

ALL_DIGITS = tuple(range(10))


@dataclass
class MNISTSetting:
    """A corrupted MNIST model plus query relations and complaint cases."""

    database: Database
    model: object
    model_name: str
    X_train: np.ndarray
    y_corrupted: np.ndarray
    y_clean: np.ndarray
    corrupted_indices: np.ndarray
    cases: list[ComplaintCase] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)


def _fit_model(
    X_train: np.ndarray,
    y_train: np.ndarray,
    model_kind: str,
    seed: int,
    l2: float = 1e-3,
):
    if model_kind == "logistic":
        model = SoftmaxRegression(ALL_DIGITS, n_features=X_train.shape[1], l2=l2)
        model.fit(X_train, y_train, warm_start=False, max_iter=150)
        return model
    if model_kind == "cnn":
        network = make_cnn(image_size=28, n_classes=10, channels=4, rng=seed)
        model = NeuralClassifier(
            ALL_DIGITS, network, input_adapter=image_input_adapter, l2=l2
        )
        model.fit(X_train, y_train, warm_start=False, max_iter=60)
        return model
    raise ValueError(f"unknown model kind {model_kind!r}")


def _train_matrix(dataset, model_kind: str) -> np.ndarray:
    """Flattened features for linear models, raw images for the CNN."""
    if model_kind == "cnn":
        return dataset.images_train
    return dataset.X_train


def _query_matrix(images: np.ndarray, model_kind: str) -> np.ndarray:
    if model_kind == "cnn":
        return images
    return images.reshape(images.shape[0], -1)


def build_join_setting(
    corruption_rate: float,
    left_digits=(1,),
    right_digits=(7,),
    n_train: int = 300,
    n_left: int = 20,
    n_right: int = 20,
    aggregate: bool = False,
    mix_rate: float = 0.0,
    model_kind: str = "logistic",
    seed: int = 0,
) -> MNISTSetting:
    """Q3 (tuple complaints) or Q4 (COUNT complaint) join setting.

    ``mix_rate`` moves that fraction of left-side 1-digit images to the
    right relation (the Section 6.3 mix experiment), which makes the true
    join output non-empty and the complaint far more ambiguous.
    """
    rng = as_rng(seed)
    dataset = make_mnist(n_train=n_train, n_query=4 * (n_left + n_right), seed=seed)
    corruption = corrupt_where_label(dataset.y_train, 1, 7, corruption_rate, rng=seed + 1)
    model = _fit_model(
        _train_matrix(dataset, model_kind), corruption.y_corrupted, model_kind, seed
    )

    left_pool = np.flatnonzero(np.isin(dataset.y_query, left_digits))
    right_pool = np.flatnonzero(np.isin(dataset.y_query, right_digits))
    left_index = left_pool[:n_left]
    right_index = right_pool[:n_right]
    if mix_rate > 0.0:
        ones = np.asarray([i for i in left_index if dataset.y_query[i] == 1])
        n_move = int(round(mix_rate * ones.size))
        if n_move:
            moved = rng.choice(ones, size=n_move, replace=False)
            left_index = np.asarray([i for i in left_index if i not in set(moved.tolist())])
            right_index = np.concatenate([right_index, moved])

    left_images = dataset.images_query[left_index]
    right_images = dataset.images_query[right_index]
    left_labels = dataset.y_query[left_index]
    right_labels = dataset.y_query[right_index]

    database = Database()
    database.add_relation(
        Relation("L", {"features": _query_matrix(left_images, model_kind)})
    )
    database.add_relation(
        Relation("R", {"features": _query_matrix(right_images, model_kind)})
    )
    database.add_model("digit", model)

    setting = MNISTSetting(
        database=database,
        model=model,
        model_name="digit",
        X_train=_train_matrix(dataset, model_kind),
        y_corrupted=corruption.y_corrupted,
        y_clean=dataset.y_train,
        corrupted_indices=corruption.corrupted_indices,
        metadata={
            "left_labels": left_labels,
            "right_labels": right_labels,
            "mix_rate": mix_rate,
        },
    )

    if aggregate:
        query = "SELECT COUNT(*) FROM L, R WHERE predict(L) = predict(R)"
        true_count = int(
            sum(
                1
                for ll in left_labels
                for rl in right_labels
                if int(ll) == int(rl)
            )
        )
        setting.cases = [
            ComplaintCase(
                query,
                [ValueComplaint(column="count", op="=", value=true_count, row_index=0)],
            )
        ]
        setting.metadata["true_count"] = true_count
        return setting

    query = "SELECT * FROM L, R WHERE predict(L) = predict(R)"
    result = Executor(database).execute(plan_sql(query, database), debug=True)
    complaints = join_tuple_complaints(result, left_labels, right_labels)
    setting.metadata["n_join_rows"] = len(result.relation)
    if complaints:
        setting.cases = [ComplaintCase(query, complaints)]
    return setting


def join_tuple_complaints(
    result, left_labels: np.ndarray, right_labels: np.ndarray
) -> list[TupleComplaint]:
    """Ground-truth tuple complaints: join rows with exactly one side wrong.

    Complaints are addressed by lineage (the (L row, R row) pair), so they
    survive re-execution as the train-rank-fix loop retrains the model.
    """
    complaints: list[TupleComplaint] = []
    for l_row, r_row in join_row_ids(result):
        left_pred = _prediction_for(result, "L", l_row)
        right_pred = _prediction_for(result, "R", r_row)
        left_ok = int(left_pred) == int(left_labels[l_row])
        right_ok = int(right_pred) == int(right_labels[r_row])
        if left_ok != right_ok:
            complaints.append(TupleComplaint.for_lineage(L=l_row, R=r_row))
    return complaints


def misprediction_point_complaints(
    result, left_labels: np.ndarray, right_labels: np.ndarray
) -> list[PredictionComplaint]:
    """Unambiguous point complaints on every mispredicted join participant."""
    complaints: dict[tuple[str, int], PredictionComplaint] = {}
    for l_row, r_row in join_row_ids(result):
        left_pred = _prediction_for(result, "L", l_row)
        right_pred = _prediction_for(result, "R", r_row)
        if int(left_pred) != int(left_labels[l_row]):
            complaints[("L", l_row)] = PredictionComplaint(
                "L", int(l_row), int(left_labels[l_row])
            )
        if int(right_pred) != int(right_labels[r_row]):
            complaints[("R", r_row)] = PredictionComplaint(
                "R", int(r_row), int(right_labels[r_row])
            )
    return list(complaints.values())


def join_row_ids(result) -> list[tuple[int, int]]:
    """(left row id, right row id) per concrete join output row."""
    batch = result.candidate_batch
    out: list[tuple[int, int]] = []
    for candidate in result.output_to_candidate:
        out.append(
            (
                int(batch.alias_row_ids["L"][candidate]),
                int(batch.alias_row_ids["R"][candidate]),
            )
        )
    return out


def _prediction_for(result, relation_name: str, row_id: int):
    return result.runtime.prediction_for_site(("digit", relation_name, int(row_id)))


def build_count_setting(
    corruption_rate: float = 0.1,
    target_digit: int = 1,
    wrong_digit: int = 7,
    n_train: int = 300,
    n_query: int = 150,
    model_kind: str = "logistic",
    seed: int = 0,
) -> MNISTSetting:
    """Q5: ``SELECT COUNT(*) FROM MNIST WHERE predict(*) = 1``.

    Corruption flips ``corruption_rate`` of the training ``target_digit``
    images to ``wrong_digit``; the complaint restores the ground-truth count.
    """
    dataset = make_mnist(n_train=n_train, n_query=n_query, seed=seed)
    corruption = corrupt_where_label(
        dataset.y_train, target_digit, wrong_digit, corruption_rate, rng=seed + 1
    )
    model = _fit_model(
        _train_matrix(dataset, model_kind), corruption.y_corrupted, model_kind, seed
    )
    database = Database()
    database.add_relation(
        Relation(
            "mnist", {"features": _query_matrix(dataset.images_query, model_kind)}
        )
    )
    database.add_model("digit", model)
    query = f"SELECT COUNT(*) FROM mnist WHERE predict(*) = {target_digit}"
    true_count = int(np.sum(dataset.y_query == target_digit))
    case = ComplaintCase(
        query, [ValueComplaint(column="count", op="=", value=true_count, row_index=0)]
    )
    return MNISTSetting(
        database=database,
        model=model,
        model_name="digit",
        X_train=_train_matrix(dataset, model_kind),
        y_corrupted=corruption.y_corrupted,
        y_clean=dataset.y_train,
        corrupted_indices=corruption.corrupted_indices,
        cases=[case],
        metadata={
            "true_count": true_count,
            "query": query,
            "y_query": dataset.y_query,
            "target_digit": target_digit,
        },
    )


def query_point_complaints(setting: MNISTSetting, limit: int | None = None):
    """Prediction complaints for mispredicted querying records (Fig. 9)."""
    database = setting.database
    relation = database.relation("mnist")
    y_query = setting.metadata["y_query"]
    predictions = setting.model.predict(relation.column("features"))
    complaints = [
        PredictionComplaint("mnist", int(row_id), int(true))
        for row_id, (pred, true) in enumerate(zip(predictions, y_query))
        if int(pred) != int(true)
    ]
    if limit is not None:
        complaints = complaints[:limit]
    return complaints
