"""Shared experiment harness: settings builders, runners, result tables.

Every reproduction experiment (one module per paper table/figure) returns an
:class:`ExperimentResult`: a list of printable rows plus named series
(recall curves etc.).  Benchmarks render these under ``benchmarks/out/`` and
assert the paper's qualitative *shape* (who wins, directionality), not the
absolute numbers — the substrate is a synthetic laptop-scale simulator, not
the authors' GPU testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..complaints import ComplaintCase, ValueComplaint
from ..core import RainDebugger
from ..core.metrics import auccr_normalized, recall_curve
from ..data import corrupt_where_label, make_dblp
from ..ml import LogisticRegression
from ..relational import Database, Executor, Relation, plan_sql

DEFAULT_METHODS = ("loss", "twostep", "holistic")


@dataclass
class ExperimentResult:
    """Printable result of one experiment."""

    name: str
    rows: list[dict] = field(default_factory=list)
    series: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def table(self) -> str:
        """Render rows as an aligned text table."""
        if not self.rows:
            return f"[{self.name}] (no rows)"
        headers = list(self.rows[0].keys())
        widths = {
            header: max(len(header), *(len(_fmt(row.get(header))) for row in self.rows))
            for header in headers
        }
        lines = [f"== {self.name} =="]
        lines.append("  ".join(header.ljust(widths[header]) for header in headers))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(header)).ljust(widths[header]) for header in headers)
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def save(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.txt"
        with open(path, "w") as handle:
            handle.write(self.table() + "\n")
            for key, values in self.series.items():
                handle.write(f"series {key}: {np.round(np.asarray(values, dtype=float), 4).tolist()}\n")
        return path

    def row_lookup(self, **filters) -> dict:
        """The unique row matching all ``filters`` (exact equality)."""
        matches = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in filters.items())
        ]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} rows match {filters} in {self.name}")
        return matches[0]


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


# ---------------------------------------------------------------------------
# DBLP setting (Sections 6.2, 6.6 substrate)
# ---------------------------------------------------------------------------


@dataclass
class DBLPSetting:
    """A corrupted DBLP training setup with its count query + complaint."""

    database: Database
    model: LogisticRegression
    model_name: str
    X_train: np.ndarray
    y_corrupted: np.ndarray
    y_clean: np.ndarray
    corrupted_indices: np.ndarray
    case: ComplaintCase
    query: str
    true_count: int
    X_query: np.ndarray
    y_query: np.ndarray


def build_dblp_setting(
    corruption_rate: float,
    n_train: int = 400,
    n_query: int = 300,
    seed: int = 0,
    l2: float = 1e-3,
) -> DBLPSetting:
    """DBLP: flip ``corruption_rate`` of match labels, complain about Q1's count.

    Mirrors Section 6.2: query ``SELECT COUNT(*) FROM DBLP WHERE
    predict(*) = 'match'`` with an equality value complaint at the
    ground-truth count.
    """
    ds = make_dblp(n_train=n_train, n_query=n_query, seed=seed)
    corruption = corrupt_where_label(
        ds.y_train, "match", "nonmatch", corruption_rate, rng=seed + 1
    )
    model = LogisticRegression(ds.classes, n_features=ds.X_train.shape[1], l2=l2)
    model.fit(ds.X_train, corruption.y_corrupted, warm_start=False)

    database = Database()
    database.add_relation(Relation("dblp", {"features": ds.X_query}))
    database.add_model("er", model)

    query = "SELECT COUNT(*) FROM dblp WHERE predict(*) = 'match'"
    true_count = int(np.sum(ds.y_query == "match"))
    case = ComplaintCase(
        query,
        [ValueComplaint(column="count", op="=", value=true_count, row_index=0)],
    )
    return DBLPSetting(
        database=database,
        model=model,
        model_name="er",
        X_train=ds.X_train,
        y_corrupted=corruption.y_corrupted,
        y_clean=ds.y_train,
        corrupted_indices=corruption.corrupted_indices,
        case=case,
        query=query,
        true_count=true_count,
        X_query=ds.X_query,
        y_query=ds.y_query,
    )


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------


def run_method(
    setting_database: Database,
    model_name: str,
    X_train: np.ndarray,
    y_train: np.ndarray,
    cases: list[ComplaintCase],
    method: str,
    max_removals: int,
    k_per_iteration: int = 10,
    seed: int = 0,
    damping: float = 1e-4,
    ranker_kwargs: dict | None = None,
    reset_params: np.ndarray | None = None,
    cg_max_iter: int | None = None,
    provenance: str = "compiled",
    n_workers: int | None = None,
    async_pipeline: bool | None = None,
):
    """Run one approach; optionally reset the shared model's params first.

    The model object inside the database is shared across approaches within
    an experiment, so each run restores the initial fitted parameters before
    its own train-rank-fix loop (warm starts then proceed from there).
    ``n_workers`` feeds the sharded serving layer (``None`` defers to
    ``REPRO_N_WORKERS``; worker count never changes removal orders), and
    ``async_pipeline`` the pipelined loop (``None`` defers to
    ``REPRO_ASYNC``; also order-preserving).
    """
    model = setting_database.model(model_name)
    if reset_params is not None:
        model.set_params(reset_params)
    debugger = RainDebugger(
        setting_database,
        model_name,
        X_train,
        y_train,
        cases,
        method=method,
        damping=damping,
        rng=seed,
        ranker_kwargs=ranker_kwargs or {},
        cg_max_iter=cg_max_iter,
        provenance=provenance,
        n_workers=n_workers,
        async_pipeline=async_pipeline,
    )
    return debugger.run(max_removals=max_removals, k_per_iteration=k_per_iteration)


def compare_methods(
    database: Database,
    model_name: str,
    X_train: np.ndarray,
    y_train: np.ndarray,
    cases: list[ComplaintCase],
    corrupted_indices: np.ndarray,
    methods=DEFAULT_METHODS,
    max_removals: int | None = None,
    k_per_iteration: int = 10,
    seed: int = 0,
    damping: float = 1e-4,
    ranker_kwargs_by_method: dict | None = None,
    cg_max_iter: int | None = None,
    n_workers: int | None = None,
    async_pipeline: bool | None = None,
) -> dict[str, dict]:
    """Run several approaches on one setting; returns per-method summaries."""
    ranker_kwargs_by_method = ranker_kwargs_by_method or {}
    if max_removals is None:
        max_removals = int(len(corrupted_indices))
    model = database.model(model_name)
    initial_params = model.get_params()
    out: dict[str, dict] = {}
    for method in methods:
        report = run_method(
            database,
            model_name,
            X_train,
            y_train,
            cases,
            method,
            max_removals=max_removals,
            k_per_iteration=k_per_iteration,
            seed=seed,
            damping=damping,
            ranker_kwargs=ranker_kwargs_by_method.get(method),
            reset_params=initial_params,
            cg_max_iter=cg_max_iter,
            n_workers=n_workers,
            async_pipeline=async_pipeline,
        )
        curve = recall_curve(report.removal_order, corrupted_indices)
        out[method] = {
            "report": report,
            "recall_curve": curve,
            "auccr": auccr_normalized(curve),
        }
    model.set_params(initial_params)
    return out


def execute_sql(database: Database, sql: str, debug: bool = True):
    """Parse + plan + execute in one call (experiment convenience)."""
    return Executor(database).execute(plan_sql(sql, database), debug=debug)
