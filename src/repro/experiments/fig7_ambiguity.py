"""Figure 7: varying the ambiguity of the MNIST point-complaint experiment.

Section 6.4: start from Q3's join-row tuple complaints (ambiguous — the
complaint says "this join row should not exist" but not how to fix it) and
replace a fraction ``a`` of them with *unambiguous* prediction complaints
on the mispredicted side.  The paper's shape: Holistic dominates at low
``a`` (high ambiguity); TwoStep converges to Holistic as ``a`` grows.
"""

from __future__ import annotations

from ..complaints import ComplaintCase
from ..relational import Executor, plan_sql
from ..utils import as_rng
from .common import ExperimentResult, compare_methods
from .fig6_mnist_join import TWOSTEP_KWARGS
from .mnist_common import build_join_setting, join_tuple_complaints


def run(
    replaced_fractions=(0.1, 0.5, 0.8),
    methods=("loss", "twostep", "holistic"),
    corruption_rate: float = 0.3,
    n_train: int = 300,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult("fig7_ambiguity")
    setting = build_join_setting(
        corruption_rate, aggregate=False, n_train=n_train, seed=seed
    )
    if not setting.cases:
        result.notes.append("no spurious join rows at this corruption rate")
        return result
    query = setting.cases[0].query
    execution = Executor(setting.database).execute(
        plan_sql(query, setting.database), debug=True
    )
    left_labels = setting.metadata["left_labels"]
    right_labels = setting.metadata["right_labels"]
    tuple_complaints = join_tuple_complaints(execution, left_labels, right_labels)
    rng = as_rng(seed + 7)

    for fraction in replaced_fractions:
        n_replace = int(round(fraction * len(tuple_complaints)))
        order = rng.permutation(len(tuple_complaints))
        replaced = set(order[:n_replace].tolist())
        complaints = []
        from ..complaints import PredictionComplaint

        for position, complaint in enumerate(tuple_complaints):
            if position not in replaced:
                complaints.append(complaint)
                continue
            lineage = dict(complaint.lineage)
            l_row, r_row = lineage["L"], lineage["R"]
            left_pred = execution.runtime.prediction_for_site(("digit", "L", l_row))
            if int(left_pred) != int(left_labels[l_row]):
                complaints.append(
                    PredictionComplaint("L", l_row, int(left_labels[l_row]))
                )
            else:
                complaints.append(
                    PredictionComplaint("R", r_row, int(right_labels[r_row]))
                )
        case = ComplaintCase(query, complaints)
        summaries = compare_methods(
            setting.database, setting.model_name, setting.X_train,
            setting.y_corrupted, [case], setting.corrupted_indices,
            methods=methods, seed=seed,
            ranker_kwargs_by_method={"twostep": TWOSTEP_KWARGS},
        )
        for method, summary in summaries.items():
            result.rows.append(
                {
                    "replaced_fraction": fraction,
                    "method": method,
                    "auccr": summary["auccr"],
                    "n_point": n_replace,
                    "n_tuple": len(tuple_complaints) - n_replace,
                }
            )
            result.series[f"recall[{method}]@{fraction}"] = summary["recall_curve"]
    result.notes.append(
        "paper Figure 7 shape: TwoStep approaches Holistic as the replaced "
        "fraction (unambiguous point complaints) grows."
    )
    return result
