"""Rain: complaint-driven training data debugging for Query 2.0.

A from-scratch reproduction of Wu, Flokas, Wu & Wang, SIGMOD 2020.

Quickstart::

    from repro import (
        Database, Relation, LogisticRegression, RainDebugger,
        ComplaintCase, ValueComplaint,
    )

    db = Database()
    db.add_relation(Relation("emails", {"features": X_query, "text": texts}))
    model = LogisticRegression(("ham", "spam"), n_features=X_train.shape[1])
    model.fit(X_train, y_train_corrupted)
    db.add_model("spamclf", model)

    case = ComplaintCase(
        "SELECT COUNT(*) FROM emails WHERE predict(*) = 'spam'",
        [ValueComplaint(column="count", op="=", value=true_count, row_index=0)],
    )
    debugger = RainDebugger(db, "spamclf", X_train, y_train_corrupted, [case],
                            method="holistic")
    report = debugger.run(max_removals=50, k_per_iteration=10)
    print(report.removal_order)
"""

from .complaints import (
    ComplaintCase,
    PredictionComplaint,
    TupleComplaint,
    ValueComplaint,
)
from .core import (
    DebugReport,
    RainDebugger,
    auccr,
    auccr_normalized,
    recall_at_k,
    recall_curve,
)
from .errors import ReproError
from .ml import (
    LogisticRegression,
    NeuralClassifier,
    SoftmaxRegression,
    make_cnn,
    make_mlp,
)
from .relational import Database, Executor, Relation, plan_sql

__version__ = "1.0.0"

__all__ = [
    "ComplaintCase", "PredictionComplaint", "TupleComplaint", "ValueComplaint",
    "DebugReport", "RainDebugger",
    "auccr", "auccr_normalized", "recall_at_k", "recall_curve",
    "ReproError",
    "LogisticRegression", "NeuralClassifier", "SoftmaxRegression",
    "make_cnn", "make_mlp",
    "Database", "Executor", "Relation", "plan_sql",
    "__version__",
]
