"""Small shared utilities: RNG handling, validation, timing."""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from typing import TypeVar

import numpy as np

T = TypeVar("T")

RngLike = "int | np.random.Generator | None"


def as_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh OS entropy).  All stochastic code in the library funnels
    through this helper so experiments are reproducible end to end.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def grow_array(array: np.ndarray, min_size: int, fill=0) -> np.ndarray:
    """Amortized-doubling growth of a 1-d array, preserving the prefix.

    Returns ``array`` unchanged when it is already large enough; otherwise
    a new array of at least ``min_size`` (and at least double the old
    capacity, floor 16) filled with ``fill`` beyond the copied prefix.
    The dense caches of the runtime, site registry, node pool, and ILP
    model all share this growth policy.
    """
    if array.shape[0] >= min_size:
        return array
    size = max(min_size, 2 * array.shape[0], 16)
    grown = np.full(size, fill, dtype=array.dtype)
    grown[: array.shape[0]] = array
    return grown


def check_1d(array: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``array`` is one dimensional and return it as ndarray."""
    out = np.asarray(array)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {out.shape}")
    return out


def check_2d(array: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``array`` is two dimensional and return it as ndarray."""
    out = np.asarray(array)
    if out.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {out.shape}")
    return out


def check_same_length(a: Sequence | np.ndarray, b: Sequence | np.ndarray, names: str) -> None:
    """Raise ``ValueError`` if the two sequences differ in length."""
    if len(a) != len(b):
        raise ValueError(f"{names} must have equal length, got {len(a)} and {len(b)}")


def argsort_desc(values: np.ndarray) -> np.ndarray:
    """Indices that sort ``values`` descending with a stable tie order."""
    values = np.asarray(values)
    # numpy sorts ascending and 'stable' keeps the original order of ties;
    # negating keeps stability while flipping the direction.
    return np.argsort(-values, kind="stable")


def topk_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries, ordered from largest down."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    order = argsort_desc(values)
    return order[:k]


def batched(items: Sequence[T], batch_size: int) -> Iterable[Sequence[T]]:
    """Yield successive chunks of ``items`` of at most ``batch_size``."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    for start in range(0, len(items), batch_size):
        yield items[start:start + batch_size]


class Stopwatch:
    """Accumulate wall-clock time under named labels.

    Used by the experiment harness to reproduce the paper's
    Train/Encode/Rank per-iteration runtime breakdown (Figures 5 and 12).

    Thread-safe: the async Rain pipeline charges ``train``/``execute`` from
    its stage thread while the driver charges ``encode``/``rank`` and
    snapshots ``as_dict`` concurrently, so accumulation and snapshots take
    a lock.  A label may only be *started* by one thread at a time (labels
    partition cleanly across threads in the pipeline).
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self._started: dict[str, float] = {}
        self._lock = threading.Lock()

    def start(self, label: str) -> None:
        with self._lock:
            self._started[label] = time.perf_counter()

    def stop(self, label: str) -> float:
        with self._lock:
            if label not in self._started:
                raise KeyError(f"Stopwatch label {label!r} was never started")
            elapsed = time.perf_counter() - self._started.pop(label)
            self.totals[label] = self.totals.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1
        return elapsed

    def time(self, label: str):
        """Context manager form: ``with watch.time("train"): ...``."""
        return _StopwatchContext(self, label)

    def mean(self, label: str) -> float:
        """Mean elapsed seconds per ``start``/``stop`` pair for ``label``."""
        if self.counts.get(label, 0) == 0:
            return 0.0
        return self.totals[label] / self.counts[label]

    def as_dict(self) -> dict[str, float]:
        with self._lock:
            return dict(self.totals)


class _StopwatchContext:
    def __init__(self, watch: Stopwatch, label: str) -> None:
        self._watch = watch
        self._label = label

    def __enter__(self) -> "Stopwatch":
        self._watch.start(self._label)
        return self._watch

    def __exit__(self, exc_type, exc, tb) -> None:
        self._watch.stop(self._label)
