"""Sharded multi-query serving: deterministic parallel case execution.

The train-rank-fix loop serves every complaint case through three
per-iteration stages — query re-execution, provenance/objective
encoding, and the influence solves — and all three are embarrassingly
parallel across cases (the per-case rows of Holistic's
``per_query_solves`` block are independent columns of one CG solve).
This module supplies the worker pool and the shard bookkeeping the
driver and rankers use to exploit that, under one hard rule:

**worker count must never change the answer.**  A sharded run with
``n_workers=4`` must produce removal orders bit-identical to the serial
loop (``n_workers=0``), which in turn is pinned to the golden reference
path.  Three design decisions make that hold by construction:

- *Plan-fingerprint dedup, not speculative reuse*: each distinct plan is
  executed once per iteration (:class:`~repro.relational.executor.ExecutionCache`)
  and the result shared across its cases.  A compiled debug result is a
  pure function of (plan, data, model parameters), so sharing it is
  invisible to every consumer.
- *Worker-invariant shard partitions*: anything that is solved per shard
  (the fixed-size slices of Holistic's block-CG rows) is partitioned by a
  deterministic function of the case count only — never of ``n_workers``.
  Workers just pick up shards; the math per shard is identical at any
  worker count.  This is forced by floating point: splitting a GEMM by
  columns changes reduction shapes and therefore output bits, so a
  partition derived from ``n_workers`` would make removal orders depend
  on the worker count through ulp-level score differences.
- *Driver-side randomness*: no worker ever consumes the run RNG.
  Stochastic steps (TwoStep's optimum pick) stay on the driver in case
  order; data-side sampling shards its own seeds via
  ``np.random.SeedSequence.spawn`` (:func:`spawn_generators`).

Workers are threads, not processes: the heavy kernels (query execution,
relaxation sweeps, CG) are numpy batch operations that release the GIL,
results are shared by reference, and the merge is an ordered list — no
pickling, no nondeterministic reduce.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..analysis import knobs
from ..complaints.complaint import ComplaintCase
from ..errors import DebuggingError
from ..relational.algebra import Plan
from ..relational.executor import ExecutionCache, Executor, QueryResult

# Back-compat aliases; the registry in repro.analysis.knobs is canonical.
WORKERS_ENV_VAR = knobs.N_WORKERS.env_var
ASYNC_ENV_VAR = knobs.ASYNC_PIPELINE.env_var


def resolve_workers(n_workers: int | None) -> int:
    """Normalize the ``n_workers`` knob.

    ``None`` defers to the ``REPRO_N_WORKERS`` environment variable
    (default ``0``, read through the :mod:`repro.analysis.knobs`
    registry); ``0`` means the serial loop, untouched; ``>= 1`` enables
    the sharded serving path (``1`` exercises it without real
    concurrency — useful for pinning shard/serial equivalence).
    """
    if n_workers is None:
        raw = knobs.read("n_workers")
        try:
            n_workers = int(raw)
        except ValueError:
            raise DebuggingError(
                f"{WORKERS_ENV_VAR}={raw!r} is not an integer"
            ) from None
    n_workers = int(n_workers)
    if n_workers < 0:
        raise DebuggingError(f"n_workers must be >= 0, got {n_workers}")
    return n_workers


def resolve_async(async_pipeline: bool | None) -> bool:
    """Normalize the ``async_pipeline`` knob.

    ``None`` defers to the ``REPRO_ASYNC`` environment variable (``"1"``
    enables the pipelined loop, ``"0"`` — the default — keeps the serial
    loop; read through the :mod:`repro.analysis.knobs` registry); an
    explicit boolean wins over the environment.
    """
    if async_pipeline is None:
        raw = knobs.read("async_pipeline")
        if raw not in knobs.ASYNC_PIPELINE.choices:
            raise DebuggingError(
                f"{ASYNC_ENV_VAR}={raw!r} must be '0' or '1'"
            )
        return raw == "1"
    return bool(async_pipeline)


class PipelineState:
    """Cross-iteration plumbing for the async train-rank-fix pipeline.

    One dedicated stage thread runs the train and execute stages in strict
    FIFO order — ``train(k) → execute(k) → train(k+1) → …`` — while the
    driver thread ranks, selects, and drains iteration ``k``'s deferred
    diagnostics.  FIFO on a single thread is the determinism backbone: it
    guarantees ``execute(k)`` reads the iteration-``k`` parameters before
    ``train(k+1)`` mutates them, without any locking on the model.

    The state also carries the params-keyed caches handed across
    iterations (the driver's per-sample gradient cache and CG warm-start
    state) so the pipelined loop shares exactly the accelerators the
    serial loop uses — warm starts change wall-clock, never values.

    Stage exceptions surface on the driver at the matching ``join_*`` call
    (``Future.result`` re-raises); ``shutdown`` drains the stage thread and
    is safe to call from a ``finally`` block after a failure.
    """

    def __init__(self, grad_cache=None, warm_start=None) -> None:
        self._stage_thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="rain-pipeline"
        )
        self.grad_cache = grad_cache
        self.warm_start = warm_start
        self.train_future: Future | None = None
        self.execute_future: Future | None = None

    def submit_train(self, fn: Callable, *args) -> Future:
        self.train_future = self._stage_thread.submit(fn, *args)
        return self.train_future

    def submit_execute(self, fn: Callable, *args) -> Future:
        self.execute_future = self._stage_thread.submit(fn, *args)
        return self.execute_future

    def join_train(self):
        """Block until the in-flight train stage finishes (re-raising)."""
        future, self.train_future = self.train_future, None
        return None if future is None else future.result()

    def join_execute(self):
        """Block until the in-flight execute stage finishes (re-raising)."""
        future, self.execute_future = self.execute_future, None
        return None if future is None else future.result()

    def shutdown(self) -> None:
        self._stage_thread.shutdown(wait=True)

    def __enter__(self) -> "PipelineState":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


def spawn_generators(seed: int, n_shards: int) -> list[np.random.Generator]:
    """Independent per-shard generators via ``SeedSequence.spawn``.

    Every shard gets its own child stream derived from one root seed, so
    a shard's draws depend only on (seed, shard index) — never on which
    worker runs it, in what order, or how many workers exist.
    """
    if n_shards <= 0:
        raise DebuggingError(f"n_shards must be positive, got {n_shards}")
    children = np.random.SeedSequence(seed).spawn(n_shards)
    return [np.random.default_rng(child) for child in children]


def fixed_shards(n_items: int, shard_size: int) -> list[np.ndarray]:
    """Contiguous index shards of at most ``shard_size`` items.

    The partition depends only on ``n_items`` and ``shard_size`` — the
    worker-invariance rule above — so per-shard solves give the same bits
    at every worker count.
    """
    if shard_size <= 0:
        raise DebuggingError(f"shard_size must be positive, got {shard_size}")
    return [
        np.arange(start, min(start + shard_size, n_items), dtype=np.int64)
        for start in range(0, n_items, shard_size)
    ]


def run_sharded(
    fn: Callable, items: Sequence, n_workers: int, *args
) -> list:
    """Map ``fn`` over ``items`` on the worker pool; ordered merge.

    Results come back indexed by item position regardless of completion
    order.  ``n_workers <= 1`` runs the plain serial loop (same calls,
    same order), so the pool is pure transport: it can change wall-clock,
    never values.
    """
    if n_workers <= 1 or len(items) <= 1:
        return [fn(item, *args) for item in items]
    with ThreadPoolExecutor(max_workers=min(n_workers, len(items))) as pool:
        futures = [pool.submit(fn, item, *args) for item in items]
        return [future.result() for future in futures]


@dataclass
class ExecuteStats:
    """Per-iteration serving diagnostics for the execute stage."""

    n_cases: int
    n_distinct_plans: int
    cache_hits: int
    cache_misses: int

    def as_dict(self) -> dict[str, int]:
        return {
            "n_cases": self.n_cases,
            "n_distinct_plans": self.n_distinct_plans,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


def execute_cases(
    executor: Executor,
    cases: Sequence[ComplaintCase],
    plans: Sequence[Plan],
    provenance: str,
    n_workers: int,
) -> tuple[list[tuple[ComplaintCase, QueryResult]], ExecuteStats]:
    """Execute every case's query for one iteration, sharded and deduped.

    Cases are grouped by plan fingerprint; each distinct plan is executed
    once (in parallel across the pool) and its debug result — with the
    compiled provenance pool frozen on the executing thread — is shared
    by all cases over that plan.  The returned list is in the original
    case order, exactly like the serial loop's.

    ``provenance="tree"`` is the golden path: nothing is deduped or
    shared, each case re-executes serially.
    """
    cache = ExecutionCache(executor, provenance=provenance)
    if not cache.cacheable:
        case_results = [
            (case, cache.fetch(plan)) for case, plan in zip(cases, plans)
        ]
        stats = ExecuteStats(len(cases), len(cases), 0, len(cases))
        return case_results, stats

    fingerprints = [cache.fingerprint(plan) for plan in plans]
    distinct: dict[str, Plan] = {}
    for fingerprint, plan in zip(fingerprints, plans):
        distinct.setdefault(fingerprint, plan)

    order = list(distinct.items())
    run_sharded(
        lambda entry: cache.fetch(entry[1], fingerprint=entry[0]),
        order,
        n_workers,
    )
    case_results = [
        (case, cache.fetch(plan, fingerprint=fingerprint))
        for case, plan, fingerprint in zip(cases, plans, fingerprints)
    ]
    # The per-case fetches above are all hits; only the distinct
    # executions count as misses.
    stats = ExecuteStats(
        n_cases=len(cases),
        n_distinct_plans=len(distinct),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )
    return case_results, stats
