"""Training-record rankers: Loss, InfLoss, TwoStep, Holistic.

Every approach in Section 6.1.1 is a :class:`Ranker`: given the current
iteration context (fitted model, active training records, executed queries,
complaints) it produces one score per active training record; the
train-rank-fix driver removes the top-k by score, descending.

Timing convention (for the paper's Figure 5/12 runtime breakdown): rankers
charge work to the context stopwatch under ``encode`` (building the
influence objective — ILP solving for TwoStep, relaxation sweeps for
Holistic) and ``rank`` (the CG solve + per-record gradient dot products).

Batched-solve conventions: InfLoss issues ONE block CG solve for all active
records (``solver="scalar"`` keeps the paper's per-record loop as the slow
reference); Holistic with ``per_query_solves=True`` solves every complaint
case's objective in one block solve and sums the per-case score rows.  When
the driver supplies a :class:`WarmStartState` (RainDebugger does by
default), rankers seed CG with the previous iteration's solutions and write
the new ones back — θ* barely moves after a top-k deletion, so warm solves
typically need a fraction of the cold iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..complaints.complaint import ComplaintCase, PredictionComplaint
from ..errors import DebuggingError, ILPTimeoutError, InfeasibleError
from ..ilp.encode import TiresiasEncoder
from ..ilp.solver import enumerate_optima, pick_solution
from ..influence.functions import InfluenceAnalyzer, q_grad_for_target_predictions
from ..relational.executor import QueryResult
from ..relaxation.objective import RelaxedComplaintObjective
from ..utils import Stopwatch


@dataclass
class WarmStartState:
    """CG solutions carried across train-rank-fix iterations.

    ``u`` is the previous solution of the single-objective solve
    (Holistic/TwoStep); ``block`` is the previous self-influence block
    solution with one column per active record, kept aligned with the active
    set by the driver (it deletes the removed records' columns each
    iteration); ``q_block`` is the previous per-case block solution of
    Holistic's ``per_query_solves`` path, one row per complaint case (cases
    are fixed for a run, so no realignment is needed).  Rankers read these
    as CG starting points and write the new solutions back in place.
    """

    u: np.ndarray | None = None
    block: np.ndarray | None = None
    q_block: np.ndarray | None = None

    def drop_columns(self, positions: np.ndarray) -> None:
        """Forget the block columns of just-removed records."""
        if self.block is not None:
            self.block = np.delete(self.block, positions, axis=1)


@dataclass
class IterationContext:
    """Everything a ranker may need for one train-rank-fix iteration."""

    model: object
    X_active: np.ndarray
    y_active: np.ndarray
    analyzer: InfluenceAnalyzer
    case_results: list[tuple[ComplaintCase, QueryResult]]
    rng: np.random.Generator
    watch: Stopwatch
    diagnostics: dict = field(default_factory=dict)
    warm_start: WarmStartState | None = None


class Ranker:
    """Interface: one score per active training record, higher = remove first."""

    name = "ranker"

    def scores(self, ctx: IterationContext) -> np.ndarray:
        raise NotImplementedError


class LossRanker(Ranker):
    """Rank by training loss, highest first (the Loss baseline)."""

    name = "loss"

    def scores(self, ctx: IterationContext) -> np.ndarray:
        with ctx.watch.time("rank"):
            return ctx.analyzer.training_losses()


class InfLossRanker(Ranker):
    """Self-influence ranking [Koh & Liang 2017] (the InfLoss baseline).

    Scores are the negated self-influence ``∇ℓᵀH⁻¹∇ℓ``: records whose own
    loss would grow fastest if removed come first.  The paper's slowest
    method by far when run record-by-record (``solver="scalar"``, one CG
    solve per record); the default ``solver="block"`` issues ONE block CG
    solve for all records, warm-started from the previous iteration's block
    when the driver carries one.
    """

    name = "infloss"

    def __init__(self, max_records: int | None = None, solver: str = "block") -> None:
        if solver not in ("block", "scalar"):
            raise DebuggingError("solver must be 'block' or 'scalar'")
        self.max_records = max_records
        self.solver = solver

    def scores(self, ctx: IterationContext) -> np.ndarray:
        with ctx.watch.time("rank"):
            if self.solver == "scalar":
                scores = -ctx.analyzer.self_influence_scalar(
                    max_records=self.max_records
                )
                ctx.diagnostics["cg_solves"] = dict(ctx.analyzer.solve_counts)
                return scores
            # Block warm starts only make sense when the block covers the
            # whole active set (columns stay aligned under deletions).
            carry = ctx.warm_start if self.max_records is None else None
            X0 = carry.block if carry is not None else None
            scores = -ctx.analyzer.self_influence(
                max_records=self.max_records, X0=X0
            )
            block_result = ctx.analyzer.last_block_cg_result
            if block_result is not None:
                if carry is not None:
                    carry.block = block_result.X
                ctx.diagnostics["block_cg"] = block_result.summary()
            ctx.diagnostics["cg_solves"] = dict(ctx.analyzer.solve_counts)
            return scores


class HolisticRanker(Ranker):
    """The Holistic approach (Section 5.3): influence on relaxed complaints.

    With ``per_query_solves=True`` and several complaint cases, every case's
    relaxed objective becomes one column of a single block CG solve; the
    per-case score rows are summed (Eq. 4 is linear in ``∇q``, so this
    matches the summed-gradient solve) and recorded in the iteration
    diagnostics for per-query attribution.  The default sums the gradients
    first and issues one scalar solve — the paper's formulation.
    """

    name = "holistic"

    def __init__(self, per_query_solves: bool = False) -> None:
        self.per_query_solves = bool(per_query_solves)

    def scores(self, ctx: IterationContext) -> np.ndarray:
        with ctx.watch.time("encode"):
            q_grads = []
            q_total = 0.0
            for case, result in ctx.case_results:
                objective = RelaxedComplaintObjective(result, case.complaints)
                q_value, q_grad = objective.q_and_grad_theta()
                q_grads.append(q_grad)
                q_total += q_value
            ctx.diagnostics["q_value"] = q_total
        with ctx.watch.time("rank"):
            warm = ctx.warm_start
            if self.per_query_solves and len(q_grads) > 1:
                X0 = None
                if warm is not None and warm.q_block is not None:
                    if warm.q_block.shape == (len(q_grads), ctx.model.n_params):
                        X0 = warm.q_block
                per_case = ctx.analyzer.scores_from_q_grads(np.stack(q_grads), X0=X0)
                ctx.diagnostics["per_query_score_norms"] = [
                    float(np.linalg.norm(row)) for row in per_case
                ]
                if warm is not None:
                    block = ctx.analyzer.last_block_cg_result
                    if block is not None:
                        warm.q_block = block.X.T
                return per_case.sum(axis=0)
            q_grad = q_grads[0] if len(q_grads) == 1 else np.sum(q_grads, axis=0)
            scores = ctx.analyzer.scores_from_q_grad(
                q_grad, x0=None if warm is None else warm.u
            )
            _record_scalar_cg(ctx, warm)
            return scores


def _record_scalar_cg(ctx: IterationContext, warm: WarmStartState | None) -> None:
    """Store the scalar solve's solution/diagnostics after scores_from_q_grad."""
    result = ctx.analyzer.last_cg_result
    if result is None:
        return
    if warm is not None:
        warm.u = result.x
    ctx.diagnostics["cg_iterations"] = result.iterations
    ctx.diagnostics["cg_converged"] = result.converged


class TwoStepRanker(Ranker):
    """The TwoStep approach (Section 5.2): ILP fix, then influence.

    ``ambiguity_cap`` bounds how many optimal ILP solutions are enumerated;
    the enumerated count is reported as the iteration's ambiguity and the
    "opaque solver pick" is a seeded uniform draw among them (Theorem A.1's
    model).  Set ``ambiguity_cap=1`` to take the solver's first optimum.
    """

    name = "twostep"

    def __init__(
        self,
        ambiguity_cap: int = 20,
        node_limit: int = 20000,
        time_limit: float | None = 60.0,
        on_failure: str = "zeros",
        lp_backend: str | None = None,
    ) -> None:
        if on_failure not in ("zeros", "raise"):
            raise DebuggingError("on_failure must be 'zeros' or 'raise'")
        self.ambiguity_cap = ambiguity_cap
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.on_failure = on_failure
        self.lp_backend = lp_backend

    def scores(self, ctx: IterationContext) -> np.ndarray:
        with ctx.watch.time("encode"):
            try:
                marked = self._marked_mispredictions(ctx)
            except (ILPTimeoutError, InfeasibleError) as exc:
                ctx.diagnostics["ilp_failure"] = str(exc)
                if self.on_failure == "raise":
                    raise
                return np.zeros(ctx.X_active.shape[0])
            ctx.diagnostics["n_marked"] = len(marked)
            if not marked:
                # The complaints are already satisfiable without changing any
                # prediction; nothing to trace back.
                return np.zeros(ctx.X_active.shape[0])
            q_grad = self._q_grad(ctx, marked)
        with ctx.watch.time("rank"):
            warm = ctx.warm_start
            scores = ctx.analyzer.scores_from_q_grad(
                q_grad, x0=None if warm is None else warm.u
            )
            _record_scalar_cg(ctx, warm)
            return scores

    # -- SQL step -------------------------------------------------------------

    def _marked_mispredictions(
        self, ctx: IterationContext
    ) -> list[tuple[QueryResult, int, object]]:
        """(result, site_id, target_label) across all complaint cases."""
        marked: list[tuple[QueryResult, int, object]] = []
        total_ambiguity = 1
        for case, result in ctx.case_results:
            direct = [
                c for c in case.complaints if isinstance(c, PredictionComplaint)
            ]
            indirect = [
                c for c in case.complaints if not isinstance(c, PredictionComplaint)
            ]
            # Direct point complaints are unambiguous: mark them outright.
            for complaint in direct:
                if not complaint.is_satisfied(result):
                    marked.append(
                        (result, complaint.site_id(result), complaint.label)
                    )
            if not indirect:
                continue
            encoder = TiresiasEncoder(result)
            encoder.add_complaints(case.complaints)  # point complaints pin sites
            solutions = enumerate_optima(
                encoder.program,
                max_solutions=self.ambiguity_cap,
                node_limit=self.node_limit,
                time_limit=self.time_limit,
                lp_backend=self.lp_backend,
            )
            total_ambiguity *= len(solutions)
            chosen = pick_solution(solutions, ctx.rng)
            direct_sites = {
                complaint.site_id(result) for complaint in direct
            }
            for site_id, label in encoder.marked_mispredictions(chosen):
                if site_id not in direct_sites:
                    marked.append((result, site_id, label))
        ctx.diagnostics["ambiguity"] = total_ambiguity
        return marked

    # -- influence step ----------------------------------------------------------

    def _q_grad(
        self, ctx: IterationContext, marked: list[tuple[QueryResult, int, object]]
    ) -> np.ndarray:
        """q(θ) = -Σ_marked p_target(x; θ), encoding only the marked sites."""
        by_result: dict[int, tuple[QueryResult, list[int], list[object]]] = {}
        for result, site_id, label in marked:
            entry = by_result.setdefault(id(result), (result, [], []))
            entry[1].append(site_id)
            entry[2].append(label)
        q_grad = np.zeros(ctx.model.n_params)
        for result, site_ids, labels in by_result.values():
            X_sites = result.runtime.features_for_sites(site_ids)
            q_grad += q_grad_for_target_predictions(
                ctx.model, X_sites, np.asarray(labels, dtype=object)
            )
        return q_grad


def _infloss_scalar(**kwargs) -> InfLossRanker:
    return InfLossRanker(solver="scalar", **kwargs)


def make_ranker(method: str, **kwargs) -> Ranker:
    """Factory used by the driver: 'loss', 'infloss', 'twostep', 'holistic'
    (plus 'infloss-scalar', the per-record reference solver)."""
    registry = {
        "loss": LossRanker,
        "infloss": InfLossRanker,
        "infloss-scalar": _infloss_scalar,
        "twostep": TwoStepRanker,
        "holistic": HolisticRanker,
    }
    try:
        cls = registry[method]
    except KeyError:
        raise DebuggingError(
            f"unknown method {method!r}; choose from {sorted(registry)}"
        ) from None
    return cls(**kwargs)
