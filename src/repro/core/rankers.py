"""Training-record rankers: Loss, InfLoss, TwoStep, Holistic.

Every approach in Section 6.1.1 is a :class:`Ranker`: given the current
iteration context (fitted model, active training records, executed queries,
complaints) it produces one score per active training record; the
train-rank-fix driver removes the top-k by score, descending.

Timing convention (for the paper's Figure 5/12 runtime breakdown): rankers
charge work to the context stopwatch under ``encode`` (building the
influence objective — ILP solving for TwoStep, relaxation sweeps for
Holistic) and ``rank`` (the CG solve + per-record gradient dot products).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..complaints.complaint import ComplaintCase, PredictionComplaint
from ..errors import DebuggingError, ILPTimeoutError, InfeasibleError
from ..ilp.encode import TiresiasEncoder
from ..ilp.solver import enumerate_optima, pick_solution
from ..influence.functions import InfluenceAnalyzer, q_grad_for_target_predictions
from ..relational.executor import QueryResult
from ..relaxation.objective import RelaxedComplaintObjective
from ..utils import Stopwatch


@dataclass
class IterationContext:
    """Everything a ranker may need for one train-rank-fix iteration."""

    model: object
    X_active: np.ndarray
    y_active: np.ndarray
    analyzer: InfluenceAnalyzer
    case_results: list[tuple[ComplaintCase, QueryResult]]
    rng: np.random.Generator
    watch: Stopwatch
    diagnostics: dict = field(default_factory=dict)


class Ranker:
    """Interface: one score per active training record, higher = remove first."""

    name = "ranker"

    def scores(self, ctx: IterationContext) -> np.ndarray:
        raise NotImplementedError


class LossRanker(Ranker):
    """Rank by training loss, highest first (the Loss baseline)."""

    name = "loss"

    def scores(self, ctx: IterationContext) -> np.ndarray:
        with ctx.watch.time("rank"):
            return ctx.analyzer.training_losses()


class InfLossRanker(Ranker):
    """Self-influence ranking [Koh & Liang 2017] (the InfLoss baseline).

    Scores are the negated self-influence ``∇ℓᵀH⁻¹∇ℓ``: records whose own
    loss would grow fastest if removed come first.  One CG solve per record
    — the paper's slowest method by far.
    """

    name = "infloss"

    def __init__(self, max_records: int | None = None) -> None:
        self.max_records = max_records

    def scores(self, ctx: IterationContext) -> np.ndarray:
        with ctx.watch.time("rank"):
            return -ctx.analyzer.self_influence(max_records=self.max_records)


class HolisticRanker(Ranker):
    """The Holistic approach (Section 5.3): influence on relaxed complaints."""

    name = "holistic"

    def scores(self, ctx: IterationContext) -> np.ndarray:
        with ctx.watch.time("encode"):
            q_grad = np.zeros(ctx.model.n_params)
            q_total = 0.0
            for case, result in ctx.case_results:
                objective = RelaxedComplaintObjective(result, case.complaints)
                q_grad += objective.q_grad_theta()
                q_total += objective.q_value()
            ctx.diagnostics["q_value"] = q_total
        with ctx.watch.time("rank"):
            return ctx.analyzer.scores_from_q_grad(q_grad)


class TwoStepRanker(Ranker):
    """The TwoStep approach (Section 5.2): ILP fix, then influence.

    ``ambiguity_cap`` bounds how many optimal ILP solutions are enumerated;
    the enumerated count is reported as the iteration's ambiguity and the
    "opaque solver pick" is a seeded uniform draw among them (Theorem A.1's
    model).  Set ``ambiguity_cap=1`` to take the solver's first optimum.
    """

    name = "twostep"

    def __init__(
        self,
        ambiguity_cap: int = 20,
        node_limit: int = 20000,
        time_limit: float | None = 60.0,
        on_failure: str = "zeros",
    ) -> None:
        if on_failure not in ("zeros", "raise"):
            raise DebuggingError("on_failure must be 'zeros' or 'raise'")
        self.ambiguity_cap = ambiguity_cap
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.on_failure = on_failure

    def scores(self, ctx: IterationContext) -> np.ndarray:
        with ctx.watch.time("encode"):
            try:
                marked = self._marked_mispredictions(ctx)
            except (ILPTimeoutError, InfeasibleError) as exc:
                ctx.diagnostics["ilp_failure"] = str(exc)
                if self.on_failure == "raise":
                    raise
                return np.zeros(ctx.X_active.shape[0])
            ctx.diagnostics["n_marked"] = len(marked)
            if not marked:
                # The complaints are already satisfiable without changing any
                # prediction; nothing to trace back.
                return np.zeros(ctx.X_active.shape[0])
            q_grad = self._q_grad(ctx, marked)
        with ctx.watch.time("rank"):
            return ctx.analyzer.scores_from_q_grad(q_grad)

    # -- SQL step -------------------------------------------------------------

    def _marked_mispredictions(
        self, ctx: IterationContext
    ) -> list[tuple[QueryResult, int, object]]:
        """(result, site_id, target_label) across all complaint cases."""
        marked: list[tuple[QueryResult, int, object]] = []
        total_ambiguity = 1
        for case, result in ctx.case_results:
            direct = [
                c for c in case.complaints if isinstance(c, PredictionComplaint)
            ]
            indirect = [
                c for c in case.complaints if not isinstance(c, PredictionComplaint)
            ]
            # Direct point complaints are unambiguous: mark them outright.
            for complaint in direct:
                if not complaint.is_satisfied(result):
                    marked.append(
                        (result, complaint.site_id(result), complaint.label)
                    )
            if not indirect:
                continue
            encoder = TiresiasEncoder(result)
            encoder.add_complaints(case.complaints)  # point complaints pin sites
            solutions = enumerate_optima(
                encoder.program,
                max_solutions=self.ambiguity_cap,
                node_limit=self.node_limit,
                time_limit=self.time_limit,
            )
            total_ambiguity *= len(solutions)
            chosen = pick_solution(solutions, ctx.rng)
            direct_sites = {
                complaint.site_id(result) for complaint in direct
            }
            for site_id, label in encoder.marked_mispredictions(chosen):
                if site_id not in direct_sites:
                    marked.append((result, site_id, label))
        ctx.diagnostics["ambiguity"] = total_ambiguity
        return marked

    # -- influence step ----------------------------------------------------------

    def _q_grad(
        self, ctx: IterationContext, marked: list[tuple[QueryResult, int, object]]
    ) -> np.ndarray:
        """q(θ) = -Σ_marked p_target(x; θ), encoding only the marked sites."""
        by_result: dict[int, tuple[QueryResult, list[int], list[object]]] = {}
        for result, site_id, label in marked:
            entry = by_result.setdefault(id(result), (result, [], []))
            entry[1].append(site_id)
            entry[2].append(label)
        q_grad = np.zeros(ctx.model.n_params)
        for result, site_ids, labels in by_result.values():
            X_sites = result.runtime.features_for_sites(site_ids)
            q_grad += q_grad_for_target_predictions(
                ctx.model, X_sites, np.asarray(labels, dtype=object)
            )
        return q_grad


def make_ranker(method: str, **kwargs) -> Ranker:
    """Factory used by the driver: 'loss', 'infloss', 'twostep', 'holistic'."""
    registry = {
        "loss": LossRanker,
        "infloss": InfLossRanker,
        "twostep": TwoStepRanker,
        "holistic": HolisticRanker,
    }
    try:
        cls = registry[method]
    except KeyError:
        raise DebuggingError(
            f"unknown method {method!r}; choose from {sorted(registry)}"
        ) from None
    return cls(**kwargs)
