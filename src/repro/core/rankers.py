"""Training-record rankers: Loss, InfLoss, TwoStep, Holistic.

Every approach in Section 6.1.1 is a :class:`Ranker`: given the current
iteration context (fitted model, active training records, executed queries,
complaints) it produces one score per active training record; the
train-rank-fix driver removes the top-k by score, descending.

Timing convention (for the paper's Figure 5/12 runtime breakdown): rankers
charge work to the context stopwatch under ``encode`` (building the
influence objective — ILP solving for TwoStep, relaxation sweeps for
Holistic) and ``rank`` (the CG solve + per-record gradient dot products).

Batched-solve conventions: InfLoss issues ONE block CG solve for all active
records (``solver="scalar"`` keeps the paper's per-record loop as the slow
reference); Holistic with ``per_query_solves=True`` solves every complaint
case's objective in one block solve and sums the per-case score rows.  When
the driver supplies a :class:`WarmStartState` (RainDebugger does by
default), rankers seed CG with the previous iteration's solutions and write
the new ones back — θ* barely moves after a top-k deletion, so warm solves
typically need a fraction of the cold iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..complaints.complaint import ComplaintCase, PredictionComplaint
from ..errors import DebuggingError, ILPTimeoutError, InfeasibleError
from ..ilp.encode import make_encoder
from ..ilp.solver import enumerate_optima, pick_solution
from ..influence.functions import InfluenceAnalyzer, q_grad_for_target_predictions
from ..relational.executor import QueryResult
from ..relaxation.objective import (
    RelaxedComplaintObjective,
    batched_case_objectives,
    batched_q_and_grads,
)
from ..utils import Stopwatch
from .sharding import fixed_shards, run_sharded


@dataclass
class WarmStartState:
    """CG solutions carried across train-rank-fix iterations.

    ``u`` is the previous solution of the single-objective solve
    (Holistic/TwoStep); ``block`` is the previous self-influence block
    solution with one column per active record, kept aligned with the active
    set by the driver (it deletes the removed records' columns each
    iteration); ``q_block`` is the previous per-case block solution of
    Holistic's ``per_query_solves`` path, one row per complaint case, kept
    aligned with the case list via :meth:`drop_cases` when a case is pruned
    mid-run.  Rankers read these as CG starting points and write the new
    solutions back in place; the sharded serving path row-slices ``q_block``
    per solve shard and writes the merged rows back in case order.

    Warm starts are accelerators, not state the results depend on: every
    consumer shape-checks before seeding, and any stale array degrades to a
    cold solve rather than a wrong one.
    """

    u: np.ndarray | None = None
    block: np.ndarray | None = None
    q_block: np.ndarray | None = None

    def drop_columns(self, positions: np.ndarray) -> None:
        """Forget the block columns of just-removed records.

        An empty ``positions`` array is a no-op (``np.delete`` would other-
        wise still copy, and float positions from an empty ``argsort`` slice
        used to raise); indices are normalized to int64 first.
        """
        if self.block is None:
            return
        positions = np.asarray(positions)
        if positions.size == 0:
            return
        self.block = np.delete(self.block, positions.astype(np.int64), axis=1)

    def drop_cases(self, case_positions: np.ndarray) -> None:
        """Forget the ``q_block`` rows of pruned complaint cases.

        Keeps the per-case warm block aligned when the driver removes a
        case mid-run (e.g. one that became infeasible); remaining rows keep
        warm-starting their cases.
        """
        if self.q_block is None:
            return
        case_positions = np.asarray(case_positions)
        if case_positions.size == 0:
            return
        self.q_block = np.delete(
            self.q_block, case_positions.astype(np.int64), axis=0
        )

    def q_block_for(self, n_cases: int, n_params: int) -> np.ndarray | None:
        """The per-case warm block, or ``None`` unless shapes line up."""
        if self.q_block is not None and self.q_block.shape == (n_cases, n_params):
            return self.q_block
        return None


@dataclass
class IterationContext:
    """Everything a ranker may need for one train-rank-fix iteration.

    ``n_workers`` is the serving layer's worker-pool size: ``0`` keeps
    every ranker on its serial code path; ``>= 1`` lets shard-aware
    rankers fan per-case work out to threads.  Worker count never changes
    scores — shard partitions are worker-invariant and all RNG consumption
    stays on the driver thread in case order.
    """

    model: object
    X_active: np.ndarray
    y_active: np.ndarray
    analyzer: InfluenceAnalyzer
    case_results: list[tuple[ComplaintCase, QueryResult]]
    rng: np.random.Generator
    watch: Stopwatch
    diagnostics: dict = field(default_factory=dict)
    warm_start: WarmStartState | None = None
    n_workers: int = 0


class Ranker:
    """Interface: one score per active training record, higher = remove first."""

    name = "ranker"
    #: Whether :meth:`scores` reads ``ctx.case_results``.  Complaint-free
    #: baselines (Loss, InfLoss) rank from the training set alone; the
    #: async pipeline uses this to run their rank stage on the driver
    #: while the execute stage is still in flight on the stage thread.
    uses_case_results = True

    def scores(self, ctx: IterationContext) -> np.ndarray:
        raise NotImplementedError


class LossRanker(Ranker):
    """Rank by training loss, highest first (the Loss baseline)."""

    name = "loss"
    uses_case_results = False

    def scores(self, ctx: IterationContext) -> np.ndarray:
        with ctx.watch.time("rank"):
            return ctx.analyzer.training_losses()


class InfLossRanker(Ranker):
    """Self-influence ranking [Koh & Liang 2017] (the InfLoss baseline).

    Scores are the negated self-influence ``∇ℓᵀH⁻¹∇ℓ``: records whose own
    loss would grow fastest if removed come first.  The paper's slowest
    method by far when run record-by-record (``solver="scalar"``, one CG
    solve per record); the default ``solver="block"`` issues ONE block CG
    solve for all records, warm-started from the previous iteration's block
    when the driver carries one.
    """

    name = "infloss"
    uses_case_results = False

    def __init__(self, max_records: int | None = None, solver: str = "block") -> None:
        if solver not in ("block", "scalar"):
            raise DebuggingError("solver must be 'block' or 'scalar'")
        self.max_records = max_records
        self.solver = solver

    def scores(self, ctx: IterationContext) -> np.ndarray:
        with ctx.watch.time("rank"):
            if self.solver == "scalar":
                scores = -ctx.analyzer.self_influence_scalar(
                    max_records=self.max_records
                )
                ctx.diagnostics["cg_solves"] = dict(ctx.analyzer.solve_counts)
                return scores
            # Block warm starts only make sense when the block covers the
            # whole active set (columns stay aligned under deletions).
            carry = ctx.warm_start if self.max_records is None else None
            X0 = carry.block if carry is not None else None
            scores = -ctx.analyzer.self_influence(
                max_records=self.max_records, X0=X0
            )
            block_result = ctx.analyzer.last_block_cg_result
            if block_result is not None:
                if carry is not None:
                    carry.block = block_result.X
                ctx.diagnostics["block_cg"] = block_result.summary()
            ctx.diagnostics["cg_solves"] = dict(ctx.analyzer.solve_counts)
            return scores


class HolisticRanker(Ranker):
    """The Holistic approach (Section 5.3): influence on relaxed complaints.

    With ``per_query_solves=True`` and several complaint cases, every case's
    relaxed objective becomes one column of a single block CG solve; the
    per-case score rows are summed (Eq. 4 is linear in ``∇q``, so this
    matches the summed-gradient solve) and recorded in the iteration
    diagnostics for per-query attribution.  The default sums the gradients
    first and issues one scalar solve — the paper's formulation.

    Serving-layer sharding: when the context carries ``n_workers >= 1``
    the per-case relaxation sweeps fan out to the worker pool (cases
    sharing a query result also share one probability-matrix evaluation),
    and ``solve_shard_size=k`` splits the per-case block-CG rows into
    fixed-size shards solved per worker, each warm-started from its slice
    of ``q_block``.  The shard partition depends only on the case count —
    never on ``n_workers`` — because splitting a GEMM by columns changes
    output bits; with a worker-invariant partition every worker count
    produces identical scores (and the serial ``n_workers=0`` loop runs
    the very same shard solves in order).
    """

    name = "holistic"

    def __init__(
        self,
        per_query_solves: bool = False,
        solve_shard_size: int | None = None,
    ) -> None:
        if solve_shard_size is not None and solve_shard_size <= 0:
            raise DebuggingError(
                f"solve_shard_size must be positive, got {solve_shard_size}"
            )
        self.per_query_solves = bool(per_query_solves)
        self.solve_shard_size = solve_shard_size

    def scores(self, ctx: IterationContext) -> np.ndarray:
        with ctx.watch.time("encode"):
            if ctx.n_workers >= 1:
                objectives = batched_case_objectives(ctx.case_results)
                q_values, q_grads = batched_q_and_grads(
                    objectives, n_workers=ctx.n_workers
                )
                q_total = 0.0
                for q_value in q_values:
                    q_total += q_value
            else:
                q_grads = []
                q_total = 0.0
                for case, result in ctx.case_results:
                    objective = RelaxedComplaintObjective(result, case.complaints)
                    q_value, q_grad = objective.q_and_grad_theta()
                    q_grads.append(q_grad)
                    q_total += q_value
            ctx.diagnostics["q_value"] = q_total
        with ctx.watch.time("rank"):
            warm = ctx.warm_start
            if self.per_query_solves and len(q_grads) > 1:
                per_case = self._per_query_block(ctx, np.stack(q_grads), warm)
                ctx.diagnostics["per_query_score_norms"] = [
                    float(np.linalg.norm(row)) for row in per_case
                ]
                return per_case.sum(axis=0)
            q_grad = q_grads[0] if len(q_grads) == 1 else np.sum(q_grads, axis=0)
            scores = ctx.analyzer.scores_from_q_grad(
                q_grad, x0=None if warm is None else warm.u
            )
            _record_scalar_cg(ctx, warm)
            return scores

    def _per_query_block(
        self,
        ctx: IterationContext,
        rows: np.ndarray,
        warm: WarmStartState | None,
    ) -> np.ndarray:
        """The (n_cases, n_active) per-case score matrix, possibly sharded."""
        n_cases = rows.shape[0]
        warm_rows = (
            None if warm is None else warm.q_block_for(n_cases, ctx.model.n_params)
        )
        if self.solve_shard_size is None or n_cases <= self.solve_shard_size:
            per_case = ctx.analyzer.scores_from_q_grads(rows, X0=warm_rows)
            if warm is not None:
                block = ctx.analyzer.last_block_cg_result
                if block is not None:
                    warm.q_block = block.X.T
            return per_case

        # Fixed-size row shards (worker-invariant partition); one spawned
        # analyzer per shard so per-shard CG diagnostics don't race.  The
        # shared gradient cache is prewarmed on the driver thread first.
        shards = fixed_shards(n_cases, self.solve_shard_size)
        ctx.analyzer.per_sample_grads()

        def solve_shard(shard: np.ndarray):
            analyzer = ctx.analyzer.spawn()
            X0 = None if warm_rows is None else warm_rows[shard]
            scores = analyzer.scores_from_q_grads(rows[shard], X0=X0)
            return scores, analyzer.last_block_cg_result

        outputs = run_sharded(solve_shard, shards, ctx.n_workers)
        per_case = np.vstack([scores for scores, _ in outputs])
        blocks = [block for _, block in outputs]
        if warm is not None and all(block is not None for block in blocks):
            warm.q_block = np.vstack([block.X.T for block in blocks])
        ctx.diagnostics["solve_shards"] = len(shards)
        return per_case


def _record_scalar_cg(ctx: IterationContext, warm: WarmStartState | None) -> None:
    """Store the scalar solve's solution/diagnostics after scores_from_q_grad."""
    result = ctx.analyzer.last_cg_result
    if result is None:
        return
    if warm is not None:
        warm.u = result.x
    ctx.diagnostics["cg_iterations"] = result.iterations
    ctx.diagnostics["cg_converged"] = result.converged


class TwoStepRanker(Ranker):
    """The TwoStep approach (Section 5.2): ILP fix, then influence.

    ``ambiguity_cap`` bounds how many optimal ILP solutions are enumerated;
    the enumerated count is reported as the iteration's ambiguity and the
    "opaque solver pick" is a seeded uniform draw among them (Theorem A.1's
    model).  Set ``ambiguity_cap=1`` to take the solver's first optimum.
    """

    name = "twostep"

    def __init__(
        self,
        ambiguity_cap: int = 20,
        node_limit: int = 20000,
        time_limit: float | None = 60.0,
        on_failure: str = "zeros",
        lp_backend: str | None = None,
        ilp_encoder: str | None = None,
    ) -> None:
        if on_failure not in ("zeros", "raise"):
            raise DebuggingError("on_failure must be 'zeros' or 'raise'")
        self.ambiguity_cap = ambiguity_cap
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.on_failure = on_failure
        self.lp_backend = lp_backend
        self.ilp_encoder = ilp_encoder

    def scores(self, ctx: IterationContext) -> np.ndarray:
        with ctx.watch.time("encode"):
            try:
                marked = self._marked_mispredictions(ctx)
            except (ILPTimeoutError, InfeasibleError) as exc:
                ctx.diagnostics["ilp_failure"] = str(exc)
                if self.on_failure == "raise":
                    raise
                return np.zeros(ctx.X_active.shape[0])
            ctx.diagnostics["n_marked"] = len(marked)
            if not marked:
                # The complaints are already satisfiable without changing any
                # prediction; nothing to trace back.
                return np.zeros(ctx.X_active.shape[0])
            q_grad = self._q_grad(ctx, marked)
        with ctx.watch.time("rank"):
            warm = ctx.warm_start
            scores = ctx.analyzer.scores_from_q_grad(
                q_grad, x0=None if warm is None else warm.u
            )
            _record_scalar_cg(ctx, warm)
            return scores

    # -- SQL step -------------------------------------------------------------

    def _marked_mispredictions(
        self, ctx: IterationContext
    ) -> list[tuple[QueryResult, int, object]]:
        """(result, site_id, target_label) across all complaint cases.

        Sharding note: with ``ctx.n_workers >= 1`` the per-case ILP
        enumerations run on the worker pool — they are deterministic pure
        solves over (already frozen) shared provenance — but the "opaque
        solver pick" among each case's tied optima stays on the driver
        thread, consuming ``ctx.rng`` strictly in case order.  The picked
        solutions, and therefore the marked sites, are identical at every
        worker count.
        """
        enumerations = run_sharded(
            self._enumerate_case, list(ctx.case_results), ctx.n_workers
        )
        marked: list[tuple[QueryResult, int, object]] = []
        total_ambiguity = 1
        for (case, result), (direct_marks, direct_sites, encoder, solutions) in zip(
            ctx.case_results, enumerations
        ):
            marked.extend(direct_marks)
            if solutions is None:
                continue
            total_ambiguity *= len(solutions)
            chosen = pick_solution(solutions, ctx.rng)
            for site_id, label in encoder.marked_mispredictions(chosen):
                if site_id not in direct_sites:
                    marked.append((result, site_id, label))
        ctx.diagnostics["ambiguity"] = total_ambiguity
        return marked

    def _enumerate_case(self, case_result: tuple[ComplaintCase, QueryResult]):
        """One case's direct marks plus its enumerated ILP optima (or None)."""
        case, result = case_result
        direct = [
            c for c in case.complaints if isinstance(c, PredictionComplaint)
        ]
        indirect = [
            c for c in case.complaints if not isinstance(c, PredictionComplaint)
        ]
        # Direct point complaints are unambiguous: mark them outright.
        direct_marks = [
            (result, complaint.site_id(result), complaint.label)
            for complaint in direct
            if not complaint.is_satisfied(result)
        ]
        direct_sites = {complaint.site_id(result) for complaint in direct}
        if not indirect:
            return direct_marks, direct_sites, None, None
        encoder = make_encoder(result, self.ilp_encoder)
        encoder.add_complaints(case.complaints)  # point complaints pin sites
        solutions = enumerate_optima(
            encoder.program,
            max_solutions=self.ambiguity_cap,
            node_limit=self.node_limit,
            time_limit=self.time_limit,
            lp_backend=self.lp_backend,
        )
        return direct_marks, direct_sites, encoder, solutions

    # -- influence step ----------------------------------------------------------

    def _q_grad(
        self, ctx: IterationContext, marked: list[tuple[QueryResult, int, object]]
    ) -> np.ndarray:
        """q(θ) = -Σ_marked p_target(x; θ), encoding only the marked sites."""
        by_result: dict[int, tuple[QueryResult, list[int], list[object]]] = {}
        for result, site_id, label in marked:
            entry = by_result.setdefault(id(result), (result, [], []))
            entry[1].append(site_id)
            entry[2].append(label)
        q_grad = np.zeros(ctx.model.n_params)
        for result, site_ids, labels in by_result.values():
            X_sites = result.runtime.features_for_sites(site_ids)
            q_grad += q_grad_for_target_predictions(
                ctx.model, X_sites, np.asarray(labels, dtype=object)
            )
        return q_grad


def _infloss_scalar(**kwargs) -> InfLossRanker:
    return InfLossRanker(solver="scalar", **kwargs)


def make_ranker(method: str, **kwargs) -> Ranker:
    """Factory used by the driver: 'loss', 'infloss', 'twostep', 'holistic'
    (plus 'infloss-scalar', the per-record reference solver)."""
    registry = {
        "loss": LossRanker,
        "infloss": InfLossRanker,
        "infloss-scalar": _infloss_scalar,
        "twostep": TwoStepRanker,
        "holistic": HolisticRanker,
    }
    try:
        cls = registry[method]
    except KeyError:
        raise DebuggingError(
            f"unknown method {method!r}; choose from {sorted(registry)}"
        ) from None
    return cls(**kwargs)
