"""Alternative interventions beyond deletion (paper Section 8).

The paper fixes training data by *deleting* records, and names label
fixing ([Tanaka et al. 2018; Krishnan et al. 2016]) as future work.  This
module provides that extension: :class:`RelabelDebugger` runs the same
train-rank-fix loop as :class:`~repro.core.rain.RainDebugger` but, instead
of deleting the top-k records, *flips their labels*:

- binary models: to the opposite class (the only possible fix);
- multiclass models: to the model's own most-confident other class
  (a self-training-style correction).

Relabelling keeps the training-set size constant, which matters when the
corrupted slice is large enough that deletion would starve the model of a
whole region of the feature space.  The benchmark suite compares both
interventions on the DBLP workload (``test_bench_ablation.py``).
"""

from __future__ import annotations

import numpy as np

from ..errors import DebuggingError
from .rain import DebugReport, IterationRecord, RainDebugger


class RelabelDebugger(RainDebugger):
    """Train-rank-fix with label flipping instead of deletion.

    The ``removal_order`` of the resulting report lists the records whose
    labels were *changed* (ranked), so recall/AUCCR metrics apply
    unchanged against the known-corrupted ground truth.
    """

    def run(self, max_removals: int, k_per_iteration: int = 10) -> DebugReport:
        if max_removals <= 0:
            raise DebuggingError(f"max_removals must be positive, got {max_removals}")
        if k_per_iteration <= 0:
            raise DebuggingError(
                f"k_per_iteration must be positive, got {k_per_iteration}"
            )
        from ..influence.functions import InfluenceAnalyzer
        from ..utils import Stopwatch, argsort_desc
        from .rankers import IterationContext, make_ranker

        method = self.choose_method()
        ranker = make_ranker(method, **self.ranker_kwargs)

        watch = Stopwatch()
        y_current = self.y_train.copy()
        touched = np.zeros(len(y_current), dtype=bool)
        changed_order: list[int] = []
        iterations: list[IterationRecord] = []
        stopped_reason = "budget"
        iteration = 0

        while len(changed_order) < max_removals:
            iteration += 1
            with watch.time("train"):
                self.model.fit(
                    self.X_train, y_current,
                    warm_start=self.model.is_fitted, **self.fit_kwargs,
                )
            with watch.time("execute"):
                case_results = [
                    (
                        case,
                        self.executor.execute(
                            plan, debug=True, provenance=self.provenance
                        ),
                    )
                    for case, plan in zip(self.cases, self._plans)
                ]
            context = IterationContext(
                model=self.model,
                X_active=self.X_train,
                y_active=y_current,
                analyzer=InfluenceAnalyzer(
                    self.model, self.X_train, y_current, damping=self.damping,
                    cg_max_iter=self.cg_max_iter, cg_tol=self.cg_tol,
                ),
                case_results=case_results,
                rng=self.rng,
                watch=watch,
            )
            scores = np.asarray(ranker.scores(context), dtype=np.float64)
            scores[touched] = -np.inf  # never flip the same record twice
            if not np.isfinite(scores).any() or np.allclose(
                scores[np.isfinite(scores)], scores[np.isfinite(scores)][0]
            ):
                stopped_reason = "no_signal"
                break

            budget = min(k_per_iteration, max_removals - len(changed_order))
            chosen = argsort_desc(scores)[:budget]
            chosen = [int(i) for i in chosen if np.isfinite(scores[i])]
            if not chosen:
                stopped_reason = "exhausted"
                break
            for index in chosen:
                y_current[index] = self._fixed_label(index, y_current[index])
                touched[index] = True
            changed_order.extend(chosen)
            iterations.append(
                IterationRecord(
                    iteration, list(chosen), False, dict(context.diagnostics), {}
                )
            )
            if touched.all():
                stopped_reason = "exhausted"
                break

        return DebugReport(
            method=f"{method}+relabel",
            removal_order=changed_order,
            iterations=iterations,
            timings=watch.as_dict(),
            stopped_reason=stopped_reason,
        )

    def _fixed_label(self, index: int, current_label):
        """The corrected label for one record."""
        classes = self.model.classes
        if len(classes) == 2:
            return classes[1] if current_label == classes[0] else classes[0]
        proba = self.model.predict_proba(self.X_train[index:index + 1])[0]
        order = np.argsort(-proba)
        for class_index in order:
            candidate = classes[int(class_index)]
            if candidate != current_label:
                return candidate
        raise DebuggingError("no alternative class available")

    def corrected_labels(self, report: DebugReport) -> np.ndarray:
        """Replay the report's flips on a fresh copy of the labels."""
        y_fixed = self.y_train.copy()
        for index in report.removal_order:
            y_fixed[index] = self._fixed_label(index, y_fixed[index])
        return y_fixed
